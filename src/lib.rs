//! # slsbench — serverless model serving, benchmarked
//!
//! A from-scratch Rust reproduction of *"Serverless Data Science — Are We
//! There Yet? A Case Study of Model Serving"* (SIGMOD 2022): the paper's
//! benchmarking framework (load generator → planner → executor → analyzer)
//! plus calibrated discrete-event simulators of the eight cloud serving
//! systems it evaluates — Lambda, Cloud Functions, SageMaker, AI Platform,
//! and self-rented CPU/GPU servers on EC2 and GCE.
//!
//! This crate is a facade: it re-exports the six member crates so an
//! application can depend on one name. See each crate for details:
//!
//! - [`sim`] — deterministic discrete-event kernel;
//! - [`workload`] — MMPP workload generation (the paper's Figure 4);
//! - [`model`] — model/runtime profiles and calibration anchors;
//! - [`platform`] — the eight simulated serving systems;
//! - [`obs`] — deterministic tracing, streaming metrics, trace explorer;
//! - [`core`] — planner, executor, analyzer, reports, design-space explorer.
//!
//! ## Quickstart
//!
//! ```
//! use slsbench::core::{analyze, Deployment, Executor};
//! use slsbench::model::{ModelKind, RuntimeKind};
//! use slsbench::platform::PlatformKind;
//! use slsbench::sim::Seed;
//! use slsbench::workload::MmppPreset;
//!
//! // Deploy MobileNet on a Lambda-style platform and replay workload-40.
//! let trace = MmppPreset::W40.generate(Seed(7));
//! let deployment = Deployment::new(
//!     PlatformKind::AwsServerless,
//!     ModelKind::MobileNet,
//!     RuntimeKind::Tf115,
//! );
//! let run = Executor::default().run(&deployment, &trace, Seed(7)).unwrap();
//! let report = analyze(&run);
//! assert!(report.success_ratio > 0.99);
//! println!(
//!     "mean latency {:.3}s, cost {}",
//!     report.mean_latency().unwrap(),
//!     report.cost.total()
//! );
//! ```

pub use slsb_core as core;
pub use slsb_model as model;
pub use slsb_obs as obs;
pub use slsb_platform as platform;
pub use slsb_sim as sim;
pub use slsb_workload as workload;
