//! Deterministic observability for the slsbench stack.
//!
//! Three pieces, all built around the invariant that *observation never
//! perturbs the simulation*:
//!
//! - [`event`]: the structured, sim-time-stamped trace event taxonomy —
//!   request phase transitions, instance lifecycle, billing ticks, and
//!   executor-level request spans;
//! - [`recorder`]: the [`Recorder`] trait plus [`NoopRecorder`] (disabled,
//!   zero work beyond one branch), [`JsonlRecorder`] (streams JSON Lines),
//!   and [`MemoryRecorder`] (tests);
//! - [`metrics`]: streaming log-linear histograms, counters, and gauges
//!   in a [`MetricsRegistry`] that merges deterministically across the
//!   parallel runner's workers.
//!
//! [`trace_view`] renders a recorded trace back into text — waterfall,
//! instance timeline, phase attribution — for the `slsb trace`
//! subcommand, and [`log`] holds the process-wide `--log-level` switch
//! used by the CLI binaries.
//!
//! # Determinism guarantee
//!
//! Recorders are write-only sinks: no instrumentation site reads from a
//! recorder, touches an RNG, or schedules differently when recording is
//! on. Emission sites construct events inside a closure that only runs
//! when [`Recorder::enabled`] returns true, so a disabled recorder costs
//! one branch per site. Simulation output is therefore byte-identical
//! with recording on, off, or absent.

pub mod event;
pub mod log;
pub mod metrics;
pub mod profile;
pub mod recorder;
pub mod trace_view;

pub use event::{Component, EventKind, FaultKind, SpanOutcome, SpawnCause, TraceEvent};
pub use log::{log_enabled, log_level, set_log_level, LogLevel};
pub use metrics::{LogLinearHistogram, MetricsRegistry};
pub use profile::{FlatScope, Profile, PROFILE_SCHEMA};
pub use recorder::{JsonlRecorder, MemoryRecorder, NoopRecorder, Recorder};
