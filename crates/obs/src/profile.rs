//! Profile snapshots: the on-disk `profile.json` schema and its text
//! renderings for `slsb profile`.
//!
//! The raw tree comes from the [`slsb_sim::prof`] runtime; this module
//! wraps it with run-level context (wall time of the attributed window,
//! how much of it landed in named scopes) and renders three views:
//!
//! - [`Profile::render_tree`] — the nested tree, inclusive + exclusive
//!   time, calls, allocations, and percent-of-wall per scope;
//! - [`Profile::render_top`] — scopes flattened by path and ranked by
//!   *exclusive* time, the "where does the time actually go" view;
//! - [`Profile::render_collapsed`] — `path;to;scope <micros>` lines,
//!   the folded-stack format flamegraph tooling consumes.
//!
//! The unattributed remainder (wall minus the root scopes' inclusive
//! time) is always reported explicitly rather than silently absorbed.

use serde::{Deserialize, Serialize};
use slsb_sim::ProfileNode;
use std::fmt::Write as _;

/// Schema tag written into every profile JSON document.
pub const PROFILE_SCHEMA: &str = "slsb-profile/v1";

/// A complete profile snapshot for one attributed window (normally one
/// `slsb run` invocation: workload generation + execution + analysis).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    /// Schema tag, [`PROFILE_SCHEMA`].
    pub schema: String,
    /// Wall-clock seconds of the attributed window.
    pub wall_secs: f64,
    /// Seconds landing in named root scopes (sum of root inclusive
    /// times). Under a parallel runner this can exceed `wall_secs`:
    /// worker threads accumulate concurrently.
    pub attributed_secs: f64,
    /// `max(0, wall - attributed)` — time the profiler saw no scope for.
    pub unattributed_secs: f64,
    /// Fraction of wall time attributed, capped at 1.
    pub attributed_frac: f64,
    /// The merged scope tree, roots and children sorted by label.
    pub roots: Vec<ProfileNode>,
}

impl Profile {
    /// Wraps a snapshot tree with wall-clock context.
    pub fn new(roots: Vec<ProfileNode>, wall_secs: f64) -> Profile {
        let attributed_secs: f64 = roots.iter().map(ProfileNode::secs).sum();
        let attributed_frac = if wall_secs > 0.0 {
            (attributed_secs / wall_secs).min(1.0)
        } else {
            0.0
        };
        Profile {
            schema: PROFILE_SCHEMA.to_string(),
            wall_secs,
            attributed_secs,
            unattributed_secs: (wall_secs - attributed_secs).max(0.0),
            attributed_frac,
            roots,
        }
    }

    /// Parses a profile document, checking the schema tag.
    pub fn from_json(text: &str) -> Result<Profile, String> {
        let p: Profile = serde_json::from_str(text).map_err(|e| format!("invalid profile JSON: {e}"))?;
        if !p.schema.starts_with("slsb-profile/") {
            return Err(format!("not a profile document (schema {:?})", p.schema));
        }
        Ok(p)
    }

    /// Pretty-printed JSON with a trailing newline.
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("profile serializes");
        s.push('\n');
        s
    }

    /// Every scope flattened to `(path, calls, exclusive nanos, inclusive
    /// nanos, allocs)`, depth-first in sorted label order.
    pub fn flatten(&self) -> Vec<FlatScope> {
        let mut out = Vec::new();
        for root in &self.roots {
            flatten_into(root, String::new(), &mut out);
        }
        out
    }

    /// The nested tree view.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "wall          : {:.3}s\nattributed    : {:.3}s ({:.1}%)\nunattributed  : {:.3}s",
            self.wall_secs,
            self.attributed_secs,
            self.attributed_frac * 100.0,
            self.unattributed_secs,
        );
        let _ = writeln!(
            out,
            "\n{:<42} {:>9} {:>9} {:>6} {:>12} {:>10}",
            "scope", "incl", "excl", "%wall", "calls", "allocs"
        );
        for root in &self.roots {
            render_node(root, 0, self.wall_secs, &mut out);
        }
        out
    }

    /// Scopes ranked by exclusive time, top `n`.
    pub fn render_top(&self, n: usize) -> String {
        let mut flat = self.flatten();
        flat.sort_by_key(|f| std::cmp::Reverse(f.exclusive_nanos));
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<42} {:>9} {:>6} {:>12} {:>10}",
            "scope (by exclusive time)", "excl", "%wall", "calls", "allocs"
        );
        for s in flat.iter().take(n) {
            let pct = if self.wall_secs > 0.0 {
                s.exclusive_nanos as f64 / 1e9 / self.wall_secs * 100.0
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{:<42} {:>8.3}s {:>5.1}% {:>12} {:>10}",
                s.path,
                s.exclusive_nanos as f64 / 1e9,
                pct,
                s.calls,
                s.allocs
            );
        }
        let unattr = self.unattributed_secs;
        if self.wall_secs > 0.0 {
            let _ = writeln!(
                out,
                "{:<42} {:>8.3}s {:>5.1}%",
                "(unattributed)",
                unattr,
                unattr / self.wall_secs * 100.0
            );
        }
        out
    }

    /// Folded-stack lines (`a;b;c <exclusive-micros>`), the format
    /// `flamegraph.pl`-style tooling consumes. Zero-weight scopes are
    /// skipped; the unattributed remainder gets its own line.
    pub fn render_collapsed(&self) -> String {
        let mut out = String::new();
        for s in self.flatten() {
            let micros = s.exclusive_nanos / 1_000;
            if micros > 0 {
                let _ = writeln!(out, "{} {}", s.path.replace('/', ";"), micros);
            }
        }
        let unattr_micros = (self.unattributed_secs * 1e6).round() as u64;
        if unattr_micros > 0 {
            let _ = writeln!(out, "(unattributed) {unattr_micros}");
        }
        out
    }
}

/// One flattened scope row: full `a/b/c` path plus totals.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatScope {
    /// Slash-joined label path from the root.
    pub path: String,
    /// Times the scope was entered.
    pub calls: u64,
    /// Exclusive wall nanos (children subtracted).
    pub exclusive_nanos: u64,
    /// Inclusive wall nanos.
    pub inclusive_nanos: u64,
    /// Inclusive allocations.
    pub allocs: u64,
}

fn flatten_into(node: &ProfileNode, prefix: String, out: &mut Vec<FlatScope>) {
    let path = if prefix.is_empty() {
        node.label.clone()
    } else {
        format!("{prefix}/{}", node.label)
    };
    out.push(FlatScope {
        path: path.clone(),
        calls: node.calls,
        exclusive_nanos: node.exclusive_nanos(),
        inclusive_nanos: node.nanos,
        allocs: node.allocs,
    });
    for c in &node.children {
        flatten_into(c, path.clone(), out);
    }
}

fn render_node(node: &ProfileNode, depth: usize, wall_secs: f64, out: &mut String) {
    let indent = "  ".repeat(depth);
    let pct = if wall_secs > 0.0 {
        node.secs() / wall_secs * 100.0
    } else {
        0.0
    };
    let label = format!("{indent}{}", node.label);
    let _ = writeln!(
        out,
        "{:<42} {:>8.3}s {:>8.3}s {:>5.1}% {:>12} {:>10}",
        label,
        node.secs(),
        node.exclusive_nanos() as f64 / 1e9,
        pct,
        node.calls,
        node.allocs
    );
    for c in &node.children {
        render_node(c, depth + 1, wall_secs, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Profile {
        let roots = vec![ProfileNode {
            label: "executor/cell".into(),
            calls: 2,
            nanos: 800_000_000,
            allocs: 40,
            children: vec![
                ProfileNode {
                    label: "kernel/pop".into(),
                    calls: 100,
                    nanos: 300_000_000,
                    allocs: 10,
                    children: vec![],
                },
                ProfileNode {
                    label: "platform/serverless".into(),
                    calls: 50,
                    nanos: 400_000_000,
                    allocs: 20,
                    children: vec![],
                },
            ],
        }];
        Profile::new(roots, 1.0)
    }

    #[test]
    fn attribution_accounts_for_the_remainder() {
        let p = sample();
        assert_eq!(p.schema, PROFILE_SCHEMA);
        assert!((p.attributed_secs - 0.8).abs() < 1e-9);
        assert!((p.unattributed_secs - 0.2).abs() < 1e-9);
        assert!((p.attributed_frac - 0.8).abs() < 1e-9);
    }

    #[test]
    fn json_round_trips_and_checks_schema() {
        let p = sample();
        let back = Profile::from_json(&p.to_json()).unwrap();
        assert_eq!(back, p);
        assert!(Profile::from_json("{\"schema\":\"nope\"}").is_err());
        assert!(Profile::from_json("not json").is_err());
    }

    #[test]
    fn flatten_builds_paths_and_exclusive_times() {
        let p = sample();
        let flat = p.flatten();
        let paths: Vec<&str> = flat.iter().map(|f| f.path.as_str()).collect();
        assert_eq!(
            paths,
            vec![
                "executor/cell",
                "executor/cell/kernel/pop",
                "executor/cell/platform/serverless"
            ]
        );
        // Exclusive of the root = 800ms - (300ms + 400ms).
        assert_eq!(flat[0].exclusive_nanos, 100_000_000);
    }

    #[test]
    fn renders_are_nonempty_and_mention_scopes() {
        let p = sample();
        let tree = p.render_tree();
        assert!(tree.contains("kernel/pop"), "{tree}");
        assert!(tree.contains("unattributed"), "{tree}");
        let top = p.render_top(10);
        assert!(top.contains("platform/serverless"), "{top}");
        assert!(top.contains("(unattributed)"), "{top}");
        let collapsed = p.render_collapsed();
        assert!(
            collapsed.contains("executor;cell;kernel;pop 300000"),
            "{collapsed}"
        );
        assert!(collapsed.contains("(unattributed) 200000"), "{collapsed}");
    }
}
