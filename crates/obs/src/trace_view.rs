//! The `slsb trace` explorer: replays a JSONL trace into text renderings
//! — an event summary, a per-request waterfall, a per-instance timeline,
//! and phase-attribution tables mirroring the paper's cold-start
//! breakdown figure. Everything here is a pure function of the event
//! list, so renderings are as deterministic as the trace itself.

use crate::event::{Component, EventKind, SpanOutcome, TraceEvent};
use crate::metrics::LogLinearHistogram;
use slsb_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Parses a JSON-Lines trace (one event per non-empty line).
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let ev: TraceEvent = serde_json::from_str(line)
            .map_err(|e| format!("line {}: invalid trace event: {e}", i + 1))?;
        events.push(ev);
    }
    Ok(events)
}

/// [`parse_jsonl`] with the error reporting a CLI wants: an empty file is
/// an error (not an empty trace), and a parse failure on an unterminated
/// final line is diagnosed as truncation — the shape a killed or
/// still-running writer leaves behind — rather than generic bad JSON.
pub fn parse_jsonl_strict(text: &str) -> Result<Vec<TraceEvent>, String> {
    if text.trim().is_empty() {
        return Err("trace file is empty (no events recorded)".to_string());
    }
    parse_jsonl(text).map_err(|e| {
        let lines = text.lines().count();
        let failed_last = e.starts_with(&format!("line {lines}:"));
        if failed_last && !text.ends_with('\n') {
            format!("trace file is truncated (last line is incomplete): {e}")
        } else {
            e
        }
    })
}

/// The `RunClosed` bookkeeping event, if the trace carries one.
pub fn run_closed(events: &[TraceEvent]) -> Option<(u64, u64)> {
    events.iter().rev().find_map(|e| match e.kind {
        EventKind::RunClosed {
            engine_events,
            requests,
        } => Some((engine_events, requests)),
        _ => None,
    })
}

/// Per-kind event counts, one aligned line per kind in sorted order.
pub fn summary(events: &[TraceEvent]) -> String {
    let mut counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    for ev in events {
        *counts.entry(ev.kind.name()).or_insert(0) += 1;
    }
    let mut out = String::new();
    for (name, n) in counts {
        let _ = writeln!(out, "  {name:<18} {n:>8}");
    }
    out
}

/// A decoded `RequestSpan`, in trace order.
#[derive(Debug, Clone, Copy)]
pub struct Span {
    /// Logical request index.
    pub request: u64,
    /// Issuing client.
    pub client: u32,
    /// Invocation the request rode in.
    pub invocation: u64,
    /// Client-side arrival time.
    pub arrival: SimTime,
    /// Phase durations, in pipeline order.
    pub batch: SimDuration,
    /// Request network transfer.
    pub net_in: SimDuration,
    /// Platform queueing delay.
    pub queued: SimDuration,
    /// Handler execution.
    pub exec: SimDuration,
    /// Response network transfer.
    pub net_out: SimDuration,
    /// Whether the invocation paid a cold start.
    pub cold: bool,
    /// Terminal outcome.
    pub outcome: SpanOutcome,
}

impl Span {
    /// Sum of all phases — equals end-to-end latency for successes.
    pub fn total(&self) -> SimDuration {
        self.batch + self.net_in + self.queued + self.exec + self.net_out
    }
}

/// Extracts the request spans from a trace, in emission order.
pub fn spans(events: &[TraceEvent]) -> Vec<Span> {
    events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::RequestSpan {
                request,
                client,
                invocation,
                arrival,
                batch,
                net_in,
                queued,
                exec,
                net_out,
                cold,
                outcome,
            } => Some(Span {
                request,
                client,
                invocation,
                arrival,
                batch,
                net_in,
                queued,
                exec,
                net_out,
                cold,
                outcome,
            }),
            _ => None,
        })
        .collect()
}

const PHASES: [&str; 5] = ["batch", "net_in", "queued", "exec", "net_out"];
const PHASE_GLYPHS: [char; 5] = ['b', '>', 'q', '#', '<'];

fn phase_values(s: &Span) -> [SimDuration; 5] {
    [s.batch, s.net_in, s.queued, s.exec, s.net_out]
}

/// Phase-attribution table over successful request spans: where
/// end-to-end latency goes, phase by phase, with streamed quantiles.
pub fn phase_attribution(events: &[TraceEvent]) -> String {
    let ok: Vec<Span> = spans(events)
        .into_iter()
        .filter(|s| s.outcome.is_success())
        .collect();
    let mut out = String::new();
    if ok.is_empty() {
        out.push_str("  (no successful request spans)\n");
        return out;
    }
    let mut hists: Vec<LogLinearHistogram> = (0..PHASES.len())
        .map(|_| LogLinearHistogram::default())
        .collect();
    let mut sums = [0u64; 5];
    let mut grand = 0u64;
    for s in &ok {
        for (i, d) in phase_values(s).into_iter().enumerate() {
            hists[i].record(d.as_secs_f64());
            sums[i] += d.as_micros();
            grand += d.as_micros();
        }
    }
    let _ = writeln!(
        out,
        "  {:<8} {:>8} {:>10} {:>10} {:>10} {:>10} {:>7}",
        "phase", "count", "mean s", "p50 s", "p95 s", "p99 s", "share"
    );
    for (i, name) in PHASES.iter().enumerate() {
        let h = &hists[i];
        let share = if grand == 0 {
            0.0
        } else {
            100.0 * sums[i] as f64 / grand as f64
        };
        let _ = writeln!(
            out,
            "  {:<8} {:>8} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>6.1}%",
            name,
            h.count(),
            h.mean().unwrap_or(0.0),
            h.quantile(50.0).unwrap_or(0.0),
            h.quantile(95.0).unwrap_or(0.0),
            h.quantile(99.0).unwrap_or(0.0),
            share,
        );
    }
    out
}

/// Cold-start sub-stage table from `InstanceReady` events, mirroring the
/// paper's boot → import → download → load breakdown.
pub fn cold_start_breakdown(events: &[TraceEvent]) -> String {
    let stages = ["boot", "import", "download", "load"];
    let mut hists: Vec<LogLinearHistogram> = stages
        .iter()
        .map(|_| LogLinearHistogram::default())
        .collect();
    let mut sums = [0u64; 4];
    let mut total = 0u64;
    let mut instances = 0u64;
    for ev in events {
        if let EventKind::InstanceReady {
            boot,
            import,
            download,
            load,
            ..
        } = ev.kind
        {
            instances += 1;
            for (i, d) in [boot, import, download, load].into_iter().enumerate() {
                hists[i].record(d.as_secs_f64());
                sums[i] += d.as_micros();
                total += d.as_micros();
            }
        }
    }
    let mut out = String::new();
    if instances == 0 {
        out.push_str("  (no cold-started instances)\n");
        return out;
    }
    let _ = writeln!(
        out,
        "  {:<9} {:>8} {:>10} {:>10} {:>10} {:>7}",
        "stage", "count", "mean s", "p50 s", "p99 s", "share"
    );
    for (i, name) in stages.iter().enumerate() {
        let h = &hists[i];
        let _ = writeln!(
            out,
            "  {:<9} {:>8} {:>10.4} {:>10.4} {:>10.4} {:>6.1}%",
            name,
            h.count(),
            h.mean().unwrap_or(0.0),
            h.quantile(50.0).unwrap_or(0.0),
            h.quantile(99.0).unwrap_or(0.0),
            100.0 * sums[i] as f64 / total.max(1) as f64,
        );
    }
    out
}

/// Waterfall of the `limit` slowest request spans: one bar per request,
/// phases drawn left to right (`b` batch wait, `>` request network, `q`
/// platform queue, `#` execution, `<` response network), widths
/// proportional to the phase's share of that request's latency.
pub fn waterfall(events: &[TraceEvent], limit: usize) -> String {
    const WIDTH: usize = 40;
    let mut all = spans(events);
    // Slowest first; request index breaks ties so output is stable.
    all.sort_by(|a, b| b.total().cmp(&a.total()).then(a.request.cmp(&b.request)));
    all.truncate(limit);
    let mut out = String::new();
    if all.is_empty() {
        out.push_str("  (no request spans)\n");
        return out;
    }
    let max = all
        .iter()
        .map(|s| s.total().as_micros())
        .max()
        .unwrap_or(1)
        .max(1);
    for s in &all {
        let total = s.total().as_micros();
        let bar_len = ((total as f64 / max as f64) * WIDTH as f64).round() as usize;
        let mut bar = String::new();
        if total > 0 {
            let mut filled = 0usize;
            let mut cum = 0u64;
            for (i, d) in phase_values(s).into_iter().enumerate() {
                cum += d.as_micros();
                let upto = ((cum as f64 / total as f64) * bar_len as f64).round() as usize;
                for _ in filled..upto {
                    bar.push(PHASE_GLYPHS[i]);
                }
                filled = upto.max(filled);
            }
        }
        let _ = writeln!(
            out,
            "  #{:<6} {:>9} {}{:>9.3}s |{bar:<WIDTH$}|",
            s.request,
            s.outcome.to_string(),
            if s.cold { "cold " } else { "warm " },
            s.total().as_secs_f64(),
        );
    }
    let _ = writeln!(
        out,
        "  legend: b batch-wait, > request-net, q queue, # exec, < response-net"
    );
    out
}

/// Fault-attribution table: injected faults counted by kind and by the
/// component they struck (`client` for client-path faults), with each
/// kind's share of the total. Sorted by kind name, then component, so the
/// rendering is deterministic.
pub fn fault_attribution(events: &[TraceEvent]) -> String {
    // Interned labels keep this pass allocation-free per event.
    let mut counts: BTreeMap<(&'static str, &'static str), u64> = BTreeMap::new();
    let mut total = 0u64;
    for ev in events {
        if let EventKind::Fault { component, kind } = ev.kind {
            let who = component.map_or("client", |c| c.label());
            *counts.entry((kind.label(), who)).or_insert(0) += 1;
            total += 1;
        }
    }
    let mut out = String::new();
    if total == 0 {
        out.push_str("  (no injected faults)\n");
        return out;
    }
    let _ = writeln!(
        out,
        "  {:<14} {:<12} {:>8} {:>7}",
        "fault", "component", "count", "share"
    );
    for ((kind, who), n) in counts {
        let _ = writeln!(
            out,
            "  {:<14} {:<12} {:>8} {:>6.1}%",
            kind,
            who,
            n,
            100.0 * n as f64 / total as f64,
        );
    }
    let _ = writeln!(out, "  {:<14} {:<12} {total:>8}", "total", "");
    out
}

#[derive(Debug, Default, Clone, Copy)]
struct InstanceRow {
    spawned: Option<SimTime>,
    cause: Option<&'static str>,
    ready: Option<SimTime>,
    cold_total: SimDuration,
    execs: u64,
    crashed: bool,
    reclaimed: Option<SimTime>,
}

/// Per-instance lifecycle timeline: spawn → ready (cold-start total) →
/// executions → reclaim, one line per instance, at most `limit` lines
/// (earliest-spawned instances first).
pub fn instance_timeline(events: &[TraceEvent], limit: usize) -> String {
    let mut rows: BTreeMap<(Component, u64), InstanceRow> = BTreeMap::new();
    for ev in events {
        match ev.kind {
            EventKind::InstanceSpawn {
                component,
                instance,
                cause,
            } => {
                let row = rows.entry((component, instance)).or_default();
                row.spawned = Some(ev.at);
                row.cause = Some(match cause {
                    crate::event::SpawnCause::Demand => "demand",
                    crate::event::SpawnCause::Overprovision => "overprov",
                    crate::event::SpawnCause::Provisioned => "provisioned",
                });
            }
            EventKind::InstanceReady {
                component,
                instance,
                boot,
                import,
                download,
                load,
            } => {
                let row = rows.entry((component, instance)).or_default();
                row.ready = Some(ev.at);
                row.cold_total = boot + import + download + load;
            }
            EventKind::ExecStart {
                component,
                instance,
                ..
            } => rows.entry((component, instance)).or_default().execs += 1,
            EventKind::InstanceCrash {
                component,
                instance,
                ..
            } => rows.entry((component, instance)).or_default().crashed = true,
            EventKind::InstanceReclaim {
                component,
                instance,
                ..
            } => {
                rows.entry((component, instance)).or_default().reclaimed = Some(ev.at);
            }
            _ => {}
        }
    }
    let mut out = String::new();
    if rows.is_empty() {
        out.push_str("  (no instance events)\n");
        return out;
    }
    let total = rows.len();
    let mut ordered: Vec<((Component, u64), InstanceRow)> = rows.into_iter().collect();
    ordered.sort_by_key(|(key, row)| (row.spawned.unwrap_or(SimTime::ZERO), *key));
    for ((component, id), row) in ordered.iter().take(limit) {
        let spawned = row
            .spawned
            .map_or("?".to_string(), |t| format!("{:.3}", t.as_secs_f64()));
        let end = if row.crashed {
            "crashed".to_string()
        } else {
            match row.reclaimed {
                Some(t) => format!("reclaim@{:.3}", t.as_secs_f64()),
                None => "alive".to_string(),
            }
        };
        let _ = writeln!(
            out,
            "  {:<10} #{:<5} spawn@{spawned:<10} {:<11} cold={:<8.3} execs={:<6} {end}",
            component.to_string(),
            id,
            row.cause.unwrap_or("?"),
            row.cold_total.as_secs_f64(),
            row.execs,
        );
    }
    if total > limit {
        let _ = writeln!(out, "  … {} more instances", total - limit);
    }
    out
}

#[derive(Debug, Default)]
struct AppRow {
    requests: u64,
    ok: u64,
    cold: u64,
    latencies_us: Vec<u64>,
    cost_micro_dollars: Option<i64>,
}

/// Per-tenant breakdown for fleet traces: requests, cold-start ratio, p99
/// latency, and serving cost for the top-`limit` apps by request count.
/// Fleet runs label each span's `client` with the global app index and emit
/// one `AppClosed` per tenant carrying the cost; single-app traces degrade
/// to one row per client with cost shown as `-`.
pub fn app_breakdown(events: &[TraceEvent], limit: usize) -> String {
    let mut rows: BTreeMap<u32, AppRow> = BTreeMap::new();
    for ev in events {
        match ev.kind {
            EventKind::RequestSpan {
                client,
                cold,
                outcome,
                batch,
                net_in,
                queued,
                exec,
                net_out,
                ..
            } => {
                let row = rows.entry(client).or_default();
                row.requests += 1;
                if outcome.is_success() {
                    row.ok += 1;
                    row.latencies_us
                        .push((batch + net_in + queued + exec + net_out).as_micros());
                }
                if cold {
                    row.cold += 1;
                }
            }
            EventKind::AppClosed {
                app,
                requests,
                cost_micro_dollars,
            } => {
                let row = rows.entry(app).or_default();
                row.cost_micro_dollars = Some(cost_micro_dollars);
                // Spans are only emitted for resolved requests; the closing
                // record is authoritative for the submitted count.
                row.requests = row.requests.max(requests);
            }
            _ => {}
        }
    }
    let mut out = String::new();
    if rows.is_empty() {
        out.push_str("  (no per-app events)\n");
        return out;
    }
    let total = rows.len();
    let mut ordered: Vec<(u32, AppRow)> = rows.into_iter().collect();
    // Busiest first; app index breaks ties so the rendering is stable.
    ordered.sort_by(|a, b| b.1.requests.cmp(&a.1.requests).then(a.0.cmp(&b.0)));
    let _ = writeln!(
        out,
        "  {:<8} {:>10} {:>8} {:>7} {:>10} {:>12}",
        "app", "requests", "ok", "cold", "p99", "cost"
    );
    for (app, row) in ordered.iter_mut().take(limit) {
        row.latencies_us.sort_unstable();
        let p99 = if row.latencies_us.is_empty() {
            "-".to_string()
        } else {
            let rank = (row.latencies_us.len() as f64 * 0.99).ceil() as usize;
            let us = row.latencies_us[rank.saturating_sub(1).min(row.latencies_us.len() - 1)];
            format!("{:.3}s", us as f64 / 1e6)
        };
        let cost = row
            .cost_micro_dollars
            .map_or("-".to_string(), |c| format!("${:.4}", c as f64 / 1e6));
        let cold_pct = if row.requests == 0 {
            0.0
        } else {
            100.0 * row.cold as f64 / row.requests as f64
        };
        let _ = writeln!(
            out,
            "  {:<8} {:>10} {:>8} {:>6.1}% {:>10} {:>12}",
            app, row.requests, row.ok, cold_pct, p99, cost,
        );
    }
    if total > limit {
        let _ = writeln!(out, "  … {} more apps", total - limit);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SpawnCause;

    fn span_event(request: u64, exec_ms: u64, outcome: SpanOutcome) -> TraceEvent {
        TraceEvent {
            at: SimTime::ZERO + SimDuration::from_millis(exec_ms),
            kind: EventKind::RequestSpan {
                request,
                client: 0,
                invocation: request,
                arrival: SimTime::ZERO,
                batch: SimDuration::from_millis(1),
                net_in: SimDuration::from_millis(2),
                queued: SimDuration::from_millis(3),
                exec: SimDuration::from_millis(exec_ms),
                net_out: SimDuration::from_millis(4),
                cold: false,
                outcome,
            },
        }
    }

    fn lifecycle_events() -> Vec<TraceEvent> {
        let c = Component::Serverless;
        vec![
            TraceEvent {
                at: SimTime::ZERO,
                kind: EventKind::InstanceSpawn {
                    component: c,
                    instance: 0,
                    cause: SpawnCause::Demand,
                },
            },
            TraceEvent {
                at: SimTime::ZERO + SimDuration::from_secs(3),
                kind: EventKind::InstanceReady {
                    component: c,
                    instance: 0,
                    boot: SimDuration::from_millis(400),
                    import: SimDuration::from_secs(2),
                    download: SimDuration::from_millis(500),
                    load: SimDuration::from_millis(100),
                },
            },
            TraceEvent {
                at: SimTime::ZERO + SimDuration::from_secs(3),
                kind: EventKind::ExecStart {
                    component: c,
                    request: 0,
                    instance: 0,
                    cold: true,
                    done_at: SimTime::ZERO + SimDuration::from_secs(4),
                },
            },
            TraceEvent {
                at: SimTime::ZERO + SimDuration::from_secs(600),
                kind: EventKind::InstanceReclaim {
                    component: c,
                    instance: 0,
                },
            },
        ]
    }

    #[test]
    fn jsonl_roundtrip() {
        let events = lifecycle_events();
        let text: String = events
            .iter()
            .map(|e| serde_json::to_string(e).unwrap() + "\n")
            .collect();
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed, events);
        assert!(parse_jsonl("{not json}").is_err());
        assert!(parse_jsonl("").unwrap().is_empty());
    }

    #[test]
    fn strict_parse_rejects_empty_and_diagnoses_truncation() {
        // 0-byte file: a clear error, not an empty trace.
        let err = parse_jsonl_strict("").unwrap_err();
        assert!(err.contains("empty"), "{err}");
        let err = parse_jsonl_strict("\n\n").unwrap_err();
        assert!(err.contains("empty"), "{err}");

        // A writer killed mid-line leaves a complete prefix plus an
        // unterminated fragment: diagnosed as truncation.
        let events = lifecycle_events();
        let mut text: String = events
            .iter()
            .map(|e| serde_json::to_string(e).unwrap() + "\n")
            .collect();
        let fragment = serde_json::to_string(&events[0]).unwrap();
        text.push_str(&fragment[..fragment.len() / 2]);
        let err = parse_jsonl_strict(&text).unwrap_err();
        assert!(err.contains("truncated"), "{err}");

        // A bad line in the middle is NOT truncation — plain parse error.
        let mid = format!("{}\n{{not json}}\n{}\n", fragment, fragment);
        let err = parse_jsonl_strict(&mid).unwrap_err();
        assert!(!err.contains("truncated"), "{err}");
        assert!(err.contains("line 2"), "{err}");

        // A complete trace still parses.
        let full: String = events
            .iter()
            .map(|e| serde_json::to_string(e).unwrap() + "\n")
            .collect();
        assert_eq!(parse_jsonl_strict(&full).unwrap(), events);
    }

    #[test]
    fn summary_counts_kinds() {
        let s = summary(&lifecycle_events());
        assert!(s.contains("instance_spawn"), "{s}");
        assert!(s.contains("exec_start"), "{s}");
    }

    #[test]
    fn waterfall_orders_slowest_first() {
        let events = vec![
            span_event(0, 10, SpanOutcome::Success),
            span_event(1, 500, SpanOutcome::Success),
            span_event(2, 100, SpanOutcome::Success),
        ];
        let w = waterfall(&events, 2);
        let pos1 = w.find("#1").unwrap();
        let pos2 = w.find("#2").unwrap();
        assert!(pos1 < pos2, "{w}");
        assert!(!w.contains("#0 "), "{w}");
        assert!(w.contains('#'), "{w}");
    }

    #[test]
    fn attribution_reports_exec_dominant_share() {
        let events = vec![
            span_event(0, 990, SpanOutcome::Success),
            span_event(1, 990, SpanOutcome::Success),
            // Failures are excluded from attribution.
            span_event(2, 0, SpanOutcome::QueueFull),
        ];
        let t = phase_attribution(&events);
        assert!(t.contains("exec"), "{t}");
        assert!(t.contains("99.0%"), "{t}");
    }

    #[test]
    fn cold_breakdown_import_share() {
        let t = cold_start_breakdown(&lifecycle_events());
        // import (2s of 3s total) dominates.
        assert!(t.contains("import"), "{t}");
        assert!(t.contains("66.7%"), "{t}");
        let none = cold_start_breakdown(&[]);
        assert!(none.contains("no cold-started instances"));
    }

    #[test]
    fn timeline_shows_lifecycle() {
        let t = instance_timeline(&lifecycle_events(), 10);
        assert!(t.contains("serverless"), "{t}");
        assert!(t.contains("demand"), "{t}");
        assert!(t.contains("reclaim@600.000"), "{t}");
        assert!(t.contains("execs=1"), "{t}");
    }

    #[test]
    fn fault_attribution_counts_by_kind_and_component() {
        use crate::event::FaultKind;
        let fault = |kind, component| TraceEvent {
            at: SimTime::ZERO,
            kind: EventKind::Fault { component, kind },
        };
        let events = vec![
            fault(FaultKind::Throttled, Some(Component::Serverless)),
            fault(FaultKind::Throttled, Some(Component::Serverless)),
            fault(FaultKind::PacketLoss, None),
            fault(FaultKind::ExecCrash, Some(Component::Vm)),
        ];
        let t = fault_attribution(&events);
        assert!(t.contains("throttled"), "{t}");
        assert!(t.contains("serverless"), "{t}");
        assert!(t.contains("client"), "{t}");
        assert!(t.contains("50.0%"), "{t}");
        assert!(t.contains("total"), "{t}");
        let none = fault_attribution(&lifecycle_events());
        assert!(none.contains("no injected faults"), "{none}");
    }

    #[test]
    fn span_total_sums_phases() {
        let events = vec![span_event(5, 10, SpanOutcome::Success)];
        let s = spans(&events);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].total(), SimDuration::from_millis(1 + 2 + 3 + 10 + 4));
        assert!(run_closed(&events).is_none());
    }

    #[test]
    fn app_breakdown_ranks_tenants_and_joins_cost() {
        let span_for = |app: u32, request: u64, cold: bool| TraceEvent {
            at: SimTime::ZERO,
            kind: EventKind::RequestSpan {
                request,
                client: app,
                invocation: request,
                arrival: SimTime::ZERO,
                batch: SimDuration::ZERO,
                net_in: SimDuration::from_millis(2),
                queued: SimDuration::ZERO,
                exec: SimDuration::from_millis(30),
                net_out: SimDuration::from_millis(2),
                cold,
                outcome: SpanOutcome::Success,
            },
        };
        let mut events = vec![
            span_for(3, 0, true),
            span_for(3, 1, false),
            span_for(3, 2, false),
            span_for(9, 3, true),
        ];
        events.push(TraceEvent {
            at: SimTime::ZERO,
            kind: EventKind::AppClosed {
                app: 3,
                requests: 3,
                cost_micro_dollars: 1_234_500,
            },
        });
        let t = app_breakdown(&events, 10);
        // Busiest app first, with its AppClosed cost joined in.
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines[1].trim_start().starts_with('3'), "{t}");
        assert!(lines[1].contains("$1.2345"), "{t}");
        // App 9 has no AppClosed record: cost renders as `-`.
        assert!(lines[2].trim_start().starts_with('9'), "{t}");
        assert!(lines[2].trim_end().ends_with('-'), "{t}");
        assert!(t.contains("p99"), "{t}");

        // Truncation note for limits below the app count.
        let t = app_breakdown(&events, 1);
        assert!(t.contains("1 more apps"), "{t}");

        let none = app_breakdown(&[], 5);
        assert!(none.contains("no per-app events"), "{none}");
    }
}
