//! Recorder sinks: where trace events go.
//!
//! The contract every sink must honour is that recording is *purely
//! observational*: a recorder never feeds information back into the
//! simulation, so enabling or disabling one cannot perturb RNG draws or
//! event ordering. Instrumentation sites additionally check
//! [`Recorder::enabled`] before constructing an event, making the
//! disabled path a single branch.

use crate::event::TraceEvent;
use slsb_sim::ProfGuard;
use std::io;
use std::io::Write as _;

/// A sink for [`TraceEvent`]s.
pub trait Recorder {
    /// Whether events should be constructed and recorded at all.
    /// Instrumentation sites skip event construction when this is false.
    fn enabled(&self) -> bool {
        true
    }

    /// Consumes one event. Only called when [`Recorder::enabled`] is true.
    fn record(&mut self, ev: &TraceEvent);
}

/// The disabled recorder: `enabled()` is false and `record` is a no-op,
/// so instrumented code runs at (branch-predicted) full speed.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _ev: &TraceEvent) {}
}

/// Buffers events in memory; the test and analysis workhorse.
#[derive(Debug, Clone, Default)]
pub struct MemoryRecorder {
    events: Vec<TraceEvent>,
}

impl MemoryRecorder {
    /// An empty in-memory recorder.
    pub fn new() -> Self {
        MemoryRecorder::default()
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consumes the recorder, yielding the events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

impl Recorder for MemoryRecorder {
    fn record(&mut self, ev: &TraceEvent) {
        let _p = ProfGuard::enter("recorder");
        self.events.push(*ev);
    }
}

/// Streams events as JSON Lines (one compact JSON object per line) into
/// any [`io::Write`] sink, buffering internally so each event costs a
/// memcpy rather than a syscall-sized write.
///
/// Write errors do not panic mid-simulation: the first error is latched,
/// further events are discarded, and [`JsonlRecorder::finish`] reports it.
/// Because writes are buffered, an underlying failure may only surface at
/// `finish`, which flushes explicitly.
#[derive(Debug)]
pub struct JsonlRecorder<W: io::Write> {
    out: io::BufWriter<W>,
    /// Scratch line, reused across events so steady-state recording does
    /// not allocate.
    line: String,
    written: u64,
    error: Option<io::Error>,
}

impl<W: io::Write> JsonlRecorder<W> {
    /// Wraps a writer. The recorder buffers internally, so callers should
    /// hand over the raw sink (e.g. a `File`) directly.
    pub fn new(out: W) -> Self {
        JsonlRecorder {
            out: io::BufWriter::new(out),
            line: String::new(),
            written: 0,
            error: None,
        }
    }

    /// Events accepted (serialized and handed to the buffered writer) so
    /// far.
    pub fn events_written(&self) -> u64 {
        self.written
    }

    /// Flushes the buffer and returns the event count, or the first write
    /// error encountered.
    pub fn finish(mut self) -> io::Result<u64> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.written)
    }
}

impl<W: io::Write> Recorder for JsonlRecorder<W> {
    fn record(&mut self, ev: &TraceEvent) {
        let _p = ProfGuard::enter("recorder");
        if self.error.is_some() {
            return;
        }
        // The event types serialize infallibly (no maps with non-string
        // keys, no non-finite floats in the schema).
        serde_json::to_string_into(ev, &mut self.line).expect("trace events are serializable");
        self.line.push('\n');
        if let Err(e) = self.out.write_all(self.line.as_bytes()) {
            self.error = Some(e);
            return;
        }
        self.written += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Component, EventKind};
    use slsb_sim::SimTime;

    fn sample(request: u64) -> TraceEvent {
        TraceEvent {
            at: SimTime::ZERO,
            kind: EventKind::RequestArrival {
                component: Component::Vm,
                request,
            },
        }
    }

    #[test]
    fn noop_is_disabled() {
        assert!(!NoopRecorder.enabled());
    }

    #[test]
    fn memory_recorder_keeps_order() {
        let mut rec = MemoryRecorder::new();
        for i in 0..5 {
            rec.record(&sample(i));
        }
        let ids: Vec<u64> = rec
            .events()
            .iter()
            .map(|e| match e.kind {
                EventKind::RequestArrival { request, .. } => request,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn jsonl_writes_one_line_per_event() {
        let mut buf = Vec::new();
        let mut rec = JsonlRecorder::new(&mut buf);
        rec.record(&sample(1));
        rec.record(&sample(2));
        let n = rec.finish().unwrap();
        assert_eq!(n, 2);
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            let ev: TraceEvent = serde_json::from_str(line).unwrap();
            assert!(matches!(ev.kind, EventKind::RequestArrival { .. }));
        }
    }

    #[test]
    fn jsonl_reports_write_errors_by_finish() {
        struct Failing;
        impl io::Write for Failing {
            fn write(&mut self, _b: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        // Small events sit in the internal buffer until the final flush,
        // so the error is guaranteed to surface at `finish` (it may latch
        // earlier once enough events accumulate to force a write-through).
        let mut rec = JsonlRecorder::new(Failing);
        rec.record(&sample(1));
        rec.record(&sample(2));
        assert!(rec.finish().is_err());
    }

    #[test]
    fn jsonl_discards_events_after_a_latched_error() {
        struct Failing;
        impl io::Write for Failing {
            fn write(&mut self, _b: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut rec = JsonlRecorder::new(Failing);
        // Enough volume to overflow the internal buffer and latch the
        // error mid-run.
        for i in 0..10_000 {
            rec.record(&sample(i));
        }
        let mid_run = rec.events_written();
        rec.record(&sample(0));
        assert_eq!(rec.events_written(), mid_run);
        assert!(rec.finish().is_err());
    }
}
