//! The trace event taxonomy: everything the simulators can tell an
//! observer about a run, stamped with virtual time.
//!
//! Events fall into three families:
//!
//! - **request-path events** emitted by the platform simulators as a
//!   request moves through them (`RequestArrival` → `RequestQueued` →
//!   `ExecStart`, or a terminal `RequestRejected` / `RequestDropped`);
//! - **instance lifecycle events** (`InstanceSpawn` → `InstanceReady` →
//!   `InstanceWarm` → `InstanceReclaim`, plus `InstanceCrash`) and
//!   `BillingTick`s as billable handler time accrues;
//! - **run-level events** emitted by the executor after the simulation
//!   drains: one `RequestSpan` per logical client request with the full
//!   phase breakdown, and a final `RunClosed` carrying the engine's
//!   processed-event count;
//! - **fault events** (`Fault`): one per discrete injected fault from a
//!   `FaultPlan` — boot/mid-execution crashes, storage stalls, throttle
//!   and outage-window rejections, client-path packet drops — so the
//!   explorer can attribute degradation to its injected cause.
//!   (Continuous degradations — storage slowdown multipliers and network
//!   jitter — shift durations rather than emitting events.)
//!
//! Fault-classified terminal outcomes surface in [`SpanOutcome`] as
//! `Throttled` (admission refused by throttle or outage), `Crashed`
//! (the serving attempt died mid-execution), and `RetriesExhausted`
//! (the client retry budget ran out without a success).
//!
//! Platform-side events identify requests by *invocation* index (the
//! platform never sees individual batched requests); `RequestSpan.invocation`
//! joins the two views.

use serde::{Deserialize, Serialize};
use slsb_sim::{SimDuration, SimTime};
use std::fmt;

/// Which simulated component emitted a platform-side event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Component {
    /// A FaaS-style serverless platform (Lambda / Cloud Functions model).
    Serverless,
    /// A managed ML endpoint (SageMaker / AI Platform model).
    ManagedMl,
    /// A self-rented VM server pool.
    Vm,
}

impl Component {
    /// The component's interned label — a `&'static str`, so hot paths
    /// (metric keys, attribution tables) never allocate to name a
    /// component.
    pub fn label(self) -> &'static str {
        match self {
            Component::Serverless => "serverless",
            Component::ManagedMl => "managed-ml",
            Component::Vm => "vm",
        }
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Why an instance was spawned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum SpawnCause {
    /// Spawned because queued demand required it.
    Demand,
    /// Spawned speculatively ahead of demand.
    Overprovision,
    /// Part of the provisioned-concurrency / minimum-instance floor.
    Provisioned,
}

/// Terminal outcome of a request span, mirroring the executor's
/// success/failure classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum SpanOutcome {
    /// The response arrived within the client timeout.
    Success,
    /// The platform's admission queue was full.
    QueueFull,
    /// No response (or a late one) within the client timeout.
    ClientTimeout,
    /// The platform rejected the request outright.
    Rejected,
    /// Admission was refused by injected throttling or an outage window.
    Throttled,
    /// The serving attempt crashed mid-execution.
    Crashed,
    /// Every client retry attempt failed.
    RetriesExhausted,
}

impl SpanOutcome {
    /// Whether the request ultimately succeeded.
    pub fn is_success(self) -> bool {
        matches!(self, SpanOutcome::Success)
    }
}

impl fmt::Display for SpanOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SpanOutcome::Success => "ok",
            SpanOutcome::QueueFull => "queue-full",
            SpanOutcome::ClientTimeout => "timeout",
            SpanOutcome::Rejected => "rejected",
            SpanOutcome::Throttled => "throttled",
            SpanOutcome::Crashed => "crashed",
            SpanOutcome::RetriesExhausted => "retries-exhausted",
        })
    }
}

/// The class of an injected fault, distinguishing the mechanisms a
/// `FaultPlan` can schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum FaultKind {
    /// An instance died during cold start and will be replaced.
    BootCrash,
    /// A handler execution crashed after dispatch.
    ExecCrash,
    /// A storage download stalled for an injected extra delay.
    StorageStall,
    /// Admission was refused by the injected token-bucket throttle.
    Throttled,
    /// Admission was refused inside a scheduled outage window.
    Outage,
    /// A client request was lost on the network path to the platform.
    PacketLoss,
}

impl FaultKind {
    /// The fault kind's interned label (see [`Component::label`]).
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::BootCrash => "boot-crash",
            FaultKind::ExecCrash => "exec-crash",
            FaultKind::StorageStall => "storage-stall",
            FaultKind::Throttled => "throttled",
            FaultKind::Outage => "outage",
            FaultKind::PacketLoss => "packet-loss",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One observable fact about a run. Internally tagged as `"event"` on the
/// wire so a JSONL trace stays self-describing and greppable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(tag = "event", rename_all = "snake_case")]
pub enum EventKind {
    /// An invocation reached the platform's front door.
    RequestArrival {
        /// Emitting component.
        component: Component,
        /// Platform-side request (invocation) id.
        request: u64,
    },
    /// The invocation had to wait (no warm capacity / free worker).
    RequestQueued {
        /// Emitting component.
        component: Component,
        /// Platform-side request (invocation) id.
        request: u64,
    },
    /// The platform refused admission (queue at capacity).
    RequestRejected {
        /// Emitting component.
        component: Component,
        /// Platform-side request (invocation) id.
        request: u64,
    },
    /// A queued invocation went stale and was dropped before dispatch.
    RequestDropped {
        /// Emitting component.
        component: Component,
        /// Platform-side request (invocation) id.
        request: u64,
    },
    /// Handler execution began on an instance.
    ExecStart {
        /// Emitting component.
        component: Component,
        /// Platform-side request (invocation) id.
        request: u64,
        /// Instance (or worker slot) executing the handler.
        instance: u64,
        /// Whether this execution pays a cold start.
        cold: bool,
        /// Virtual time at which the handler completes.
        done_at: SimTime,
    },
    /// A new instance began provisioning (or was pre-provisioned).
    InstanceSpawn {
        /// Emitting component.
        component: Component,
        /// Instance id.
        instance: u64,
        /// Why it was spawned.
        cause: SpawnCause,
    },
    /// A cold-started instance finished boot+import and can take work;
    /// carries the sampled cold-start sub-phase durations.
    InstanceReady {
        /// Emitting component.
        component: Component,
        /// Instance id.
        instance: u64,
        /// Sandbox/container boot time.
        boot: SimDuration,
        /// Framework import time.
        import: SimDuration,
        /// Model artifact download time.
        download: SimDuration,
        /// Model load/initialization time.
        load: SimDuration,
    },
    /// The instance holds a loaded model; subsequent requests are warm.
    InstanceWarm {
        /// Emitting component.
        component: Component,
        /// Instance id.
        instance: u64,
    },
    /// The instance crashed during startup and will be replaced.
    InstanceCrash {
        /// Emitting component.
        component: Component,
        /// Instance id.
        instance: u64,
    },
    /// The keep-alive expired (or the autoscaler scaled in) and the
    /// instance was reaped.
    InstanceReclaim {
        /// Emitting component.
        component: Component,
        /// Instance id.
        instance: u64,
    },
    /// Billable handler time accrued.
    BillingTick {
        /// Emitting component.
        component: Component,
        /// Billed duration for this handler execution.
        billed: SimDuration,
    },
    /// A discrete fault from the active `FaultPlan` fired.
    Fault {
        /// Emitting component, if the fault fired platform-side;
        /// `None` for client-path faults (packet loss).
        component: Option<Component>,
        /// What kind of fault fired.
        kind: FaultKind,
    },
    /// Executor-level per-request phase breakdown, emitted once per
    /// logical client request after the run drains. For successful
    /// requests `batch + net_in + queued + exec + net_out` equals the
    /// end-to-end latency exactly (integer microseconds).
    RequestSpan {
        /// Logical request index (position in the workload trace).
        request: u64,
        /// Client that issued the request.
        client: u32,
        /// Invocation the request was batched into — joins the span to
        /// platform-side events carrying the same `request` id.
        invocation: u64,
        /// Virtual arrival time at the client.
        arrival: SimTime,
        /// Wait for the batch window to close.
        batch: SimDuration,
        /// Request network transfer time.
        net_in: SimDuration,
        /// Platform queueing delay.
        queued: SimDuration,
        /// Handler execution (includes cold-start work on cold paths).
        exec: SimDuration,
        /// Response network transfer time.
        net_out: SimDuration,
        /// Whether the serving invocation paid a cold start.
        cold: bool,
        /// Terminal outcome.
        outcome: SpanOutcome,
    },
    /// Fleet runs: one app's closing summary, emitted per tenant before
    /// `RunClosed`. Joins to spans via the span `client` label, which fleet
    /// runs set to the global app index.
    AppClosed {
        /// Global app index.
        app: u32,
        /// Requests the app received.
        requests: u64,
        /// The app's total serving cost, integer micro-dollars.
        cost_micro_dollars: i64,
    },
    /// End of trace: engine bookkeeping for cross-checking.
    RunClosed {
        /// Events the simulation engine processed.
        engine_events: u64,
        /// Logical client requests in the run.
        requests: u64,
    },
}

impl EventKind {
    /// Stable short name of the variant (matches the wire tag).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::RequestArrival { .. } => "request_arrival",
            EventKind::RequestQueued { .. } => "request_queued",
            EventKind::RequestRejected { .. } => "request_rejected",
            EventKind::RequestDropped { .. } => "request_dropped",
            EventKind::ExecStart { .. } => "exec_start",
            EventKind::InstanceSpawn { .. } => "instance_spawn",
            EventKind::InstanceReady { .. } => "instance_ready",
            EventKind::InstanceWarm { .. } => "instance_warm",
            EventKind::InstanceCrash { .. } => "instance_crash",
            EventKind::InstanceReclaim { .. } => "instance_reclaim",
            EventKind::BillingTick { .. } => "billing_tick",
            EventKind::Fault { .. } => "fault",
            EventKind::RequestSpan { .. } => "request_span",
            EventKind::AppClosed { .. } => "app_closed",
            EventKind::RunClosed { .. } => "run_closed",
        }
    }
}

/// A trace event: what happened, and when in virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Virtual timestamp (microseconds since run start on the wire).
    pub at: SimTime,
    /// What happened.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_roundtrip_through_json() {
        let events = [
            TraceEvent {
                at: SimTime::ZERO + SimDuration::from_millis(5),
                kind: EventKind::RequestArrival {
                    component: Component::Serverless,
                    request: 3,
                },
            },
            TraceEvent {
                at: SimTime::ZERO,
                kind: EventKind::InstanceReady {
                    component: Component::ManagedMl,
                    instance: 7,
                    boot: SimDuration::from_millis(250),
                    import: SimDuration::from_secs(2),
                    download: SimDuration::from_millis(900),
                    load: SimDuration::from_millis(400),
                },
            },
            TraceEvent {
                at: SimTime::ZERO + SimDuration::from_secs(9),
                kind: EventKind::RequestSpan {
                    request: 41,
                    client: 2,
                    invocation: 40,
                    arrival: SimTime::ZERO + SimDuration::from_secs(8),
                    batch: SimDuration::from_millis(10),
                    net_in: SimDuration::from_millis(20),
                    queued: SimDuration::from_millis(30),
                    exec: SimDuration::from_millis(40),
                    net_out: SimDuration::from_millis(50),
                    cold: true,
                    outcome: SpanOutcome::Success,
                },
            },
            TraceEvent {
                at: SimTime::ZERO + SimDuration::from_secs(10),
                kind: EventKind::RunClosed {
                    engine_events: 123,
                    requests: 42,
                },
            },
            TraceEvent {
                at: SimTime::ZERO + SimDuration::from_secs(3),
                kind: EventKind::Fault {
                    component: Some(Component::Serverless),
                    kind: FaultKind::StorageStall,
                },
            },
            TraceEvent {
                at: SimTime::ZERO + SimDuration::from_secs(4),
                kind: EventKind::Fault {
                    component: None,
                    kind: FaultKind::PacketLoss,
                },
            },
        ];
        for ev in events {
            let json = serde_json::to_string(&ev).unwrap();
            let back: TraceEvent = serde_json::from_str(&json).unwrap();
            assert_eq!(back, ev, "mismatch for {json}");
        }
    }

    #[test]
    fn wire_format_is_internally_tagged() {
        let ev = TraceEvent {
            at: SimTime::ZERO + SimDuration::from_micros(17),
            kind: EventKind::RequestQueued {
                component: Component::Vm,
                request: 9,
            },
        };
        let json = serde_json::to_string(&ev).unwrap();
        assert!(json.contains("\"event\":\"request_queued\""), "{json}");
        assert!(json.contains("\"component\":\"vm\""), "{json}");
        assert!(json.contains("\"at\":17"), "{json}");
    }

    #[test]
    fn names_match_wire_tags() {
        let kind = EventKind::InstanceWarm {
            component: Component::Serverless,
            instance: 0,
        };
        let json = serde_json::to_string(&kind).unwrap();
        assert!(json.contains(kind.name()), "{json}");
    }

    #[test]
    fn fault_events_are_greppable_by_kind() {
        let kind = EventKind::Fault {
            component: Some(Component::ManagedMl),
            kind: FaultKind::Throttled,
        };
        assert_eq!(kind.name(), "fault");
        let json = serde_json::to_string(&kind).unwrap();
        assert!(json.contains("\"event\":\"fault\""), "{json}");
        assert!(json.contains("\"kind\":\"throttled\""), "{json}");
        for fk in [
            FaultKind::BootCrash,
            FaultKind::ExecCrash,
            FaultKind::StorageStall,
            FaultKind::Throttled,
            FaultKind::Outage,
            FaultKind::PacketLoss,
        ] {
            assert!(!fk.to_string().is_empty());
        }
    }
}
