//! Streaming metrics: fixed-bucket log-linear histograms, counters, and
//! gauges, with a deterministic merge so per-worker registries from the
//! parallel run harness combine into the same result regardless of how
//! many workers produced them (aggregation happens in seed order, and
//! every operation here is order-insensitive integer/bucket arithmetic).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A fixed-bucket log-linear histogram: `decades` powers of ten starting
/// at `10^min_exp`, each split into `sub` linear sub-buckets, plus
/// underflow/overflow bins. Quantiles come from cumulative bucket counts
/// (nearest-rank, reporting the bucket's upper bound) — so memory is
/// constant no matter how many samples stream through, at the price of a
/// bounded relative error set by the sub-bucket width.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogLinearHistogram {
    min_exp: i32,
    decades: u32,
    sub: u32,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
    sum: f64,
    /// Decade lower bounds `10^(min_exp + d)` for `d = 0..=decades`: the
    /// record fast path's lookup table, replacing a `log10`+`powi` pair
    /// per sample with a binary-exponent guess and one table compare.
    /// Derived from the layout fields, skipped by serde (rebuilt on the
    /// first record after deserialization) and excluded from equality.
    #[serde(skip)]
    bounds: Vec<f64>,
}

impl PartialEq for LogLinearHistogram {
    fn eq(&self, other: &Self) -> bool {
        // `bounds` is a cache of the layout fields; two histograms with
        // equal layouts are equal regardless of whether it is built yet.
        self.min_exp == other.min_exp
            && self.decades == other.decades
            && self.sub == other.sub
            && self.buckets == other.buckets
            && self.underflow == other.underflow
            && self.overflow == other.overflow
            && self.count == other.count
            && self.sum == other.sum
    }
}

impl Default for LogLinearHistogram {
    /// Covers 1 µs to 10 000 s — every duration this simulator produces —
    /// with 16 sub-buckets per decade (≤ ~6% relative quantile error).
    fn default() -> Self {
        LogLinearHistogram::with_range(-6, 10, 16)
    }
}

impl LogLinearHistogram {
    /// A histogram spanning `[10^min_exp, 10^(min_exp + decades))` with
    /// `sub` linear sub-buckets per decade.
    pub fn with_range(min_exp: i32, decades: u32, sub: u32) -> Self {
        assert!(
            decades > 0 && sub > 0,
            "histogram needs at least one bucket"
        );
        LogLinearHistogram {
            min_exp,
            decades,
            sub,
            buckets: vec![0; (decades * sub) as usize],
            underflow: 0,
            overflow: 0,
            count: 0,
            sum: 0.0,
            bounds: Self::build_bounds(min_exp, decades),
        }
    }

    fn build_bounds(min_exp: i32, decades: u32) -> Vec<f64> {
        (0..=decades as i32).map(|d| 10f64.powi(min_exp + d)).collect()
    }

    fn lower_bound(&self) -> f64 {
        10f64.powi(self.min_exp)
    }

    fn upper_bound(&self) -> f64 {
        10f64.powi(self.min_exp + self.decades as i32)
    }

    /// Upper edge of bucket `idx` (the value a quantile landing in this
    /// bucket reports).
    fn bucket_hi(&self, idx: usize) -> f64 {
        let d = idx / self.sub as usize;
        let s = idx % self.sub as usize + 1;
        10f64.powi(self.min_exp + d as i32) * (1.0 + 9.0 * s as f64 / f64::from(self.sub))
    }

    /// Records one sample. Non-finite samples are ignored; values below
    /// the range land in the underflow bin, values at or above the top in
    /// the overflow bin.
    ///
    /// The decade comes from the sample's binary exponent (one multiply
    /// and shift approximates `log10`) corrected against the precomputed
    /// bound table, not from libm — this runs once per resolved request
    /// in the fleet hot loop.
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += v;
        if self.bounds.is_empty() {
            // Deserialized histograms arrive without the cache.
            self.bounds = Self::build_bounds(self.min_exp, self.decades);
        }
        let decades = self.decades as usize;
        if v < self.bounds[0] {
            self.underflow += 1;
            return;
        }
        if v >= self.bounds[decades] {
            self.overflow += 1;
            return;
        }
        // floor(e·log10 2) via the 1233/4096 approximation seeds the
        // decade; in-range samples (bounds[0] ≤ v < bounds[decades])
        // need at most one correction step in practice, and the loops
        // make any guess error harmless.
        let e = ((v.to_bits() >> 52) & 0x7ff) as i32 - 1023;
        let guess = ((e * 1233) >> 12) - self.min_exp;
        let mut d = guess.clamp(0, decades as i32 - 1) as usize;
        while d > 0 && v < self.bounds[d] {
            d -= 1;
        }
        while v >= self.bounds[d + 1] {
            d += 1;
        }
        let base = self.bounds[d];
        let frac = (v / base - 1.0) / 9.0;
        let s = ((frac * f64::from(self.sub)) as usize).min(self.sub as usize - 1);
        self.buckets[d * self.sub as usize + s] += 1;
    }

    /// Total samples recorded (including under/overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of recorded samples, if any.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Nearest-rank quantile estimate: the upper edge of the bucket
    /// holding the ⌈q/100·n⌉-th smallest sample. `None` when empty.
    ///
    /// # Panics
    /// Panics when `q` is outside `[0, 100]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&q), "quantile {q} out of range");
        if self.count == 0 {
            return None;
        }
        let target = ((q / 100.0 * self.count as f64).ceil() as u64).max(1);
        let mut seen = self.underflow;
        if seen >= target {
            // All we know about underflow samples is the range floor.
            return Some(self.lower_bound());
        }
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Some(self.bucket_hi(idx));
            }
        }
        Some(self.upper_bound())
    }

    /// Merges another histogram into this one (elementwise bucket add).
    ///
    /// # Panics
    /// Panics when the bucket layouts differ.
    pub fn merge(&mut self, other: &LogLinearHistogram) {
        assert!(
            self.min_exp == other.min_exp && self.decades == other.decades && self.sub == other.sub,
            "cannot merge histograms with different bucket layouts"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// A named bag of counters, gauges, and histograms.
///
/// Keys live in `BTreeMap`s so iteration — and therefore serialization
/// and rendering — is always in sorted key order, independent of the
/// order metrics were first touched.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, LogLinearHistogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `by` to a counter, creating it at zero if absent. The hot
    /// path (an existing counter) allocates nothing; the key `String` is
    /// only built on first touch.
    pub fn inc(&mut self, name: &str, by: u64) {
        match self.counters.get_mut(name) {
            Some(c) => *c += by,
            None => {
                self.counters.insert(name.to_string(), by);
            }
        }
    }

    /// Reads a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Raises a high-watermark gauge to `v` if `v` exceeds it. Allocation
    /// only happens on a gauge's first touch.
    pub fn gauge_max(&mut self, name: &str, v: i64) {
        match self.gauges.get_mut(name) {
            Some(g) => *g = (*g).max(v),
            None => {
                self.gauges.insert(name.to_string(), v);
            }
        }
    }

    /// Reads a gauge, if it was ever set.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// Records a sample into a histogram, creating it (default layout)
    /// if absent. Allocation only happens on a histogram's first touch.
    pub fn observe(&mut self, name: &str, v: f64) {
        match self.histograms.get_mut(name) {
            Some(h) => h.record(v),
            None => {
                let mut h = LogLinearHistogram::default();
                h.record(v);
                self.histograms.insert(name.to_string(), h);
            }
        }
    }

    /// Looks a histogram up.
    pub fn histogram(&self, name: &str) -> Option<&LogLinearHistogram> {
        self.histograms.get(name)
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Merges another registry into this one: counters add, gauges keep
    /// the maximum, histograms add bucketwise. All bucket/counter state
    /// is integer arithmetic, so merging is order-insensitive; only the
    /// float `sum` inside a histogram re-associates, which is why the
    /// replication harness always merges in seed order.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            let g = self.gauges.entry(k.clone()).or_insert(i64::MIN);
            *g = (*g).max(*v);
        }
        for (k, v) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(h) => h.merge(v),
                None => {
                    self.histograms.insert(k.clone(), v.clone());
                }
            }
        }
    }

    /// Renders the registry as aligned text lines (sorted by name).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("counter   {k:<28} {v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("gauge     {k:<28} {v}\n"));
        }
        for (k, h) in &self.histograms {
            let (p50, p95, p99) = (
                h.quantile(50.0).unwrap_or(0.0),
                h.quantile(95.0).unwrap_or(0.0),
                h.quantile(99.0).unwrap_or(0.0),
            );
            out.push_str(&format!(
                "histogram {k:<28} n={} mean={:.4} p50≈{p50:.4} p95≈{p95:.4} p99≈{p99:.4}\n",
                h.count(),
                h.mean().unwrap_or(0.0),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_the_data() {
        let mut h = LogLinearHistogram::default();
        for i in 1..=1000 {
            h.record(i as f64 / 1000.0); // 1ms .. 1s
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(50.0).unwrap();
        let p99 = h.quantile(99.0).unwrap();
        // Bucket upper bounds: estimates sit at or above the true value,
        // within one sub-bucket width (~6% per decade/16).
        assert!((0.5..=0.57).contains(&p50), "p50 = {p50}");
        assert!((0.99..=1.12).contains(&p99), "p99 = {p99}");
        assert!(p50 <= p99);
        let mean = h.mean().unwrap();
        assert!((mean - 0.5005).abs() < 1e-9);
    }

    #[test]
    fn record_fast_path_matches_reference_bucketing() {
        // Reference: linear scan over the decade bounds, then the same
        // sub-bucket arithmetic. Sweeps log-spaced values across the
        // whole range plus every exact decade bound.
        let layouts = [(-6i32, 10u32, 16u32), (-3, 4, 8), (0, 2, 4)];
        for (min_exp, decades, sub) in layouts {
            let bounds: Vec<f64> = (0..=decades as i32)
                .map(|d| 10f64.powi(min_exp + d))
                .collect();
            let mut values: Vec<f64> = (0..5000)
                .map(|i| {
                    let span = decades as f64 + 2.0;
                    10f64.powf(min_exp as f64 - 1.0 + span * i as f64 / 5000.0)
                })
                .collect();
            values.extend(bounds.iter().copied());
            values.extend(bounds.iter().map(|b| b * (1.0 - 1e-15)));
            for v in values {
                let mut h = LogLinearHistogram::with_range(min_exp, decades, sub);
                h.record(v);
                // Reference index.
                let expect = if v < bounds[0] {
                    None // underflow
                } else if v >= bounds[decades as usize] {
                    Some(usize::MAX) // overflow marker
                } else {
                    let d = (0..decades as usize)
                        .rfind(|&d| v >= bounds[d])
                        .expect("in range");
                    let frac = (v / bounds[d] - 1.0) / 9.0;
                    let s = ((frac * f64::from(sub)) as usize).min(sub as usize - 1);
                    Some(d * sub as usize + s)
                };
                match expect {
                    None => assert_eq!(h.underflow, 1, "underflow for {v}"),
                    Some(usize::MAX) => assert_eq!(h.overflow, 1, "overflow for {v}"),
                    Some(idx) => assert_eq!(
                        h.buckets.iter().position(|&n| n == 1),
                        Some(idx),
                        "bucket for {v} (layout {min_exp}/{decades}/{sub})"
                    ),
                }
            }
        }
    }

    #[test]
    fn deserialized_histogram_keeps_recording_correctly() {
        let mut h = LogLinearHistogram::default();
        h.record(0.25);
        let mut back: LogLinearHistogram =
            serde_json::from_str(&serde_json::to_string(&h).unwrap()).unwrap();
        assert_eq!(back, h);
        // The bounds cache is rebuilt on the next record.
        back.record(0.25);
        h.record(0.25);
        assert_eq!(back, h);
        assert_eq!(back.quantile(50.0), h.quantile(50.0));
    }

    #[test]
    fn histogram_handles_extremes() {
        let mut h = LogLinearHistogram::default();
        h.record(0.0); // below 1µs → underflow
        h.record(1e9); // above 10^4 s → overflow
        h.record(f64::NAN); // ignored
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(0.0).unwrap(), 1e-6); // underflow reports the floor
        assert_eq!(h.quantile(100.0).unwrap(), 1e4); // overflow reports the ceiling
    }

    #[test]
    fn histogram_merge_equals_combined_stream() {
        let mut a = LogLinearHistogram::default();
        let mut b = LogLinearHistogram::default();
        let mut both = LogLinearHistogram::default();
        for i in 0..500 {
            let v = 0.001 * (1.0 + i as f64);
            a.record(v);
            both.record(v);
        }
        for i in 0..300 {
            let v = 0.01 * (1.0 + i as f64);
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        // Bucket contents and counts are integer-exact; the sum may
        // differ in the last float bit because addition re-associates.
        assert_eq!(a.count(), both.count());
        assert!((a.sum() - both.sum()).abs() < 1e-9);
        for q in [0.0, 10.0, 50.0, 90.0, 99.0, 100.0] {
            assert_eq!(a.quantile(q), both.quantile(q), "q={q}");
        }
    }

    #[test]
    #[should_panic(expected = "different bucket layouts")]
    fn histogram_merge_rejects_layout_mismatch() {
        let mut a = LogLinearHistogram::default();
        let b = LogLinearHistogram::with_range(-3, 4, 8);
        a.merge(&b);
    }

    #[test]
    fn registry_merge_is_order_insensitive() {
        let mk = |lo: u64, hi: u64, gauge: i64| {
            let mut m = MetricsRegistry::new();
            for i in lo..hi {
                m.inc("requests_total", 1);
                m.observe("latency_seconds", i as f64 / 100.0);
            }
            m.gauge_max("peak_instances", gauge);
            m
        };
        let parts = [mk(0, 40, 3), mk(40, 90, 9), mk(90, 100, 5)];
        let mut forward = MetricsRegistry::new();
        for p in &parts {
            forward.merge(p);
        }
        let mut backward = MetricsRegistry::new();
        for p in parts.iter().rev() {
            backward.merge(p);
        }
        // Integer state is identical whatever the merge order; the float
        // histogram sum may re-associate, so compare it with tolerance.
        assert_eq!(forward.counter("requests_total"), 100);
        assert_eq!(backward.counter("requests_total"), 100);
        assert_eq!(forward.gauge("peak_instances"), Some(9));
        assert_eq!(backward.gauge("peak_instances"), Some(9));
        let (fh, bh) = (
            forward.histogram("latency_seconds").unwrap(),
            backward.histogram("latency_seconds").unwrap(),
        );
        assert_eq!(fh.count(), 100);
        assert_eq!(bh.count(), 100);
        for q in [1.0, 50.0, 99.0] {
            assert_eq!(fh.quantile(q), bh.quantile(q), "q={q}");
        }
        assert!((fh.sum() - bh.sum()).abs() < 1e-9);
    }

    #[test]
    fn registry_serializes_in_sorted_key_order() {
        let mut m = MetricsRegistry::new();
        m.inc("zeta", 1);
        m.inc("alpha", 2);
        let json = serde_json::to_string(&m).unwrap();
        let a = json.find("alpha").unwrap();
        let z = json.find("zeta").unwrap();
        assert!(a < z, "{json}");
        let back: MetricsRegistry = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn render_mentions_every_metric() {
        let mut m = MetricsRegistry::new();
        m.inc("requests_total", 7);
        m.gauge_max("peak_instances", 4);
        m.observe("latency_seconds", 0.25);
        let text = m.render();
        assert!(text.contains("requests_total"));
        assert!(text.contains("peak_instances"));
        assert!(text.contains("latency_seconds"));
    }
}
