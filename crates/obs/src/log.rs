//! Process-wide log-level switch for the CLI binaries.
//!
//! The binaries print experiment output on stdout and progress/diagnostic
//! chatter on stderr. The `--log-level` flag routes through here:
//! `quiet` silences stderr progress, `info` (the default) keeps the
//! one-line progress notes, `debug` adds per-step detail. Errors are
//! printed unconditionally — this gate is only for chatter.

use std::str::FromStr;
use std::sync::atomic::{AtomicU8, Ordering};

/// Verbosity of stderr progress output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// No progress output at all.
    Quiet = 0,
    /// One-line progress notes (default).
    Info = 1,
    /// Per-step diagnostic detail.
    Debug = 2,
}

impl FromStr for LogLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "quiet" => Ok(LogLevel::Quiet),
            "info" => Ok(LogLevel::Info),
            "debug" => Ok(LogLevel::Debug),
            other => Err(format!(
                "unknown log level {other:?} (expected quiet, info, or debug)"
            )),
        }
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(LogLevel::Info as u8);

/// Sets the process-wide log level.
pub fn set_log_level(level: LogLevel) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current process-wide log level.
pub fn log_level() -> LogLevel {
    match LEVEL.load(Ordering::Relaxed) {
        0 => LogLevel::Quiet,
        1 => LogLevel::Info,
        _ => LogLevel::Debug,
    }
}

/// Whether messages at `level` should currently be printed.
pub fn log_enabled(level: LogLevel) -> bool {
    level <= log_level()
}

/// Prints a progress note to stderr when the log level is `info` or
/// higher.
#[macro_export]
macro_rules! info_log {
    ($($arg:tt)*) => {
        if $crate::log_enabled($crate::LogLevel::Info) {
            eprintln!($($arg)*);
        }
    };
}

/// Prints a diagnostic note to stderr when the log level is `debug`.
#[macro_export]
macro_rules! debug_log {
    ($($arg:tt)*) => {
        if $crate::log_enabled($crate::LogLevel::Debug) {
            eprintln!($($arg)*);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_levels() {
        assert_eq!("quiet".parse::<LogLevel>().unwrap(), LogLevel::Quiet);
        assert_eq!("info".parse::<LogLevel>().unwrap(), LogLevel::Info);
        assert_eq!("debug".parse::<LogLevel>().unwrap(), LogLevel::Debug);
        assert!("verbose".parse::<LogLevel>().is_err());
    }

    #[test]
    fn levels_order_and_gate() {
        assert!(LogLevel::Quiet < LogLevel::Info);
        assert!(LogLevel::Info < LogLevel::Debug);
        // Note: other tests run in the same process; restore the default.
        set_log_level(LogLevel::Quiet);
        assert!(!log_enabled(LogLevel::Info));
        set_log_level(LogLevel::Debug);
        assert!(log_enabled(LogLevel::Info));
        assert!(log_enabled(LogLevel::Debug));
        set_log_level(LogLevel::Info);
        assert!(log_enabled(LogLevel::Info));
        assert!(!log_enabled(LogLevel::Debug));
    }
}
