//! Request-path micro-benchmarks: the zero-alloc executor hot path,
//! sequential versus sharded replay, and steady-state arena reuse.
//!
//! These isolate the second perf wave's two levers — the recycled run
//! arena (first iteration pays the allocations, later iterations replay
//! on warm buffers) and intra-run sharding (per-client cells merged in
//! canonical order). Throughput is reported in requests per second so the
//! numbers line up with `slsb bench`'s end-to-end rows.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use slsb_core::{Deployment, Executor};
use slsb_model::{ModelKind, RuntimeKind};
use slsb_platform::PlatformKind;
use slsb_sim::Seed;
use slsb_workload::MmppPreset;
use std::time::Duration;

fn deployment() -> Deployment {
    Deployment::new(
        PlatformKind::AwsServerless,
        ModelKind::MobileNet,
        RuntimeKind::Tf115,
    )
}

/// Sequential replay on a warm arena — the steady-state request path the
/// allocation gate (< 2 allocs/request) is measured on.
fn bench_request_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("executor/request-path");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    let trace = MmppPreset::W40.generate(Seed(1));
    group.throughput(Throughput::Elements(trace.len() as u64));
    let dep = deployment();
    let exec = Executor::default();
    // Warm the thread's arena so the timed iterations measure recycled
    // buffers, matching how replication and the suite reuse a thread.
    exec.run(&dep, &trace, Seed(1)).unwrap();
    group.bench_function("sequential-warm-arena", |b| {
        b.iter(|| exec.run(&dep, &trace, Seed(1)).unwrap())
    });
    group.finish();
}

/// Sharded replay across worker budgets. `shards(1)` measures the pure
/// cell-split overhead against the legacy path above; higher budgets show
/// what multi-core machines recover (on a single-core runner they cost
/// thread churn and should roughly match `shards(1)`).
fn bench_sharded(c: &mut Criterion) {
    let mut group = c.benchmark_group("executor/sharded");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    let trace = MmppPreset::W40.generate(Seed(1));
    group.throughput(Throughput::Elements(trace.len() as u64));
    let dep = deployment();
    for workers in [1usize, 2, 4] {
        let exec = Executor::default().with_shards(workers);
        exec.run(&dep, &trace, Seed(1)).unwrap();
        group.bench_function(&format!("shards-{workers}"), |b| {
            b.iter(|| exec.run(&dep, &trace, Seed(1)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_request_path, bench_sharded);
criterion_main!(benches);
