//! Micro-benchmarks of the simulation substrate itself: event-queue
//! throughput, MMPP generation, and a single end-to-end serverless run.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use slsb_core::{Deployment, Executor};
use slsb_model::{ModelKind, RuntimeKind};
use slsb_platform::PlatformKind;
use slsb_sim::event::{Engine, EventQueue, System};
use slsb_sim::{Seed, SimTime};
use slsb_workload::MmppPreset;
use std::time::Duration;

struct Sink;
impl System for Sink {
    type Ev = u64;
    fn handle(&mut self, _q: &mut EventQueue<u64>, _at: SimTime, _ev: u64) {}
}

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel/event-queue");
    const N: u64 = 100_000;
    group.throughput(Throughput::Elements(N));
    group.bench_function("schedule+drain-100k", |b| {
        b.iter(|| {
            let mut eng = Engine::new(Sink);
            for i in 0..N {
                // Pseudo-shuffled timestamps exercise heap reordering.
                eng.queue.schedule_at(
                    SimTime::from_micros(i.wrapping_mul(2654435761) % 1_000_000_000),
                    i,
                );
            }
            eng.run_to_completion()
        })
    });
    group.finish();
}

fn bench_mmpp(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel/mmpp");
    group.bench_function("generate-w200", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            MmppPreset::W200.generate(Seed(seed))
        })
    });
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel/end-to-end");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    let trace = MmppPreset::W40.generate(Seed(1));
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("serverless-mobilenet-w40", |b| {
        let dep = Deployment::new(
            PlatformKind::AwsServerless,
            ModelKind::MobileNet,
            RuntimeKind::Tf115,
        );
        let exec = Executor::default();
        b.iter(|| exec.run(&dep, &trace, Seed(1)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_event_queue, bench_mmpp, bench_end_to_end);
criterion_main!(benches);
