//! Micro-benchmarks of the simulation substrate itself: event-queue
//! throughput, MMPP generation, and a single end-to-end serverless run.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use slsb_core::{Deployment, Executor};
use slsb_model::{ModelKind, RuntimeKind};
use slsb_platform::PlatformKind;
use slsb_sim::event::{Engine, EventQueue, Kernel, System};
use slsb_sim::{Seed, SimDuration, SimTime};
use slsb_workload::MmppPreset;
use std::time::Duration;

struct Sink;
impl System for Sink {
    type Ev = u64;
    fn handle(&mut self, _q: &mut EventQueue<u64>, _at: SimTime, _ev: u64) {}
}

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel/event-queue");
    const N: u64 = 100_000;
    group.throughput(Throughput::Elements(N));
    group.bench_function("schedule+drain-100k", |b| {
        b.iter(|| {
            let mut eng = Engine::new(Sink);
            for i in 0..N {
                // Pseudo-shuffled timestamps exercise heap reordering.
                eng.queue.schedule_at(
                    SimTime::from_micros(i.wrapping_mul(2654435761) % 1_000_000_000),
                    i,
                );
            }
            eng.run_to_completion()
        })
    });
    group.finish();
}

/// Wheel vs heap on the two shapes that matter: bulk preload-then-drain
/// (stresses overflow and re-sorting) and steady-state pop-one
/// schedule-one (the shape real simulations have).
fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel/schedule-pop");
    const N: u64 = 100_000;
    group.throughput(Throughput::Elements(N));
    for kernel in [Kernel::Wheel, Kernel::Heap] {
        group.bench_function(&format!("preload-drain-100k/{}", kernel.name()), |b| {
            b.iter(|| {
                let mut q = EventQueue::with_kernel_and_capacity(kernel, N as usize);
                for i in 0..N {
                    q.schedule_at(
                        SimTime::from_micros(i.wrapping_mul(2654435761) % 1_000_000_000),
                        i,
                    );
                }
                while let Some(ev) = q.pop() {
                    std::hint::black_box(ev);
                }
            })
        });
        group.bench_function(&format!("steady-state-100k/{}", kernel.name()), |b| {
            b.iter(|| {
                const RESIDENT: u64 = 4_096;
                let mut q = EventQueue::with_kernel_and_capacity(kernel, RESIDENT as usize);
                for i in 0..RESIDENT {
                    q.schedule_at(
                        SimTime::from_micros(i.wrapping_mul(2654435761) % 1_000_000),
                        i,
                    );
                }
                for _ in 0..N {
                    let (at, ev) = q.pop().unwrap();
                    let delay = 1 + ev.wrapping_mul(2654435761) % 50_000;
                    q.schedule_at(at + SimDuration::from_micros(delay), ev);
                }
                while let Some(ev) = q.pop() {
                    std::hint::black_box(ev);
                }
            })
        });
    }
    group.finish();
}

fn bench_mmpp(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel/mmpp");
    group.bench_function("generate-w200", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            MmppPreset::W200.generate(Seed(seed))
        })
    });
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel/end-to-end");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    let trace = MmppPreset::W40.generate(Seed(1));
    group.throughput(Throughput::Elements(trace.len() as u64));
    for kernel in [Kernel::Wheel, Kernel::Heap] {
        group.bench_function(
            &format!("serverless-mobilenet-w40/{}", kernel.name()),
            |b| {
                let dep = Deployment::new(
                    PlatformKind::AwsServerless,
                    ModelKind::MobileNet,
                    RuntimeKind::Tf115,
                );
                let exec = Executor::default().with_kernel(kernel);
                b.iter(|| exec.run(&dep, &trace, Seed(1)).unwrap())
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_kernels,
    bench_mmpp,
    bench_end_to_end
);
criterion_main!(benches);
