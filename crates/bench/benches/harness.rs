//! Sequential vs parallel run-harness bench: replicates one deployment
//! across 10 seeds (workload-40 at scale 0.1) with `--jobs 1` and with all
//! cores, and prints the wall-clock ratio. On an n-core machine the
//! parallel path should approach n× (≥2× on 4 cores); on a single core the
//! ratio is ~1× — the pool adds no measurable overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use slsb_core::{replicate_jobs, Deployment, Executor, Jobs, WorkloadSpec};
use slsb_model::{ModelKind, RuntimeKind};
use slsb_platform::PlatformKind;
use slsb_workload::MmppPreset;
use std::time::{Duration, Instant};

const SEEDS: usize = 10;
const BASE_SEED: u64 = 100;

fn deployment() -> Deployment {
    Deployment::new(
        PlatformKind::AwsServerless,
        ModelKind::MobileNet,
        RuntimeKind::Ort14,
    )
}

fn workload() -> WorkloadSpec {
    WorkloadSpec::Preset {
        which: MmppPreset::W40,
        scale: 0.1,
    }
}

fn run(jobs: Jobs) -> Duration {
    let started = Instant::now();
    let r = replicate_jobs(
        &Executor::default(),
        &deployment(),
        workload(),
        BASE_SEED,
        SEEDS,
        jobs,
    )
    .expect("valid deployment");
    assert_eq!(r.replicas, SEEDS);
    started.elapsed()
}

fn bench_harness(c: &mut Criterion) {
    let mut group = c.benchmark_group("harness");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(10));
    group.bench_function("replicate_seq", |b| b.iter(|| run(Jobs::new(1))));
    group.bench_function("replicate_par", |b| b.iter(|| run(Jobs::available())));
    group.finish();

    // Headline number: one timed pass each, sequential vs parallel.
    let seq = run(Jobs::new(1));
    let par = run(Jobs::available());
    println!(
        "harness: {} seeds, W40 @ 0.1 — sequential {:.2}s, parallel {:.2}s \
         ({} workers) — speedup {:.2}x",
        SEEDS,
        seq.as_secs_f64(),
        par.as_secs_f64(),
        Jobs::available().get(),
        seq.as_secs_f64() / par.as_secs_f64(),
    );
}

criterion_group!(benches, bench_harness);
criterion_main!(benches);
