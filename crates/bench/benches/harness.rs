//! Run-harness benches.
//!
//! `harness/*`: replicates one deployment across 10 seeds (workload-40 at
//! scale 0.1) with `--jobs 1` and with all cores, and prints the
//! wall-clock ratio. On an n-core machine the parallel path should
//! approach n× (≥2× on 4 cores); on a single core the ratio is ~1× — the
//! pool adds no measurable overhead.
//!
//! `recorder/*`: the observability tax. One run of the same deployment
//! with no recorder, with the disabled [`NoopRecorder`] (instrumented
//! sites reduced to a predicted branch), and with a [`JsonlRecorder`]
//! serializing every event into `io::sink()`. The headline number is the
//! noop overhead, which must stay in the noise (<2%).

use criterion::{criterion_group, criterion_main, Criterion};
use slsb_core::{replicate_jobs, Deployment, Executor, Jobs, WorkloadSpec};
use slsb_model::{ModelKind, RuntimeKind};
use slsb_obs::{JsonlRecorder, NoopRecorder};
use slsb_platform::PlatformKind;
use slsb_sim::Seed;
use slsb_workload::MmppPreset;
use std::time::{Duration, Instant};

const SEEDS: usize = 10;
const BASE_SEED: u64 = 100;

fn deployment() -> Deployment {
    Deployment::new(
        PlatformKind::AwsServerless,
        ModelKind::MobileNet,
        RuntimeKind::Ort14,
    )
}

fn workload() -> WorkloadSpec {
    WorkloadSpec::Preset {
        which: MmppPreset::W40,
        scale: 0.1,
    }
}

fn run(jobs: Jobs) -> Duration {
    let started = Instant::now();
    let r = replicate_jobs(
        &Executor::default(),
        &deployment(),
        workload(),
        BASE_SEED,
        SEEDS,
        jobs,
    )
    .expect("valid deployment");
    assert_eq!(r.replicas, SEEDS);
    started.elapsed()
}

fn bench_recorder(c: &mut Criterion) {
    let dep = deployment();
    let trace = workload().generate(Seed(BASE_SEED));
    let exec = Executor::default();

    let mut group = c.benchmark_group("recorder");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(10));
    group.bench_function("off", |b| {
        b.iter(|| exec.run(&dep, &trace, Seed(BASE_SEED)).expect("valid run"))
    });
    group.bench_function("noop", |b| {
        b.iter(|| {
            let mut rec = NoopRecorder;
            exec.run_recorded(&dep, &trace, Seed(BASE_SEED), &mut rec)
                .expect("valid run")
        })
    });
    group.bench_function("jsonl_sink", |b| {
        b.iter(|| {
            let mut rec = JsonlRecorder::new(std::io::sink());
            exec.run_recorded(&dep, &trace, Seed(BASE_SEED), &mut rec)
                .expect("valid run")
        })
    });
    group.finish();

    // Headline numbers on the full-scale trace: the scale-0.1 runs above
    // finish in under a millisecond, so a single-pass percentage would be
    // noise. Interleave the modes round-robin so clock drift hits all
    // three equally, and report the mean per run.
    let full = WorkloadSpec::Preset {
        which: MmppPreset::W40,
        scale: 1.0,
    }
    .generate(Seed(BASE_SEED));
    const REPS: u32 = 30;
    let (mut off, mut noop, mut jsonl) = (0.0f64, 0.0f64, 0.0f64);
    for rep in 0..=REPS {
        let started = Instant::now();
        exec.run(&dep, &full, Seed(BASE_SEED)).expect("valid run");
        let t_off = started.elapsed().as_secs_f64();

        let started = Instant::now();
        let mut rec = NoopRecorder;
        exec.run_recorded(&dep, &full, Seed(BASE_SEED), &mut rec)
            .expect("valid run");
        let t_noop = started.elapsed().as_secs_f64();

        let started = Instant::now();
        let mut rec = JsonlRecorder::new(std::io::sink());
        exec.run_recorded(&dep, &full, Seed(BASE_SEED), &mut rec)
            .expect("valid run");
        let t_jsonl = started.elapsed().as_secs_f64();

        // The zeroth round is warm-up; discard it.
        if rep == 0 {
            continue;
        }
        off += t_off;
        noop += t_noop;
        jsonl += t_jsonl;
    }
    let (off, noop, jsonl) = (
        off / f64::from(REPS),
        noop / f64::from(REPS),
        jsonl / f64::from(REPS),
    );
    println!(
        "recorder: W40 @ 1.0, {REPS} runs each — off {:.2}ms, noop {:.2}ms \
         ({:+.2}%), jsonl→sink {:.2}ms ({:+.2}%)",
        off * 1e3,
        noop * 1e3,
        (noop / off - 1.0) * 100.0,
        jsonl * 1e3,
        (jsonl / off - 1.0) * 100.0,
    );
}

fn bench_harness(c: &mut Criterion) {
    let mut group = c.benchmark_group("harness");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(10));
    group.bench_function("replicate_seq", |b| b.iter(|| run(Jobs::new(1))));
    group.bench_function("replicate_par", |b| b.iter(|| run(Jobs::available())));
    group.finish();

    // Headline number: one timed pass each, sequential vs parallel.
    let seq = run(Jobs::new(1));
    let par = run(Jobs::available());
    println!(
        "harness: {} seeds, W40 @ 0.1 — sequential {:.2}s, parallel {:.2}s \
         ({} workers) — speedup {:.2}x",
        SEEDS,
        seq.as_secs_f64(),
        par.as_secs_f64(),
        Jobs::available().get(),
        seq.as_secs_f64() / par.as_secs_f64(),
    );
}

criterion_group!(benches, bench_harness, bench_recorder);
criterion_main!(benches);
