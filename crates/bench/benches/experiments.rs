//! One Criterion bench per table/figure: each runs the corresponding
//! regeneration function on a scaled-down workload (the paper's 15-minute
//! traces shrunk to a few seconds) so `cargo bench` exercises every
//! experiment end-to-end.

use criterion::{criterion_group, criterion_main, Criterion};
use slsb_bench::experiments::{run_experiment, ReproConfig};
use slsb_core::ExperimentId;
use std::time::Duration;

/// Per-experiment bench scale: the heavyweight matrices get tiny traces,
/// lighter experiments can afford more.
fn scale_for(id: ExperimentId) -> f64 {
    match id {
        // 72 runs per invocation.
        ExperimentId::Fig5 | ExperimentId::Table1 => 0.01,
        // Dozens of runs per invocation.
        ExperimentId::Fig12
        | ExperimentId::Fig13
        | ExperimentId::Fig15
        | ExperimentId::Fig16
        | ExperimentId::Fig17
        | ExperimentId::ExtExplorer => 0.01,
        // A handful of runs per invocation.
        _ => 0.03,
    }
}

fn bench_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));
    for id in ExperimentId::ALL {
        let cfg = ReproConfig::scaled(scale_for(id));
        group.bench_function(id.slug(), |b| {
            b.iter(|| run_experiment(std::hint::black_box(id), &cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
