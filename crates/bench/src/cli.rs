//! Flags shared by the `slsb` and `repro` binaries.

use slsb_obs::LogLevel;

/// Extracts a `--log-level <quiet|info|debug>` flag from `args`, removing
/// it (and its value) so subcommand parsers never see it. Returns the
/// parsed level, or [`LogLevel::Info`] when the flag is absent — the
/// default keeps today's progress output.
///
/// # Errors
/// Fails when the flag has no value or the value is not a known level.
pub fn extract_log_level(args: &mut Vec<String>) -> Result<LogLevel, String> {
    let Some(pos) = args.iter().position(|a| a == "--log-level") else {
        return Ok(LogLevel::Info);
    };
    if pos + 1 >= args.len() {
        return Err("--log-level needs a value (quiet, info, or debug)".into());
    }
    let level: LogLevel = args[pos + 1].parse()?;
    args.drain(pos..pos + 2);
    Ok(level)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn absent_flag_defaults_to_info() {
        let mut args = strs(&["run", "scenario.json"]);
        assert_eq!(extract_log_level(&mut args).unwrap(), LogLevel::Info);
        assert_eq!(args, strs(&["run", "scenario.json"]));
    }

    #[test]
    fn flag_is_stripped_wherever_it_appears() {
        let mut args = strs(&["run", "--log-level", "quiet", "scenario.json"]);
        assert_eq!(extract_log_level(&mut args).unwrap(), LogLevel::Quiet);
        assert_eq!(args, strs(&["run", "scenario.json"]));

        let mut leading = strs(&["--log-level", "debug", "all"]);
        assert_eq!(extract_log_level(&mut leading).unwrap(), LogLevel::Debug);
        assert_eq!(leading, strs(&["all"]));
    }

    #[test]
    fn bad_values_are_rejected() {
        let mut missing = strs(&["run", "--log-level"]);
        assert!(extract_log_level(&mut missing).is_err());
        let mut unknown = strs(&["--log-level", "loud"]);
        assert!(extract_log_level(&mut unknown).is_err());
    }
}
