//! # slsb-bench — the reproduction harness
//!
//! One regeneration function per table and figure of the paper (plus the
//! extension studies), shared by the `repro` binary and the Criterion
//! benches. See [`experiments`] for the index.

pub mod cli;
pub mod diff;
pub mod experiments;
pub mod perf;

pub use diff::{diff, ArtifactKind, DiffReport};
pub use experiments::{run_experiment, ExperimentOutput, ReproConfig};
pub use perf::{run_benchmarks, BenchConfig, BenchReport, CountingAllocator};
