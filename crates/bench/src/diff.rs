//! `slsb diff`: regression comparison between two artifacts of the same
//! kind — trace JSONL, metrics snapshots, profiles, or bench reports.
//!
//! The diff is the CI-facing half of the observability story: every
//! artifact the toolchain emits (`slsb run --record/--metrics-out/
//! --profile`, `slsb bench`) can be compared against a committed baseline
//! with one command, and a thresholded regression turns into a nonzero
//! exit code that `verify.sh` can gate on. Thresholds are deliberately
//! loose (latency +10 %, throughput −20 %, …): the point is to catch
//! step-function regressions deterministically, not to flake on noise.

use slsb_obs::trace_view::{parse_jsonl_strict, spans};
use slsb_obs::{MetricsRegistry, Profile};
use slsb_sim::SampleSet;
use std::fmt::Write as _;

use serde::Deserialize;

/// What kind of artifact a file turned out to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// Trace JSONL (one `TraceEvent` per line).
    Trace,
    /// A `MetricsRegistry` snapshot (`slsb run --metrics-out`).
    Metrics,
    /// A `slsb-profile/v1` document (`slsb run --profile`).
    Profile,
    /// A `slsb-bench-kernel/v*` report (`BENCH_kernel.json`).
    Bench,
}

impl ArtifactKind {
    fn name(self) -> &'static str {
        match self {
            ArtifactKind::Trace => "trace",
            ArtifactKind::Metrics => "metrics",
            ArtifactKind::Profile => "profile",
            ArtifactKind::Bench => "bench",
        }
    }
}

/// How one indicator is judged.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Rule {
    /// Regress when `b > a * (1 + frac)` (and the change is visible).
    RelIncrease(f64),
    /// Regress when `b < a * (1 - frac)`.
    RelDecrease(f64),
    /// Regress when `b < a - abs` (absolute drop, e.g. ratios).
    AbsDrop(f64),
    /// Regress when `b > a + abs` (absolute rise, e.g. time shares).
    AbsRise(f64),
    /// Regress when `b > a * (1 + frac)` AND `b >= a + 1` (counts: the
    /// relative gate alone would flake near zero).
    CountIncrease(f64),
    /// Never regresses; shown for context only.
    Info,
}

/// One compared quantity.
#[derive(Debug, Clone)]
pub struct Indicator {
    /// What is being compared (e.g. `latency_p99_s`).
    pub name: String,
    /// Baseline value.
    pub a: f64,
    /// Candidate value.
    pub b: f64,
    /// Human-readable threshold, e.g. `+10%`.
    pub threshold: String,
    /// Whether the candidate crossed the threshold.
    pub regressed: bool,
}

/// The result of diffing two artifacts.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// The (common) artifact kind.
    pub kind: ArtifactKind,
    /// Every compared indicator, in a stable order.
    pub indicators: Vec<Indicator>,
    /// How many indicators regressed.
    pub regressions: usize,
}

fn judge(name: &str, a: f64, b: f64, rule: Rule) -> Indicator {
    // Tiny epsilon so a == b never trips a relative rule through float
    // noise introduced by formatting round-trips.
    const EPS: f64 = 1e-12;
    let (regressed, threshold) = match rule {
        Rule::RelIncrease(f) => (b > a * (1.0 + f) + EPS, format!("+{:.0}%", f * 100.0)),
        Rule::RelDecrease(f) => (b < a * (1.0 - f) - EPS, format!("-{:.0}%", f * 100.0)),
        Rule::AbsDrop(x) => (b < a - x - EPS, format!("-{x}")),
        Rule::AbsRise(x) => (b > a + x + EPS, format!("+{x}")),
        Rule::CountIncrease(f) => (
            b > a * (1.0 + f) + EPS && b + EPS >= a + 1.0,
            format!("+{:.0}% & +1", f * 100.0),
        ),
        Rule::Info => (false, "-".to_string()),
    };
    Indicator {
        name: name.to_string(),
        a,
        b,
        threshold,
        regressed,
    }
}

impl DiffReport {
    /// Whether the candidate regressed on any indicator.
    pub fn regressed(&self) -> bool {
        self.regressions > 0
    }

    /// Renders the report as an aligned table with a verdict line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "kind: {}", self.kind.name());
        let _ = writeln!(
            out,
            "  {:<34} {:>14} {:>14} {:>10} {:>9}  status",
            "indicator", "baseline", "candidate", "delta", "threshold"
        );
        for i in &self.indicators {
            let delta = i.b - i.a;
            let status = if i.regressed { "REGRESSED" } else { "ok" };
            let _ = writeln!(
                out,
                "  {:<34} {:>14.6} {:>14.6} {:>+10.4} {:>9}  {}",
                i.name, i.a, i.b, delta, i.threshold, status
            );
        }
        if self.regressions == 0 {
            let _ = writeln!(out, "verdict: OK ({} indicators)", self.indicators.len());
        } else {
            let _ = writeln!(
                out,
                "verdict: REGRESSED ({}/{} indicators)",
                self.regressions,
                self.indicators.len()
            );
        }
        out
    }
}

/// Minimal deserializable mirror of `BenchReport` — the committed report
/// type is `Serialize`-only, and the diff only needs headline rows.
#[derive(Debug, Deserialize)]
struct BenchDoc {
    schema: String,
    #[serde(default = "Default::default")]
    schedule_pop: Vec<BenchRow>,
    #[serde(default = "Default::default")]
    end_to_end: Vec<EndRow>,
    #[serde(default = "Default::default")]
    kernel_speedup: f64,
    #[serde(default = "Default::default")]
    end_to_end_speedup: f64,
    #[serde(default = "Default::default")]
    allocs_per_request: f64,
}

#[derive(Debug, Deserialize)]
struct BenchRow {
    kernel: String,
    pattern: String,
    events_per_sec: f64,
}

#[derive(Debug, Deserialize)]
struct EndRow {
    kernel: String,
    preset: String,
    mode: String,
    events_per_sec: f64,
}

/// Probe for any single-document artifact that carries a `schema` field.
#[derive(Debug, Deserialize)]
struct SchemaProbe {
    schema: String,
}

/// Detects what kind of artifact `text` is, by attempting the typed
/// parses in a fixed order.
///
/// # Errors
/// Fails when the text matches no known artifact shape.
pub fn detect(text: &str) -> Result<ArtifactKind, String> {
    if let Ok(probe) = serde_json::from_str::<SchemaProbe>(text) {
        if probe.schema.starts_with("slsb-profile/") {
            return Ok(ArtifactKind::Profile);
        }
        if probe.schema.starts_with("slsb-bench") {
            return Ok(ArtifactKind::Bench);
        }
        return Err(format!("unrecognized artifact schema `{}`", probe.schema));
    }
    if serde_json::from_str::<MetricsRegistry>(text).is_ok() {
        return Ok(ArtifactKind::Metrics);
    }
    if parse_jsonl_strict(text).is_ok() {
        return Ok(ArtifactKind::Trace);
    }
    Err(
        "unrecognized artifact: expected trace JSONL, a metrics snapshot, \
         a profile, or a bench report"
            .to_string(),
    )
}

/// Diffs two artifacts (as raw file text) of the same kind.
///
/// # Errors
/// Fails when either file is unparseable or the kinds differ.
pub fn diff(text_a: &str, text_b: &str) -> Result<DiffReport, String> {
    let ka = detect(text_a).map_err(|e| format!("baseline: {e}"))?;
    let kb = detect(text_b).map_err(|e| format!("candidate: {e}"))?;
    if ka != kb {
        return Err(format!(
            "artifact kinds differ: baseline is {}, candidate is {}",
            ka.name(),
            kb.name()
        ));
    }
    let indicators = match ka {
        ArtifactKind::Trace => diff_traces(text_a, text_b)?,
        ArtifactKind::Metrics => diff_metrics(text_a, text_b)?,
        ArtifactKind::Profile => diff_profiles(text_a, text_b)?,
        ArtifactKind::Bench => diff_benches(text_a, text_b)?,
    };
    let regressions = indicators.iter().filter(|i| i.regressed).count();
    Ok(DiffReport {
        kind: ka,
        indicators,
        regressions,
    })
}

/// Headline numbers extracted from one trace.
struct TraceStats {
    requests: f64,
    success_ratio: f64,
    p50_s: f64,
    p99_s: f64,
    cold: f64,
}

fn trace_stats(text: &str) -> Result<TraceStats, String> {
    let events = parse_jsonl_strict(text)?;
    let all = spans(&events);
    if all.is_empty() {
        return Err("trace has no request spans to compare".to_string());
    }
    let ok: Vec<_> = all.iter().filter(|s| s.outcome.is_success()).collect();
    let mut lat = SampleSet::new();
    for s in &ok {
        lat.push(s.total().as_secs_f64());
    }
    let p50_s = lat.percentile(50.0).unwrap_or(0.0);
    let p99_s = lat.percentile(99.0).unwrap_or(0.0);
    Ok(TraceStats {
        requests: all.len() as f64,
        success_ratio: ok.len() as f64 / all.len() as f64,
        p50_s,
        p99_s,
        cold: all.iter().filter(|s| s.cold).count() as f64,
    })
}

fn diff_traces(text_a: &str, text_b: &str) -> Result<Vec<Indicator>, String> {
    let a = trace_stats(text_a).map_err(|e| format!("baseline: {e}"))?;
    let b = trace_stats(text_b).map_err(|e| format!("candidate: {e}"))?;
    Ok(vec![
        judge("requests", a.requests, b.requests, Rule::Info),
        judge(
            "success_ratio",
            a.success_ratio,
            b.success_ratio,
            Rule::AbsDrop(0.005),
        ),
        judge("latency_p50_s", a.p50_s, b.p50_s, Rule::RelIncrease(0.10)),
        judge("latency_p99_s", a.p99_s, b.p99_s, Rule::RelIncrease(0.10)),
        judge("cold_starts", a.cold, b.cold, Rule::CountIncrease(0.20)),
    ])
}

fn diff_metrics(text_a: &str, text_b: &str) -> Result<Vec<Indicator>, String> {
    let a: MetricsRegistry =
        serde_json::from_str(text_a).map_err(|e| format!("baseline: {e}"))?;
    let b: MetricsRegistry =
        serde_json::from_str(text_b).map_err(|e| format!("candidate: {e}"))?;
    let ratio = |m: &MetricsRegistry| {
        let total = m.counter("requests_total");
        if total == 0 {
            1.0
        } else {
            m.counter("requests_ok") as f64 / total as f64
        }
    };
    let q = |m: &MetricsRegistry, q: f64| {
        m.histogram("latency_seconds")
            .and_then(|h| h.quantile(q))
            .unwrap_or(0.0)
    };
    let mut out = vec![
        judge(
            "requests_total",
            a.counter("requests_total") as f64,
            b.counter("requests_total") as f64,
            Rule::Info,
        ),
        judge("success_ratio", ratio(&a), ratio(&b), Rule::AbsDrop(0.005)),
        judge(
            "latency_p50_s",
            q(&a, 0.50),
            q(&b, 0.50),
            Rule::RelIncrease(0.10),
        ),
        judge(
            "latency_p99_s",
            q(&a, 0.99),
            q(&b, 0.99),
            Rule::RelIncrease(0.10),
        ),
        judge(
            "cold_starts",
            a.counter("cold_starts") as f64,
            b.counter("cold_starts") as f64,
            Rule::CountIncrease(0.20),
        ),
        judge(
            "faults_total",
            a.counter("faults_total") as f64,
            b.counter("faults_total") as f64,
            Rule::Info,
        ),
    ];
    // SLO attainment only participates when either side scored objectives.
    let (at_a, tot_a) = (
        a.counter("slo_objectives_attained") as f64,
        a.counter("slo_objectives_total") as f64,
    );
    let (at_b, tot_b) = (
        b.counter("slo_objectives_attained") as f64,
        b.counter("slo_objectives_total") as f64,
    );
    if tot_a > 0.0 || tot_b > 0.0 {
        let frac = |at: f64, tot: f64| if tot == 0.0 { 1.0 } else { at / tot };
        out.push(judge(
            "slo_attainment",
            frac(at_a, tot_a),
            frac(at_b, tot_b),
            Rule::AbsDrop(0.0),
        ));
    }
    Ok(out)
}

fn diff_profiles(text_a: &str, text_b: &str) -> Result<Vec<Indicator>, String> {
    let a = Profile::from_json(text_a).map_err(|e| format!("baseline: {e}"))?;
    let b = Profile::from_json(text_b).map_err(|e| format!("candidate: {e}"))?;
    let shares = |p: &Profile| {
        let wall = p.wall_secs.max(1e-12);
        p.flatten()
            .into_iter()
            .map(|f| (f.path, f.exclusive_nanos as f64 / 1e9 / wall))
            .collect::<Vec<_>>()
    };
    let sa = shares(&a);
    let sb = shares(&b);
    let mut out = vec![judge("wall_secs", a.wall_secs, b.wall_secs, Rule::Info)];
    // Union of paths, baseline order first, then candidate-only paths. A
    // region growing by more than 5 points of wall share is a regression;
    // a region disappearing is fine (share 0).
    let find = |set: &[(String, f64)], path: &str| {
        set.iter().find(|(p, _)| p == path).map_or(0.0, |(_, v)| *v)
    };
    for (path, share_a) in &sa {
        out.push(judge(
            &format!("share:{path}"),
            *share_a,
            find(&sb, path),
            Rule::AbsRise(0.05),
        ));
    }
    for (path, share_b) in &sb {
        if !sa.iter().any(|(p, _)| p == path) {
            out.push(judge(&format!("share:{path}"), 0.0, *share_b, Rule::AbsRise(0.05)));
        }
    }
    Ok(out)
}

fn diff_benches(text_a: &str, text_b: &str) -> Result<Vec<Indicator>, String> {
    let a: BenchDoc = serde_json::from_str(text_a).map_err(|e| format!("baseline: {e}"))?;
    let b: BenchDoc = serde_json::from_str(text_b).map_err(|e| format!("candidate: {e}"))?;
    if a.schema != b.schema {
        return Err(format!(
            "bench schemas differ: baseline `{}`, candidate `{}`",
            a.schema, b.schema
        ));
    }
    let mut out = Vec::new();
    for row in &a.schedule_pop {
        let matched = b
            .schedule_pop
            .iter()
            .find(|r| r.kernel == row.kernel && r.pattern == row.pattern)
            .map_or(0.0, |r| r.events_per_sec);
        out.push(judge(
            &format!("eps:{}/{}", row.kernel, row.pattern),
            row.events_per_sec,
            matched,
            Rule::RelDecrease(0.20),
        ));
    }
    for row in &a.end_to_end {
        let matched = b
            .end_to_end
            .iter()
            .find(|r| r.kernel == row.kernel && r.preset == row.preset && r.mode == row.mode)
            .map_or(0.0, |r| r.events_per_sec);
        out.push(judge(
            &format!("eps:{}/{}/{}", row.kernel, row.preset, row.mode),
            row.events_per_sec,
            matched,
            Rule::RelDecrease(0.20),
        ));
    }
    out.push(judge(
        "kernel_speedup",
        a.kernel_speedup,
        b.kernel_speedup,
        Rule::RelDecrease(0.20),
    ));
    out.push(judge(
        "end_to_end_speedup",
        a.end_to_end_speedup,
        b.end_to_end_speedup,
        Rule::RelDecrease(0.20),
    ));
    out.push(judge(
        "allocs_per_request",
        a.allocs_per_request,
        b.allocs_per_request,
        Rule::RelIncrease(0.10),
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const METRICS_A: &str = r#"{
        "counters": {"requests_total": 1000, "requests_ok": 995, "cold_starts": 10},
        "gauges": {},
        "histograms": {}
    }"#;

    #[test]
    fn detect_classifies_every_artifact_kind() {
        assert_eq!(detect(METRICS_A).unwrap(), ArtifactKind::Metrics);
        let profile = slsb_obs::Profile::new(Vec::new(), 1.0).to_json();
        assert_eq!(detect(&profile).unwrap(), ArtifactKind::Profile);
        let bench = r#"{"schema": "slsb-bench-kernel/v2", "schedule_pop": [],
                        "end_to_end": [], "kernel_speedup": 1.0,
                        "end_to_end_speedup": 1.0, "allocs_per_request": 0.5}"#;
        assert_eq!(detect(bench).unwrap(), ArtifactKind::Bench);
        assert!(detect("garbage").is_err());
        assert!(detect(r#"{"schema": "who-knows/v9"}"#)
            .unwrap_err()
            .contains("who-knows"));
    }

    #[test]
    fn self_diff_is_clean_and_kind_mismatch_errors() {
        let report = diff(METRICS_A, METRICS_A).unwrap();
        assert_eq!(report.kind, ArtifactKind::Metrics);
        assert!(!report.regressed(), "{}", report.render());
        assert!(report.render().contains("verdict: OK"));

        let profile = slsb_obs::Profile::new(Vec::new(), 1.0).to_json();
        let err = diff(METRICS_A, &profile).unwrap_err();
        assert!(err.contains("kinds differ"), "{err}");
    }

    #[test]
    fn metrics_regressions_trip_the_thresholds() {
        // 1 % fewer successes (past the 0.5-point drop), 30 % more colds.
        let worse = r#"{
            "counters": {"requests_total": 1000, "requests_ok": 985, "cold_starts": 13},
            "gauges": {},
            "histograms": {}
        }"#;
        let report = diff(METRICS_A, worse).unwrap();
        assert!(report.regressed());
        let names: Vec<_> = report
            .indicators
            .iter()
            .filter(|i| i.regressed)
            .map(|i| i.name.clone())
            .collect();
        assert!(names.contains(&"success_ratio".to_string()), "{names:?}");
        assert!(names.contains(&"cold_starts".to_string()), "{names:?}");
        // requests_total is informational even though it matched exactly.
        assert!(!names.contains(&"requests_total".to_string()));
        assert!(report.render().contains("REGRESSED"));
    }

    #[test]
    fn count_rule_needs_an_absolute_step_too() {
        // 1 -> 2 cold starts is +100 % but also +1, so it trips; 0 -> 0
        // and tiny relative wobbles below +1 do not.
        let one = r#"{"counters": {"requests_total": 10, "requests_ok": 10, "cold_starts": 1},
                      "gauges": {}, "histograms": {}}"#;
        let two = r#"{"counters": {"requests_total": 10, "requests_ok": 10, "cold_starts": 2},
                      "gauges": {}, "histograms": {}}"#;
        let report = diff(one, two).unwrap();
        assert!(report
            .indicators
            .iter()
            .any(|i| i.name == "cold_starts" && i.regressed));
        let report = diff(one, one).unwrap();
        assert!(!report.regressed());
    }

    #[test]
    fn bench_diff_compares_matching_rows() {
        let base = r#"{"schema": "slsb-bench-kernel/v2",
            "schedule_pop": [{"kernel": "wheel", "pattern": "preload-drain",
                              "events": 1, "elapsed_secs": 1.0,
                              "events_per_sec": 1000000.0, "allocations": 0}],
            "end_to_end": [], "kernel_speedup": 2.0,
            "end_to_end_speedup": 1.5, "allocs_per_request": 0.5}"#;
        let slower = base.replace("1000000.0", "700000.0");
        let report = diff(base, &slower).unwrap();
        assert!(report.regressed());
        assert!(report
            .indicators
            .iter()
            .any(|i| i.name == "eps:wheel/preload-drain" && i.regressed));
        assert!(!diff(base, base).unwrap().regressed());
    }

    #[test]
    fn profile_diff_flags_a_growing_region_share() {
        use slsb_obs::Profile;
        let mk = |kernel_nanos: u64| {
            let node = |label: &str, nanos: u64| slsb_sim::ProfileNode {
                label: label.to_string(),
                calls: 1,
                nanos,
                allocs: 0,
                children: Vec::new(),
            };
            Profile::new(
                vec![node("executor/cell", 500_000_000), node("kernel", kernel_nanos)],
                1.0,
            )
            .to_json()
        };
        let a = mk(100_000_000); // 10 % of wall
        let b = mk(400_000_000); // 40 % of wall: +30 points, past +5
        let report = diff(&a, &b).unwrap();
        assert!(report
            .indicators
            .iter()
            .any(|i| i.name == "share:kernel" && i.regressed));
        assert!(!diff(&a, &a).unwrap().regressed());
    }
}
