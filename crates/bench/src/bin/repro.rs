//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro list                 # show all experiment ids
//! repro fig5                 # regenerate one artifact (full scale)
//! repro all --scale 0.1      # everything, at 10% workload duration
//! repro table1 --seed 7 --out results/
//! ```
//!
//! Markdown goes to stdout; each table is also written as CSV under the
//! output directory (default `results/`).

use slsb_bench::cli::extract_log_level;
use slsb_bench::experiments::{run_experiment, ReproConfig};
use slsb_core::{parallel_map, ExperimentId, Jobs, Scenario};
use slsb_obs::{info_log, set_log_level};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    targets: Vec<ExperimentId>,
    scenarios: Vec<PathBuf>,
    cfg: ReproConfig,
    out: Option<PathBuf>,
    jobs: Jobs,
}

fn usage() -> String {
    let ids: Vec<&str> = ExperimentId::ALL.iter().map(|e| e.slug()).collect();
    format!(
        "usage: repro <experiment|all|list> [--scale F] [--seed N] [--out DIR] [--jobs N] [--log-level L]\n\
                repro run-scenario <file.json> [...]\n\
         --jobs N runs N experiments in parallel (default: all cores; output\n\
         is identical to --jobs 1 for any N)\n\
         --log-level <quiet|info|debug> controls progress chatter on stderr\n\
         experiments: {}",
        ids.join(", ")
    )
}

fn parse_args() -> Result<Args, String> {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    set_log_level(extract_log_level(&mut argv)?);
    let mut args = argv.into_iter();
    let mut targets = Vec::new();
    let mut scenarios = Vec::new();
    let mut cfg = ReproConfig::default();
    let mut out = Some(PathBuf::from("results"));
    let mut jobs = Jobs::available();
    let mut listed = false;

    while let Some(a) = args.next() {
        match a.as_str() {
            "list" => listed = true,
            "run-scenario" => {
                let v = args.next().ok_or("run-scenario needs a file path")?;
                scenarios.push(PathBuf::from(v));
            }
            "all" => targets = ExperimentId::ALL.to_vec(),
            "--scale" => {
                let v = args.next().ok_or("--scale needs a value")?;
                cfg.scale = v.parse().map_err(|_| format!("bad scale: {v}"))?;
                if cfg.scale <= 0.0 || !cfg.scale.is_finite() {
                    return Err(format!("scale must be positive, got {v}"));
                }
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                cfg.seed = v.parse().map_err(|_| format!("bad seed: {v}"))?;
            }
            "--out" => {
                let v = args.next().ok_or("--out needs a value")?;
                out = Some(PathBuf::from(v));
            }
            "--no-out" => out = None,
            "--jobs" => {
                let v = args.next().ok_or("--jobs needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad jobs: {v}"))?;
                if n == 0 {
                    return Err("jobs must be at least 1".into());
                }
                jobs = Jobs::new(n);
            }
            slug => {
                let id = ExperimentId::from_slug(slug)
                    .ok_or_else(|| format!("unknown experiment {slug:?}\n{}", usage()))?;
                targets.push(id);
            }
        }
    }
    if listed {
        for e in ExperimentId::ALL {
            println!("{:<14} {}", e.slug(), e.title());
        }
        std::process::exit(0);
    }
    if targets.is_empty() && scenarios.is_empty() {
        return Err(usage());
    }
    Ok(Args {
        targets,
        scenarios,
        cfg,
        out,
        jobs,
    })
}

fn run_scenario_file(path: &PathBuf) -> Result<(), String> {
    let json = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let scenario = Scenario::from_json(&json).map_err(|e| e.to_string())?;
    let (_run, a) = scenario.run().map_err(|e| e.to_string())?;
    println!("# Scenario: {}\n", scenario.name);
    println!("deployment    : {}", scenario.deployment.label());
    println!("requests      : {}", a.total);
    println!("success ratio : {:.2}%", a.success_ratio * 100.0);
    match a.latency {
        Some(l) => println!(
            "latency       : mean {:.3}s, p50 {:.3}s, p99 {:.3}s",
            l.mean, l.p50, l.p99
        ),
        None => println!("latency       : (no successful requests)"),
    }
    println!("cost          : {}", a.cost.total());
    println!(
        "cold starts   : {} instances, peak {} concurrent\n",
        a.cold_started, a.peak_instances
    );
    // Latency timeline as a terminal chart.
    let series: Vec<(f64, Option<f64>)> = a.series.iter().map(|p| (p.at, p.mean_latency)).collect();
    println!(
        "{}",
        slsb_core::ascii_chart("mean latency per 10s bucket (s)", &series, 8)
    );
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    for path in &args.scenarios {
        if let Err(e) = run_scenario_file(path) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    if args.targets.is_empty() {
        return ExitCode::SUCCESS;
    }

    println!(
        "# slsbench repro — seed {}, scale {}\n",
        args.cfg.seed, args.cfg.scale
    );
    // Experiment modules are independent simulations; fan them across
    // cores, then print and persist in target order so the output stream
    // matches --jobs 1 exactly.
    let outputs = parallel_map(args.jobs, &args.targets, |_, &id| {
        let started = std::time::Instant::now();
        let out = run_experiment(id, &args.cfg);
        (out, started.elapsed())
    });

    for (id, (out, elapsed)) in args.targets.iter().zip(&outputs) {
        println!("{}", out.to_markdown());
        info_log!("[{}] done in {:.1}s", id.slug(), elapsed.as_secs_f64());

        if let Some(dir) = &args.out {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
            for (i, table) in out.tables.iter().enumerate() {
                let path = dir.join(format!("{}_{i}.csv", id.slug()));
                if let Err(e) = std::fs::write(&path, table.to_csv()) {
                    eprintln!("cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    ExitCode::SUCCESS
}
