//! `slsb` — the user-facing CLI for the serving-benchmark framework.
//!
//! ```text
//! slsb compare   --model mobilenet --workload w120 [--seed N] [--scale F]
//! slsb explore   --model vgg --workload w120 [--slo 0.5]
//! slsb replicate --model mobilenet --platform aws-serverless --workload w40 --reps 5
//! slsb run       scenarios/flash_crowd_serverless.json [--trace out.jsonl]
//! slsb trace     out.jsonl
//! ```
//!
//! `compare` races all eight systems on one model × workload; `explore`
//! sweeps the serverless design space and prints the Pareto front;
//! `replicate` reruns one deployment across N seeds and reports mean ± std;
//! `run` replays a declarative JSON scenario, optionally streaming every
//! simulation event to a JSONL trace; `trace` explores such a trace —
//! request waterfalls, phase attribution, cold-start breakdown, and
//! per-instance timelines.

use slsb_bench::cli::extract_log_level;
use slsb_bench::perf;
use slsb_core::{
    analyze, ascii_chart, explore_jobs, fleet_metrics, fmt_money, fmt_opt_secs, fmt_pct,
    oracle_bound, replicate_jobs, run_metrics, slo_metrics, slo_samples, trace_oracle, Deployment,
    Executor, ExplorerGrid, FleetPartition, FleetRunner, FleetScenario, Jobs, RetryPolicy, Scenario,
    SloSample, SloSpec, Table, WorkloadSpec, FLEET_CELLS,
};
use slsb_model::{ModelKind, RuntimeKind};
use slsb_obs::{set_log_level, trace_view, JsonlRecorder, Profile};
use slsb_platform::{FaultPlan, PlatformKind, PolicySet};
use slsb_sim::Seed;
use slsb_workload::{MmppPreset, TraceSummary};
use std::process::ExitCode;

/// Counting allocator so `slsb bench` can report allocation deltas; the
/// cost elsewhere is one relaxed atomic increment per allocation.
#[global_allocator]
static ALLOC: perf::CountingAllocator = perf::CountingAllocator;

const USAGE: &str = "usage:
  slsb compare   --model <mobilenet|albert|vgg> --workload <w40|w120|w200> [--runtime <tf|ort>] [--seed N] [--scale F]
  slsb explore   --model <...> --workload <...> [--slo SECS] [--seed N] [--scale F] [--jobs N]
  slsb replicate --platform <name> --model <...> --workload <...> [--runtime <tf|ort>] [--reps N] [--seed N] [--scale F] [--jobs N] [--shards N]
  slsb run       <scenario.json> [--trace FILE] [--faults FILE] [--retry SPEC] [--slo SPEC] [--seed N] [--shards N] [--jobs N] [--profile FILE] [--metrics-out FILE] [--fleet] [--scale F] [--policy NAME]
  slsb fleet     ingest <raw.(json|csv)> [--out FILE]
  slsb trace     <trace.jsonl> [--slo SPEC] [--apps N]
  slsb profile   <profile.json> [--top N] [--collapsed]
  slsb diff      <baseline> <candidate>
  slsb bench     [--quick] [--out FILE] [--check]

--jobs N runs N simulations in parallel (default: all cores; results are
bit-identical to --jobs 1 for any N).
--shards N runs each simulation sharded per client on up to N workers
(sharded results are identical for every N >= 1; they differ from the
unsharded default because each client cell derives its own RNG streams).
--jobs and --shards share one worker budget: with J outer jobs the
shard workers per run are clamped to max(1, jobs/J), so the two flags
never oversubscribe the machine.
--log-level <quiet|info|debug> (any position) controls progress chatter.
run --trace FILE streams every simulation event to FILE as JSONL;
run --faults FILE overrides the scenario's fault-injection plan with a
JSON FaultPlan; --retry SPEC sets the client retry policy (SPEC is
'off' or comma-separated key=value pairs: attempts=N timeout=S base=S
max=S jitter=F budget=N, e.g. 'attempts=3,base=0.5'); --seed N
overrides the scenario seed; --slo SPEC scores the run against
service-level objectives (SPEC is comma-separated key=value pairs:
p50=S p99=S sr=F cost1k=D, optionally per-tenant with key@client, e.g.
'p99=0.5,sr=0.99,p99@2=1.0'); --profile FILE enables the deterministic
self-profiler and writes the region tree as JSON (trace bytes are
unaffected); --metrics-out FILE writes the run's metrics registry as a
stable-ordered JSON snapshot; --policy NAME overrides the scenario's
keep-alive/placement/scaling policy set (zoo: default fixed
hybrid_histogram least_loaded no_overprovision); every run also prints
the clairvoyant oracle's cold-start and cost lower bounds with a
%-of-optimal score.
run on a scenario with a top-level \"fleet\" block (or with --fleet)
replays a multi-tenant fleet: every app gets its own platform and RNG
substreams, arrivals stream through a lazy k-way merge (memory stays
O(apps), not O(requests)), and --jobs/--shards both map to one worker
budget with byte-identical results for every value; --scale F scales a
synthesized fleet's duration.
fleet ingest converts a raw per-app trace summary (schema'd JSON or
'app,profile,bucket,invocations' CSV) into the canonical
slsb-fleet-trace/v1 document that fleet scenarios replay.
trace renders a recorded file: per-request waterfall, phase attribution,
cold-start breakdown, fault attribution, and per-instance timelines;
trace --slo SPEC scores the recorded spans against objectives (cost
objectives are skipped — traces carry no billing data); trace --apps N
adds a per-tenant breakdown of the N busiest apps.
profile renders a profile written by run --profile: the region tree by
default, --top N the hottest regions by exclusive time, --collapsed
flamegraph-collapsed lines (path;to;region <exclusive-us>).
diff compares two artifacts of the same kind (trace JSONL, metrics
snapshot, profile, or bench report) against regression thresholds and
exits 2 when the candidate regressed.
bench measures event-kernel and end-to-end throughput for both the
timer-wheel and the reference binary-heap kernel and writes the report
to FILE (default BENCH_kernel.json); --quick runs a smaller smoke-test
matrix; --check runs a quick measurement and gates it against the
committed FILE without overwriting it.

platforms: aws-serverless gcp-serverless aws-managedml gcp-managedml aws-cpu gcp-cpu aws-gpu gcp-gpu";

#[derive(Debug)]
struct Options {
    model: ModelKind,
    runtime: RuntimeKind,
    workload: MmppPreset,
    platform: Option<PlatformKind>,
    seed: u64,
    scale: f64,
    slo: f64,
    reps: usize,
    jobs: Jobs,
    shards: Option<usize>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            model: ModelKind::MobileNet,
            runtime: RuntimeKind::Tf115,
            workload: MmppPreset::W120,
            platform: None,
            seed: 152,
            scale: 1.0,
            slo: 0.5,
            reps: 5,
            jobs: Jobs::available(),
            shards: None,
        }
    }
}

fn parse_model(s: &str) -> Result<ModelKind, String> {
    match s.to_ascii_lowercase().as_str() {
        "mobilenet" | "mn" => Ok(ModelKind::MobileNet),
        "albert" | "al" => Ok(ModelKind::Albert),
        "vgg" => Ok(ModelKind::Vgg),
        other => Err(format!("unknown model {other:?}")),
    }
}

fn parse_runtime(s: &str) -> Result<RuntimeKind, String> {
    match s.to_ascii_lowercase().as_str() {
        "tf" | "tf1.15" | "tensorflow" => Ok(RuntimeKind::Tf115),
        "ort" | "ort1.4" | "onnxruntime" => Ok(RuntimeKind::Ort14),
        other => Err(format!("unknown runtime {other:?}")),
    }
}

fn parse_workload(s: &str) -> Result<MmppPreset, String> {
    match s.to_ascii_lowercase().as_str() {
        "w40" | "workload-40" | "40" => Ok(MmppPreset::W40),
        "w120" | "workload-120" | "120" => Ok(MmppPreset::W120),
        "w200" | "workload-200" | "200" => Ok(MmppPreset::W200),
        other => Err(format!("unknown workload {other:?}")),
    }
}

fn parse_platform(s: &str) -> Result<PlatformKind, String> {
    let norm = s.to_ascii_lowercase().replace(['_', '.'], "-");
    PlatformKind::ALL
        .into_iter()
        .find(|p| p.label().to_ascii_lowercase() == norm)
        .ok_or_else(|| format!("unknown platform {s:?}"))
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut o = Options::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--model" => o.model = parse_model(&value("--model")?)?,
            "--runtime" => o.runtime = parse_runtime(&value("--runtime")?)?,
            "--workload" => o.workload = parse_workload(&value("--workload")?)?,
            "--platform" => o.platform = Some(parse_platform(&value("--platform")?)?),
            "--seed" => {
                let v = value("--seed")?;
                o.seed = v.parse().map_err(|_| format!("bad seed {v:?}"))?;
            }
            "--scale" => {
                let v = value("--scale")?;
                o.scale = v.parse().map_err(|_| format!("bad scale {v:?}"))?;
                if o.scale <= 0.0 || !o.scale.is_finite() {
                    return Err(format!("scale must be positive, got {v}"));
                }
            }
            "--slo" => {
                let v = value("--slo")?;
                o.slo = v.parse().map_err(|_| format!("bad slo {v:?}"))?;
            }
            "--reps" => {
                let v = value("--reps")?;
                o.reps = v.parse().map_err(|_| format!("bad reps {v:?}"))?;
                if o.reps == 0 {
                    return Err("reps must be at least 1".into());
                }
            }
            "--jobs" => {
                let v = value("--jobs")?;
                let n: usize = v.parse().map_err(|_| format!("bad jobs {v:?}"))?;
                if n == 0 {
                    return Err("jobs must be at least 1".into());
                }
                o.jobs = Jobs::new(n);
            }
            "--shards" => {
                let v = value("--shards")?;
                let n: usize = v.parse().map_err(|_| format!("bad shards {v:?}"))?;
                if n == 0 {
                    return Err("shards must be at least 1".into());
                }
                o.shards = Some(n);
            }
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    Ok(o)
}

fn workload_spec(o: &Options) -> WorkloadSpec {
    WorkloadSpec::Preset {
        which: o.workload,
        scale: o.scale,
    }
}

fn cmd_compare(o: &Options) -> Result<(), String> {
    let seed = Seed(o.seed);
    let trace = workload_spec(o).generate(seed.substream("cli-workload"));
    println!(
        "Comparing all systems on {} x {} ({} requests, runtime {})\n",
        o.model,
        trace.name(),
        trace.len(),
        o.runtime
    );
    let mut table = Table::new(
        "Systems comparison",
        &["System", "Mean latency", "p99", "SR", "Cost"],
    );
    let exec = Executor::default();
    for platform in PlatformKind::ALL {
        // ManagedML only supports TF; skip invalid combinations silently
        // with a note instead of failing the whole comparison.
        let dep = Deployment::new(platform, o.model, o.runtime);
        match exec.run(&dep, &trace, seed) {
            Ok(run) => {
                let a = analyze(&run);
                table.push_row(vec![
                    platform.label().to_string(),
                    fmt_opt_secs(a.mean_latency()),
                    fmt_opt_secs(a.latency.map(|l| l.p99)),
                    fmt_pct(a.success_ratio),
                    fmt_money(a.cost.total()),
                ]);
            }
            Err(e) => {
                table.push_row(vec![
                    platform.label().to_string(),
                    format!("({e})"),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
            }
        }
    }
    println!("{}", table.to_markdown());
    Ok(())
}

fn cmd_explore(o: &Options) -> Result<(), String> {
    let seed = Seed(o.seed);
    let trace = workload_spec(o).generate(seed.substream("cli-workload"));
    let base = Deployment::new(PlatformKind::AwsServerless, o.model, RuntimeKind::Tf115);
    let exploration = explore_jobs(
        &Executor::default(),
        base,
        &ExplorerGrid::default(),
        &trace,
        seed,
        o.jobs,
    )
    .map_err(|e| e.to_string())?;

    println!(
        "Explored {} serverless configurations for {} x {}\n",
        exploration.candidates.len(),
        o.model,
        trace.name()
    );
    println!("Pareto front (latency vs cost, SR >= 99%):");
    for c in exploration.pareto_front(0.99) {
        println!(
            "  {:>6.0}MB {} batch={:<2} -> mean {:.3}s, p95 {:.3}s, ${:.3}",
            c.deployment.memory_mb,
            c.deployment.runtime,
            c.deployment.batch_size,
            c.mean_latency,
            c.p95_latency,
            c.cost
        );
    }
    match exploration.cheapest_under_slo(o.slo, 0.99) {
        Some(c) => println!(
            "\ncheapest with p95 <= {}s: {:.0}MB {} batch={} at ${:.3}",
            o.slo, c.deployment.memory_mb, c.deployment.runtime, c.deployment.batch_size, c.cost
        ),
        None => println!("\nno configuration meets p95 <= {}s", o.slo),
    }
    Ok(())
}

fn cmd_replicate(o: &Options) -> Result<(), String> {
    let platform = o.platform.ok_or("replicate needs --platform (see usage)")?;
    let dep = Deployment::new(platform, o.model, o.runtime);
    let mut exec = Executor::default();
    if let Some(n) = o.shards {
        // replicate_jobs clamps the shard budget against --jobs so the
        // replica fan-out and intra-run shards share one worker pool.
        exec = exec.with_shards(n);
    }
    let r = replicate_jobs(
        &exec,
        &dep,
        workload_spec(o),
        o.seed,
        o.reps,
        o.jobs,
    )
    .map_err(|e| e.to_string())?;
    println!(
        "{} x {} x {} across {} seeds (base {}):\n",
        platform.label(),
        o.model,
        o.workload.spec().name,
        r.replicas,
        o.seed
    );
    if let Some(m) = r.mean_latency {
        println!("mean latency : {} s", m.display(3));
    }
    if let Some(m) = r.p99_latency {
        println!("p99 latency  : {} s", m.display(3));
    }
    println!("success ratio: {}", r.success_ratio.display(4));
    println!("cost         : ${}", r.cost.display(3));
    println!("cold starts  : {}", r.cold_started.display(1));
    Ok(())
}

/// Flags accepted by `slsb run` after the scenario path.
#[derive(Debug, Default, PartialEq)]
struct RunOptions {
    trace_out: Option<String>,
    faults: Option<String>,
    retry: Option<String>,
    slo: Option<String>,
    seed: Option<u64>,
    shards: Option<usize>,
    jobs: Option<usize>,
    profile_out: Option<String>,
    metrics_out: Option<String>,
    fleet: bool,
    scale: Option<f64>,
    policy: Option<PolicySet>,
}

/// Removes `flag VALUE` from `args` wherever it appears, returning the
/// value. Follows the same drain idiom as [`extract_log_level`].
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(pos) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if pos + 1 >= args.len() {
        return Err(format!("{flag} needs a value"));
    }
    let mut drained = args.drain(pos..pos + 2);
    drained.next();
    Ok(drained.next())
}

/// Splits `slsb run` arguments into the scenario path and its flags,
/// which may appear in any order.
fn parse_run_args(rest: &[String]) -> Result<(String, RunOptions), String> {
    let mut args: Vec<String> = rest.to_vec();
    let o = RunOptions {
        trace_out: take_flag(&mut args, "--trace")?,
        faults: take_flag(&mut args, "--faults")?,
        retry: take_flag(&mut args, "--retry")?,
        slo: take_flag(&mut args, "--slo")?,
        profile_out: take_flag(&mut args, "--profile")?,
        metrics_out: take_flag(&mut args, "--metrics-out")?,
        seed: take_flag(&mut args, "--seed")?
            .map(|v| v.parse().map_err(|_| format!("bad seed {v:?}")))
            .transpose()?,
        shards: take_flag(&mut args, "--shards")?
            .map(|v| match v.parse::<usize>() {
                Ok(n) if n >= 1 => Ok(n),
                _ => Err(format!("bad shards {v:?} (must be >= 1)")),
            })
            .transpose()?,
        jobs: take_flag(&mut args, "--jobs")?
            .map(|v| match v.parse::<usize>() {
                Ok(n) if n >= 1 => Ok(n),
                _ => Err(format!("bad jobs {v:?} (must be >= 1)")),
            })
            .transpose()?,
        fleet: take_switch(&mut args, "--fleet"),
        scale: take_flag(&mut args, "--scale")?
            .map(|v| match v.parse::<f64>() {
                Ok(f) if f > 0.0 && f.is_finite() => Ok(f),
                _ => Err(format!("bad scale {v:?} (must be > 0)")),
            })
            .transpose()?,
        policy: take_flag(&mut args, "--policy")?
            .map(|v| {
                PolicySet::by_name(&v).ok_or_else(|| {
                    format!(
                        "unknown policy {v:?} (known policies: {})",
                        PolicySet::ZOO.join(", ")
                    )
                })
            })
            .transpose()?,
    };
    match args.as_slice() {
        [path] => Ok((path.clone(), o)),
        [] => Err(format!("run needs a scenario file\n{USAGE}")),
        other => Err(format!("unexpected run arguments {other:?}\n{USAGE}")),
    }
}

fn cmd_run(path: &str, opts: &RunOptions) -> Result<(), String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    // A scenario with a top-level "fleet" block is a multi-tenant fleet
    // run; `--fleet` forces the interpretation for hand-rolled files.
    let is_fleet = opts.fleet || has_fleet_key(&json);
    if is_fleet {
        return cmd_run_fleet(path, &json, opts);
    }
    if opts.scale.is_some() {
        return Err("--scale applies to fleet scenarios only".into());
    }
    let mut scenario = Scenario::from_json(&json).map_err(|e| e.to_string())?;
    if let Some(faults_path) = &opts.faults {
        let text = std::fs::read_to_string(faults_path)
            .map_err(|e| format!("cannot read {faults_path}: {e}"))?;
        let plan: FaultPlan = serde_json::from_str(&text)
            .map_err(|e| format!("{faults_path}: invalid fault plan: {e}"))?;
        plan.validate()
            .map_err(|e| format!("{faults_path}: invalid fault plan: {e}"))?;
        scenario.faults = plan;
    }
    if let Some(spec) = &opts.retry {
        scenario.executor.retry =
            RetryPolicy::parse_spec(spec).map_err(|e| format!("--retry {spec:?}: {e}"))?;
    }
    if let Some(spec) = &opts.slo {
        scenario.slo = SloSpec::parse(spec)?;
    }
    if let Some(seed) = opts.seed {
        scenario.seed = seed;
    }
    if let Some(shards) = opts.shards {
        scenario.executor.shards = shards;
    }
    if let Some(policy) = opts.policy {
        scenario.policy = Some(policy);
    }
    // The profiler is enabled only when a sink was requested: the disabled
    // path is one relaxed atomic load per guard, and trace bytes are
    // identical either way.
    let profiling = opts.profile_out.is_some();
    if profiling {
        slsb_sim::prof::reset();
        slsb_sim::prof::enable(true);
    }
    let wall_start = std::time::Instant::now();
    let mut trace_events = None;
    let (run, a) = match opts.trace_out.as_deref() {
        None => scenario.run().map_err(|e| e.to_string())?,
        Some(out_path) => {
            let file = std::fs::File::create(out_path)
                .map_err(|e| format!("cannot create {out_path}: {e}"))?;
            // JsonlRecorder buffers internally, so the file goes in raw.
            let mut rec = JsonlRecorder::new(file);
            let result = scenario.run_recorded(&mut rec).map_err(|e| e.to_string())?;
            let written = rec
                .finish()
                .map_err(|e| format!("cannot write {out_path}: {e}"))?;
            trace_events = Some(written);
            result
        }
    };
    let wall = wall_start.elapsed().as_secs_f64();
    if profiling {
        slsb_sim::prof::enable(false);
    }
    println!("# {}\n", scenario.name);
    println!("deployment    : {}", scenario.deployment.label());
    println!("requests      : {}", a.total);
    println!("success ratio : {}", fmt_pct(a.success_ratio));
    println!("mean latency  : {}", fmt_opt_secs(a.mean_latency()));
    println!("cost          : {}", fmt_money(a.cost.total()));
    println!("cold starts   : {}", a.cold_started);
    let oracle = oracle_bound(&run);
    println!(
        "oracle        : cold >= {} ({:.0}% of optimal), cost >= ${:.6} ({:.0}% of optimal)",
        oracle.cold_starts,
        oracle.cold_score(a.cold_started),
        oracle.cost_dollars,
        oracle.cost_score(a.cost.total().as_dollars()),
    );
    println!("plat. faults  : {}", a.faults);
    println!("client faults : {}", a.client_faults);
    println!("retries       : {}", a.retries);
    println!("engine events : {}", run.engine_events);
    if let Some(n) = trace_events {
        println!("trace events  : {n}");
    }
    let series: Vec<(f64, Option<f64>)> = a.series.iter().map(|p| (p.at, p.mean_latency)).collect();
    println!(
        "\n{}",
        ascii_chart("mean latency per 10s bucket (s)", &series, 8)
    );
    let slo_report = if scenario.slo.is_empty() {
        None
    } else {
        let samples = slo_samples(&run);
        let report = scenario.slo.evaluate(&samples, Some(a.cost_dollars()));
        println!("{}", report.render());
        Some(report)
    };
    if let Some(out) = &opts.metrics_out {
        let mut m = run_metrics(&run);
        if let Some(report) = &slo_report {
            slo_metrics(&mut m, report);
        }
        let json = serde_json::to_string_pretty(&m).map_err(|e| e.to_string())?;
        std::fs::write(out, json + "\n").map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("metrics written to {out}");
    }
    if let Some(out) = &opts.profile_out {
        let profile = Profile::new(slsb_sim::prof::take(), wall);
        std::fs::write(out, profile.to_json()).map_err(|e| format!("cannot write {out}: {e}"))?;
        println!(
            "profile written to {out} ({:.1}% of {:.3}s wall attributed)",
            profile.attributed_frac * 100.0,
            profile.wall_secs
        );
    }
    Ok(())
}

/// Whether the document carries a `"fleet"` *key* (the vendored
/// serde_json has no dynamic `Value`, so this is a quote-and-colon scan;
/// a string *value* "fleet" is not followed by ':' and does not match).
/// Single-deployment scenarios have no nested objects with a `fleet`
/// field, so any match means the fleet schema.
fn has_fleet_key(json: &str) -> bool {
    let mut rest = json;
    while let Some(i) = rest.find("\"fleet\"") {
        rest = &rest[i + "\"fleet\"".len()..];
        if rest.trim_start().starts_with(':') {
            return true;
        }
    }
    false
}

/// Replays a multi-tenant fleet scenario: per-app platforms fed by the
/// streaming arrival merge. `--jobs`/`--shards` both set the worker-thread
/// budget; results are byte-identical for every value of either.
fn cmd_run_fleet(path: &str, json: &str, opts: &RunOptions) -> Result<(), String> {
    if opts.faults.is_some() || opts.retry.is_some() {
        return Err("fleet runs do not support --faults/--retry".into());
    }
    let mut scenario = FleetScenario::from_json(json).map_err(|e| e.to_string())?;
    if let Some(seed) = opts.seed {
        scenario.seed = seed;
    }
    if let Some(f) = opts.scale {
        scenario.scale_duration(f).map_err(|e| e.to_string())?;
    }
    if let Some(policy) = opts.policy {
        scenario.policy = Some(policy);
    }
    // Trace documents resolve relative to the scenario file, so a scenario
    // directory stays relocatable.
    let trace_json = match scenario.trace_path() {
        Some(p) => {
            let base = std::path::Path::new(path)
                .parent()
                .filter(|d| !d.as_os_str().is_empty())
                .unwrap_or_else(|| std::path::Path::new("."));
            let full = base.join(p);
            Some(
                std::fs::read_to_string(&full)
                    .map_err(|e| format!("cannot read trace {}: {e}", full.display()))?,
            )
        }
        None => None,
    };
    let plan = scenario
        .resolve(trace_json.as_deref())
        .map_err(|e| e.to_string())?;
    for w in &plan.warnings {
        eprintln!("warning: {w}");
    }
    let workers = opts.jobs.unwrap_or(1).max(opts.shards.unwrap_or(1));
    let runner = FleetRunner::default().with_workers(workers);
    let seed = Seed(scenario.seed);
    let profiling = opts.profile_out.is_some();
    if profiling {
        slsb_sim::prof::reset();
        slsb_sim::prof::enable(true);
    }
    // Per-region allocation accounting: the executor-region figure below is
    // the engine's own arrival-side footprint (per-app setup + streaming
    // merge), which must stay O(apps) — flat in the request count.
    slsb_sim::alloc::enable_breakdown(true);
    slsb_sim::alloc::reset_region_counts();
    let wall_start = std::time::Instant::now();
    let mut trace_events = None;
    let run = match opts.trace_out.as_deref() {
        None => runner.run(&plan, seed).map_err(|e| e.to_string())?,
        Some(out_path) => {
            let file = std::fs::File::create(out_path)
                .map_err(|e| format!("cannot create {out_path}: {e}"))?;
            let mut rec = JsonlRecorder::new(file);
            let result = runner
                .run_recorded(&plan, seed, &mut rec)
                .map_err(|e| e.to_string())?;
            let written = rec
                .finish()
                .map_err(|e| format!("cannot write {out_path}: {e}"))?;
            trace_events = Some(written);
            result
        }
    };
    let wall = wall_start.elapsed().as_secs_f64();
    let region_allocs = slsb_sim::alloc::region_counts();
    slsb_sim::alloc::enable_breakdown(false);
    if profiling {
        slsb_sim::prof::enable(false);
    }
    println!("# {} (fleet)\n", scenario.name);
    println!("apps          : {}", run.apps.len());
    println!("requests      : {}", run.requests);
    println!("success ratio : {}", fmt_pct(run.success_ratio()));
    println!("mean latency  : {}", fmt_opt_secs(run.latency.mean()));
    println!("p99 latency   : {}", fmt_opt_secs(run.latency.quantile(99.0)));
    println!("cost          : {}", fmt_money(run.platform.cost.total()));
    println!("cold starts   : {}", run.platform.cold_started);
    println!("engine events : {}", run.engine_events);
    println!(
        "arrival allocs: {}",
        region_allocs[slsb_sim::alloc::Region::Executor as usize]
    );
    // The weighted partition's balance, in expected-request units. The
    // verify.sh fleet smoke parses this line and asserts the LPT invariant
    // (max cell <= 2x mean, unless a lone head app is the floor).
    let part = FleetPartition::compute(&plan, FLEET_CELLS.min(run.apps.len()).max(1));
    let bal = part.balance();
    println!(
        "cell balance  : {} cells, max {:.1} / mean {:.1} / max-app {:.1} ({})",
        part.cells.len(),
        bal.max_cell,
        bal.mean_cell,
        bal.max_app,
        if bal.is_balanced() {
            "balanced"
        } else {
            "imbalanced"
        }
    );
    if let Some(n) = trace_events {
        println!("trace events  : {n}");
    }
    // The busiest tenants, Zipf's head.
    let mut by_requests: Vec<&slsb_core::AppResult> = run.apps.iter().collect();
    by_requests.sort_by(|a, b| b.requests.cmp(&a.requests).then(a.app.cmp(&b.app)));
    println!("\ntop apps by requests:");
    println!("  app        profile     requests       ok      p99     cost");
    for a in by_requests.iter().take(5) {
        println!(
            "  {:<10} {:<10} {:>9} {:>8} {:>8} {:>8}",
            a.name,
            a.profile,
            a.requests,
            a.ok,
            fmt_opt_secs(a.p99_s),
            format!("${:.4}", a.cost_dollars),
        );
    }
    if let Some(out) = &opts.metrics_out {
        let m = fleet_metrics(&run);
        let json = serde_json::to_string_pretty(&m).map_err(|e| e.to_string())?;
        std::fs::write(out, json + "\n").map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("metrics written to {out}");
    }
    if let Some(out) = &opts.profile_out {
        let profile = Profile::new(slsb_sim::prof::take(), wall);
        std::fs::write(out, profile.to_json()).map_err(|e| format!("cannot write {out}: {e}"))?;
        println!(
            "profile written to {out} ({:.1}% of {:.3}s wall attributed)",
            profile.attributed_frac * 100.0,
            profile.wall_secs
        );
    }
    Ok(())
}

/// `slsb fleet ingest RAW [--out FILE]` — converts a raw trace summary
/// (JSON or CSV) into the canonical `slsb-fleet-trace/v1` document.
fn cmd_fleet(rest: &[String]) -> Result<(), String> {
    let mut args: Vec<String> = rest.to_vec();
    let out = take_flag(&mut args, "--out")?;
    match args.as_slice() {
        [sub, raw] if sub == "ingest" => {
            let text =
                std::fs::read_to_string(raw).map_err(|e| format!("cannot read {raw}: {e}"))?;
            // JSON documents self-identify via the schema field; anything
            // else goes through the CSV ingester.
            let summary = if text.trim_start().starts_with('{') {
                TraceSummary::from_json(&text).map_err(|e| format!("{raw}: {e}"))?
            } else {
                TraceSummary::from_csv(&text).map_err(|e| format!("{raw}: {e}"))?
            };
            let out = out.unwrap_or_else(|| {
                let stem = raw.rsplit_once('.').map(|(s, _)| s).unwrap_or(raw);
                format!("{stem}.fleet.json")
            });
            std::fs::write(&out, summary.to_json() + "\n")
                .map_err(|e| format!("cannot write {out}: {e}"))?;
            println!("# fleet ingest: {raw}\n");
            println!("name          : {}", summary.name);
            println!("apps          : {}", summary.apps.len());
            println!(
                "buckets       : {} x {:.0}s",
                summary.buckets, summary.bucket_s
            );
            println!("invocations   : {}", summary.total_invocations());
            println!("written to    : {out}");
            Ok(())
        }
        _ => Err(format!("usage: slsb fleet ingest <raw.(json|csv)> [--out FILE]\n{USAGE}")),
    }
}

/// Removes a valueless `flag` from `args`, returning whether it was
/// present.
fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    let Some(pos) = args.iter().position(|a| a == flag) else {
        return false;
    };
    args.remove(pos);
    true
}

/// Flags accepted by `slsb bench`.
#[derive(Debug, PartialEq)]
struct BenchArgs {
    quick: bool,
    out: String,
    check: bool,
}

fn parse_bench_args(rest: &[String]) -> Result<BenchArgs, String> {
    let mut args: Vec<String> = rest.to_vec();
    let out = take_flag(&mut args, "--out")?.unwrap_or_else(|| "BENCH_kernel.json".to_string());
    let quick = take_switch(&mut args, "--quick");
    let check = take_switch(&mut args, "--check");
    if !args.is_empty() {
        return Err(format!("unexpected bench arguments {args:?}\n{USAGE}"));
    }
    Ok(BenchArgs { quick, out, check })
}

fn cmd_bench(args: &BenchArgs) -> Result<(), String> {
    if args.check {
        // Gate mode: a quick measurement against the committed report,
        // leaving the file untouched. Absolute floors always apply; the
        // speedup ratio is only compared when the baseline recorded one.
        // The fleet row runs at full size (it costs well under a second)
        // so the third-wave throughput bar is graded on the real
        // workload, not the smoke-size one.
        let baseline = std::fs::read_to_string(&args.out)
            .map_err(|e| format!("cannot read baseline {}: {e}", args.out))?;
        println!("Checking kernel throughput against {}...\n", args.out);
        let report = perf::run_benchmarks(&perf::BenchConfig {
            quick: true,
            fleet_full: true,
        })?;
        println!("{}", perf::summary(&report));
        let verdict = perf::check_against(&report, &baseline)?;
        println!("\n{verdict}");
        return Ok(());
    }
    let mode = if args.quick { "quick" } else { "full" };
    println!("Measuring kernel throughput (wheel vs heap, {mode} matrix)...\n");
    let mut report = perf::run_benchmarks(&perf::BenchConfig {
        quick: args.quick,
        fleet_full: false,
    })?;
    // Carry the measurement history of the report being replaced forward
    // and stamp this run onto it, so the file tracks a trajectory instead
    // of only the latest point.
    let prior = std::fs::read_to_string(&args.out).ok();
    perf::append_trajectory(&mut report, prior.as_deref());
    println!("{}", perf::summary(&report));
    let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
    std::fs::write(&args.out, json + "\n")
        .map_err(|e| format!("cannot write {}: {e}", args.out))?;
    println!("\nreport written to {} ({} trajectory entries)", args.out, report.trajectory.len());
    Ok(())
}

/// Splits `slsb trace` arguments into the trace path and its flags.
fn parse_trace_args(rest: &[String]) -> Result<(String, Option<String>, Option<usize>), String> {
    let mut args: Vec<String> = rest.to_vec();
    let slo = take_flag(&mut args, "--slo")?;
    let apps = take_flag(&mut args, "--apps")?
        .map(|v| match v.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(format!("bad apps {v:?} (must be >= 1)")),
        })
        .transpose()?;
    match args.as_slice() {
        [path] => Ok((path.clone(), slo, apps)),
        [] => Err(format!("trace needs a trace file\n{USAGE}")),
        other => Err(format!("unexpected trace arguments {other:?}\n{USAGE}")),
    }
}

fn cmd_trace(path: &str, slo: Option<&str>, apps: Option<usize>) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let events = trace_view::parse_jsonl_strict(&text).map_err(|e| format!("{path}: {e}"))?;
    println!("# trace: {path}\n");
    println!("trace events  : {}", events.len());
    match trace_view::run_closed(&events) {
        Some((engine_events, requests)) => {
            println!("engine events : {engine_events}");
            println!("requests      : {requests}\n");
        }
        None => println!("(no run_closed event — trace may be truncated)\n"),
    }
    println!("{}", trace_view::summary(&events));
    println!("{}", trace_view::phase_attribution(&events));
    println!("{}", trace_view::cold_start_breakdown(&events));
    if let Some(t) = trace_oracle(&events) {
        println!(
            "oracle        : cold-start floor {} vs {} observed ({:.0}% of optimal, \
             peak concurrency {})\n",
            t.cold_floor,
            t.cold_observed,
            t.score(),
            t.instance_floor,
        );
    }
    println!("{}", trace_view::fault_attribution(&events));
    println!("{}", trace_view::waterfall(&events, 20));
    println!("{}", trace_view::instance_timeline(&events, 20));
    if let Some(n) = apps {
        println!("{}", trace_view::app_breakdown(&events, n));
    }
    if let Some(spec) = slo {
        let spec = SloSpec::parse(spec)?;
        // A replayed trace carries latencies and outcomes but no billing
        // data, so cost objectives are skipped (evaluate notes this).
        let samples: Vec<SloSample> = trace_view::spans(&events)
            .iter()
            .map(|s| SloSample {
                client: s.client,
                ok: s.outcome.is_success(),
                latency_s: s.total().as_secs_f64(),
            })
            .collect();
        println!("{}", spec.evaluate(&samples, None).render());
    }
    Ok(())
}

/// Flags accepted by `slsb profile`.
#[derive(Debug, PartialEq)]
struct ProfileArgs {
    path: String,
    top: Option<usize>,
    collapsed: bool,
}

fn parse_profile_args(rest: &[String]) -> Result<ProfileArgs, String> {
    let mut args: Vec<String> = rest.to_vec();
    let top = take_flag(&mut args, "--top")?
        .map(|v| match v.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(format!("bad top {v:?} (must be >= 1)")),
        })
        .transpose()?;
    let collapsed = take_switch(&mut args, "--collapsed");
    match args.as_slice() {
        [path] => Ok(ProfileArgs {
            path: path.clone(),
            top,
            collapsed,
        }),
        [] => Err(format!("profile needs a profile file\n{USAGE}")),
        other => Err(format!("unexpected profile arguments {other:?}\n{USAGE}")),
    }
}

fn cmd_profile(args: &ProfileArgs) -> Result<(), String> {
    let text = std::fs::read_to_string(&args.path)
        .map_err(|e| format!("cannot read {}: {e}", args.path))?;
    let profile = Profile::from_json(&text).map_err(|e| format!("{}: {e}", args.path))?;
    if args.collapsed {
        print!("{}", profile.render_collapsed());
    } else if let Some(n) = args.top {
        println!("{}", profile.render_top(n));
    } else {
        println!("{}", profile.render_tree());
    }
    Ok(())
}

/// Exit code for `slsb diff` when the candidate regressed: distinct from
/// 1 (usage/parse errors) so CI can tell "broken invocation" from
/// "measured regression".
const DIFF_REGRESSED: u8 = 2;

fn cmd_diff(baseline: &str, candidate: &str) -> Result<ExitCode, String> {
    let a = std::fs::read_to_string(baseline)
        .map_err(|e| format!("cannot read {baseline}: {e}"))?;
    let b = std::fs::read_to_string(candidate)
        .map_err(|e| format!("cannot read {candidate}: {e}"))?;
    let report = slsb_bench::diff(&a, &b).map_err(|e| format!("diff {baseline} {candidate}: {e}"))?;
    println!("# diff: {baseline} -> {candidate}\n");
    print!("{}", report.render());
    if report.regressed() {
        Ok(ExitCode::from(DIFF_REGRESSED))
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let level = match extract_log_level(&mut argv) {
        Ok(level) => level,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    set_log_level(level);
    let Some((cmd, rest)) = argv.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "compare" => parse_options(rest).and_then(|o| cmd_compare(&o)).map(ok),
        "explore" => parse_options(rest).and_then(|o| cmd_explore(&o)).map(ok),
        "replicate" => parse_options(rest)
            .and_then(|o| cmd_replicate(&o))
            .map(ok),
        "run" => parse_run_args(rest)
            .and_then(|(path, opts)| cmd_run(&path, &opts))
            .map(ok),
        "trace" => parse_trace_args(rest)
            .and_then(|(path, slo, apps)| cmd_trace(&path, slo.as_deref(), apps))
            .map(ok),
        "fleet" => cmd_fleet(rest).map(ok),
        "profile" => parse_profile_args(rest).and_then(|a| cmd_profile(&a)).map(ok),
        "diff" => match rest {
            [a, b] => cmd_diff(a, b),
            _ => Err(format!("diff needs exactly two files\n{USAGE}")),
        },
        "bench" => parse_bench_args(rest).and_then(|a| cmd_bench(&a)).map(ok),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

/// Collapses a unit success into the success exit code (`cmd_diff` is
/// the one command with a third exit state).
fn ok(_: ()) -> ExitCode {
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_full_flag_set() {
        let o = parse_options(&strs(&[
            "--model",
            "vgg",
            "--runtime",
            "ort",
            "--workload",
            "w200",
            "--platform",
            "gcp-serverless",
            "--seed",
            "9",
            "--scale",
            "0.25",
            "--slo",
            "0.2",
            "--reps",
            "3",
            "--jobs",
            "4",
            "--shards",
            "2",
        ]))
        .unwrap();
        assert_eq!(o.model, ModelKind::Vgg);
        assert_eq!(o.runtime, RuntimeKind::Ort14);
        assert_eq!(o.workload, MmppPreset::W200);
        assert_eq!(o.platform, Some(PlatformKind::GcpServerless));
        assert_eq!(o.seed, 9);
        assert_eq!(o.scale, 0.25);
        assert_eq!(o.slo, 0.2);
        assert_eq!(o.reps, 3);
        assert_eq!(o.jobs.get(), 4);
        assert_eq!(o.shards, Some(2));
    }

    #[test]
    fn rejects_bad_values() {
        assert!(parse_options(&strs(&["--model", "resnet"])).is_err());
        assert!(parse_options(&strs(&["--workload", "w999"])).is_err());
        assert!(parse_options(&strs(&["--scale", "-1"])).is_err());
        assert!(parse_options(&strs(&["--reps", "0"])).is_err());
        assert!(parse_options(&strs(&["--jobs", "0"])).is_err());
        assert!(parse_options(&strs(&["--shards", "0"])).is_err());
        assert!(parse_options(&strs(&["--bogus"])).is_err());
        assert!(parse_options(&strs(&["--seed"])).is_err());
    }

    #[test]
    fn platform_names_match_labels() {
        for p in PlatformKind::ALL {
            let lower = p.label().to_ascii_lowercase();
            assert_eq!(parse_platform(&lower).unwrap(), p);
        }
        assert!(parse_platform("azure-functions").is_err());
    }

    #[test]
    fn run_args_accept_flags_in_any_order() {
        let (path, o) = parse_run_args(&strs(&[
            "--retry",
            "attempts=3",
            "scenario.json",
            "--faults",
            "faults.json",
            "--seed",
            "9",
            "--trace",
            "out.jsonl",
            "--shards",
            "4",
        ]))
        .unwrap();
        assert_eq!(path, "scenario.json");
        assert_eq!(o.trace_out.as_deref(), Some("out.jsonl"));
        assert_eq!(o.faults.as_deref(), Some("faults.json"));
        assert_eq!(o.retry.as_deref(), Some("attempts=3"));
        assert_eq!(o.seed, Some(9));
        assert_eq!(o.shards, Some(4));
    }

    #[test]
    fn run_args_accept_every_zoo_policy() {
        for name in PolicySet::ZOO {
            let (path, o) =
                parse_run_args(&strs(&["scenario.json", "--policy", name])).unwrap();
            assert_eq!(path, "scenario.json");
            assert_eq!(o.policy, PolicySet::by_name(name), "policy {name}");
            assert!(o.policy.is_some(), "zoo name {name} must resolve");
        }
    }

    #[test]
    fn run_args_reject_unknown_policy_and_list_the_zoo() {
        let err = parse_run_args(&strs(&["scenario.json", "--policy", "nope"]))
            .expect_err("unknown policy must be rejected");
        assert!(err.contains("unknown policy"), "{err}");
        for name in PolicySet::ZOO {
            assert!(err.contains(name), "error must list {name}: {err}");
        }
    }

    #[test]
    fn run_args_reject_malformed_invocations() {
        // No scenario path.
        assert!(parse_run_args(&strs(&["--trace", "out.jsonl"])).is_err());
        // Flag without a value.
        assert!(parse_run_args(&strs(&["scenario.json", "--faults"])).is_err());
        // Two positional arguments.
        assert!(parse_run_args(&strs(&["a.json", "b.json"])).is_err());
        // Non-numeric seed.
        assert!(parse_run_args(&strs(&["a.json", "--seed", "xyz"])).is_err());
        // Bare path still works with no flags at all.
        let (path, o) = parse_run_args(&strs(&["a.json"])).unwrap();
        assert_eq!(path, "a.json");
        assert_eq!(o, RunOptions::default());
    }

    #[test]
    fn bench_args_defaults_and_flags() {
        let a = parse_bench_args(&[]).unwrap();
        assert_eq!(
            a,
            BenchArgs {
                quick: false,
                out: "BENCH_kernel.json".to_string(),
                check: false
            }
        );
        let a = parse_bench_args(&strs(&["--quick", "--out", "x.json"])).unwrap();
        assert_eq!(
            a,
            BenchArgs {
                quick: true,
                out: "x.json".to_string(),
                check: false
            }
        );
        // Flags in the other order work too; stray arguments do not.
        assert!(parse_bench_args(&strs(&["--out", "x.json", "--quick"])).is_ok());
        assert!(parse_bench_args(&strs(&["--check"])).unwrap().check);
        assert!(parse_bench_args(&strs(&["extra"])).is_err());
        assert!(parse_bench_args(&strs(&["--out"])).is_err());
    }

    #[test]
    fn run_args_accept_slo_profile_and_metrics_flags() {
        let (path, o) = parse_run_args(&strs(&[
            "scenario.json",
            "--slo",
            "p99=0.5,sr=0.99",
            "--profile",
            "profile.json",
            "--metrics-out",
            "metrics.json",
        ]))
        .unwrap();
        assert_eq!(path, "scenario.json");
        assert_eq!(o.slo.as_deref(), Some("p99=0.5,sr=0.99"));
        assert_eq!(o.profile_out.as_deref(), Some("profile.json"));
        assert_eq!(o.metrics_out.as_deref(), Some("metrics.json"));
    }

    #[test]
    fn trace_and_profile_args_parse() {
        let (path, slo, apps) = parse_trace_args(&strs(&["t.jsonl", "--slo", "p50=0.1"])).unwrap();
        assert_eq!(path, "t.jsonl");
        assert_eq!(slo.as_deref(), Some("p50=0.1"));
        assert_eq!(apps, None);
        let (_, _, apps) = parse_trace_args(&strs(&["t.jsonl", "--apps", "3"])).unwrap();
        assert_eq!(apps, Some(3));
        assert!(parse_trace_args(&strs(&["t.jsonl", "--apps", "0"])).is_err());
        assert!(parse_trace_args(&strs(&["--slo", "p50=0.1"])).is_err());
        assert!(parse_trace_args(&strs(&["a", "b"])).is_err());

        let a = parse_profile_args(&strs(&["p.json", "--top", "5"])).unwrap();
        assert_eq!(
            a,
            ProfileArgs {
                path: "p.json".to_string(),
                top: Some(5),
                collapsed: false
            }
        );
        assert!(parse_profile_args(&strs(&["p.json", "--collapsed"]))
            .unwrap()
            .collapsed);
        assert!(parse_profile_args(&strs(&["p.json", "--top", "0"])).is_err());
        assert!(parse_profile_args(&[]).is_err());
    }

    #[test]
    fn model_aliases() {
        assert_eq!(parse_model("MN").unwrap(), ModelKind::MobileNet);
        assert_eq!(parse_model("AlBeRt").unwrap(), ModelKind::Albert);
        assert_eq!(parse_runtime("TensorFlow").unwrap(), RuntimeKind::Tf115);
    }
}
