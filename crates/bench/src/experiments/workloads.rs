//! Figure 4: the generated MMPP workloads.

use super::{Output, ReproConfig};
use slsb_core::Table;
use slsb_sim::SimDuration;
use slsb_workload::MmppPreset;

/// Regenerates Figure 4: summary statistics plus the arrival-rate series of
/// the three workloads.
pub fn fig4(cfg: &ReproConfig) -> Output {
    let mut summary = Table::new(
        "Generated MMPP workloads (Figure 4)",
        &[
            "Workload",
            "Requests",
            "Paper requests",
            "Duration",
            "Mean rate (req/s)",
            "Peak 10s rate (req/s)",
            "Inter-arrival CV",
        ],
    );
    let mut series = Table::new(
        "Arrival-rate series (requests per 10 s bucket)",
        &["t (s)", "workload-40", "workload-120", "workload-200"],
    );

    let traces: Vec<_> = MmppPreset::ALL.iter().map(|&p| (p, cfg.trace(p))).collect();
    for (preset, tr) in &traces {
        summary.push_row(vec![
            tr.name().to_string(),
            tr.len().to_string(),
            format!("{:.0}", preset.paper_request_count() as f64 * cfg.scale),
            format!("{:.0}s", tr.duration().as_secs_f64()),
            format!("{:.1}", tr.mean_rate()),
            format!("{:.1}", tr.peak_rate(SimDuration::from_secs(10))),
            tr.burstiness(SimDuration::from_secs(10))
                .map(|b| format!("{:.2}", b.interarrival_cv))
                .unwrap_or_else(|| "-".into()),
        ]);
    }

    let bucket = SimDuration::from_secs(10);
    let all: Vec<Vec<(slsb_sim::SimTime, u64)>> = traces
        .iter()
        .map(|(_, tr)| tr.rate_series(bucket))
        .collect();
    let buckets = all.iter().map(|s| s.len()).max().unwrap_or(0);
    for i in 0..buckets {
        let t = i as f64 * 10.0;
        let cell = |s: &Vec<(slsb_sim::SimTime, u64)>| {
            s.get(i)
                .map(|&(_, c)| c.to_string())
                .unwrap_or_else(|| "0".into())
        };
        series.push_row(vec![
            format!("{t:.0}"),
            cell(&all[0]),
            cell(&all[1]),
            cell(&all[2]),
        ]);
    }

    let notes = vec![
        "Workloads are MMPP(2) with random surge onsets/durations; counts match the paper's \
         15000/51600/86000 in expectation (exact per-seed counts vary)."
            .to_string(),
    ];
    (vec![summary, series], notes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_shapes() {
        let (tables, notes) = fig4(&ReproConfig::scaled(0.05));
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].len(), 3);
        assert!(!tables[1].is_empty());
        assert!(!notes.is_empty());
    }
}
