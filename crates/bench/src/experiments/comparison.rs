//! Figure 5 and Table 1: the headline comparison of all eight systems
//! across three models and three workloads (TF1.15 everywhere).

use super::{Output, ReproConfig};
use slsb_core::{fmt_money, fmt_pct, Analysis, Deployment, Table};
use slsb_model::{ModelKind, RuntimeKind};
use slsb_platform::PlatformKind;
use slsb_workload::MmppPreset;

/// One cell of the comparison matrix.
pub struct MatrixEntry {
    /// Serving system.
    pub platform: PlatformKind,
    /// Served model.
    pub model: ModelKind,
    /// Workload.
    pub preset: MmppPreset,
    /// Analyzer digest of the run.
    pub analysis: Analysis,
}

/// Runs the full 8 × 3 × 3 comparison matrix.
///
/// `fig5` and `table1` each run their own matrix; at the same seed the runs
/// are identical, so `repro all` pays the simulation twice. That is a
/// deliberate simplicity trade-off — each experiment stays independently
/// reproducible — at ~50 s of extra wall time for the full regeneration.
pub fn matrix(cfg: &ReproConfig) -> Vec<MatrixEntry> {
    let mut out = Vec::with_capacity(8 * 3 * 3);
    for platform in PlatformKind::ALL {
        for model in ModelKind::ALL {
            for preset in MmppPreset::ALL {
                let dep = Deployment::new(platform, model, RuntimeKind::Tf115);
                let analysis = cfg.run(&dep, preset);
                out.push(MatrixEntry {
                    platform,
                    model,
                    preset,
                    analysis,
                });
            }
        }
    }
    out
}

fn lat_cell(a: &Analysis) -> String {
    a.mean_latency()
        .map(|l| format!("{l:.3}s"))
        .unwrap_or_else(|| "-".into())
}

/// Regenerates Figure 5: average latency and success ratio per system ×
/// model × workload (one table per model, mirroring the paper's panels).
pub fn fig5(cfg: &ReproConfig) -> Output {
    let m = matrix(cfg);
    let mut tables = Vec::new();
    for model in ModelKind::ALL {
        let mut t = Table::new(
            format!("Figure 5 — {model}: mean latency / success ratio"),
            &[
                "System",
                "w-40 latency",
                "w-40 SR",
                "w-120 latency",
                "w-120 SR",
                "w-200 latency",
                "w-200 SR",
            ],
        );
        for platform in PlatformKind::ALL {
            let mut row = vec![platform.label().to_string()];
            for preset in MmppPreset::ALL {
                let e = m
                    .iter()
                    .find(|e| e.platform == platform && e.model == model && e.preset == preset)
                    .expect("matrix is complete");
                row.push(lat_cell(&e.analysis));
                row.push(fmt_pct(e.analysis.success_ratio));
            }
            t.push_row(row);
        }
        tables.push(t);
    }

    let mut notes = Vec::new();
    // Headline observations, phrased like the paper's key findings.
    let get = |p: PlatformKind, mo: ModelKind, w: MmppPreset| {
        m.iter()
            .find(|e| e.platform == p && e.model == mo && e.preset == w)
            .expect("matrix is complete")
    };
    let sls = get(
        PlatformKind::AwsServerless,
        ModelKind::MobileNet,
        MmppPreset::W200,
    );
    let gpu = get(PlatformKind::AwsGpu, ModelKind::MobileNet, MmppPreset::W200);
    if let (Some(a), Some(b)) = (sls.analysis.mean_latency(), gpu.analysis.mean_latency()) {
        notes.push(format!(
            "MobileNet @ workload-200 on AWS: serverless {a:.3}s vs GPU {b:.3}s \
             ({:.1}x; paper reports 0.097s vs 7.52s = 77.5x)",
            b / a
        ));
    }
    let mml = get(
        PlatformKind::AwsManagedMl,
        ModelKind::MobileNet,
        MmppPreset::W40,
    );
    if let (Some(a), Some(b)) = (
        get(
            PlatformKind::AwsServerless,
            ModelKind::MobileNet,
            MmppPreset::W40,
        )
        .analysis
        .mean_latency(),
        mml.analysis.mean_latency(),
    ) {
        notes.push(format!(
            "MobileNet @ workload-40 on AWS: ManagedML is {:.1}x slower than serverless \
             (paper reports 71.6x)",
            b / a
        ));
    }
    (tables, notes)
}

/// Regenerates Table 1: costs for all evaluated systems.
pub fn table1(cfg: &ReproConfig) -> Output {
    let m = matrix(cfg);
    let mut t = Table::new(
        "Table 1: costs for evaluated model serving systems (TF1.15)",
        &[
            "System",
            "Model",
            "workload-40",
            "workload-120",
            "workload-200",
        ],
    );
    let cost = |p: PlatformKind, mo: ModelKind, w: MmppPreset| {
        m.iter()
            .find(|e| e.platform == p && e.model == mo && e.preset == w)
            .map(|e| fmt_money(e.analysis.cost.total()))
            .expect("matrix is complete")
    };
    for platform in PlatformKind::ALL {
        if platform.is_serverless() || platform.is_managed_ml() {
            for model in ModelKind::ALL {
                t.push_row(vec![
                    platform.label().to_string(),
                    model.to_string(),
                    cost(platform, model, MmppPreset::W40),
                    cost(platform, model, MmppPreset::W120),
                    cost(platform, model, MmppPreset::W200),
                ]);
            }
        } else {
            // Rented boxes bill wall-clock time; the paper reports a single
            // model-independent row per system.
            t.push_row(vec![
                platform.label().to_string(),
                "(any)".into(),
                cost(platform, ModelKind::MobileNet, MmppPreset::W40),
                cost(platform, ModelKind::MobileNet, MmppPreset::W120),
                cost(platform, ModelKind::MobileNet, MmppPreset::W200),
            ]);
        }
    }
    let notes = vec![
        "Paper anchors (AWS-Serverless row): $0.050/$0.117/$0.186 for MobileNet, \
         $0.223/$0.665/$1.326 for ALBERT, $0.492/$1.134/$1.993 for VGG."
            .to_string(),
    ];
    (vec![t], notes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_complete_at_tiny_scale() {
        let m = matrix(&ReproConfig::scaled(0.01));
        assert_eq!(m.len(), 72);
    }

    #[test]
    fn fig5_emits_three_tables_of_eight_rows() {
        let (tables, _) = fig5(&ReproConfig::scaled(0.01));
        assert_eq!(tables.len(), 3);
        assert!(tables.iter().all(|t| t.len() == 8));
    }

    #[test]
    fn table1_has_rows_for_every_system() {
        let (tables, _) = table1(&ReproConfig::scaled(0.01));
        // 4 serverless/managed systems × 3 models + 4 rented boxes.
        assert_eq!(tables[0].len(), 4 * 3 + 4);
    }
}
