//! Figures 15–17: the function-specific parameter sweeps on
//! AWS-Serverless (memory size, provisioned concurrency, batch size), all
//! at workload-120 for MobileNet and VGG under both runtimes.

use super::{Output, ReproConfig};
use slsb_core::{fmt_money, fmt_opt_secs, Deployment, Table};
use slsb_model::{ModelKind, RuntimeKind};
use slsb_platform::PlatformKind;
use slsb_workload::MmppPreset;

const MODELS: [ModelKind; 2] = [ModelKind::MobileNet, ModelKind::Vgg];

fn sweep_table<T: Copy + std::fmt::Display>(
    cfg: &ReproConfig,
    title: &str,
    knob_name: &str,
    values: &[T],
    apply: impl Fn(Deployment, T) -> Deployment,
) -> Table {
    let mut t = Table::new(
        title,
        &[
            knob_name,
            "Model",
            "Runtime",
            "Mean latency",
            "Cost",
            "Cold-started",
        ],
    );
    for &v in values {
        for model in MODELS {
            for runtime in RuntimeKind::ALL {
                let base = Deployment::new(PlatformKind::AwsServerless, model, runtime);
                let d = apply(base, v);
                let a = cfg.run(&d, MmppPreset::W120);
                t.push_row(vec![
                    v.to_string(),
                    model.to_string(),
                    runtime.to_string(),
                    fmt_opt_secs(a.mean_latency()),
                    fmt_money(a.cost.total()),
                    a.cold_started.to_string(),
                ]);
            }
        }
    }
    t
}

/// Regenerates Figure 15: vary memory size (2–8 GB).
pub fn fig15(cfg: &ReproConfig) -> Output {
    let t = sweep_table(
        cfg,
        "Figure 15 — vary memory size on AWS-Serverless (workload-120)",
        "Memory MB",
        &[2048.0, 4096.0, 6144.0, 8192.0],
        |d, v| d.with_memory_mb(v),
    );
    let notes = vec![
        "Expected shapes: latency decreases with memory (sharper for VGG than MobileNet); \
         cost is not monotone — 4GB can be cheaper than 2GB for VGG because faster handlers \
         and fewer cold instances offset the higher GB-second rate."
            .to_string(),
    ];
    (vec![t], notes)
}

/// Regenerates Figure 16: vary provisioned concurrency (0/8/16/32).
pub fn fig16(cfg: &ReproConfig) -> Output {
    let t = sweep_table(
        cfg,
        "Figure 16 — vary provisioned concurrency on AWS-Serverless (workload-120)",
        "Provisioned",
        &[0u32, 8, 16, 32],
        |d, v| d.with_provisioned_concurrency(v),
    );
    let notes = vec![
        "Expected shapes: provisioned concurrency does not reliably reduce latency and adds \
         a reservation fee; the paper observed *more* cold-started instances with it (e.g. \
         VGG/TF: 614/640/478 at PC 8/16/32 vs 409 without) and inferred a more aggressive \
         scaling policy, which the simulator models."
            .to_string(),
    ];
    (vec![t], notes)
}

/// Regenerates Figure 17: vary client batch size (1/2/4/8).
pub fn fig17(cfg: &ReproConfig) -> Output {
    let t = sweep_table(
        cfg,
        "Figure 17 — vary batch size on AWS-Serverless (workload-120)",
        "Batch",
        &[1u32, 2, 4, 8],
        |d, v| d.with_batch_size(v),
    );
    let notes = vec![
        "Expected shapes: mean latency roughly doubles as batch size doubles (requests wait \
         client-side and batched execution is longer), while cost drops — fewer invocations \
         and fewer cold-started instances; the saving is marginal for MobileNet on ORT."
            .to_string(),
    ];
    (vec![t], notes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig15_more_memory_is_faster_for_vgg() {
        let cfg = ReproConfig::scaled(0.05);
        let base = Deployment::new(
            PlatformKind::AwsServerless,
            ModelKind::Vgg,
            RuntimeKind::Tf115,
        );
        let small = cfg.run(&base.with_memory_mb(2048.0), MmppPreset::W120);
        let big = cfg.run(&base.with_memory_mb(8192.0), MmppPreset::W120);
        assert!(big.mean_latency().unwrap() < small.mean_latency().unwrap());
    }

    #[test]
    fn fig17_batching_trades_latency_for_cost() {
        let cfg = ReproConfig::scaled(0.05);
        let base = Deployment::new(
            PlatformKind::AwsServerless,
            ModelKind::Vgg,
            RuntimeKind::Tf115,
        );
        let single = cfg.run(&base, MmppPreset::W120);
        let batched = cfg.run(&base.with_batch_size(8), MmppPreset::W120);
        assert!(batched.mean_latency().unwrap() > single.mean_latency().unwrap());
        assert!(batched.cost_dollars() < single.cost_dollars());
    }

    #[test]
    fn sweeps_emit_full_grids() {
        let cfg = ReproConfig::scaled(0.01);
        let (t15, _) = fig15(&cfg);
        let (t16, _) = fig16(&cfg);
        let (t17, _) = fig17(&cfg);
        // 4 knob values × 2 models × 2 runtimes.
        assert_eq!(t15[0].len(), 16);
        assert_eq!(t16[0].len(), 16);
        assert_eq!(t17[0].len(), 16);
    }
}
