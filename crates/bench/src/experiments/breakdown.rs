//! Figures 10 and 14: cold-start / warm-up sub-stage breakdowns.

use super::{Output, ReproConfig};
use slsb_core::{fmt_opt_secs, Analysis, Deployment, Table};
use slsb_model::{ModelKind, RuntimeKind};
use slsb_platform::PlatformKind;
use slsb_workload::MmppPreset;

fn breakdown_row(label: &str, a: &Analysis) -> Vec<String> {
    vec![
        label.to_string(),
        fmt_opt_secs(a.cold.e2e_cold),
        fmt_opt_secs(a.cold.import),
        fmt_opt_secs(a.cold.download),
        fmt_opt_secs(a.cold.load),
        fmt_opt_secs(a.cold.predict_cold),
        fmt_opt_secs(a.cold.e2e_warm),
        fmt_opt_secs(a.cold.predict_warm),
    ]
}

const HEADERS: [&str; 8] = [
    "Deployment",
    "cs E2E",
    "cs import",
    "cs download",
    "cs load",
    "cs predict",
    "wu E2E",
    "wu predict",
];

/// Regenerates Figure 10: cold-start vs warm-up breakdown of the two
/// serverless platforms for MobileNet and ALBERT at workload-120 (TF1.15).
pub fn fig10(cfg: &ReproConfig) -> Output {
    let mut t = Table::new(
        "Figure 10 — serverless cold-start/warm-up breakdown (TF1.15, workload-120)",
        &HEADERS,
    );
    let mut notes = Vec::new();
    for model in [ModelKind::MobileNet, ModelKind::Albert] {
        for platform in [PlatformKind::AwsServerless, PlatformKind::GcpServerless] {
            let a = cfg.run(
                &Deployment::new(platform, model, RuntimeKind::Tf115),
                MmppPreset::W120,
            );
            t.push_row(breakdown_row(&format!("{} {model}", platform.label()), &a));
        }
    }
    notes.push(
        "Paper anchors: cs E2E = 9.08s (AWS MN) / 9.49s (AWS AL) / 11.71s (GCP MN) / 14.19s \
         (GCP AL); import dominates at 4–5s on both clouds; cold predict ≫ warm predict \
         (TF lazy initialization)."
            .to_string(),
    );
    (vec![t], notes)
}

/// Regenerates Figure 14: TF1.15 vs ORT1.4 breakdown for MobileNet at
/// workload-120 on both clouds.
pub fn fig14(cfg: &ReproConfig) -> Output {
    let mut t = Table::new(
        "Figure 14 — runtime breakdown (MobileNet, workload-120)",
        &HEADERS,
    );
    for platform in [PlatformKind::AwsServerless, PlatformKind::GcpServerless] {
        for runtime in RuntimeKind::ALL {
            let a = cfg.run(
                &Deployment::new(platform, ModelKind::MobileNet, runtime),
                MmppPreset::W120,
            );
            t.push_row(breakdown_row(
                &format!("{} {runtime}", platform.label()),
                &a,
            ));
        }
    }
    let notes = vec![
        "Paper anchors: cs E2E drops 9.08s → 2.775s on AWS and 11.71s → 2.917s on GCP when \
         switching TF1.15 → ORT1.4; the win comes from import and load time."
            .to_string(),
    ];
    (vec![t], notes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_has_four_rows() {
        let (tables, _) = fig10(&ReproConfig::scaled(0.02));
        assert_eq!(tables[0].len(), 4);
    }

    #[test]
    fn fig14_ort_cold_start_is_faster() {
        let cfg = ReproConfig::scaled(0.05);
        let tf = cfg.run(
            &Deployment::new(
                PlatformKind::AwsServerless,
                ModelKind::MobileNet,
                RuntimeKind::Tf115,
            ),
            MmppPreset::W120,
        );
        let ort = cfg.run(
            &Deployment::new(
                PlatformKind::AwsServerless,
                ModelKind::MobileNet,
                RuntimeKind::Ort14,
            ),
            MmppPreset::W120,
        );
        assert!(ort.cold.e2e_cold.unwrap() * 2.0 < tf.cold.e2e_cold.unwrap());
    }
}
