//! Figures 6, 8, 9: latency / success-ratio timelines contrasting
//! serverless with one alternative system.

use super::{Output, ReproConfig};
use slsb_core::{Analysis, Deployment, Table};
use slsb_model::{ModelKind, RuntimeKind};
use slsb_platform::PlatformKind;
use slsb_workload::MmppPreset;

/// Builds one timeline table contrasting two systems on the same workload.
fn timeline_table(title: &str, left: (&str, &Analysis), right: (&str, &Analysis)) -> Table {
    let mut t = Table::new(
        title,
        &[
            "t (s)",
            &format!("{} latency", left.0),
            &format!("{} SR", left.0),
            &format!("{} latency", right.0),
            &format!("{} SR", right.0),
        ],
    );
    let n = left.1.series.len().max(right.1.series.len());
    let cell_lat = |a: &Analysis, i: usize| {
        a.series
            .get(i)
            .and_then(|p| p.mean_latency)
            .map(|l| format!("{l:.3}"))
            .unwrap_or_else(|| "-".into())
    };
    let cell_sr = |a: &Analysis, i: usize| {
        a.series
            .get(i)
            .and_then(|p| p.success_ratio)
            .map(|s| format!("{:.2}", s))
            .unwrap_or_else(|| "-".into())
    };
    for i in 0..n {
        t.push_row(vec![
            format!("{}", i * 10),
            cell_lat(left.1, i),
            cell_sr(left.1, i),
            cell_lat(right.1, i),
            cell_sr(right.1, i),
        ]);
    }
    t
}

fn summarize(label: &str, a: &Analysis) -> String {
    format!(
        "{label}: mean latency {}, SR {:.1}%",
        a.mean_latency()
            .map(|l| format!("{l:.3}s"))
            .unwrap_or_else(|| "-".into()),
        a.success_ratio * 100.0
    )
}

fn versus(
    cfg: &ReproConfig,
    title: &str,
    model: ModelKind,
    preset: MmppPreset,
    serverless: PlatformKind,
    other: PlatformKind,
) -> (Table, Vec<String>) {
    let sls = cfg.run(
        &Deployment::new(serverless, model, RuntimeKind::Tf115),
        preset,
    );
    let alt = cfg.run(&Deployment::new(other, model, RuntimeKind::Tf115), preset);
    let table = timeline_table(title, (serverless.label(), &sls), (other.label(), &alt));
    let notes = vec![
        summarize(serverless.label(), &sls),
        summarize(other.label(), &alt),
    ];
    (table, notes)
}

/// Regenerates Figure 6: serverless vs ManagedML — MobileNet·w-40 on AWS
/// (6a) and ALBERT·w-40 on GCP (6b).
pub fn fig6(cfg: &ReproConfig) -> Output {
    let (t1, mut n1) = versus(
        cfg,
        "Figure 6a — MobileNet, workload-40, AWS: serverless vs ManagedML",
        ModelKind::MobileNet,
        MmppPreset::W40,
        PlatformKind::AwsServerless,
        PlatformKind::AwsManagedMl,
    );
    let (t2, n2) = versus(
        cfg,
        "Figure 6b — ALBERT, workload-40, GCP: serverless vs ManagedML",
        ModelKind::Albert,
        MmppPreset::W40,
        PlatformKind::GcpServerless,
        PlatformKind::GcpManagedMl,
    );
    n1.extend(n2);
    n1.push(
        "Expected shape: serverless starts slow (cold starts) then stays flat; ManagedML \
         degrades and drops requests once the rate exceeds one instance's capacity, \
         recovering only after minutes-long scale-out."
            .to_string(),
    );
    (vec![t1, t2], n1)
}

/// Regenerates Figure 8: serverless vs CPU server — ALBERT·w-120 on AWS
/// (8a) and MobileNet·w-120 on GCP (8b).
pub fn fig8(cfg: &ReproConfig) -> Output {
    let (t1, mut n1) = versus(
        cfg,
        "Figure 8a — ALBERT, workload-120, AWS: serverless vs CPU server",
        ModelKind::Albert,
        MmppPreset::W120,
        PlatformKind::AwsServerless,
        PlatformKind::AwsCpu,
    );
    let (t2, n2) = versus(
        cfg,
        "Figure 8b — MobileNet, workload-120, GCP: serverless vs CPU server",
        ModelKind::MobileNet,
        MmppPreset::W120,
        PlatformKind::GcpServerless,
        PlatformKind::GcpCpu,
    );
    n1.extend(n2);
    n1.push(
        "Expected shape: CPU-server latency climbs to tens of seconds at the first request \
         peak and stays high; serverless remains consistently low after warm-up."
            .to_string(),
    );
    (vec![t1, t2], n1)
}

/// Regenerates Figure 9: serverless vs GPU server — VGG·w-40 (9a) and
/// VGG·w-200 (9b) on AWS.
pub fn fig9(cfg: &ReproConfig) -> Output {
    let (t1, mut n1) = versus(
        cfg,
        "Figure 9a — VGG, workload-40, AWS: serverless vs GPU server",
        ModelKind::Vgg,
        MmppPreset::W40,
        PlatformKind::AwsServerless,
        PlatformKind::AwsGpu,
    );
    let (t2, n2) = versus(
        cfg,
        "Figure 9b — VGG, workload-200, AWS: serverless vs GPU server",
        ModelKind::Vgg,
        MmppPreset::W200,
        PlatformKind::AwsServerless,
        PlatformKind::AwsGpu,
    );
    n1.extend(n2);
    n1.push(
        "Expected shape: at workload-40 the GPU wins throughout; at workload-200 the GPU \
         queue grows during peaks (three-phase dynamics) while warmed-up serverless stays \
         low."
            .to_string(),
    );
    (vec![t1, t2], n1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_produces_two_timelines() {
        let (tables, notes) = fig6(&ReproConfig::scaled(0.02));
        assert_eq!(tables.len(), 2);
        assert!(!tables[0].is_empty());
        assert!(notes.len() >= 4);
    }

    #[test]
    fn fig9_gpu_wins_at_low_load() {
        let cfg = ReproConfig::scaled(0.05);
        let sls = cfg.run(
            &Deployment::new(
                PlatformKind::AwsServerless,
                ModelKind::Vgg,
                RuntimeKind::Tf115,
            ),
            MmppPreset::W40,
        );
        let gpu = cfg.run(
            &Deployment::new(PlatformKind::AwsGpu, ModelKind::Vgg, RuntimeKind::Tf115),
            MmppPreset::W40,
        );
        assert!(
            gpu.mean_latency().unwrap() < sls.mean_latency().unwrap(),
            "GPU should win at workload-40"
        );
    }
}
