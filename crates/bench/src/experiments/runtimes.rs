//! Figure 13 and Table 2: the serving-runtime study (TF1.15 vs ORT1.4).

use super::{Output, ReproConfig};
use slsb_core::{fmt_money, Deployment, Table};
use slsb_model::{ModelKind, RuntimeKind};
use slsb_platform::PlatformKind;
use slsb_workload::MmppPreset;

const MODELS: [ModelKind; 2] = [ModelKind::MobileNet, ModelKind::Vgg];
const PLATFORMS: [PlatformKind; 2] = [PlatformKind::AwsServerless, PlatformKind::GcpServerless];

/// Regenerates Figure 13: mean latency (± std deviation) of TF1.15 vs
/// ORT1.4 for MobileNet and VGG across the three workloads on both clouds.
pub fn fig13(cfg: &ReproConfig) -> Output {
    let mut tables = Vec::new();
    let mut notes = Vec::new();
    for model in MODELS {
        let mut t = Table::new(
            format!("Figure 13 — {model}: mean latency ± std (s)"),
            &["Deployment", "workload-40", "workload-120", "workload-200"],
        );
        for platform in PLATFORMS {
            for runtime in RuntimeKind::ALL {
                let mut row = vec![format!("{} {runtime}", platform.label())];
                for preset in MmppPreset::ALL {
                    let a = cfg.run(&Deployment::new(platform, model, runtime), preset);
                    row.push(match a.latency {
                        Some(l) => format!("{:.3} ± {:.3}", l.mean, l.std_dev),
                        None => "-".into(),
                    });
                }
                t.push_row(row);
            }
        }
        tables.push(t);
    }
    notes.push(
        "Paper anchors: ORT1.4 is up to 2.51x faster on AWS and 3.61x on GCP for MobileNet; \
         the improvement is more moderate on VGG (1.47x on GCP) because execution time, not \
         cold start, dominates there."
            .to_string(),
    );
    (tables, notes)
}

/// Regenerates Table 2: serverless costs with ORT1.4.
pub fn table2(cfg: &ReproConfig) -> Output {
    let mut t = Table::new(
        "Table 2: costs for serverless serving with ORT1.4",
        &[
            "System",
            "Model",
            "workload-40",
            "workload-120",
            "workload-200",
        ],
    );
    for platform in PLATFORMS {
        for model in MODELS {
            let mut row = vec![platform.label().to_string(), model.to_string()];
            for preset in MmppPreset::ALL {
                let a = cfg.run(
                    &Deployment::new(platform, model, RuntimeKind::Ort14),
                    preset,
                );
                row.push(fmt_money(a.cost.total()));
            }
            t.push_row(row);
        }
    }
    let notes = vec![
        "Paper anchors: AWS MobileNet $0.011/$0.037/$0.062, AWS VGG $0.322/$0.931/$1.644, \
         GCP MobileNet $0.047/$0.160/$0.272, GCP VGG $0.383/$1.108/$2.455 — ORT cuts cost \
         up to 4.55x vs Table 1."
            .to_string(),
    ];
    (vec![t], notes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig13_two_tables_four_rows() {
        let (tables, _) = fig13(&ReproConfig::scaled(0.01));
        assert_eq!(tables.len(), 2);
        assert!(tables.iter().all(|t| t.len() == 4));
    }

    #[test]
    fn ort_beats_tf_on_latency_and_cost_for_mobilenet() {
        let cfg = ReproConfig::scaled(0.05);
        let tf = cfg.run(
            &Deployment::new(
                PlatformKind::AwsServerless,
                ModelKind::MobileNet,
                RuntimeKind::Tf115,
            ),
            MmppPreset::W120,
        );
        let ort = cfg.run(
            &Deployment::new(
                PlatformKind::AwsServerless,
                ModelKind::MobileNet,
                RuntimeKind::Ort14,
            ),
            MmppPreset::W120,
        );
        assert!(ort.mean_latency().unwrap() < tf.mean_latency().unwrap());
        assert!(ort.cost_dollars() < tf.cost_dollars());
    }

    #[test]
    fn table2_has_four_rows() {
        let (tables, _) = table2(&ReproConfig::scaled(0.01));
        assert_eq!(tables[0].len(), 4);
    }
}
