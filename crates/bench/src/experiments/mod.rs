//! Experiment regeneration: each submodule rebuilds one group of the
//! paper's artifacts and returns paper-style tables.
//!
//! | Module | Artifacts |
//! |---|---|
//! | [`workloads`] | Figure 4 |
//! | [`comparison`] | Figure 5, Table 1 |
//! | [`timelines`] | Figures 6, 8, 9 |
//! | [`instances`] | Figures 7, 11 |
//! | [`breakdown`] | Figures 10, 14 |
//! | [`microbench`] | Figure 12 |
//! | [`runtimes`] | Figure 13, Table 2 |
//! | [`sweeps`] | Figures 15, 16, 17 |
//! | [`extensions`] | ext-adaptive, ext-explorer, ext-scaling |

pub mod breakdown;
pub mod comparison;
pub mod extensions;
pub mod instances;
pub mod microbench;
pub mod runtimes;
pub mod sweeps;
pub mod timelines;
pub mod workloads;

use slsb_core::{
    analyze, Analysis, Deployment, Executor, ExperimentId, RunResult, Table, TraceCache,
};
use slsb_sim::Seed;
use slsb_workload::{MmppPreset, WorkloadTrace};
use std::sync::Arc;

/// Knobs shared by every experiment run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReproConfig {
    /// Experiment seed; the same seed reproduces identical tables.
    pub seed: u64,
    /// Workload-duration scale: 1.0 replays the paper's full ~15-minute
    /// workloads; benches use small fractions.
    pub scale: f64,
}

impl Default for ReproConfig {
    fn default() -> Self {
        ReproConfig {
            // Seed 127 is the calibrated default: its generated workloads
            // hit the paper's published request counts (15 000 / 51 600 /
            // 86 000) within 0.3% under the ziggurat samplers. Any seed
            // works; this one makes the regenerated tables directly
            // comparable to the paper's. (Seed 152 played this role for
            // the pre-ziggurat draw streams.)
            seed: 127,
            scale: 1.0,
        }
    }
}

impl ReproConfig {
    /// A scaled-down configuration for Criterion benches.
    pub fn scaled(scale: f64) -> Self {
        ReproConfig {
            scale,
            ..ReproConfig::default()
        }
    }

    /// The experiment seed.
    pub fn seed(&self) -> Seed {
        Seed(self.seed)
    }

    /// The workload trace for `preset` at this config's seed and scale,
    /// served from the process-wide [`TraceCache`]. Experiments replay the
    /// same three presets for almost every figure; the first request per
    /// `(seed, preset, scale)` generates, the rest share the realization.
    pub fn trace(&self, preset: MmppPreset) -> Arc<WorkloadTrace> {
        assert!(
            self.scale.is_finite() && self.scale > 0.0,
            "invalid scale: {}",
            self.scale
        );
        TraceCache::preset(self.seed().substream("workload"), preset, self.scale)
    }

    /// Runs `deployment` on `preset` and analyzes it.
    pub fn run(&self, deployment: &Deployment, preset: MmppPreset) -> Analysis {
        self.run_full(deployment, preset).1
    }

    /// Runs `deployment` on `preset`, keeping the raw records too.
    pub fn run_full(&self, deployment: &Deployment, preset: MmppPreset) -> (RunResult, Analysis) {
        let trace = self.trace(preset);
        let run = Executor::default()
            .run(deployment, &trace, self.seed())
            .expect("experiment deployments are valid by construction");
        let analysis = analyze(&run);
        (run, analysis)
    }
}

/// What one experiment produced: paper-style tables plus free-form notes.
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    /// Which artifact this regenerates.
    pub id: ExperimentId,
    /// Paper-style tables, in presentation order.
    pub tables: Vec<Table>,
    /// Commentary (observed highlights, paper-vs-measured remarks).
    pub notes: Vec<String>,
}

impl ExperimentOutput {
    /// Renders the whole output as Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("# {}\n\n", self.id.title());
        for t in &self.tables {
            out.push_str(&t.to_markdown());
            out.push('\n');
        }
        if !self.notes.is_empty() {
            out.push_str("Notes:\n");
            for n in &self.notes {
                out.push_str(&format!("- {n}\n"));
            }
        }
        out
    }
}

/// Regenerates one experiment.
pub fn run_experiment(id: ExperimentId, cfg: &ReproConfig) -> ExperimentOutput {
    let tables_notes = match id {
        ExperimentId::Fig4 => workloads::fig4(cfg),
        ExperimentId::Fig5 => comparison::fig5(cfg),
        ExperimentId::Table1 => comparison::table1(cfg),
        ExperimentId::Fig6 => timelines::fig6(cfg),
        ExperimentId::Fig7 => instances::fig7(cfg),
        ExperimentId::Fig8 => timelines::fig8(cfg),
        ExperimentId::Fig9 => timelines::fig9(cfg),
        ExperimentId::Fig10 => breakdown::fig10(cfg),
        ExperimentId::Fig11 => instances::fig11(cfg),
        ExperimentId::Fig12 => microbench::fig12(cfg),
        ExperimentId::Fig13 => runtimes::fig13(cfg),
        ExperimentId::Table2 => runtimes::table2(cfg),
        ExperimentId::Fig14 => breakdown::fig14(cfg),
        ExperimentId::Fig15 => sweeps::fig15(cfg),
        ExperimentId::Fig16 => sweeps::fig16(cfg),
        ExperimentId::Fig17 => sweeps::fig17(cfg),
        ExperimentId::ExtAdaptive => extensions::adaptive(cfg),
        ExperimentId::ExtExplorer => extensions::explorer(cfg),
        ExperimentId::ExtScaling => extensions::scaling(cfg),
        ExperimentId::ExtHybrid => extensions::hybrid(cfg),
    };
    ExperimentOutput {
        id,
        tables: tables_notes.0,
        notes: tables_notes.1,
    }
}

/// `(tables, notes)` pair every submodule function returns.
pub type Output = (Vec<Table>, Vec<String>);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_trace_shrinks_proportionally() {
        let full = ReproConfig::default();
        let small = ReproConfig::scaled(0.1);
        let a = full.trace(MmppPreset::W40);
        let b = small.trace(MmppPreset::W40);
        assert!(b.len() < a.len() / 5);
        assert_eq!(b.duration().as_secs_f64(), a.duration().as_secs_f64() * 0.1);
    }

    #[test]
    fn every_experiment_runs_at_tiny_scale() {
        let cfg = ReproConfig::scaled(0.01);
        for id in ExperimentId::ALL {
            let out = run_experiment(id, &cfg);
            assert!(!out.tables.is_empty(), "{id} produced no tables");
            assert!(!out.to_markdown().is_empty());
        }
    }
}
