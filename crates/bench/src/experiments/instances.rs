//! Figures 7 and 11: instance counts over time.

use super::{Output, ReproConfig};
use slsb_core::{Analysis, Deployment, Table};
use slsb_model::{ModelKind, RuntimeKind};
use slsb_platform::PlatformKind;
use slsb_workload::MmppPreset;

fn instance_table(title: &str, columns: &[(&str, &Analysis)]) -> Table {
    let mut headers: Vec<String> = vec!["t (s)".into()];
    headers.extend(columns.iter().map(|(l, _)| l.to_string()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(title, &header_refs);
    let n = columns
        .iter()
        .map(|(_, a)| a.instance_series.len())
        .max()
        .unwrap_or(0);
    for i in 0..n {
        let mut row = vec![format!("{}", i * 10)];
        for (_, a) in columns {
            row.push(
                a.instance_series
                    .get(i)
                    .map(|&(_, v)| v.to_string())
                    .unwrap_or_else(|| "-".into()),
            );
        }
        t.push_row(row);
    }
    t
}

/// Regenerates Figure 7: the number of in-service instances on the
/// ManagedML services, MobileNet at workload-40.
pub fn fig7(cfg: &ReproConfig) -> Output {
    let aws = cfg.run(
        &Deployment::new(
            PlatformKind::AwsManagedMl,
            ModelKind::MobileNet,
            RuntimeKind::Tf115,
        ),
        MmppPreset::W40,
    );
    let gcp = cfg.run(
        &Deployment::new(
            PlatformKind::GcpManagedMl,
            ModelKind::MobileNet,
            RuntimeKind::Tf115,
        ),
        MmppPreset::W40,
    );
    let t = instance_table(
        "Figure 7 — ManagedML in-service instances (MobileNet, workload-40)",
        &[("AWS-ManagedML", &aws), ("GCP-ManagedML", &gcp)],
    );
    let notes = vec![
        format!(
            "Peak instances: AWS {} / GCP {} (paper: AWS wants ~5 by minute 7, serving by \
             minute 11; GCP reaches 2 by minute 6)",
            aws.peak_instances, gcp.peak_instances
        ),
        "New instances take minutes to enter service, which is what queues and drops \
         requests in Figures 5–6."
            .to_string(),
    ];
    (vec![t], notes)
}

/// Regenerates Figure 11: the number of live instances on the serverless
/// platforms for all three models at workload-40.
pub fn fig11(cfg: &ReproConfig) -> Output {
    let mut tables = Vec::new();
    let mut notes = Vec::new();
    for model in ModelKind::ALL {
        let aws = cfg.run(
            &Deployment::new(PlatformKind::AwsServerless, model, RuntimeKind::Tf115),
            MmppPreset::W40,
        );
        let gcp = cfg.run(
            &Deployment::new(PlatformKind::GcpServerless, model, RuntimeKind::Tf115),
            MmppPreset::W40,
        );
        notes.push(format!(
            "{model}: cold-started instances AWS {} / GCP {} (GCP over-provisions; paper's \
             VGG example: ~100 created vs ~50 needed)",
            aws.cold_started, gcp.cold_started
        ));
        tables.push(instance_table(
            &format!("Figure 11 — serverless live instances ({model}, workload-40)"),
            &[("AWS-Serverless", &aws), ("GCP-Serverless", &gcp)],
        ));
    }
    notes.push(
        "Both platforms scale to tens/hundreds of instances within the first minute of a \
         surge — the elasticity that keeps serverless success ratios at ~100%."
            .to_string(),
    );
    (tables, notes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_emits_one_table() {
        let (tables, notes) = fig7(&ReproConfig::scaled(0.02));
        assert_eq!(tables.len(), 1);
        assert!(notes.len() >= 2);
    }

    #[test]
    fn fig11_gcp_overprovisions() {
        let cfg = ReproConfig::scaled(0.05);
        let aws = cfg.run(
            &Deployment::new(
                PlatformKind::AwsServerless,
                ModelKind::MobileNet,
                RuntimeKind::Tf115,
            ),
            MmppPreset::W40,
        );
        let gcp = cfg.run(
            &Deployment::new(
                PlatformKind::GcpServerless,
                ModelKind::MobileNet,
                RuntimeKind::Tf115,
            ),
            MmppPreset::W40,
        );
        assert!(
            gcp.cold_started as f64 > aws.cold_started as f64 * 1.1,
            "GCP {} vs AWS {}",
            gcp.cold_started,
            aws.cold_started
        );
    }
}
