//! Extension studies beyond the paper: adaptive batching (the Section 5.5
//! takeaway's "better way"), the Section 6 design-space navigator, and an
//! over-provisioning scaling-policy ablation (Section 6's first research
//! challenge).

use super::{Output, ReproConfig};
use slsb_core::{
    analyze, explore, fmt_money, fmt_opt_secs, BatchPolicy, Deployment, Executor, ExecutorConfig,
    ExplorerGrid, Table,
};
use slsb_model::{ModelKind, RuntimeKind};
use slsb_platform::{CloudProvider, Platform, PlatformKind, ServerlessConfig};
use slsb_sim::SimDuration;

use slsb_workload::MmppPreset;

/// Extension: fixed vs adaptive batching on AWS-Serverless at workload-120.
pub fn adaptive(cfg: &ReproConfig) -> Output {
    let mut t = Table::new(
        "Extension — adaptive vs fixed batching (AWS-Serverless, workload-120)",
        &[
            "Model",
            "Policy",
            "Mean latency",
            "p95",
            "Cost",
            "Invocations",
        ],
    );
    let policies: [(&str, Option<BatchPolicy>); 4] = [
        ("no batching", Some(BatchPolicy::None)),
        ("fixed(4)", Some(BatchPolicy::Fixed(4))),
        (
            "adaptive(200ms, max 8)",
            Some(BatchPolicy::Adaptive {
                max_wait: SimDuration::from_millis(200),
                max_batch: 8,
            }),
        ),
        (
            "adaptive(1s, max 16)",
            Some(BatchPolicy::Adaptive {
                max_wait: SimDuration::from_secs(1),
                max_batch: 16,
            }),
        ),
    ];
    for model in [ModelKind::MobileNet, ModelKind::Vgg] {
        for (label, policy) in &policies {
            let exec = Executor::new(ExecutorConfig {
                batch_override: *policy,
                ..ExecutorConfig::default()
            });
            let trace = cfg.trace(MmppPreset::W120);
            let dep = Deployment::new(PlatformKind::AwsServerless, model, RuntimeKind::Tf115);
            let run = exec
                .run(&dep, &trace, cfg.seed())
                .expect("valid deployment");
            let a = analyze(&run);
            t.push_row(vec![
                model.to_string(),
                label.to_string(),
                fmt_opt_secs(a.mean_latency()),
                fmt_opt_secs(a.latency.map(|l| l.p95)),
                fmt_money(a.cost.total()),
                a.invocations.to_string(),
            ]);
        }
    }
    let notes = vec![
        "Adaptive batching bounds the oldest request's extra wait, so it recovers most of \
         fixed batching's cost saving at a fraction of its latency penalty — the trade the \
         paper's Section 5.5 takeaway asks for."
            .to_string(),
    ];
    (vec![t], notes)
}

/// Extension: the design-space navigator (Section 6, third opportunity).
pub fn explorer(cfg: &ReproConfig) -> Output {
    let trace = cfg.trace(MmppPreset::W120);
    let base = Deployment::new(
        PlatformKind::AwsServerless,
        ModelKind::MobileNet,
        RuntimeKind::Tf115,
    );
    let exploration = explore(
        &Executor::default(),
        base,
        &ExplorerGrid::default(),
        &trace,
        cfg.seed(),
    )
    .expect("explorer grid is valid");

    let mut t = Table::new(
        "Extension — design-space sweep (AWS-Serverless, MobileNet, workload-120)",
        &[
            "Memory MB",
            "Runtime",
            "Batch",
            "Mean latency",
            "p95",
            "SR",
            "Cost",
        ],
    );
    for c in &exploration.candidates {
        t.push_row(vec![
            format!("{:.0}", c.deployment.memory_mb),
            c.deployment.runtime.to_string(),
            c.deployment.batch_size.to_string(),
            format!("{:.3}s", c.mean_latency),
            format!("{:.3}s", c.p95_latency),
            format!("{:.1}%", c.success_ratio * 100.0),
            format!("${:.3}", c.cost),
        ]);
    }

    let mut notes = Vec::new();
    let front = exploration.pareto_front(0.99);
    notes.push(format!(
        "Pareto front (latency vs cost, SR ≥ 99%): {}",
        front
            .iter()
            .map(|c| format!(
                "[{:.0}MB {} batch={} → {:.3}s ${:.3}]",
                c.deployment.memory_mb,
                c.deployment.runtime,
                c.deployment.batch_size,
                c.mean_latency,
                c.cost
            ))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    if let Some(best) = exploration.cheapest_under_slo(0.5, 0.99) {
        notes.push(format!(
            "Cheapest config meeting p95 ≤ 0.5s: {:.0}MB {} batch={} at ${:.3}",
            best.deployment.memory_mb,
            best.deployment.runtime,
            best.deployment.batch_size,
            best.cost
        ));
    }
    (vec![t], notes)
}

/// Extension: over-provisioning ablation — sweep the spawn factor of the
/// GCP-style scaling policy and measure cold-start waste and cost.
pub fn scaling(cfg: &ReproConfig) -> Output {
    let mut t = Table::new(
        "Extension — over-provisioning ablation (GCP-Serverless params, MobileNet, workload-40)",
        &[
            "Spawn factor",
            "Cold-started",
            "Peak instances",
            "Utilization",
            "Mean latency",
            "Cost",
        ],
    );
    let trace = cfg.trace(MmppPreset::W40);
    let dep = Deployment::new(
        PlatformKind::GcpServerless,
        ModelKind::MobileNet,
        RuntimeKind::Tf115,
    );
    for factor in [1.0, 1.3, 1.6, 2.0] {
        let mut scfg = ServerlessConfig::new(
            CloudProvider::Gcp,
            ModelKind::MobileNet.profile(),
            RuntimeKind::Tf115.profile(),
        );
        scfg.params.spawn_factor = factor;
        let platform = Platform::serverless(scfg, cfg.seed());
        let run = Executor::default().run_built(&dep, platform, &trace, cfg.seed());
        let a = analyze(&run);
        t.push_row(vec![
            format!("{factor:.1}"),
            a.cold_started.to_string(),
            a.peak_instances.to_string(),
            a.utilization
                .map(|u| format!("{:.1}%", u * 100.0))
                .unwrap_or_else(|| "-".into()),
            fmt_opt_secs(a.mean_latency()),
            fmt_money(a.cost.total()),
        ]);
    }
    // Second ablation axis: router coalescing — how many pending
    // invocations may wait per booting instance before another spawn.
    let mut t2 = Table::new(
        "Extension — router coalescing ablation (AWS-Serverless params, MobileNet, workload-40)",
        &[
            "Pending per starting",
            "Cold-started",
            "Peak instances",
            "Mean latency",
            "p99",
            "Cost",
        ],
    );
    let dep_aws = Deployment::new(
        PlatformKind::AwsServerless,
        ModelKind::MobileNet,
        RuntimeKind::Tf115,
    );
    for depth in [1u32, 2, 4, 8] {
        let mut scfg = ServerlessConfig::new(
            CloudProvider::Aws,
            ModelKind::MobileNet.profile(),
            RuntimeKind::Tf115.profile(),
        );
        scfg.params.pending_per_starting = depth;
        let platform = Platform::serverless(scfg, cfg.seed());
        let run = Executor::default().run_built(&dep_aws, platform, &trace, cfg.seed());
        let a = analyze(&run);
        t2.push_row(vec![
            depth.to_string(),
            a.cold_started.to_string(),
            a.peak_instances.to_string(),
            fmt_opt_secs(a.mean_latency()),
            fmt_opt_secs(a.latency.map(|l| l.p99)),
            fmt_money(a.cost.total()),
        ]);
    }

    let notes = vec![
        "Speculative spawning (factor > 1) multiplies cold-started instances without \
         improving latency — quantifying the paper's first research challenge: \
         over-provisioning is pure cost."
            .to_string(),
        "Coalescing pending invocations onto booting instances (depth > 1) cuts the \
         instance count at a small tail-latency price; an exact policy would sit at the \
         knee of this curve."
            .to_string(),
    ];
    (vec![t, t2], notes)
}

/// Extension: MArk-style hybrid serving — a provisioned GPU box handles the
/// base load and bursts spill to a serverless function. Compares pure GPU,
/// pure serverless, and the hybrid on the paper's hardest setting
/// (MobileNet at workload-200, where Figure 9's dynamics bite).
pub fn hybrid(cfg: &ReproConfig) -> Output {
    use slsb_platform::{HybridConfig, SpilloverPolicy, VmServerConfig};

    let trace = cfg.trace(MmppPreset::W200);
    let dep = Deployment::new(
        PlatformKind::AwsServerless,
        ModelKind::MobileNet,
        RuntimeKind::Tf115,
    );
    let exec = Executor::default();

    let mut t = Table::new(
        "Extension — hybrid serving (MobileNet, workload-200, AWS)",
        &[
            "System",
            "Mean latency",
            "p99",
            "SR",
            "SLO(0.3s) attainment",
            "Cost",
        ],
    );
    let mut notes = Vec::new();

    let mut push = |name: &str, run: &slsb_core::RunResult| {
        let a = analyze(run);
        t.push_row(vec![
            name.to_string(),
            fmt_opt_secs(a.mean_latency()),
            fmt_opt_secs(a.latency.map(|l| l.p99)),
            format!("{:.1}%", a.success_ratio * 100.0),
            format!(
                "{:.1}%",
                run.slo_attainment(SimDuration::from_millis(300)) * 100.0
            ),
            fmt_money(a.cost.total()),
        ]);
    };

    let gpu = exec
        .run(
            &Deployment::new(
                PlatformKind::AwsGpu,
                ModelKind::MobileNet,
                RuntimeKind::Tf115,
            ),
            &trace,
            cfg.seed(),
        )
        .expect("valid");
    push("Pure GPU server", &gpu);

    let sls = exec.run(&dep, &trace, cfg.seed()).expect("valid");
    push("Pure serverless", &sls);

    for depth in [4usize, 16, 64] {
        let hybrid_cfg = HybridConfig {
            vm: VmServerConfig::gpu(
                CloudProvider::Aws,
                ModelKind::MobileNet.profile(),
                RuntimeKind::Tf115.profile(),
            ),
            serverless: ServerlessConfig::new(
                CloudProvider::Aws,
                ModelKind::MobileNet.profile(),
                RuntimeKind::Tf115.profile(),
            ),
            policy: SpilloverPolicy::QueueDepth(depth),
        };
        let platform = Platform::hybrid(hybrid_cfg, cfg.seed());
        let run = exec.run_built(&dep, platform, &trace, cfg.seed());
        push(&format!("Hybrid (spill at depth {depth})"), &run);
    }

    notes.push(
        "The MArk-style hybrid keeps the GPU's low unit latency for the base load while \
         the serverless pool absorbs surge overflow — avoiding the pure GPU's queueing \
         collapse at workload-200 at a fraction of pure serverless' invocation bill."
            .to_string(),
    );
    (vec![t], notes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_outputs_eight_rows() {
        let (tables, _) = adaptive(&ReproConfig::scaled(0.02));
        assert_eq!(tables[0].len(), 8);
    }

    #[test]
    fn scaling_factor_one_spawns_fewest() {
        let cfg = ReproConfig::scaled(0.05);
        let (tables, _) = scaling(&cfg);
        assert_eq!(tables[0].len(), 4);
    }

    #[test]
    fn explorer_reports_front() {
        let (tables, notes) = explorer(&ReproConfig::scaled(0.01));
        assert_eq!(tables[0].len(), 4 * 2 * 3);
        assert!(!notes.is_empty());
    }

    #[test]
    fn hybrid_emits_five_rows() {
        let (tables, notes) = hybrid(&ReproConfig::scaled(0.02));
        assert_eq!(tables[0].len(), 5);
        assert!(!notes.is_empty());
    }
}
