//! Figure 12: in-depth micro-benchmarks with workload-120 — container
//! size, downloaded size, input size, and prediction count.

use super::{Output, ReproConfig};
use slsb_core::{fmt_opt_secs, Deployment, Table};
use slsb_model::{ModelKind, RuntimeKind};
use slsb_platform::PlatformKind;
use slsb_workload::MmppPreset;

const PLATFORMS: [PlatformKind; 2] = [PlatformKind::AwsServerless, PlatformKind::GcpServerless];

/// Regenerates Figure 12a–d.
pub fn fig12(cfg: &ReproConfig) -> Output {
    let mut tables = Vec::new();

    // (a) Container size: inject dummy MB into the image.
    let mut a = Table::new(
        "Figure 12a — vary container size (MobileNet, TF1.15): cold-start E2E",
        &["Extra image MB", "AWS cs E2E", "GCP cs E2E"],
    );
    for extra in [0.0, 512.0, 1024.0, 1536.0] {
        let mut row = vec![format!("{extra:.0}")];
        for platform in PLATFORMS {
            let mut d = Deployment::new(platform, ModelKind::MobileNet, RuntimeKind::Tf115);
            d.extra_container_mb = extra;
            let an = cfg.run(&d, MmppPreset::W120);
            row.push(fmt_opt_secs(an.cold.e2e_cold));
        }
        a.push_row(row);
    }
    tables.push(a);

    // (b) Downloaded size: extra dummy data beside the ALBERT model.
    let mut b = Table::new(
        "Figure 12b — vary downloaded size (ALBERT, TF1.15): download time / cold-start E2E",
        &[
            "Extra MB",
            "AWS download",
            "AWS cs E2E",
            "GCP download",
            "GCP cs E2E",
        ],
    );
    for extra in [0.0, 100.0, 200.0, 300.0] {
        let mut row = vec![format!("{extra:.0}")];
        for platform in PLATFORMS {
            let mut d = Deployment::new(platform, ModelKind::Albert, RuntimeKind::Tf115);
            d.extra_download_mb = extra;
            let an = cfg.run(&d, MmppPreset::W120);
            row.push(fmt_opt_secs(an.cold.download));
            row.push(fmt_opt_secs(an.cold.e2e_cold));
        }
        b.push_row(row);
    }
    tables.push(b);

    // (c) Input size: pack more samples per request, predict only one.
    let mut c = Table::new(
        "Figure 12c — vary input size (MobileNet, TF1.15): warm-up E2E",
        &["Samples/request", "AWS wu E2E", "GCP wu E2E"],
    );
    for samples in [1u32, 4, 8, 16] {
        let mut row = vec![samples.to_string()];
        for platform in PLATFORMS {
            let mut d = Deployment::new(platform, ModelKind::MobileNet, RuntimeKind::Tf115);
            d.samples_per_request = samples;
            let an = cfg.run(&d, MmppPreset::W120);
            row.push(fmt_opt_secs(an.cold.e2e_warm));
        }
        c.push_row(row);
    }
    tables.push(c);

    // (d) Prediction count: execute the inference several times per request.
    let mut dtab = Table::new(
        "Figure 12d — vary number of inferences (MobileNet, TF1.15): overall latency",
        &["Inferences/request", "AWS mean latency", "GCP mean latency"],
    );
    for repeats in [1u32, 2, 4, 8] {
        let mut row = vec![repeats.to_string()];
        for platform in PLATFORMS {
            let mut d = Deployment::new(platform, ModelKind::MobileNet, RuntimeKind::Tf115);
            d.inference_repeats = repeats;
            let an = cfg.run(&d, MmppPreset::W120);
            row.push(fmt_opt_secs(an.mean_latency()));
        }
        dtab.push_row(row);
    }
    tables.push(dtab);

    let notes = vec![
        "Expected shapes (paper takeaways): container size barely moves cold-start E2E \
         (~0.1–0.2s per +0.5–1.5GB); downloaded size matters, and AWS downloads ~4x faster \
         than GCP (+300MB ⇒ +2.39s vs +10.06s); input size has a minor effect on warm E2E; \
         prediction count grows latency roughly linearly and dominates when large."
            .to_string(),
    ];
    (tables, notes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_emits_four_tables() {
        let (tables, notes) = fig12(&ReproConfig::scaled(0.01));
        assert_eq!(tables.len(), 4);
        assert!(tables.iter().all(|t| t.len() == 4));
        assert!(!notes.is_empty());
    }

    #[test]
    fn download_size_raises_cold_start() {
        let cfg = ReproConfig::scaled(0.03);
        let base = {
            let d = Deployment::new(
                PlatformKind::GcpServerless,
                ModelKind::Albert,
                RuntimeKind::Tf115,
            );
            cfg.run(&d, MmppPreset::W120)
        };
        let heavy = {
            let mut d = Deployment::new(
                PlatformKind::GcpServerless,
                ModelKind::Albert,
                RuntimeKind::Tf115,
            );
            d.extra_download_mb = 300.0;
            cfg.run(&d, MmppPreset::W120)
        };
        assert!(
            heavy.cold.download.unwrap() > base.cold.download.unwrap() + 5.0,
            "GCP +300MB should add ~10s of download"
        );
    }

    #[test]
    fn inference_repeats_scale_latency() {
        let cfg = ReproConfig::scaled(0.03);
        let one = {
            let d = Deployment::new(
                PlatformKind::AwsServerless,
                ModelKind::MobileNet,
                RuntimeKind::Tf115,
            );
            cfg.run(&d, MmppPreset::W120)
        };
        let eight = {
            let mut d = Deployment::new(
                PlatformKind::AwsServerless,
                ModelKind::MobileNet,
                RuntimeKind::Tf115,
            );
            d.inference_repeats = 8;
            cfg.run(&d, MmppPreset::W120)
        };
        assert!(
            eight.cold.predict_warm.unwrap() > one.cold.predict_warm.unwrap() * 4.0,
            "8 inferences must cost much more than 1"
        );
    }
}
