//! Tracked kernel performance baseline behind `slsb bench`.
//!
//! Criterion benches are great for interactive tuning but their output is
//! ephemeral; this module produces a small, committed JSON artifact
//! (`BENCH_kernel.json`) so kernel regressions show up in review. Every
//! measurement is taken twice — once with the default timer-wheel kernel
//! and once with the reference binary-heap kernel — so the file records
//! the speedup alongside the baseline it was measured against.
//!
//! Two layers are measured:
//!
//! * **schedule/pop microbenches** drive [`EventQueue`] directly, in two
//!   patterns: `preload-drain` (bulk-schedule a shuffled horizon, then
//!   drain — stresses overflow handling and re-sorting) and
//!   `steady-state` (a full queue where every pop schedules a near-future
//!   replacement — the shape simulations actually have, and where the
//!   wheel's O(1) hot path pays off).
//! * **end-to-end replicates** run the full executor on a serverless
//!   deployment across several seeds, the same shape as `slsb replicate`.
//!
//! Allocation counts come from [`CountingAllocator`], which the `slsb`
//! binary installs as its `#[global_allocator]`. When the allocator is
//! not installed (e.g. library tests), counts read as zero deltas and the
//! report simply omits that signal.

use serde::Serialize;
use slsb_core::{Deployment, Executor};
use slsb_model::{ModelKind, RuntimeKind};
use slsb_platform::PlatformKind;
use slsb_sim::event::{EventQueue, Kernel};
use slsb_sim::{Seed, SimTime};
use slsb_workload::MmppPreset;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A pass-through allocator that counts allocations. Install it with
/// `#[global_allocator]` in a binary to make [`allocation_count`] live;
/// the counter uses relaxed atomics, so the overhead is one uncontended
/// fetch-add per allocation.
pub struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates allocation and deallocation directly to `System`;
// the counter has no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Total allocations observed since process start (zero if the counting
/// allocator is not installed as the global allocator).
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// One schedule/pop microbench measurement.
#[derive(Debug, Clone, Serialize)]
pub struct KernelBench {
    /// Which kernel ran (`wheel` or `heap`).
    pub kernel: String,
    /// Insert/pop pattern (`preload-drain` or `steady-state`).
    pub pattern: String,
    /// Events scheduled and popped (one event = one schedule + one pop).
    pub events: u64,
    pub elapsed_secs: f64,
    pub events_per_sec: f64,
    /// Heap allocations during the timed region (0 when the counting
    /// allocator is not installed).
    pub allocations: u64,
}

/// One end-to-end replicate measurement (full executor, N seeds).
#[derive(Debug, Clone, Serialize)]
pub struct EndToEndBench {
    pub kernel: String,
    pub preset: String,
    pub requests: u64,
    pub reps: u64,
    /// Engine events processed across all reps.
    pub engine_events: u64,
    pub elapsed_secs: f64,
    pub events_per_sec: f64,
    pub allocations: u64,
}

/// The committed baseline artifact (`BENCH_kernel.json`).
#[derive(Debug, Clone, Serialize)]
pub struct BenchReport {
    pub schema: String,
    /// True when produced by `slsb bench --quick` (smaller workloads;
    /// numbers are smoke-test grade, not baseline grade).
    pub quick: bool,
    pub schedule_pop: Vec<KernelBench>,
    pub end_to_end: Vec<EndToEndBench>,
    /// Wheel-over-heap throughput ratio across the schedule/pop
    /// microbenches (total events / total elapsed per kernel).
    pub kernel_speedup: f64,
    /// Wheel-over-heap throughput ratio for the end-to-end replicates.
    pub end_to_end_speedup: f64,
}

/// Workload sizes for one `slsb bench` invocation.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    pub quick: bool,
}

impl BenchConfig {
    fn micro_events(&self) -> u64 {
        if self.quick {
            50_000
        } else {
            400_000
        }
    }

    fn micro_reps(&self) -> u64 {
        if self.quick {
            2
        } else {
            5
        }
    }

    fn preset(&self) -> MmppPreset {
        if self.quick {
            MmppPreset::W40
        } else {
            MmppPreset::W120
        }
    }

    fn e2e_reps(&self) -> u64 {
        if self.quick {
            2
        } else {
            5
        }
    }
}

/// Cheap deterministic shuffle for microbench timestamps.
fn mix(i: u64, rep: u64) -> u64 {
    i.wrapping_add(rep.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_mul(2_654_435_761)
}

fn micro_preload_drain(kernel: Kernel, n: u64, reps: u64) -> KernelBench {
    let a0 = allocation_count();
    let t0 = Instant::now();
    for rep in 0..reps {
        let mut q = EventQueue::with_kernel_and_capacity(kernel, n as usize);
        for i in 0..n {
            // Shuffled stamps across a ~1000 s horizon: most inserts land
            // in the wheel's far-future overflow, the worst case for it.
            q.schedule_at(SimTime::from_micros(mix(i, rep) % 1_000_000_000), i);
        }
        while let Some(ev) = q.pop() {
            std::hint::black_box(ev);
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let events = n * reps;
    KernelBench {
        kernel: kernel.name().to_string(),
        pattern: "preload-drain".to_string(),
        events,
        elapsed_secs: elapsed,
        events_per_sec: events as f64 / elapsed.max(1e-12),
        allocations: allocation_count() - a0,
    }
}

fn micro_steady_state(kernel: Kernel, n: u64, reps: u64) -> KernelBench {
    // A resident population of pending events, as in a simulation with
    // this many in-flight requests.
    const RESIDENT: u64 = 4_096;
    let a0 = allocation_count();
    let t0 = Instant::now();
    for rep in 0..reps {
        let mut q = EventQueue::with_kernel_and_capacity(kernel, RESIDENT as usize);
        for i in 0..RESIDENT {
            q.schedule_at(SimTime::from_micros(mix(i, rep) % 1_000_000), i);
        }
        // Each pop schedules a near-future replacement, so the queue
        // stays full and the cursor keeps moving — the steady-state shape
        // where the wheel's O(1) insert/pop dominates.
        for _ in 0..n {
            let (at, ev) = q.pop().expect("queue stays populated");
            let delay = 1 + mix(ev, rep) % 50_000;
            q.schedule_at(at + slsb_sim::SimDuration::from_micros(delay), ev);
        }
        while let Some(ev) = q.pop() {
            std::hint::black_box(ev);
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let events = n * reps;
    KernelBench {
        kernel: kernel.name().to_string(),
        pattern: "steady-state".to_string(),
        events,
        elapsed_secs: elapsed,
        events_per_sec: events as f64 / elapsed.max(1e-12),
        allocations: allocation_count() - a0,
    }
}

fn end_to_end(kernel: Kernel, cfg: &BenchConfig) -> Result<EndToEndBench, String> {
    let preset = cfg.preset();
    let trace = preset.generate(Seed(152).substream("bench-workload"));
    let dep = Deployment::new(
        PlatformKind::AwsServerless,
        ModelKind::MobileNet,
        RuntimeKind::Tf115,
    );
    let exec = Executor::default().with_kernel(kernel);
    // Warm up once so page faults and lazy init are off the clock.
    exec.run(&dep, &trace, Seed(1)).map_err(|e| e.to_string())?;
    let mut engine_events = 0u64;
    let a0 = allocation_count();
    let t0 = Instant::now();
    for rep in 0..cfg.e2e_reps() {
        let run = exec
            .run(&dep, &trace, Seed(1000 + rep))
            .map_err(|e| e.to_string())?;
        engine_events += run.engine_events;
    }
    let elapsed = t0.elapsed().as_secs_f64();
    Ok(EndToEndBench {
        kernel: kernel.name().to_string(),
        preset: preset.spec().name.to_string(),
        requests: trace.len() as u64,
        reps: cfg.e2e_reps(),
        engine_events,
        elapsed_secs: elapsed,
        events_per_sec: engine_events as f64 / elapsed.max(1e-12),
        allocations: allocation_count() - a0,
    })
}

fn throughput(benches: &[&KernelBench]) -> f64 {
    let events: u64 = benches.iter().map(|b| b.events).sum();
    let elapsed: f64 = benches.iter().map(|b| b.elapsed_secs).sum();
    events as f64 / elapsed.max(1e-12)
}

/// Runs the full measurement matrix and assembles the report.
pub fn run_benchmarks(cfg: &BenchConfig) -> Result<BenchReport, String> {
    let n = cfg.micro_events();
    let reps = cfg.micro_reps();
    // Warm up the allocator and branch predictors off the clock.
    micro_preload_drain(Kernel::Wheel, n / 10, 1);
    micro_preload_drain(Kernel::Heap, n / 10, 1);

    let mut schedule_pop = Vec::new();
    for kernel in [Kernel::Wheel, Kernel::Heap] {
        schedule_pop.push(micro_preload_drain(kernel, n, reps));
        schedule_pop.push(micro_steady_state(kernel, n, reps));
    }

    let wheel: Vec<&KernelBench> = schedule_pop
        .iter()
        .filter(|b| b.kernel == "wheel")
        .collect();
    let heap: Vec<&KernelBench> = schedule_pop.iter().filter(|b| b.kernel == "heap").collect();
    let kernel_speedup = throughput(&wheel) / throughput(&heap).max(1e-12);

    let e2e_wheel = end_to_end(Kernel::Wheel, cfg)?;
    let e2e_heap = end_to_end(Kernel::Heap, cfg)?;
    let end_to_end_speedup = e2e_wheel.events_per_sec / e2e_heap.events_per_sec.max(1e-12);

    Ok(BenchReport {
        schema: "slsb-bench-kernel/v1".to_string(),
        quick: cfg.quick,
        schedule_pop,
        end_to_end: vec![e2e_wheel, e2e_heap],
        kernel_speedup,
        end_to_end_speedup,
    })
}

/// Human-readable summary of a report, one line per measurement.
pub fn summary(report: &BenchReport) -> String {
    let mut out = String::new();
    for b in &report.schedule_pop {
        out.push_str(&format!(
            "{:<5} {:<13} {:>9} ev in {:>7.3}s = {:>12.0} ev/s  ({} allocs)\n",
            b.kernel, b.pattern, b.events, b.elapsed_secs, b.events_per_sec, b.allocations
        ));
    }
    for b in &report.end_to_end {
        out.push_str(&format!(
            "{:<5} end-to-end {} x{:<2} {:>9} ev in {:>7.3}s = {:>12.0} ev/s  ({} allocs)\n",
            b.kernel,
            b.preset,
            b.reps,
            b.engine_events,
            b.elapsed_secs,
            b.events_per_sec,
            b.allocations
        ));
    }
    out.push_str(&format!(
        "kernel schedule/pop speedup (wheel vs heap): {:.2}x\n",
        report.kernel_speedup
    ));
    out.push_str(&format!(
        "end-to-end replicate speedup (wheel vs heap): {:.2}x",
        report.end_to_end_speedup
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_benchmarks_produce_consistent_report() {
        let cfg = BenchConfig { quick: true };
        let report = run_benchmarks(&cfg).unwrap();
        assert!(report.quick);
        assert_eq!(report.schedule_pop.len(), 4);
        assert_eq!(report.end_to_end.len(), 2);
        for b in &report.schedule_pop {
            assert!(b.events_per_sec > 0.0, "{b:?}");
        }
        for b in &report.end_to_end {
            assert!(b.events_per_sec > 0.0, "{b:?}");
            assert!(b.engine_events > 0, "{b:?}");
        }
        assert!(report.kernel_speedup > 0.0);
        assert!(report.end_to_end_speedup > 0.0);
        // The report round-trips through the JSON layer.
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("slsb-bench-kernel/v1"));
    }

    #[test]
    fn allocation_counter_is_monotone() {
        let a = allocation_count();
        let v = vec![1u8; 1024];
        std::hint::black_box(&v);
        assert!(allocation_count() >= a);
    }
}
