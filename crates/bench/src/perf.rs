//! Tracked kernel performance baseline behind `slsb bench`.
//!
//! Criterion benches are great for interactive tuning but their output is
//! ephemeral; this module produces a small, committed JSON artifact
//! (`BENCH_kernel.json`) so kernel regressions show up in review. Every
//! measurement is taken twice — once with the default timer-wheel kernel
//! and once with the reference binary-heap kernel — so the file records
//! the speedup alongside the baseline it was measured against.
//!
//! Two layers are measured:
//!
//! * **schedule/pop microbenches** drive [`EventQueue`] directly, in two
//!   patterns: `preload-drain` (bulk-schedule a shuffled horizon, then
//!   drain — stresses overflow handling and re-sorting) and
//!   `steady-state` (a full queue where every pop schedules a near-future
//!   replacement — the shape simulations actually have, and where the
//!   wheel's O(1) hot path pays off).
//! * **end-to-end replicates** run the full executor on a serverless
//!   deployment across several seeds, the same shape as `slsb replicate`.
//!
//! Allocation counts come from [`CountingAllocator`], which the `slsb`
//! binary installs as its `#[global_allocator]`. When the allocator is
//! not installed (e.g. library tests), counts read as zero deltas and the
//! report simply omits that signal. The counter itself lives in
//! [`slsb_sim::alloc`], at the bottom of the crate graph, which also
//! provides the per-subsystem region attribution the report's
//! `alloc_breakdown` is built from.

use serde::{Deserialize, Serialize};
use slsb_core::{Deployment, Executor, FleetRunner, FleetScenario, FleetSource, Jobs};
use slsb_model::{ModelKind, RuntimeKind};
use slsb_platform::PlatformKind;
use slsb_sim::event::{EventQueue, Kernel};
use slsb_sim::{Seed, SimTime};
use slsb_workload::MmppPreset;
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::BTreeMap;
use std::time::Instant;

/// A pass-through allocator that counts allocations. Install it with
/// `#[global_allocator]` in a binary to make [`allocation_count`] live;
/// the counter uses relaxed atomics, so the overhead is one uncontended
/// fetch-add per allocation (plus one relaxed load for the region gate).
pub struct CountingAllocator;

// SAFETY: delegates allocation and deallocation directly to `System`;
// the counter has no effect on the returned memory, and `note_alloc`
// never allocates.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        slsb_sim::alloc::note_alloc();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        slsb_sim::alloc::note_alloc();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Total allocations observed since process start (zero if the counting
/// allocator is not installed as the global allocator).
pub fn allocation_count() -> u64 {
    slsb_sim::alloc::allocation_count()
}

/// One schedule/pop microbench measurement.
#[derive(Debug, Clone, Serialize)]
pub struct KernelBench {
    /// Which kernel ran (`wheel` or `heap`).
    pub kernel: String,
    /// Insert/pop pattern (`preload-drain` or `steady-state`).
    pub pattern: String,
    /// Events scheduled and popped (one event = one schedule + one pop).
    pub events: u64,
    pub elapsed_secs: f64,
    pub events_per_sec: f64,
    /// Heap allocations during the timed region (0 when the counting
    /// allocator is not installed).
    pub allocations: u64,
}

/// One end-to-end replicate measurement (full executor, N seeds).
#[derive(Debug, Clone, Serialize)]
pub struct EndToEndBench {
    pub kernel: String,
    pub preset: String,
    /// Execution mode: `sequential` (the default round-robin executor) or
    /// `sharded` (per-client cells, `--shards`).
    pub mode: String,
    pub requests: u64,
    pub reps: u64,
    /// Engine events processed across all reps.
    pub engine_events: u64,
    pub elapsed_secs: f64,
    pub events_per_sec: f64,
    pub allocations: u64,
    /// `allocations / requests` — heap allocations charged per unique
    /// request in the trace (the timed section spans all reps, so arena
    /// reuse across reps drives this toward zero).
    pub allocs_per_request: f64,
}

/// The streaming fleet end-to-end measurement: [`FleetRunner`] over a
/// synthesized Zipf fleet, the same shape as `slsb run --fleet`. Unlike
/// the per-deployment replicates, this drives hundreds of tenants through
/// the lazy k-way arrival merge, so its allocs-per-request headline grades
/// the O(apps) streaming claim rather than the per-request arena.
#[derive(Debug, Clone, Serialize)]
pub struct FleetBench {
    /// Apps in the synthesized fleet.
    pub apps: u32,
    /// Requests simulated across all timed reps.
    pub requests: u64,
    pub reps: u64,
    /// Engine events processed across all timed reps.
    pub engine_events: u64,
    /// Wall time across all timed reps (including slow, interfered ones).
    pub elapsed_secs: f64,
    /// Peak sustained throughput: each rep is timed separately and the
    /// fastest rep's events/elapsed wins. Interference on a shared box
    /// only ever *slows* a run, so the min-time (best-rep) estimator is
    /// the standard way to reject that one-sided noise; the committed
    /// row and the verify.sh throughput gate both read this field.
    pub events_per_sec: f64,
    pub allocations: u64,
    /// `allocations / requests` across the timed reps. The streaming
    /// arrival path holds memory at O(apps + in-flight), so this stays
    /// near zero even as the request count grows.
    pub allocs_per_request: f64,
}

/// Per-subsystem allocation attribution for one untimed wheel replicate,
/// measured with [`slsb_sim::alloc`] region guards enabled.
#[derive(Debug, Clone, Serialize)]
pub struct AllocBreakdown {
    /// Executor setup and request bookkeeping (and anything unclaimed).
    pub executor: u64,
    /// Event-queue schedule/pop.
    pub kernel: u64,
    /// Platform models: submit/scale/bill/drain.
    pub platform: u64,
    /// Observability: trace recording and span emission.
    pub obs: u64,
}

/// One historical data point in the report's `trajectory`: the headline
/// numbers of a past `slsb bench` run, stamped with its git revision.
/// `slsb bench` appends to this list instead of discarding history.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrajectoryEntry {
    /// Short git revision the measurement was taken at (`unknown` when
    /// git is unavailable).
    pub rev: String,
    /// UTC date of the measurement, `YYYY-MM-DD`.
    pub date: String,
    /// Whether this was a `--quick` run (smoke-test grade numbers).
    pub quick: bool,
    /// Wheel end-to-end throughput (engine events per second).
    pub end_to_end_events_per_sec: f64,
    /// Wheel end-to-end allocations per unique request.
    pub allocs_per_request: f64,
    /// Wheel-over-heap schedule/pop speedup.
    pub kernel_speedup: f64,
    /// Wheel-over-heap end-to-end speedup.
    pub end_to_end_speedup: f64,
    /// Streaming fleet end-to-end throughput (engine events per second);
    /// zero in entries recorded before the fleet bench existed.
    #[serde(default = "zero_f64")]
    pub fleet_events_per_sec: f64,
}

fn zero_f64() -> f64 {
    0.0
}

/// The committed baseline artifact (`BENCH_kernel.json`).
#[derive(Debug, Clone, Serialize)]
pub struct BenchReport {
    pub schema: String,
    /// True when produced by `slsb bench --quick` (smaller workloads;
    /// numbers are smoke-test grade, not baseline grade).
    pub quick: bool,
    pub schedule_pop: Vec<KernelBench>,
    pub end_to_end: Vec<EndToEndBench>,
    /// The streaming multi-tenant fleet measurement (wheel kernel).
    pub fleet: FleetBench,
    /// Wheel-over-heap throughput ratio across the schedule/pop
    /// microbenches (total events / total elapsed per kernel).
    pub kernel_speedup: f64,
    /// Wheel-over-heap throughput ratio for the end-to-end replicates
    /// (sequential mode).
    pub end_to_end_speedup: f64,
    /// Headline allocations-per-request of the sequential wheel
    /// replicate — the number the zero-alloc request path is graded on.
    pub allocs_per_request: f64,
    /// Where the sequential wheel replicate's allocations come from
    /// (one untimed rep with region attribution enabled).
    pub alloc_breakdown: AllocBreakdown,
    /// Measurement history, oldest first; the current run is last.
    /// `slsb bench` carries forward the trajectory of the report it is
    /// about to overwrite.
    pub trajectory: Vec<TrajectoryEntry>,
}

/// Workload sizes for one `slsb bench` invocation.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    pub quick: bool,
    /// Measure the fleet row at full size even when `quick`. The full
    /// fleet row costs well under a second, so `slsb bench --check` uses
    /// this to grade the third-wave fleet throughput bar while keeping
    /// the (expensive) micro and replicate matrices at smoke size.
    pub fleet_full: bool,
}

impl BenchConfig {
    /// A quick-size fleet row only when quick mode is on and full-size
    /// fleet measurement was not explicitly requested.
    fn fleet_quick(&self) -> bool {
        self.quick && !self.fleet_full
    }

    fn micro_events(&self) -> u64 {
        if self.quick {
            50_000
        } else {
            400_000
        }
    }

    fn micro_reps(&self) -> u64 {
        if self.quick {
            2
        } else {
            5
        }
    }

    fn preset(&self) -> MmppPreset {
        if self.quick {
            MmppPreset::W40
        } else {
            MmppPreset::W120
        }
    }

    fn e2e_reps(&self) -> u64 {
        if self.quick {
            2
        } else {
            5
        }
    }

    fn fleet_apps(&self) -> u32 {
        if self.fleet_quick() {
            64
        } else {
            FLEET_GATE_MIN_APPS
        }
    }

    fn fleet_rate(&self) -> f64 {
        if self.fleet_quick() {
            150.0
        } else {
            400.0
        }
    }

    fn fleet_duration_s(&self) -> f64 {
        if self.fleet_quick() {
            60.0
        } else {
            240.0
        }
    }

    fn fleet_reps(&self) -> u64 {
        // Full mode takes the best rep (see fleet_end_to_end), so more
        // reps widen the window for catching an interference-free slot
        // on a busy box; each full-size rep costs well under 0.1 s.
        if self.fleet_quick() {
            1
        } else {
            16
        }
    }
}

/// Cheap deterministic shuffle for microbench timestamps.
fn mix(i: u64, rep: u64) -> u64 {
    i.wrapping_add(rep.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_mul(2_654_435_761)
}

fn micro_preload_drain(kernel: Kernel, n: u64, reps: u64) -> KernelBench {
    let a0 = allocation_count();
    let t0 = Instant::now();
    for rep in 0..reps {
        let mut q = EventQueue::with_kernel_and_capacity(kernel, n as usize);
        for i in 0..n {
            // Shuffled stamps across a ~1000 s horizon: most inserts land
            // in the wheel's far-future overflow, the worst case for it.
            q.schedule_at(SimTime::from_micros(mix(i, rep) % 1_000_000_000), i);
        }
        while let Some(ev) = q.pop() {
            std::hint::black_box(ev);
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let events = n * reps;
    KernelBench {
        kernel: kernel.name().to_string(),
        pattern: "preload-drain".to_string(),
        events,
        elapsed_secs: elapsed,
        events_per_sec: events as f64 / elapsed.max(1e-12),
        allocations: allocation_count() - a0,
    }
}

fn micro_steady_state(kernel: Kernel, n: u64, reps: u64) -> KernelBench {
    // A resident population of pending events, as in a simulation with
    // this many in-flight requests.
    const RESIDENT: u64 = 4_096;
    let a0 = allocation_count();
    let t0 = Instant::now();
    for rep in 0..reps {
        let mut q = EventQueue::with_kernel_and_capacity(kernel, RESIDENT as usize);
        for i in 0..RESIDENT {
            q.schedule_at(SimTime::from_micros(mix(i, rep) % 1_000_000), i);
        }
        // Each pop schedules a near-future replacement, so the queue
        // stays full and the cursor keeps moving — the steady-state shape
        // where the wheel's O(1) insert/pop dominates.
        for _ in 0..n {
            let (at, ev) = q.pop().expect("queue stays populated");
            let delay = 1 + mix(ev, rep) % 50_000;
            q.schedule_at(at + slsb_sim::SimDuration::from_micros(delay), ev);
        }
        while let Some(ev) = q.pop() {
            std::hint::black_box(ev);
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let events = n * reps;
    KernelBench {
        kernel: kernel.name().to_string(),
        pattern: "steady-state".to_string(),
        events,
        elapsed_secs: elapsed,
        events_per_sec: events as f64 / elapsed.max(1e-12),
        allocations: allocation_count() - a0,
    }
}

fn bench_deployment() -> Deployment {
    Deployment::new(
        PlatformKind::AwsServerless,
        ModelKind::MobileNet,
        RuntimeKind::Tf115,
    )
}

fn end_to_end(kernel: Kernel, shards: Option<usize>, cfg: &BenchConfig) -> Result<EndToEndBench, String> {
    let preset = cfg.preset();
    let trace = preset.generate(Seed(152).substream("bench-workload"));
    let dep = bench_deployment();
    let mut exec = Executor::default().with_kernel(kernel);
    if let Some(n) = shards {
        exec = exec.with_shards(n);
    }
    // Warm up once so page faults, lazy init, and the run arena's
    // initial growth are off the clock.
    exec.run(&dep, &trace, Seed(1)).map_err(|e| e.to_string())?;
    let mut engine_events = 0u64;
    let a0 = allocation_count();
    let t0 = Instant::now();
    for rep in 0..cfg.e2e_reps() {
        let run = exec
            .run(&dep, &trace, Seed(1000 + rep))
            .map_err(|e| e.to_string())?;
        engine_events += run.engine_events;
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let allocations = allocation_count() - a0;
    Ok(EndToEndBench {
        kernel: kernel.name().to_string(),
        preset: preset.spec().name.to_string(),
        mode: if shards.is_some() { "sharded" } else { "sequential" }.to_string(),
        requests: trace.len() as u64,
        reps: cfg.e2e_reps(),
        engine_events,
        elapsed_secs: elapsed,
        events_per_sec: engine_events as f64 / elapsed.max(1e-12),
        allocations,
        allocs_per_request: allocations as f64 / (trace.len() as f64).max(1.0),
    })
}

fn fleet_end_to_end(cfg: &BenchConfig) -> Result<FleetBench, String> {
    let mut profiles = BTreeMap::new();
    profiles.insert("bench".to_string(), bench_deployment());
    let scenario = FleetScenario {
        name: "bench fleet".to_string(),
        seed: 152,
        fleet: FleetSource::Synth {
            apps: cfg.fleet_apps(),
            zipf_exponent: 1.1,
            total_rate: cfg.fleet_rate(),
            mean_busy_s: 10.0,
            median_idle_s: 30.0,
            idle_sigma: 1.5,
            duration_s: cfg.fleet_duration_s(),
        },
        profiles,
        timeout_s: 60.0,
        policy: None,
    };
    let plan = scenario.resolve(None).map_err(|e| e.to_string())?;
    let runner = FleetRunner::default();
    // Warm up once so per-app platform construction and the arrival
    // merge's initial growth are off the clock.
    runner.run(&plan, Seed(1)).map_err(|e| e.to_string())?;
    let mut engine_events = 0u64;
    let mut requests = 0u64;
    let mut best = 0.0f64;
    let a0 = allocation_count();
    let t0 = Instant::now();
    for rep in 0..cfg.fleet_reps() {
        let r0 = Instant::now();
        let run = runner
            .run(&plan, Seed(2000 + rep))
            .map_err(|e| e.to_string())?;
        let rep_elapsed = r0.elapsed().as_secs_f64();
        engine_events += run.engine_events;
        requests += run.requests;
        // Best-of-reps: scheduler interference only slows a rep down, so
        // the fastest rep is the least-contaminated estimate of what the
        // engine sustains.
        best = best.max(run.engine_events as f64 / rep_elapsed.max(1e-12));
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let allocations = allocation_count() - a0;
    Ok(FleetBench {
        apps: cfg.fleet_apps(),
        requests,
        reps: cfg.fleet_reps(),
        engine_events,
        elapsed_secs: elapsed,
        events_per_sec: best,
        allocations,
        allocs_per_request: allocations as f64 / (requests as f64).max(1.0),
    })
}

/// Runs one untimed wheel replicate with region attribution enabled and
/// returns where its allocations land. Kept off the timed path because
/// active region guards cost a thread-local swap per scope.
fn measure_breakdown(cfg: &BenchConfig) -> Result<AllocBreakdown, String> {
    let trace = cfg.preset().generate(Seed(152).substream("bench-workload"));
    let exec = Executor::default().with_kernel(Kernel::Wheel);
    slsb_sim::alloc::reset_region_counts();
    slsb_sim::alloc::enable_breakdown(true);
    let run = exec.run(&bench_deployment(), &trace, Seed(1000));
    slsb_sim::alloc::enable_breakdown(false);
    run.map_err(|e| e.to_string())?;
    let counts = slsb_sim::alloc::region_counts();
    Ok(AllocBreakdown {
        executor: counts[slsb_sim::alloc::Region::Executor as usize],
        kernel: counts[slsb_sim::alloc::Region::Kernel as usize],
        platform: counts[slsb_sim::alloc::Region::Platform as usize],
        obs: counts[slsb_sim::alloc::Region::Obs as usize],
    })
}

fn throughput(benches: &[&KernelBench]) -> f64 {
    let events: u64 = benches.iter().map(|b| b.events).sum();
    let elapsed: f64 = benches.iter().map(|b| b.elapsed_secs).sum();
    events as f64 / elapsed.max(1e-12)
}

/// Runs the full measurement matrix and assembles the report.
pub fn run_benchmarks(cfg: &BenchConfig) -> Result<BenchReport, String> {
    let n = cfg.micro_events();
    let reps = cfg.micro_reps();
    // Warm up the allocator and branch predictors off the clock.
    micro_preload_drain(Kernel::Wheel, n / 10, 1);
    micro_preload_drain(Kernel::Heap, n / 10, 1);

    let mut schedule_pop = Vec::new();
    for kernel in [Kernel::Wheel, Kernel::Heap] {
        schedule_pop.push(micro_preload_drain(kernel, n, reps));
        schedule_pop.push(micro_steady_state(kernel, n, reps));
    }

    let wheel: Vec<&KernelBench> = schedule_pop
        .iter()
        .filter(|b| b.kernel == "wheel")
        .collect();
    let heap: Vec<&KernelBench> = schedule_pop.iter().filter(|b| b.kernel == "heap").collect();
    let kernel_speedup = throughput(&wheel) / throughput(&heap).max(1e-12);

    let e2e_wheel = end_to_end(Kernel::Wheel, None, cfg)?;
    let e2e_heap = end_to_end(Kernel::Heap, None, cfg)?;
    let e2e_sharded = end_to_end(Kernel::Wheel, Some(Jobs::available().get()), cfg)?;
    let end_to_end_speedup = e2e_wheel.events_per_sec / e2e_heap.events_per_sec.max(1e-12);
    let allocs_per_request = e2e_wheel.allocs_per_request;
    let alloc_breakdown = measure_breakdown(cfg)?;
    let fleet = fleet_end_to_end(cfg)?;

    Ok(BenchReport {
        schema: "slsb-bench-kernel/v2".to_string(),
        quick: cfg.quick,
        schedule_pop,
        end_to_end: vec![e2e_wheel, e2e_heap, e2e_sharded],
        fleet,
        kernel_speedup,
        end_to_end_speedup,
        allocs_per_request,
        alloc_breakdown,
        trajectory: Vec::new(),
    })
}

/// Hinnant's civil-from-days algorithm: days since the Unix epoch to a
/// `(year, month, day)` Gregorian date. Avoids a date-time dependency for
/// the one timestamp the bench report needs.
fn civil_from_days(days: i64) -> (i64, u32, u32) {
    let z = days + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64;
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    let y = yoe as i64 + era * 400 + i64::from(m <= 2);
    (y, m, d)
}

/// Today's UTC date as `YYYY-MM-DD` (from the system clock).
fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let (y, m, d) = civil_from_days((secs / 86_400) as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

/// The short git revision of the working tree, or `unknown` when git (or
/// a repository) is unavailable.
fn git_short_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn empty_trajectory() -> Vec<TrajectoryEntry> {
    Vec::new()
}

/// The subset of a prior report `slsb bench` carries forward or checks
/// against. A v1 file has no trajectory, so the field defaults to empty —
/// upgrading is seamless and a corrupt file degrades to starting history
/// afresh.
#[derive(Deserialize)]
struct PriorReport {
    #[serde(default = "empty_trajectory")]
    trajectory: Vec<TrajectoryEntry>,
    #[serde(default = "Default::default")]
    end_to_end_speedup: Option<f64>,
}

/// Extends `report.trajectory` with the history parsed from
/// `prior_json` (the report file being replaced, if any), then appends
/// the current run's headline numbers as the newest entry. Re-running on
/// a commit that already has an entry *replaces* that entry — one row
/// per revision, so iterating on a branch does not flood the history.
pub fn append_trajectory(report: &mut BenchReport, prior_json: Option<&str>) {
    if let Some(text) = prior_json {
        if let Ok(prior) = serde_json::from_str::<PriorReport>(text) {
            report.trajectory = prior.trajectory;
        }
    }
    let rev = git_short_rev();
    if rev != "unknown" {
        report.trajectory.retain(|e| e.rev != rev);
    }
    report.trajectory.push(TrajectoryEntry {
        rev,
        date: today_utc(),
        quick: report.quick,
        end_to_end_events_per_sec: report
            .end_to_end
            .first()
            .map(|b| b.events_per_sec)
            .unwrap_or(0.0),
        allocs_per_request: report.allocs_per_request,
        kernel_speedup: report.kernel_speedup,
        end_to_end_speedup: report.end_to_end_speedup,
        fleet_events_per_sec: report.fleet.events_per_sec,
    });
}

/// Maximum allocations per request the zero-alloc arena is graded on
/// (shared with the verify.sh bench gate).
pub const ALLOCS_PER_REQUEST_CEILING: f64 = 2.0;

/// Minimum measured/committed end-to-end speedup ratio for *full* runs.
/// Full mode compares like-for-like (W120 vs the committed W120
/// baseline), so the floor only needs slack for box noise, not workload
/// skew — a drop below 80% of the committed speedup is a real
/// regression, not measurement scatter.
pub const SPEEDUP_RATIO_FLOOR_FULL: f64 = 0.80;

/// Minimum measured/committed end-to-end speedup ratio for `--quick`
/// runs. Quick mode uses the smaller W40 preset, which systematically
/// under-measures the wheel's advantage relative to the committed
/// full-mode W120 baseline (observed quick/full gap ~0.72), so its floor
/// carries that skew *times* noise slack. The old single global floor
/// (0.65) forced full runs down to quick-mode slack and let genuine
/// full-mode regressions hide inside it.
pub const SPEEDUP_RATIO_FLOOR_QUICK: f64 = 0.55;

/// The speedup-regression floor for a given bench mode.
pub fn speedup_ratio_floor(quick: bool) -> f64 {
    if quick {
        SPEEDUP_RATIO_FLOOR_QUICK
    } else {
        SPEEDUP_RATIO_FLOOR_FULL
    }
}

/// The fleet-row throughput (events/s, best rep) committed before the
/// third perf wave — the `app % 8` partition with Box–Muller/ln samplers
/// and per-idle-transition reclaim checks. The wave is graded as a
/// multiple of this number, so the constant is pinned here rather than
/// read from the (already-updated) committed artifact.
pub const FLEET_BASELINE_EVENTS_PER_SEC: f64 = 7_218_840.0;

/// Full-mode fleet throughput must clear this multiple of
/// [`FLEET_BASELINE_EVENTS_PER_SEC`] — the third perf wave's acceptance
/// bar (≥ 1.25× the pre-wave committed row).
pub const FLEET_SPEEDUP_TARGET: f64 = 1.25;

/// A fleet row measured with at least this many apps is full-workload
/// grade and subject to the absolute throughput bar. Quick-mode rows
/// (64 apps, 60 s) sit below it and are only checked for positivity.
pub const FLEET_GATE_MIN_APPS: u32 = 256;

/// Grades a fresh report against the committed baseline with the
/// verify.sh thresholds: every row must have positive throughput, the
/// allocations-per-request headline must stay under
/// [`ALLOCS_PER_REQUEST_CEILING`], the wheel-over-heap end-to-end
/// speedup must stay within the mode's [`speedup_ratio_floor`] of the
/// baseline's, and a full-workload fleet row (≥
/// [`FLEET_GATE_MIN_APPS`] apps) must hold the third perf wave's bar of
/// [`FLEET_SPEEDUP_TARGET`] × [`FLEET_BASELINE_EVENTS_PER_SEC`].
/// Quick-size fleet rows (64 apps, 60 s) are not comparable to the bar
/// and only get the positivity check.
///
/// # Errors
/// Returns the first threshold violation (or a baseline parse error) as
/// a human-readable string; `Ok` carries a one-line pass summary.
pub fn check_against(report: &BenchReport, baseline_json: &str) -> Result<String, String> {
    let baseline: PriorReport = serde_json::from_str(baseline_json)
        .map_err(|e| format!("baseline does not parse as a bench report: {e}"))?;
    for b in &report.schedule_pop {
        if b.events_per_sec <= 0.0 {
            return Err(format!("{} {} measured no throughput", b.kernel, b.pattern));
        }
    }
    for b in &report.end_to_end {
        if b.events_per_sec <= 0.0 {
            return Err(format!("{} e2e {} measured no throughput", b.kernel, b.mode));
        }
    }
    if report.fleet.events_per_sec <= 0.0 {
        return Err("fleet e2e measured no throughput".to_string());
    }
    if report.allocs_per_request >= ALLOCS_PER_REQUEST_CEILING {
        return Err(format!(
            "allocs/request regressed: {:.2} >= {ALLOCS_PER_REQUEST_CEILING:.1}",
            report.allocs_per_request
        ));
    }
    let committed = baseline.end_to_end_speedup.unwrap_or(0.0);
    if committed > 0.0 {
        let floor = speedup_ratio_floor(report.quick);
        let ratio = report.end_to_end_speedup / committed;
        if ratio < floor {
            return Err(format!(
                "end-to-end speedup regressed: {:.2}x is {ratio:.2} of the committed \
                 {committed:.2}x (need >= {floor} in {} mode)",
                report.end_to_end_speedup,
                if report.quick { "quick" } else { "full" },
            ));
        }
    }
    if report.fleet.apps >= FLEET_GATE_MIN_APPS {
        let fleet_floor = FLEET_SPEEDUP_TARGET * FLEET_BASELINE_EVENTS_PER_SEC;
        if report.fleet.events_per_sec < fleet_floor {
            return Err(format!(
                "fleet throughput below the third-wave bar: {:.0} ev/s < {:.0} \
                 ({FLEET_SPEEDUP_TARGET}x the pre-wave {FLEET_BASELINE_EVENTS_PER_SEC:.0})",
                report.fleet.events_per_sec, fleet_floor
            ));
        }
    }
    Ok(format!(
        "bench check ok: {:.2} allocs/request, end-to-end {:.2}x vs committed \
         {committed:.2}x, fleet {:.2}M ev/s",
        report.allocs_per_request,
        report.end_to_end_speedup,
        report.fleet.events_per_sec / 1e6
    ))
}

/// Human-readable summary of a report, one line per measurement.
pub fn summary(report: &BenchReport) -> String {
    let mut out = String::new();
    for b in &report.schedule_pop {
        out.push_str(&format!(
            "{:<5} {:<13} {:>9} ev in {:>7.3}s = {:>12.0} ev/s  ({} allocs)\n",
            b.kernel, b.pattern, b.events, b.elapsed_secs, b.events_per_sec, b.allocations
        ));
    }
    for b in &report.end_to_end {
        out.push_str(&format!(
            "{:<5} e2e {:<10} {} x{:<2} {:>9} ev in {:>7.3}s = {:>12.0} ev/s  ({} allocs, {:.2}/req)\n",
            b.kernel,
            b.mode,
            b.preset,
            b.reps,
            b.engine_events,
            b.elapsed_secs,
            b.events_per_sec,
            b.allocations,
            b.allocs_per_request
        ));
    }
    let fl = &report.fleet;
    out.push_str(&format!(
        "fleet e2e {:>4} apps x{:<2} {:>9} ev in {:>7.3}s = {:>12.0} ev/s  ({} allocs, {:.2}/req)\n",
        fl.apps, fl.reps, fl.engine_events, fl.elapsed_secs, fl.events_per_sec, fl.allocations, fl.allocs_per_request
    ));
    let bd = &report.alloc_breakdown;
    out.push_str(&format!(
        "alloc breakdown (1 rep): executor {} / kernel {} / platform {} / obs {}\n",
        bd.executor, bd.kernel, bd.platform, bd.obs
    ));
    out.push_str(&format!(
        "allocs per request (wheel, sequential): {:.2}\n",
        report.allocs_per_request
    ));
    out.push_str(&format!(
        "kernel schedule/pop speedup (wheel vs heap): {:.2}x\n",
        report.kernel_speedup
    ));
    out.push_str(&format!(
        "end-to-end replicate speedup (wheel vs heap): {:.2}x",
        report.end_to_end_speedup
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stub_fleet() -> FleetBench {
        FleetBench {
            apps: 64,
            requests: 1000,
            reps: 1,
            engine_events: 5000,
            elapsed_secs: 0.1,
            events_per_sec: 50_000.0,
            allocations: 100,
            allocs_per_request: 0.1,
        }
    }

    #[test]
    fn quick_benchmarks_produce_consistent_report() {
        let cfg = BenchConfig {
            quick: true,
            fleet_full: false,
        };
        let report = run_benchmarks(&cfg).unwrap();
        assert!(report.quick);
        assert_eq!(report.schedule_pop.len(), 4);
        assert_eq!(report.end_to_end.len(), 3);
        for b in &report.schedule_pop {
            assert!(b.events_per_sec > 0.0, "{b:?}");
        }
        for b in &report.end_to_end {
            assert!(b.events_per_sec > 0.0, "{b:?}");
            assert!(b.engine_events > 0, "{b:?}");
        }
        assert_eq!(report.end_to_end[0].mode, "sequential");
        assert_eq!(report.end_to_end[2].mode, "sharded");
        assert!(report.kernel_speedup > 0.0);
        assert!(report.end_to_end_speedup > 0.0);
        assert!(report.fleet.events_per_sec > 0.0, "{:?}", report.fleet);
        assert!(report.fleet.requests > 0, "{:?}", report.fleet);
        assert_eq!(report.fleet.apps, 64);
        assert!(report.trajectory.is_empty(), "history is appended by the CLI");
        // The report round-trips through the JSON layer.
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("slsb-bench-kernel/v2"));
    }

    #[test]
    fn allocation_counter_is_monotone() {
        let a = allocation_count();
        let v = vec![1u8; 1024];
        std::hint::black_box(&v);
        assert!(allocation_count() >= a);
    }

    #[test]
    fn civil_from_days_matches_known_dates() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1)); // leap year start
        assert_eq!(civil_from_days(19_782), (2024, 2, 29)); // leap day
        assert_eq!(civil_from_days(20_672), (2026, 8, 7));
    }

    #[test]
    fn trajectory_appends_and_carries_history() {
        let mut report = BenchReport {
            schema: "slsb-bench-kernel/v2".to_string(),
            quick: true,
            schedule_pop: Vec::new(),
            end_to_end: Vec::new(),
            fleet: stub_fleet(),
            kernel_speedup: 3.0,
            end_to_end_speedup: 1.5,
            allocs_per_request: 0.5,
            alloc_breakdown: AllocBreakdown {
                executor: 1,
                kernel: 2,
                platform: 3,
                obs: 4,
            },
            trajectory: Vec::new(),
        };
        let prior = r#"{
            "schema": "slsb-bench-kernel/v2",
            "trajectory": [{
                "rev": "abc1234", "date": "2026-01-01", "quick": false,
                "end_to_end_events_per_sec": 4000000.0,
                "allocs_per_request": 10.6,
                "kernel_speedup": 3.2, "end_to_end_speedup": 1.47
            }]
        }"#;
        append_trajectory(&mut report, Some(prior));
        assert_eq!(report.trajectory.len(), 2);
        assert_eq!(report.trajectory[0].rev, "abc1234");
        let latest = report.trajectory.last().unwrap();
        assert_eq!(latest.allocs_per_request, 0.5);
        assert!(latest.date.len() == 10 && latest.date.contains('-'));

        // A v1 file (no trajectory field) starts history afresh, and so
        // does garbage: neither panics.
        let mut v1 = report.clone();
        v1.trajectory.clear();
        append_trajectory(&mut v1, Some(r#"{"schema": "slsb-bench-kernel/v1"}"#));
        assert_eq!(v1.trajectory.len(), 1);
        let mut none = report.clone();
        none.trajectory.clear();
        append_trajectory(&mut none, None);
        assert_eq!(none.trajectory.len(), 1);

        // Re-running on the same commit replaces the row instead of
        // appending a duplicate (when git is available to stamp one).
        let serialized = serde_json::to_string(&none).unwrap();
        let mut rerun = report.clone();
        rerun.trajectory.clear();
        append_trajectory(&mut rerun, Some(&serialized));
        if rerun.trajectory[0].rev != "unknown" {
            assert_eq!(rerun.trajectory.len(), 1, "{:?}", rerun.trajectory);
        }
    }

    #[test]
    fn check_against_applies_verify_thresholds() {
        let report = BenchReport {
            schema: "slsb-bench-kernel/v2".to_string(),
            quick: true,
            schedule_pop: Vec::new(),
            end_to_end: Vec::new(),
            fleet: stub_fleet(),
            kernel_speedup: 3.0,
            end_to_end_speedup: 1.5,
            allocs_per_request: 0.5,
            alloc_breakdown: AllocBreakdown {
                executor: 1,
                kernel: 2,
                platform: 3,
                obs: 4,
            },
            trajectory: Vec::new(),
        };
        let baseline = r#"{"schema": "slsb-bench-kernel/v2", "end_to_end_speedup": 1.5}"#;
        assert!(check_against(&report, baseline).is_ok());

        // Allocation regression trips the gate.
        let mut fat = report.clone();
        fat.allocs_per_request = 2.5;
        let err = check_against(&fat, baseline).unwrap_err();
        assert!(err.contains("allocs/request"), "{err}");

        // Speedup collapse trips the gate (quick floor: 0.55).
        let mut slow = report.clone();
        slow.end_to_end_speedup = 0.7;
        let err = check_against(&slow, baseline).unwrap_err();
        assert!(err.contains("speedup regressed"), "{err}");

        // A ratio that quick mode tolerates (0.6 of committed) fails the
        // tighter full-mode floor (0.80) — the per-mode split this
        // replaces the old single 0.65 constant with.
        let mut full_slow = report.clone();
        full_slow.quick = false;
        full_slow.end_to_end_speedup = 0.9;
        full_slow.fleet.events_per_sec = FLEET_SPEEDUP_TARGET * FLEET_BASELINE_EVENTS_PER_SEC + 1.0;
        let err = check_against(&full_slow, baseline).unwrap_err();
        assert!(err.contains("full mode"), "{err}");
        let mut quick_ok = full_slow.clone();
        quick_ok.quick = true;
        assert!(check_against(&quick_ok, baseline).is_ok());

        // A baseline without the field (v1) only checks absolutes.
        assert!(check_against(&slow, r#"{"schema": "v1"}"#).is_ok());
        assert!(check_against(&report, "not json").is_err());
    }

    #[test]
    fn full_size_fleet_rows_enforce_the_throughput_bar() {
        let mut report = BenchReport {
            schema: "slsb-bench-kernel/v2".to_string(),
            quick: false,
            schedule_pop: Vec::new(),
            end_to_end: Vec::new(),
            fleet: stub_fleet(),
            kernel_speedup: 3.0,
            end_to_end_speedup: 1.5,
            allocs_per_request: 0.5,
            alloc_breakdown: AllocBreakdown {
                executor: 1,
                kernel: 2,
                platform: 3,
                obs: 4,
            },
            trajectory: Vec::new(),
        };
        let baseline = r#"{"schema": "slsb-bench-kernel/v2", "end_to_end_speedup": 1.5}"#;
        // stub_fleet is a 64-app quick-size row: not comparable to the
        // bar, so its 50k ev/s passes untested...
        assert!(check_against(&report, baseline).is_ok());
        // ...but the same throughput on a full-size row fails...
        report.fleet.apps = FLEET_GATE_MIN_APPS;
        let err = check_against(&report, baseline).unwrap_err();
        assert!(err.contains("third-wave bar"), "{err}");
        // ...and a full-size row at the bar passes.
        report.fleet.events_per_sec = FLEET_SPEEDUP_TARGET * FLEET_BASELINE_EVENTS_PER_SEC;
        assert!(check_against(&report, baseline).is_ok());
    }
}
