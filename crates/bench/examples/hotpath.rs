//! Scratch decomposition of the fleet per-event cost. Not part of the
//! shipped benchmark suite — run with
//! `cargo run --release -p slsb-bench --example hotpath`.

use std::collections::BTreeMap;
use std::hint::black_box;
use std::time::Instant;

use slsb_core::{FleetScenario, FleetSource};
use slsb_sim::{Seed, SimDuration, SimTime};

fn main() {
    // --- raw RNG draws ------------------------------------------------
    let mut rng = Seed(7).rng();
    let n = 10_000_000u64;
    let t0 = Instant::now();
    let mut acc = 0.0;
    for _ in 0..n {
        acc += rng.uniform();
    }
    report("uniform", n, t0, acc);

    let t0 = Instant::now();
    let mut acc = 0.0;
    for _ in 0..n {
        acc += rng.standard_exp();
    }
    report("standard_exp (ziggurat)", n, t0, acc);

    let t0 = Instant::now();
    let mut acc = 0.0;
    for _ in 0..n {
        acc += rng.standard_normal();
    }
    report("standard_normal (ziggurat)", n, t0, acc);

    let t0 = Instant::now();
    let mut acc = SimDuration::ZERO;
    for _ in 0..n {
        acc += rng.lognormal(SimDuration::from_micros(50_000), 0.2);
    }
    report("lognormal jitter", n, t0, acc.as_secs_f64());

    // --- histogram record ---------------------------------------------
    let mut h = slsb_obs::LogLinearHistogram::with_range(-6, 9, 16);
    let mut rng = Seed(9).rng();
    let vals: Vec<f64> = (0..1_000_000)
        .map(|_| 10f64.powf(rng.uniform() * 10.0 - 5.0))
        .collect();
    let t0 = Instant::now();
    for rep in 0..10 {
        for &v in &vals {
            h.record(v + rep as f64 * 1e-12);
        }
    }
    report("histogram record", n, t0, h.count() as f64);

    // --- fleet arrival stream (sampling + k-way merge) ----------------
    let mut profiles = BTreeMap::new();
    profiles.insert("bench".to_string(), default_deployment());
    let scenario = FleetScenario {
        name: "hotpath".to_string(),
        seed: 152,
        fleet: FleetSource::Synth {
            apps: 1000,
            zipf_exponent: 1.1,
            total_rate: 3300.0,
            mean_busy_s: 10.0,
            median_idle_s: 30.0,
            idle_sigma: 1.5,
            duration_s: 600.0,
        },
        profiles,
        timeout_s: 60.0,
        policy: None,
    };
    let plan = scenario.resolve(None).expect("resolve");
    let t0 = Instant::now();
    let ids: Vec<u32> = (0..plan.spec.apps.len() as u32).collect();
    let mut stream = plan.spec.arrival_stream_for(Seed(42), ids.iter().copied());
    let mut count = 0u64;
    let mut last = SimTime::ZERO;
    for (t, app) in &mut stream {
        count += 1;
        last = t;
        black_box(app);
    }
    report("arrival stream next()", count, t0, last.as_secs_f64());

    // --- full fleet run for reference ---------------------------------
    let runner = slsb_core::FleetRunner::default().with_workers(1);
    runner.run(&plan, Seed(1)).expect("warmup");
    let t0 = Instant::now();
    let run = runner.run(&plan, Seed(2)).expect("run");
    report("fleet engine event", run.engine_events, t0, run.requests as f64);

    // --- the gated bench scenario (256 apps, 400/s, 240 s) -------------
    let mut profiles = BTreeMap::new();
    profiles.insert("bench".to_string(), default_deployment());
    let scenario = FleetScenario {
        name: "bench fleet".to_string(),
        seed: 152,
        fleet: FleetSource::Synth {
            apps: 256,
            zipf_exponent: 1.1,
            total_rate: 400.0,
            mean_busy_s: 10.0,
            median_idle_s: 30.0,
            idle_sigma: 1.5,
            duration_s: 240.0,
        },
        profiles,
        timeout_s: 60.0,
        policy: None,
    };
    let plan = scenario.resolve(None).expect("resolve");
    runner.run(&plan, Seed(1)).expect("warmup");
    let mut events = 0u64;
    let mut reqs = 0u64;
    let t0 = Instant::now();
    for rep in 0..3 {
        let run = runner.run(&plan, Seed(2000 + rep)).expect("run");
        events += run.engine_events;
        reqs += run.requests;
    }
    report("bench-row fleet event", events, t0, reqs as f64);
}

fn default_deployment() -> slsb_core::Deployment {
    slsb_core::Deployment::new(
        slsb_platform::PlatformKind::AwsServerless,
        slsb_model::ModelKind::MobileNet,
        slsb_model::RuntimeKind::Tf115,
    )
}

fn report(label: &str, n: u64, t0: Instant, sink: f64) {
    let el = t0.elapsed().as_secs_f64();
    println!(
        "{label:32} {n:>12} ops in {el:>7.3}s = {:>7.1} ns/op  (sink {sink:.3})",
        el / n as f64 * 1e9
    );
}
