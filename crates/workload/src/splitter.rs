//! Workload splitter.
//!
//! The paper employs multiple client nodes (8 by default) and "evenly
//! divide\[s\] the workloads such that … the aggregated request rate matches
//! the original workloads" (Section 3). We split arrivals round-robin by
//! index, which interleaves every client across the whole trace and exactly
//! preserves the aggregate process.

use crate::trace::WorkloadTrace;
use slsb_sim::SimTime;

/// Splits `trace` into `clients` sub-traces, round-robin by arrival index.
///
/// # Panics
/// Panics if `clients` is zero.
pub fn split_round_robin(trace: &WorkloadTrace, clients: usize) -> Vec<WorkloadTrace> {
    assert!(clients > 0, "cannot split across zero clients");
    let mut parts: Vec<Vec<SimTime>> = vec![Vec::new(); clients];
    for (i, &a) in trace.arrivals().iter().enumerate() {
        parts[i % clients].push(a);
    }
    parts
        .into_iter()
        .enumerate()
        .map(|(i, arrivals)| {
            WorkloadTrace::new(
                format!("{}/client-{i}", trace.name()),
                trace.duration(),
                arrivals,
            )
        })
        .collect()
}

/// Merges client sub-traces back into one aggregate trace (for validation).
///
/// # Panics
/// Panics if `parts` is empty or the parts disagree on duration.
pub fn merge(name: &str, parts: &[WorkloadTrace]) -> WorkloadTrace {
    assert!(!parts.is_empty(), "nothing to merge");
    let duration = parts[0].duration();
    assert!(
        parts.iter().all(|p| p.duration() == duration),
        "parts disagree on duration"
    );
    let mut arrivals: Vec<SimTime> = parts.iter().flat_map(|p| p.arrivals()).copied().collect();
    arrivals.sort_unstable();
    WorkloadTrace::new(name, duration, arrivals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mmpp::MmppPreset;
    use slsb_sim::{Seed, SimDuration};

    #[test]
    fn split_conserves_requests() {
        let tr = MmppPreset::W40.generate(Seed(1));
        let parts = split_round_robin(&tr, 8);
        assert_eq!(parts.len(), 8);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, tr.len());
    }

    #[test]
    fn split_is_even() {
        let tr = MmppPreset::W40.generate(Seed(2));
        let parts = split_round_robin(&tr, 8);
        let min = parts.iter().map(|p| p.len()).min().unwrap();
        let max = parts.iter().map(|p| p.len()).max().unwrap();
        assert!(max - min <= 1, "round robin must balance within 1");
    }

    #[test]
    fn merge_inverts_split() {
        let tr = MmppPreset::W120.generate(Seed(3));
        let parts = split_round_robin(&tr, 8);
        let merged = merge("merged", &parts);
        assert_eq!(merged.arrivals(), tr.arrivals());
    }

    #[test]
    fn each_client_covers_whole_duration() {
        // Round-robin interleaving means every client sees early and late
        // arrivals, matching the paper's "aggregated rate matches" goal.
        let tr = MmppPreset::W40.generate(Seed(4));
        let parts = split_round_robin(&tr, 8);
        let dur = tr.duration().as_secs_f64();
        for p in &parts {
            let first = p.arrivals().first().unwrap().as_secs_f64();
            let last = p.arrivals().last().unwrap().as_secs_f64();
            assert!(first < dur * 0.1, "client starts late: {first}");
            assert!(last > dur * 0.8, "client ends early: {last}");
        }
    }

    #[test]
    fn more_clients_than_requests() {
        let tr = WorkloadTrace::new(
            "tiny",
            SimDuration::from_secs(10),
            vec![SimTime::from_secs_f64(1.0)],
        );
        let parts = split_round_robin(&tr, 4);
        assert_eq!(parts.iter().filter(|p| !p.is_empty()).count(), 1);
    }

    #[test]
    #[should_panic(expected = "zero clients")]
    fn zero_clients_panics() {
        let tr = WorkloadTrace::new("x", SimDuration::from_secs(1), vec![]);
        split_round_robin(&tr, 0);
    }

    #[test]
    #[should_panic(expected = "disagree on duration")]
    fn merge_rejects_mismatched_durations() {
        let a = WorkloadTrace::new("a", SimDuration::from_secs(1), vec![]);
        let b = WorkloadTrace::new("b", SimDuration::from_secs(2), vec![]);
        merge("bad", &[a, b]);
    }
}
