//! # slsb-workload — workload generation for model-serving benchmarks
//!
//! Implements the paper's load generator (Section 3, Figure 3 left):
//!
//! - [`mmpp`] — 2-state Markov-Modulated Poisson Process with the paper's
//!   three presets (`workload-40/120/200`, Figure 4);
//! - [`poisson`] — plain Poisson arrivals for micro-benchmarks;
//! - [`patterns`] — extension workload shapes (diurnal cycles, flash
//!   crowds) via non-homogeneous Poisson thinning;
//! - [`splitter`] — divides a trace across the 8-client fleet while
//!   preserving the aggregate arrival process;
//! - [`request`] — pools of distinct request payloads (default 200) so the
//!   serving side cannot cache predictions;
//! - [`trace`] — the materialized [`WorkloadTrace`] with rate-series export
//!   for regenerating Figure 4;
//! - [`stream`] — pull-based arrival iterators (byte-identical to the
//!   materialized generators, O(1) memory);
//! - [`fleet`] — multi-tenant fleets: production trace-summary ingest,
//!   Zipf/idle-knob synthesis, and the streaming k-way arrival merge.
//!
//! ```
//! use slsb_sim::Seed;
//! use slsb_workload::{split_round_robin, MmppPreset};
//!
//! // The paper's workload-40: ~15 000 bursty requests over 15 minutes,
//! // split across the 8-client fleet.
//! let trace = MmppPreset::W40.generate(Seed(1));
//! let clients = split_round_robin(&trace, 8);
//! assert_eq!(clients.len(), 8);
//! let total: usize = clients.iter().map(|c| c.len()).sum();
//! assert_eq!(total, trace.len());
//! ```

pub mod fleet;
pub mod mmpp;
pub mod patterns;
pub mod poisson;
pub mod request;
pub mod splitter;
pub mod stream;
pub mod trace;

pub use fleet::{
    AppProcess, AppSpec, AppStream, FleetArrivalStream, FleetError, FleetSpec, FleetSynthesis,
    TraceApp, TraceSummary, FLEET_TRACE_SCHEMA,
};
pub use mmpp::{MmppPreset, MmppSpec, Phase};
pub use patterns::{DiurnalSpec, FlashCrowdSpec};
pub use poisson::PoissonProcess;
pub use request::{InputKind, Payload, RequestPool};
pub use splitter::{merge, split_round_robin};
pub use stream::MmppStream;
pub use trace::{Burstiness, TraceParseError, WorkloadTrace};
