//! Request pools.
//!
//! The paper's executor keeps a pool of pre-built requests (default 200) and
//! each client picks one uniformly at random per arrival, "ensuring that
//! model serving systems do not cache the prediction results" (Section 3).

use serde::{Deserialize, Serialize};
use slsb_sim::SimRng;

/// The kind of payload a model consumes; determines realistic payload sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InputKind {
    /// JPEG-ish image payloads (MobileNet, VGG).
    Image,
    /// Tokenized-text payloads (ALBERT).
    Text,
}

impl InputKind {
    /// Nominal payload size range in bytes.
    ///
    /// Images: 60–180 KB (typical mobile-app JPEG uploads); text: 0.5–4 KB.
    pub fn size_range(self) -> (u64, u64) {
        match self {
            InputKind::Image => (60_000, 180_000),
            InputKind::Text => (500, 4_000),
        }
    }
}

/// One pre-built request payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Payload {
    /// Index within the pool.
    pub id: u32,
    /// Serialized size in bytes (drives network-transfer time).
    pub size_bytes: u64,
    /// How many input samples are packed in this payload (Figure 12c varies
    /// this; normally 1).
    pub samples: u32,
}

/// A pool of distinct request payloads clients draw from.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestPool {
    kind: InputKind,
    payloads: Vec<Payload>,
}

impl RequestPool {
    /// The paper's default pool size.
    pub const DEFAULT_SIZE: usize = 200;

    /// Builds a pool of `size` payloads with sizes spread uniformly across
    /// the input kind's nominal range (deterministic: evenly spaced, so the
    /// pool itself does not consume randomness).
    ///
    /// # Panics
    /// Panics if `size` is zero.
    pub fn generate(kind: InputKind, size: usize) -> Self {
        assert!(size > 0, "empty request pool");
        let (lo, hi) = kind.size_range();
        let payloads = (0..size)
            .map(|i| {
                let frac = if size == 1 {
                    0.5
                } else {
                    i as f64 / (size - 1) as f64
                };
                Payload {
                    id: i as u32,
                    size_bytes: lo + ((hi - lo) as f64 * frac).round() as u64,
                    samples: 1,
                }
            })
            .collect();
        RequestPool { kind, payloads }
    }

    /// The default 200-payload pool for an input kind.
    pub fn default_for(kind: InputKind) -> Self {
        Self::generate(kind, Self::DEFAULT_SIZE)
    }

    /// Rescales every payload to pack `samples` input samples (payload size
    /// scales linearly). Models the paper's Figure 12c input-size sweep.
    pub fn with_samples_per_request(mut self, samples: u32) -> Self {
        assert!(samples > 0, "zero samples per request");
        for p in &mut self.payloads {
            p.size_bytes = p.size_bytes / u64::from(p.samples) * u64::from(samples);
            p.samples = samples;
        }
        self
    }

    /// Input kind the pool was built for.
    pub fn kind(&self) -> InputKind {
        self.kind
    }

    /// Number of distinct payloads.
    pub fn len(&self) -> usize {
        self.payloads.len()
    }

    /// True when the pool is empty (cannot happen via constructors).
    pub fn is_empty(&self) -> bool {
        self.payloads.is_empty()
    }

    /// Draws one payload uniformly at random — what each client does per
    /// arrival.
    pub fn pick(&self, rng: &mut SimRng) -> Payload {
        self.payloads[rng.index(self.payloads.len())]
    }

    /// All payloads.
    pub fn payloads(&self) -> &[Payload] {
        &self.payloads
    }

    /// Mean payload size in bytes.
    pub fn mean_size(&self) -> f64 {
        self.payloads
            .iter()
            .map(|p| p.size_bytes as f64)
            .sum::<f64>()
            / self.payloads.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slsb_sim::Seed;

    #[test]
    fn pool_sizes_span_range() {
        let pool = RequestPool::default_for(InputKind::Image);
        assert_eq!(pool.len(), 200);
        let (lo, hi) = InputKind::Image.size_range();
        assert_eq!(pool.payloads().first().unwrap().size_bytes, lo);
        assert_eq!(pool.payloads().last().unwrap().size_bytes, hi);
        assert!(pool.mean_size() > lo as f64 && pool.mean_size() < hi as f64);
    }

    #[test]
    fn text_pool_is_smaller() {
        let img = RequestPool::default_for(InputKind::Image);
        let txt = RequestPool::default_for(InputKind::Text);
        assert!(txt.mean_size() < img.mean_size() / 10.0);
    }

    #[test]
    fn pick_is_uniformish() {
        let pool = RequestPool::generate(InputKind::Text, 10);
        let mut rng = Seed(1).rng();
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[pool.pick(&mut rng).id as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 700 && c < 1300), "{counts:?}");
    }

    #[test]
    fn samples_scaling() {
        let pool = RequestPool::generate(InputKind::Image, 5).with_samples_per_request(4);
        for p in pool.payloads() {
            assert_eq!(p.samples, 4);
        }
        let single = RequestPool::generate(InputKind::Image, 5);
        assert!((pool.mean_size() / single.mean_size() - 4.0).abs() < 0.01);
    }

    #[test]
    fn single_payload_pool() {
        let pool = RequestPool::generate(InputKind::Text, 1);
        assert_eq!(pool.len(), 1);
        let mut rng = Seed(2).rng();
        assert_eq!(pool.pick(&mut rng).id, 0);
    }

    #[test]
    #[should_panic(expected = "empty request pool")]
    fn zero_size_panics() {
        RequestPool::generate(InputKind::Text, 0);
    }
}
