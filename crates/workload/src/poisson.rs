//! Homogeneous Poisson arrival generation.

use crate::trace::WorkloadTrace;
use slsb_sim::{Seed, SimDuration, SimTime};

/// A constant-rate Poisson arrival process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonProcess {
    /// Arrival rate in requests per second.
    pub rate_per_sec: f64,
    /// Length of the generated trace.
    pub duration: SimDuration,
}

impl PoissonProcess {
    /// Creates a process.
    ///
    /// # Panics
    /// Panics if the rate is negative or not finite.
    pub fn new(rate_per_sec: f64, duration: SimDuration) -> Self {
        assert!(
            rate_per_sec.is_finite() && rate_per_sec >= 0.0,
            "invalid Poisson rate: {rate_per_sec}"
        );
        PoissonProcess {
            rate_per_sec,
            duration,
        }
    }

    /// Samples all arrivals in `[0, duration)` for the given seed.
    pub fn generate(&self, seed: Seed) -> WorkloadTrace {
        let mut rng = seed.substream("poisson").rng();
        let mut arrivals = Vec::new();
        if self.rate_per_sec > 0.0 {
            let mut t = SimTime::ZERO;
            loop {
                t += rng.exp_interval(self.rate_per_sec);
                if t.as_micros() >= self.duration.as_micros() {
                    break;
                }
                arrivals.push(t);
            }
        }
        WorkloadTrace::new(
            format!("poisson-{}", self.rate_per_sec),
            self.duration,
            arrivals,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_matches_expectation() {
        let p = PoissonProcess::new(50.0, SimDuration::from_secs(600));
        let tr = p.generate(Seed(1));
        let expected = 50.0 * 600.0;
        let n = tr.len() as f64;
        // 3 sigma ≈ 3 * sqrt(30000) ≈ 520
        assert!(
            (n - expected).abs() < 600.0,
            "count {n} too far from {expected}"
        );
    }

    #[test]
    fn zero_rate_generates_nothing() {
        let p = PoissonProcess::new(0.0, SimDuration::from_secs(60));
        assert!(p.generate(Seed(2)).is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let p = PoissonProcess::new(10.0, SimDuration::from_secs(100));
        assert_eq!(p.generate(Seed(3)), p.generate(Seed(3)));
        assert_ne!(p.generate(Seed(3)), p.generate(Seed(4)));
    }

    #[test]
    fn arrivals_within_duration() {
        let p = PoissonProcess::new(200.0, SimDuration::from_secs(10));
        let tr = p.generate(Seed(5));
        assert!(tr.arrivals().iter().all(|a| a.as_micros() < 10 * 1_000_000));
    }

    #[test]
    fn interarrival_cv_is_poisson_like() {
        // For a Poisson process the coefficient of variation of
        // inter-arrival gaps is 1.
        let p = PoissonProcess::new(100.0, SimDuration::from_secs(600));
        let tr = p.generate(Seed(6));
        let gaps: Vec<f64> = tr
            .arrivals()
            .windows(2)
            .map(|w| w[1].duration_since(w[0]).as_secs_f64())
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 1.0).abs() < 0.05, "cv {cv} should be ~1");
    }
}
