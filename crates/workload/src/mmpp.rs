//! Markov-Modulated Poisson Process (MMPP) workload generation.
//!
//! The paper (Section 3, "Load generator") uses a 2-state MMPP — following
//! MArk \[57\] and BATCH \[2\] — because no public model-serving traces
//! exist. The chain alternates between a *high* state and a *low* state;
//! sojourn times are exponential, and within a state arrivals follow a
//! Poisson process at that state's rate. The result is bursty and
//! unpredictable, with random surge onsets and durations (the paper's
//! Figure 4).

use crate::stream::MmppStream;
use crate::trace::WorkloadTrace;
use serde::{Deserialize, Serialize};
use slsb_sim::{Seed, SimDuration};

/// Which of the two modulation states the chain is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Demand-surge state (the paper's "higher arrival rate").
    High,
    /// Background state.
    Low,
}

/// Parameters of a 2-state MMPP.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MmppSpec {
    /// Workload label, e.g. `"workload-120"`.
    pub name: &'static str,
    /// Poisson rate in the high state (requests/second). The paper names
    /// workloads after this number (40, 120, 200).
    pub rate_high: f64,
    /// Poisson rate in the low state.
    pub rate_low: f64,
    /// Mean sojourn in the high state.
    pub mean_high_dwell: SimDuration,
    /// Mean sojourn in the low state.
    pub mean_low_dwell: SimDuration,
    /// Total trace duration (the paper uses ≈ 15 minutes).
    pub duration: SimDuration,
}

/// The paper's three workloads (Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MmppPreset {
    /// "workload-40": low request rate, E\[requests\] = 15 000.
    W40,
    /// "workload-120": medium request rate, E\[requests\] = 51 600.
    W120,
    /// "workload-200": high request rate, E\[requests\] = 86 000.
    W200,
}

impl MmppPreset {
    /// All three presets in the paper's order.
    pub const ALL: [MmppPreset; 3] = [MmppPreset::W40, MmppPreset::W120, MmppPreset::W200];

    /// The calibrated spec.
    ///
    /// Dwell times are chosen so the stationary mean rate reproduces the
    /// paper's request counts over 900 s exactly in expectation:
    /// `E[N] = duration · (rate_high·π_high + rate_low·π_low)` with
    /// `π_high = dwell_high / (dwell_high + dwell_low)`:
    ///
    /// * W40: π_high = 40/180 = 0.2222 → E\[N\] = 900·16.67 = 15 000
    /// * W120: π_high = 40/131.7 = 0.3037 → E\[N\] = 900·57.3 ≈ 51 600
    /// * W200: π_high = 40/131.7 = 0.3037 → E\[N\] = 900·95.5 ≈ 86 000
    ///
    /// Mean sojourns of 40 s give 6–9 demand surges per 15-minute trace
    /// (as in the paper's Figure 4) and keep per-seed count variance low.
    pub fn spec(self) -> MmppSpec {
        match self {
            MmppPreset::W40 => MmppSpec {
                name: "workload-40",
                rate_high: 40.0,
                rate_low: 10.0,
                mean_high_dwell: SimDuration::from_secs(40),
                mean_low_dwell: SimDuration::from_secs(140),
                duration: SimDuration::from_secs(900),
            },
            MmppPreset::W120 => MmppSpec {
                name: "workload-120",
                rate_high: 120.0,
                rate_low: 30.0,
                mean_high_dwell: SimDuration::from_secs(40),
                mean_low_dwell: SimDuration::from_millis(91_667),
                duration: SimDuration::from_secs(900),
            },
            MmppPreset::W200 => MmppSpec {
                name: "workload-200",
                rate_high: 200.0,
                rate_low: 50.0,
                mean_high_dwell: SimDuration::from_secs(40),
                mean_low_dwell: SimDuration::from_millis(91_667),
                duration: SimDuration::from_secs(900),
            },
        }
    }

    /// The request count the paper reports for this workload.
    pub fn paper_request_count(self) -> usize {
        match self {
            MmppPreset::W40 => 15_000,
            MmppPreset::W120 => 51_600,
            MmppPreset::W200 => 86_000,
        }
    }

    /// Generates the trace for a seed. Convenience for `spec().generate`.
    pub fn generate(self, seed: Seed) -> WorkloadTrace {
        self.spec().generate(seed)
    }
}

impl MmppSpec {
    /// Stationary probability of the high state.
    pub fn stationary_high(&self) -> f64 {
        let h = self.mean_high_dwell.as_secs_f64();
        let l = self.mean_low_dwell.as_secs_f64();
        h / (h + l)
    }

    /// Long-run mean arrival rate (requests/second).
    pub fn stationary_rate(&self) -> f64 {
        let ph = self.stationary_high();
        self.rate_high * ph + self.rate_low * (1.0 - ph)
    }

    /// Expected number of requests over the full duration.
    pub fn expected_requests(&self) -> f64 {
        self.stationary_rate() * self.duration.as_secs_f64()
    }

    /// A lazy iterator over this spec's arrivals — same seed, same draw
    /// order, byte-identical sequence to [`MmppSpec::generate`], but O(1)
    /// memory. Fleet runs pull from this instead of materializing.
    pub fn stream(&self, seed: Seed) -> MmppStream {
        MmppStream::new(*self, seed)
    }

    /// Samples a full trace.
    ///
    /// The chain starts in a state drawn from the stationary distribution.
    /// Within each sojourn, arrivals are generated by sequential exponential
    /// gaps at the state's rate; the partial gap at a state switch is
    /// restarted, which is the standard (memoryless-exact) construction.
    /// This is a thin collect over [`MmppSpec::stream`].
    pub fn generate(&self, seed: Seed) -> WorkloadTrace {
        let mut arrivals = Vec::with_capacity((self.expected_requests() * 1.2).max(16.0) as usize);
        arrivals.extend(self.stream(seed));
        // A sample can land exactly on `duration` only via rounding; the
        // trace type requires arrivals ≤ duration, which holds by the stream
        // bound (t < segment_end ≤ end).
        WorkloadTrace::new(self.name, self.duration, arrivals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_expected_counts_match_paper() {
        let tol = 0.01; // within 1 % in expectation
        for p in MmppPreset::ALL {
            let spec = p.spec();
            let exp = spec.expected_requests();
            let target = p.paper_request_count() as f64;
            assert!(
                (exp - target).abs() / target < tol,
                "{:?}: expected {exp}, paper {target}",
                p
            );
        }
    }

    #[test]
    fn generated_counts_close_to_expectation() {
        // Average over several seeds: the sojourn randomness makes a single
        // draw noisy (few state switches per 15 min), so check the mean.
        for p in MmppPreset::ALL {
            let target = p.paper_request_count() as f64;
            let seeds = 12;
            let mean: f64 = (0..seeds)
                .map(|s| p.generate(Seed(s)).len() as f64)
                .sum::<f64>()
                / seeds as f64;
            assert!(
                (mean - target).abs() / target < 0.25,
                "{p:?}: mean {mean} vs target {target}"
            );
        }
    }

    #[test]
    fn trace_is_bursty() {
        // Peak bucket rate should approach the high rate and clearly exceed
        // the stationary mean — the property the paper relies on.
        let tr = MmppPreset::W120.generate(Seed(7));
        let peak = tr.peak_rate(SimDuration::from_secs(10));
        let mean = tr.mean_rate();
        assert!(peak > 1.5 * mean, "peak {peak} vs mean {mean}");
        assert!(peak > 80.0, "peak {peak} should approach rate_high=120");
    }

    #[test]
    fn mmpp_is_burstier_than_poisson() {
        let mmpp = MmppPreset::W120.generate(Seed(5));
        let poisson =
            crate::poisson::PoissonProcess::new(mmpp.mean_rate(), SimDuration::from_secs(900))
                .generate(Seed(5));
        let bucket = SimDuration::from_secs(10);
        let b_mmpp = mmpp.burstiness(bucket).unwrap();
        let b_poisson = poisson.burstiness(bucket).unwrap();
        assert!(
            b_mmpp.interarrival_cv > b_poisson.interarrival_cv,
            "MMPP CV {} should exceed Poisson CV {}",
            b_mmpp.interarrival_cv,
            b_poisson.interarrival_cv
        );
        assert!(b_mmpp.peak_to_mean > b_poisson.peak_to_mean);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = MmppPreset::W40.generate(Seed(42));
        let b = MmppPreset::W40.generate(Seed(42));
        assert_eq!(a, b);
        assert_ne!(a, MmppPreset::W40.generate(Seed(43)));
    }

    #[test]
    fn stationary_math() {
        let spec = MmppPreset::W40.spec();
        assert!((spec.stationary_high() - 40.0 / 180.0).abs() < 1e-12);
        assert!((spec.stationary_rate() - 50.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn zero_rate_low_state_still_works() {
        let spec = MmppSpec {
            name: "zero-low",
            rate_high: 10.0,
            rate_low: 0.0,
            mean_high_dwell: SimDuration::from_secs(10),
            mean_low_dwell: SimDuration::from_secs(10),
            duration: SimDuration::from_secs(100),
        };
        let tr = spec.generate(Seed(1));
        // Only high-state segments produce arrivals.
        assert!(!tr.is_empty());
        assert!(tr.len() < 10 * 100);
    }

    #[test]
    fn arrivals_sorted_and_in_range() {
        let tr = MmppPreset::W200.generate(Seed(9));
        let a = tr.arrivals();
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert!(a.iter().all(|t| t.as_micros() <= 900 * 1_000_000));
    }
}
