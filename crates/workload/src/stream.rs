//! Pull-based arrival generation.
//!
//! [`MmppStream`] yields the exact arrival sequence of
//! [`MmppSpec::generate`](crate::MmppSpec::generate) one instant at a time:
//! same seed, same substreams, same draw order, byte-identical output. The
//! materialized path is a thin `collect` over this iterator, so a consumer
//! that can pull lazily (the fleet engine) holds O(1) state per process
//! instead of O(requests).

use crate::mmpp::{MmppSpec, Phase};
use slsb_sim::{Seed, SimRng, SimTime};

/// Lazy iterator over one MMPP's arrival instants, in order.
///
/// Draw-order contract (load-bearing for determinism): the phase chain and
/// the arrival gaps consume two independent RNG substreams (`"mmpp-chain"`,
/// `"mmpp-arrivals"`), the initial phase is one stationary coin flip on the
/// chain stream, each segment costs one sojourn draw, and every arrival —
/// including the discarded overshoot that ends a segment — costs one
/// exponential gap. This mirrors the historical materializing generator
/// exactly, which is pinned by proptests in `tests/properties.rs`.
#[derive(Debug, Clone)]
pub struct MmppStream {
    spec: MmppSpec,
    chain: SimRng,
    arr: SimRng,
    phase: Phase,
    end: SimTime,
    segment_start: SimTime,
    segment_end: SimTime,
    cursor: SimTime,
    in_segment: bool,
}

impl MmppStream {
    /// Starts a stream for `spec`; the chain's initial phase is drawn from
    /// the stationary distribution.
    ///
    /// # Panics
    /// Panics when either rate is negative or non-finite.
    pub fn new(spec: MmppSpec, seed: Seed) -> Self {
        assert!(
            spec.rate_high.is_finite() && spec.rate_high >= 0.0,
            "invalid rate_high"
        );
        assert!(
            spec.rate_low.is_finite() && spec.rate_low >= 0.0,
            "invalid rate_low"
        );
        let mut chain = seed.substream("mmpp-chain").rng();
        let arr = seed.substream("mmpp-arrivals").rng();
        let phase = if chain.chance(spec.stationary_high()) {
            Phase::High
        } else {
            Phase::Low
        };
        MmppStream {
            spec,
            chain,
            arr,
            phase,
            end: SimTime::ZERO + spec.duration,
            segment_start: SimTime::ZERO,
            segment_end: SimTime::ZERO,
            cursor: SimTime::ZERO,
            in_segment: false,
        }
    }

    fn params(&self) -> (f64, slsb_sim::SimDuration) {
        match self.phase {
            Phase::High => (self.spec.rate_high, self.spec.mean_high_dwell),
            Phase::Low => (self.spec.rate_low, self.spec.mean_low_dwell),
        }
    }

    fn flip(&mut self) {
        self.phase = match self.phase {
            Phase::High => Phase::Low,
            Phase::Low => Phase::High,
        };
    }
}

impl Iterator for MmppStream {
    type Item = SimTime;

    fn next(&mut self) -> Option<SimTime> {
        loop {
            if self.in_segment {
                let (rate, _) = self.params();
                let t = self.cursor + self.arr.exp_interval(rate);
                if t >= self.segment_end {
                    // Overshoot: the partial gap is discarded and restarted
                    // in the next state (memoryless-exact construction).
                    self.in_segment = false;
                    self.segment_start = self.segment_end;
                    self.flip();
                } else {
                    self.cursor = t;
                    return Some(t);
                }
            } else {
                if self.segment_start >= self.end {
                    return None;
                }
                let (rate, dwell) = self.params();
                let sojourn = self.chain.exp_mean(dwell);
                self.segment_end = self.segment_start.saturating_add(sojourn).min(self.end);
                if rate > 0.0 {
                    self.in_segment = true;
                    self.cursor = self.segment_start;
                } else {
                    // Silent state: no arrival draws at all, just advance.
                    self.segment_start = self.segment_end;
                    self.flip();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mmpp::MmppPreset;
    use slsb_sim::SimDuration;

    #[test]
    fn stream_matches_materialized_for_presets() {
        for p in MmppPreset::ALL {
            for s in [0u64, 1, 7, 42] {
                let spec = p.spec();
                let eager = spec.generate(Seed(s));
                let lazy: Vec<SimTime> = MmppStream::new(spec, Seed(s)).collect();
                assert_eq!(eager.arrivals(), &lazy[..], "{p:?} seed {s}");
            }
        }
    }

    #[test]
    fn stream_is_sorted_and_bounded() {
        let spec = MmppPreset::W40.spec();
        let arrivals: Vec<SimTime> = MmppStream::new(spec, Seed(3)).collect();
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        let end = SimTime::ZERO + spec.duration;
        assert!(arrivals.iter().all(|&t| t < end));
    }

    #[test]
    fn silent_low_state_draws_nothing() {
        let spec = MmppSpec {
            name: "zero-low",
            rate_high: 10.0,
            rate_low: 0.0,
            mean_high_dwell: SimDuration::from_secs(10),
            mean_low_dwell: SimDuration::from_secs(10),
            duration: SimDuration::from_secs(100),
        };
        let eager = spec.generate(Seed(1));
        let lazy: Vec<SimTime> = MmppStream::new(spec, Seed(1)).collect();
        assert_eq!(eager.arrivals(), &lazy[..]);
    }

    #[test]
    #[should_panic(expected = "invalid rate_high")]
    fn rejects_nan_rate() {
        let mut spec = MmppPreset::W40.spec();
        spec.rate_high = f64::NAN;
        MmppStream::new(spec, Seed(0));
    }
}
