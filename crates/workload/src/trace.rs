//! Materialized workload traces: sorted arrival instants plus metadata.

use serde::{Deserialize, Serialize};
use slsb_sim::{SimDuration, SimTime};
use std::fmt;
use std::sync::Arc;

/// A fully materialized workload: every request's arrival instant, sorted.
///
/// The name is interned (`Arc<str>`): results and analyses that label
/// themselves with the workload share the trace's one allocation instead
/// of cloning the string per run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadTrace {
    name: Arc<str>,
    duration: SimDuration,
    arrivals: Vec<SimTime>,
}

impl WorkloadTrace {
    /// Wraps a list of arrivals. Arrivals are sorted; those beyond
    /// `duration` are rejected.
    ///
    /// # Panics
    /// Panics if any arrival exceeds `duration`. Internal generators uphold
    /// that invariant by construction; ingest paths that handle untrusted
    /// files use [`WorkloadTrace::try_new`] instead.
    pub fn new(
        name: impl Into<Arc<str>>,
        duration: SimDuration,
        arrivals: Vec<SimTime>,
    ) -> Self {
        Self::try_new(name, duration, arrivals).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`WorkloadTrace::new`]: out-of-duration arrivals come back
    /// as a diagnostic instead of a panic, so malformed production traces
    /// fail cleanly at the ingest boundary.
    ///
    /// # Errors
    /// [`TraceParseError::ArrivalBeyondDuration`] when any arrival exceeds
    /// `duration`.
    pub fn try_new(
        name: impl Into<Arc<str>>,
        duration: SimDuration,
        mut arrivals: Vec<SimTime>,
    ) -> Result<Self, TraceParseError> {
        arrivals.sort_unstable();
        if let Some(&last) = arrivals.last() {
            if last.as_micros() > duration.as_micros() {
                return Err(TraceParseError::ArrivalBeyondDuration {
                    arrival: last,
                    duration,
                });
            }
        }
        Ok(WorkloadTrace {
            name: name.into(),
            duration,
            arrivals,
        })
    }

    /// Human-readable workload name (e.g. `"workload-120"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The interned name: a shared handle, cloning which never copies the
    /// string. Run results label themselves with this.
    pub fn shared_name(&self) -> Arc<str> {
        Arc::clone(&self.name)
    }

    /// Nominal workload duration (the paper uses ~15 minutes).
    pub fn duration(&self) -> SimDuration {
        self.duration
    }

    /// Sorted arrival instants.
    pub fn arrivals(&self) -> &[SimTime] {
        &self.arrivals
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// True when the trace has no requests.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Mean arrival rate over the nominal duration, in requests/second.
    pub fn mean_rate(&self) -> f64 {
        if self.duration.is_zero() {
            return 0.0;
        }
        self.arrivals.len() as f64 / self.duration.as_secs_f64()
    }

    /// Requests per bucket — the series plotted in the paper's Figure 4.
    pub fn rate_series(&self, bucket: SimDuration) -> Vec<(SimTime, u64)> {
        assert!(!bucket.is_zero(), "zero bucket width");
        let n = self
            .duration
            .as_micros()
            .div_ceil(bucket.as_micros())
            .max(1);
        let mut counts = vec![0u64; n as usize];
        for &a in &self.arrivals {
            let idx = ((a.as_micros() / bucket.as_micros()) as usize).min(counts.len() - 1);
            counts[idx] += 1;
        }
        counts
            .into_iter()
            .enumerate()
            .map(|(i, c)| (SimTime::from_micros(i as u64 * bucket.as_micros()), c))
            .collect()
    }

    /// Peak bucket arrival rate in requests/second.
    pub fn peak_rate(&self, bucket: SimDuration) -> f64 {
        self.rate_series(bucket)
            .iter()
            .map(|&(_, c)| c as f64 / bucket.as_secs_f64())
            .fold(0.0, f64::max)
    }

    /// Burstiness statistics of the trace: the coefficient of variation of
    /// inter-arrival gaps (1.0 for Poisson, > 1 for burstier processes)
    /// and the peak-to-mean rate ratio over `bucket`-wide windows.
    ///
    /// Returns `None` for traces with fewer than two arrivals.
    pub fn burstiness(&self, bucket: SimDuration) -> Option<Burstiness> {
        if self.arrivals.len() < 2 {
            return None;
        }
        let gaps: Vec<f64> = self
            .arrivals
            .windows(2)
            .map(|w| w[1].duration_since(w[0]).as_secs_f64())
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        if mean <= 0.0 {
            return None;
        }
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        Some(Burstiness {
            interarrival_cv: var.sqrt() / mean,
            peak_to_mean: self.peak_rate(bucket) / self.mean_rate(),
        })
    }

    /// Serializes to a two-line-header CSV (`name,duration_us` then one
    /// arrival per line in microseconds).
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(self.arrivals.len() * 8 + 64);
        out.push_str(&format!(
            "# name={},duration_us={}\narrival_us\n",
            self.name,
            self.duration.as_micros()
        ));
        for a in &self.arrivals {
            out.push_str(&format!("{}\n", a.as_micros()));
        }
        out
    }

    /// Parses the format produced by [`WorkloadTrace::to_csv`].
    pub fn from_csv(text: &str) -> Result<Self, TraceParseError> {
        let mut lines = text.lines();
        let header = lines.next().ok_or(TraceParseError::MissingHeader)?;
        let header = header
            .strip_prefix("# ")
            .ok_or(TraceParseError::MissingHeader)?;
        let mut name = None;
        let mut duration = None;
        for kv in header.split(',') {
            match kv.split_once('=') {
                Some(("name", v)) => name = Some(v.to_string()),
                Some(("duration_us", v)) => {
                    duration = Some(
                        v.parse::<u64>()
                            .map_err(|_| TraceParseError::BadField(v.to_string()))?,
                    )
                }
                _ => return Err(TraceParseError::BadField(kv.to_string())),
            }
        }
        let name = name.ok_or(TraceParseError::MissingHeader)?;
        let duration = SimDuration::from_micros(duration.ok_or(TraceParseError::MissingHeader)?);
        let mut arrivals = Vec::new();
        for line in lines {
            if line == "arrival_us" || line.is_empty() {
                continue;
            }
            arrivals.push(SimTime::from_micros(
                line.parse::<u64>()
                    .map_err(|_| TraceParseError::BadField(line.to_string()))?,
            ));
        }
        WorkloadTrace::try_new(name, duration, arrivals)
    }
}

/// How bursty a trace is (see [`WorkloadTrace::burstiness`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Burstiness {
    /// Coefficient of variation of inter-arrival gaps; 1.0 for a Poisson
    /// process, larger for burstier traffic.
    pub interarrival_cv: f64,
    /// Peak windowed rate divided by the mean rate.
    pub peak_to_mean: f64,
}

/// Errors parsing a CSV trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceParseError {
    /// No `# name=…,duration_us=…` header line.
    MissingHeader,
    /// A field or arrival line failed to parse.
    BadField(String),
    /// An arrival instant lies past the declared trace duration.
    ArrivalBeyondDuration {
        /// The offending (latest) arrival.
        arrival: SimTime,
        /// The declared trace duration.
        duration: SimDuration,
    },
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceParseError::MissingHeader => write!(f, "missing trace header"),
            TraceParseError::BadField(s) => write!(f, "unparseable trace field: {s:?}"),
            TraceParseError::ArrivalBeyondDuration { arrival, duration } => {
                write!(f, "arrival {arrival} beyond workload duration {duration}")
            }
        }
    }
}

impl std::error::Error for TraceParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn sample_trace() -> WorkloadTrace {
        WorkloadTrace::new(
            "test",
            SimDuration::from_secs(30),
            vec![t(5.0), t(1.0), t(25.0), t(9.0)],
        )
    }

    #[test]
    fn arrivals_are_sorted() {
        let tr = sample_trace();
        assert_eq!(tr.arrivals(), &[t(1.0), t(5.0), t(9.0), t(25.0)]);
        assert_eq!(tr.len(), 4);
    }

    #[test]
    #[should_panic(expected = "beyond workload duration")]
    fn rejects_out_of_range_arrival() {
        WorkloadTrace::new("bad", SimDuration::from_secs(10), vec![t(11.0)]);
    }

    #[test]
    fn mean_rate() {
        let tr = sample_trace();
        assert!((tr.mean_rate() - 4.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn rate_series_counts_per_bucket() {
        let tr = sample_trace();
        let series = tr.rate_series(SimDuration::from_secs(10));
        assert_eq!(series.len(), 3);
        assert_eq!(series[0].1, 3);
        assert_eq!(series[1].1, 0);
        assert_eq!(series[2].1, 1);
    }

    #[test]
    fn peak_rate() {
        let tr = sample_trace();
        assert!((tr.peak_rate(SimDuration::from_secs(10)) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn burstiness_of_tiny_trace_is_none() {
        let one = WorkloadTrace::new("one", SimDuration::from_secs(10), vec![t(1.0)]);
        assert!(one.burstiness(SimDuration::from_secs(1)).is_none());
    }

    #[test]
    fn csv_roundtrip() {
        let tr = sample_trace();
        let csv = tr.to_csv();
        let parsed = WorkloadTrace::from_csv(&csv).unwrap();
        assert_eq!(parsed, tr);
    }

    #[test]
    fn csv_rejects_garbage() {
        assert_eq!(
            WorkloadTrace::from_csv(""),
            Err(TraceParseError::MissingHeader)
        );
        assert!(matches!(
            WorkloadTrace::from_csv("# name=a,duration_us=xyz\n"),
            Err(TraceParseError::BadField(_))
        ));
    }

    #[test]
    fn try_new_reports_out_of_range_arrival() {
        let err =
            WorkloadTrace::try_new("bad", SimDuration::from_secs(10), vec![t(11.0)]).unwrap_err();
        assert_eq!(
            err,
            TraceParseError::ArrivalBeyondDuration {
                arrival: t(11.0),
                duration: SimDuration::from_secs(10),
            }
        );
        assert!(err.to_string().contains("beyond workload duration"));
    }

    #[test]
    fn csv_with_out_of_range_arrival_is_an_error_not_a_panic() {
        let csv = "# name=bad,duration_us=1000\narrival_us\n2000\n";
        assert!(matches!(
            WorkloadTrace::from_csv(csv),
            Err(TraceParseError::ArrivalBeyondDuration { .. })
        ));
    }

    #[test]
    fn csv_truncated_mid_line_is_an_error() {
        // A download cut off mid-number: the partial final line must not
        // silently parse as a shorter trace.
        let csv = "# name=cut,duration_us=10000000\narrival_us\n1000\n20.";
        assert!(matches!(
            WorkloadTrace::from_csv(csv),
            Err(TraceParseError::BadField(_))
        ));
    }

    #[test]
    fn csv_header_only_is_an_empty_trace() {
        let tr = WorkloadTrace::from_csv("# name=none,duration_us=5000000\narrival_us\n").unwrap();
        assert!(tr.is_empty());
        assert_eq!(tr.name(), "none");
    }

    #[test]
    fn empty_trace_is_fine() {
        let tr = WorkloadTrace::new("empty", SimDuration::from_secs(10), vec![]);
        assert!(tr.is_empty());
        assert_eq!(tr.mean_rate(), 0.0);
        assert_eq!(tr.rate_series(SimDuration::from_secs(5)).len(), 2);
    }
}
