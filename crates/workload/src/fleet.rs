//! Fleet-scale multi-tenant workloads.
//!
//! The paper's load generator drives one app with one MMPP; production
//! serverless fleets (the Azure Functions traces, and the commodity-platform
//! study in PAPERS.md) are thousands of apps with Zipf-skewed popularity and
//! heavy-tailed idle times. This module represents such fleets two ways:
//!
//! - **Ingested**: a [`TraceSummary`] — per-app invocation counts per time
//!   bucket plus optional duration/memory/artifact-size hints — parsed from
//!   the documented JSON schema ([`FLEET_TRACE_SCHEMA`]) or converted from
//!   raw CSV by `slsb fleet ingest`. Bucket counts are replayed *exactly*
//!   via sequential uniform order statistics (one RNG draw per arrival,
//!   O(1) state).
//! - **Synthesized**: [`FleetSynthesis`] knobs (app count, Zipf exponent,
//!   busy/idle process) expand into per-app on/off processes when no trace
//!   is available.
//!
//! Either way the result is a [`FleetSpec`], and the load path is
//! *streaming*: [`FleetArrivalStream`] lazily k-way-merges one
//! [`AppStream`] per app, so a 10M-request fleet costs O(apps) memory, not
//! O(requests). RNG discipline: app `i` draws only from
//! `seed.substream_indexed("app", i)` keyed by its *global* index, so any
//! partition of the fleet across cells or worker threads replays the exact
//! same per-app arrival sequences.

use crate::trace::WorkloadTrace;
use serde::{Deserialize, Serialize};
use slsb_sim::{Seed, SimDuration, SimRng, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Schema tag every fleet trace-summary JSON document must carry.
pub const FLEET_TRACE_SCHEMA: &str = "slsb-fleet-trace/v1";

/// Why a fleet description failed to parse or build.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetError {
    /// Malformed JSON/CSV input.
    Parse(String),
    /// The document declares a schema other than [`FLEET_TRACE_SCHEMA`].
    SchemaMismatch(String),
    /// The fleet has no apps (or no deployment profiles to assign).
    EmptyFleet,
    /// An app's invocation series is shorter than the declared bucket count
    /// — the classic symptom of a truncated export.
    Truncated {
        /// Offending app name.
        app: String,
        /// Buckets present.
        have: usize,
        /// Buckets declared.
        want: usize,
    },
    /// A synthesis or process knob is out of range.
    BadKnob(String),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Parse(s) => write!(f, "fleet trace parse error: {s}"),
            FleetError::SchemaMismatch(s) => {
                write!(f, "fleet trace schema {s:?}, expected {FLEET_TRACE_SCHEMA:?}")
            }
            FleetError::EmptyFleet => write!(f, "fleet has no apps"),
            FleetError::Truncated { app, have, want } => {
                write!(f, "truncated trace: app {app:?} has {have} of {want} buckets")
            }
            FleetError::BadKnob(s) => write!(f, "bad fleet knob: {s}"),
        }
    }
}

impl std::error::Error for FleetError {}

/// One app's arrival process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum AppProcess {
    /// Alternating busy/idle renewal process: lognormal idle gaps
    /// (heavy-tailed, the production signature), exponential busy sojourns
    /// with Poisson arrivals at `rate` while busy. The app starts idle.
    OnOff {
        /// Poisson rate while busy (req/s).
        rate: f64,
        /// Mean busy-period length.
        mean_busy: SimDuration,
        /// Median idle gap (lognormal location).
        median_idle: SimDuration,
        /// Lognormal shape of the idle gap; larger = heavier tail.
        idle_sigma: f64,
    },
    /// Exact per-bucket invocation counts from an ingested trace summary;
    /// each bucket's arrivals are uniform order statistics, drawn
    /// sequentially (one uniform per arrival, O(1) state).
    Buckets {
        /// Bucket width.
        bucket: SimDuration,
        /// Invocations per bucket.
        counts: Vec<u32>,
    },
}

impl AppProcess {
    /// Long-run duty cycle of an on/off process (fraction of time busy).
    fn duty(mean_busy: SimDuration, median_idle: SimDuration, idle_sigma: f64) -> f64 {
        let busy = mean_busy.as_secs_f64();
        let idle_mean = median_idle.as_secs_f64() * (idle_sigma * idle_sigma / 2.0).exp();
        busy / (busy + idle_mean)
    }

    /// Expected request count over `duration` (exact for `Buckets`).
    pub fn expected_requests(&self, duration: SimDuration) -> f64 {
        match self {
            AppProcess::OnOff {
                rate,
                mean_busy,
                median_idle,
                idle_sigma,
            } => rate * Self::duty(*mean_busy, *median_idle, *idle_sigma) * duration.as_secs_f64(),
            AppProcess::Buckets { counts, .. } => {
                counts.iter().map(|&c| c as f64).sum()
            }
        }
    }

    fn validate(&self, app: &str) -> Result<(), FleetError> {
        let bad = |what: &str| Err(FleetError::BadKnob(format!("app {app:?}: {what}")));
        match self {
            AppProcess::OnOff {
                rate,
                mean_busy,
                median_idle,
                idle_sigma,
            } => {
                if !rate.is_finite() || *rate < 0.0 {
                    return bad("rate must be finite and >= 0");
                }
                if mean_busy.is_zero() || median_idle.is_zero() {
                    return bad("busy/idle times must be positive");
                }
                if !idle_sigma.is_finite() || *idle_sigma < 0.0 {
                    return bad("idle_sigma must be finite and >= 0");
                }
            }
            AppProcess::Buckets { bucket, counts } => {
                if bucket.is_zero() {
                    return bad("bucket width must be positive");
                }
                if counts.is_empty() {
                    return bad("no buckets");
                }
            }
        }
        Ok(())
    }
}

/// One app in a fleet: a name, a deployment-profile label, and an arrival
/// process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppSpec {
    /// App name (unique within the fleet).
    pub name: String,
    /// Deployment-profile label this app is served with.
    pub profile: String,
    /// Arrival process.
    pub process: AppProcess,
}

/// A complete multi-tenant fleet workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSpec {
    /// Fleet label.
    pub name: String,
    /// Run duration; every app's arrivals stay within it.
    pub duration: SimDuration,
    /// The apps, in canonical (global-index) order.
    pub apps: Vec<AppSpec>,
}

impl FleetSpec {
    /// Checks every knob.
    ///
    /// # Errors
    /// [`FleetError::EmptyFleet`] or [`FleetError::BadKnob`].
    pub fn validate(&self) -> Result<(), FleetError> {
        if self.apps.is_empty() {
            return Err(FleetError::EmptyFleet);
        }
        if self.duration.is_zero() {
            return Err(FleetError::BadKnob("fleet duration must be positive".into()));
        }
        for app in &self.apps {
            app.process.validate(&app.name)?;
        }
        Ok(())
    }

    /// Expected total request count.
    pub fn expected_requests(&self) -> f64 {
        self.apps
            .iter()
            .map(|a| a.process.expected_requests(self.duration))
            .sum()
    }

    /// Streams the whole fleet's arrivals, merged in time order.
    pub fn arrival_stream(&self, seed: Seed) -> FleetArrivalStream {
        self.arrival_stream_for(seed, 0..self.apps.len() as u32)
    }

    /// Streams a subset of apps (by global index), merged in time order.
    ///
    /// Each app's RNG substream is keyed by its *global* index, so app `i`
    /// produces the identical arrival sequence whether streamed alone, in a
    /// cell's subset, or in the full merge — the structural basis of the
    /// fleet engine's byte-identity across `--jobs`/`--shards`.
    pub fn arrival_stream_for(
        &self,
        seed: Seed,
        apps: impl IntoIterator<Item = u32>,
    ) -> FleetArrivalStream {
        FleetArrivalStream::merge(apps.into_iter().map(|i| {
            let spec = &self.apps[i as usize];
            let sub = seed.substream_indexed("app", i as u64);
            (i, AppStream::new(&spec.process, self.duration, sub))
        }))
    }

    /// Materializes the merged fleet into a flat [`WorkloadTrace`] — the
    /// thin adapter for consumers that still want a `Vec`. O(requests)
    /// memory, byte-identical to draining [`FleetSpec::arrival_stream`].
    pub fn materialize(&self, seed: Seed) -> WorkloadTrace {
        let cap = (self.expected_requests() * 1.2).max(16.0) as usize;
        let mut arrivals = Vec::with_capacity(cap);
        arrivals.extend(self.arrival_stream(seed).map(|(at, _)| at));
        WorkloadTrace::new(self.name.clone(), self.duration, arrivals)
    }
}

/// Knob-based fleet synthesis: `apps` tenants whose long-run request rates
/// follow a Zipf(`zipf_exponent`) popularity curve summing to `total_rate`,
/// each an on/off process with exponential busy periods and lognormal
/// (heavy-tailed) idle gaps.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetSynthesis {
    /// Number of apps.
    pub apps: u32,
    /// Zipf popularity exponent (0 = uniform).
    pub zipf_exponent: f64,
    /// Fleet-wide long-run arrival rate (req/s).
    pub total_rate: f64,
    /// Mean busy-period length, seconds.
    pub mean_busy_s: f64,
    /// Median idle gap, seconds.
    pub median_idle_s: f64,
    /// Lognormal idle-gap shape; 1.5–2.5 gives production-like tails.
    pub idle_sigma: f64,
    /// Run duration, seconds.
    pub duration_s: f64,
}

impl FleetSynthesis {
    /// Expands the knobs into a concrete [`FleetSpec`], assigning profile
    /// labels round-robin over `profiles` in rank order (most popular app
    /// gets `profiles[0]`).
    ///
    /// Within each app the busy-period Poisson rate is the app's long-run
    /// Zipf share divided by the process duty cycle, so the *fleet's*
    /// long-run rate matches `total_rate` while individual apps stay bursty.
    ///
    /// # Errors
    /// [`FleetError::BadKnob`] on out-of-range knobs,
    /// [`FleetError::EmptyFleet`] when `apps` or `profiles` is empty.
    pub fn build(&self, name: &str, profiles: &[String]) -> Result<FleetSpec, FleetError> {
        if self.apps == 0 || profiles.is_empty() {
            return Err(FleetError::EmptyFleet);
        }
        let bad = |what: &str| Err(FleetError::BadKnob(what.into()));
        if !self.zipf_exponent.is_finite() || self.zipf_exponent < 0.0 {
            return bad("zipf_exponent must be finite and >= 0");
        }
        if !self.total_rate.is_finite() || self.total_rate <= 0.0 {
            return bad("total_rate must be positive");
        }
        if !self.mean_busy_s.is_finite()
            || self.mean_busy_s <= 0.0
            || !self.median_idle_s.is_finite()
            || self.median_idle_s <= 0.0
        {
            return bad("busy/idle times must be positive");
        }
        if !self.idle_sigma.is_finite() || self.idle_sigma < 0.0 {
            return bad("idle_sigma must be finite and >= 0");
        }
        if !self.duration_s.is_finite() || self.duration_s <= 0.0 {
            return bad("duration_s must be positive");
        }
        let mean_busy = SimDuration::from_secs_f64(self.mean_busy_s);
        let median_idle = SimDuration::from_secs_f64(self.median_idle_s);
        let duty = AppProcess::duty(mean_busy, median_idle, self.idle_sigma);
        let harmonic: f64 = (1..=self.apps)
            .map(|i| (i as f64).powf(-self.zipf_exponent))
            .sum();
        let apps = (0..self.apps)
            .map(|i| {
                let share = ((i + 1) as f64).powf(-self.zipf_exponent) / harmonic;
                AppSpec {
                    name: format!("app-{i:04}"),
                    profile: profiles[i as usize % profiles.len()].clone(),
                    process: AppProcess::OnOff {
                        rate: self.total_rate * share / duty,
                        mean_busy,
                        median_idle,
                        idle_sigma: self.idle_sigma,
                    },
                }
            })
            .collect();
        let spec = FleetSpec {
            name: name.to_string(),
            duration: SimDuration::from_secs_f64(self.duration_s),
            apps,
        };
        spec.validate()?;
        Ok(spec)
    }
}

/// A production trace summary: per-app invocation counts per fixed-width
/// time bucket, in the style of the Azure Functions dataset. This is the
/// documented on-disk schema (`slsb fleet ingest` emits it).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Must equal [`FLEET_TRACE_SCHEMA`].
    pub schema: String,
    /// Fleet label.
    pub name: String,
    /// Bucket width, seconds.
    pub bucket_s: f64,
    /// Declared bucket count; every app must carry exactly this many.
    pub buckets: u32,
    /// Per-app rows.
    pub apps: Vec<TraceApp>,
}

/// One app's row in a [`TraceSummary`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceApp {
    /// App name.
    pub name: String,
    /// Deployment-profile label.
    pub profile: String,
    /// Invocations per bucket (`buckets` entries).
    pub invocations: Vec<u32>,
    /// Median handler duration hint, milliseconds (informational).
    #[serde(default = "TraceApp::no_hint")]
    pub duration_ms_p50: Option<f64>,
    /// Median memory hint, MB — overrides the profile's memory when set.
    #[serde(default = "TraceApp::no_hint")]
    pub memory_mb_p50: Option<f64>,
    /// Model-artifact size hint, MB — adds to the profile's download size.
    #[serde(default = "TraceApp::no_hint")]
    pub artifact_mb: Option<f64>,
}

impl TraceApp {
    fn no_hint() -> Option<f64> {
        None
    }
}

impl TraceSummary {
    /// Parses and validates the canonical JSON document.
    ///
    /// # Errors
    /// [`FleetError::Parse`] on malformed JSON, [`FleetError::SchemaMismatch`]
    /// on a wrong `schema` tag, [`FleetError::Truncated`] when an app has
    /// fewer buckets than declared, [`FleetError::EmptyFleet`]/
    /// [`FleetError::BadKnob`] on structural problems.
    pub fn from_json(text: &str) -> Result<TraceSummary, FleetError> {
        let summary: TraceSummary =
            serde_json::from_str(text).map_err(|e| FleetError::Parse(e.to_string()))?;
        summary.validate()?;
        Ok(summary)
    }

    /// Serializes to the canonical pretty-JSON document.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("trace summary is serializable")
    }

    /// Parses the raw CSV export format `slsb fleet ingest` converts:
    /// a `# name=…,bucket_s=…,buckets=…` header, an optional
    /// `app,profile,bucket,invocations` column line, then one count per
    /// row. Apps appear in first-mention order; duplicate `(app, bucket)`
    /// rows accumulate.
    ///
    /// # Errors
    /// [`FleetError::Parse`] on malformed headers, rows, truncated lines, or
    /// out-of-range bucket indices; plus everything `validate` rejects.
    pub fn from_csv(text: &str) -> Result<TraceSummary, FleetError> {
        let mut lines = text.lines();
        let header = lines
            .next()
            .and_then(|l| l.strip_prefix("# "))
            .ok_or_else(|| FleetError::Parse("missing `# name=…` header".into()))?;
        let (mut name, mut bucket_s, mut buckets) = (None, None, None);
        for kv in header.split(',') {
            match kv.split_once('=') {
                Some(("name", v)) => name = Some(v.to_string()),
                Some(("bucket_s", v)) => {
                    bucket_s = Some(v.parse::<f64>().map_err(|_| {
                        FleetError::Parse(format!("bad bucket_s {v:?}"))
                    })?)
                }
                Some(("buckets", v)) => {
                    buckets = Some(v.parse::<u32>().map_err(|_| {
                        FleetError::Parse(format!("bad buckets {v:?}"))
                    })?)
                }
                _ => return Err(FleetError::Parse(format!("unknown header field {kv:?}"))),
            }
        }
        let missing = |what: &str| FleetError::Parse(format!("header missing {what}"));
        let name = name.ok_or_else(|| missing("name"))?;
        let bucket_s = bucket_s.ok_or_else(|| missing("bucket_s"))?;
        let buckets = buckets.ok_or_else(|| missing("buckets"))?;

        let mut apps: Vec<TraceApp> = Vec::new();
        for line in lines {
            if line.is_empty() || line.starts_with("app,") {
                continue;
            }
            let mut cols = line.split(',');
            let (app, profile, bucket, count) =
                match (cols.next(), cols.next(), cols.next(), cols.next(), cols.next()) {
                    (Some(a), Some(p), Some(b), Some(c), None) => (a, p, b, c),
                    _ => {
                        return Err(FleetError::Parse(format!(
                            "row {line:?} needs app,profile,bucket,invocations"
                        )))
                    }
                };
            let bucket: usize = bucket
                .parse()
                .map_err(|_| FleetError::Parse(format!("bad bucket index {bucket:?}")))?;
            if bucket >= buckets as usize {
                return Err(FleetError::Parse(format!(
                    "bucket {bucket} out of range (buckets={buckets})"
                )));
            }
            let count: u32 = count
                .parse()
                .map_err(|_| FleetError::Parse(format!("bad invocation count {count:?}")))?;
            let slot = match apps.iter().position(|x| x.name == app) {
                Some(i) => {
                    if apps[i].profile != profile {
                        return Err(FleetError::Parse(format!(
                            "app {app:?} listed with profiles {:?} and {profile:?}",
                            apps[i].profile
                        )));
                    }
                    i
                }
                None => {
                    apps.push(TraceApp {
                        name: app.to_string(),
                        profile: profile.to_string(),
                        invocations: vec![0; buckets as usize],
                        duration_ms_p50: None,
                        memory_mb_p50: None,
                        artifact_mb: None,
                    });
                    apps.len() - 1
                }
            };
            apps[slot].invocations[bucket] += count;
        }
        let summary = TraceSummary {
            schema: FLEET_TRACE_SCHEMA.to_string(),
            name,
            bucket_s,
            buckets,
            apps,
        };
        summary.validate()?;
        Ok(summary)
    }

    /// Structural validation shared by both parsers.
    ///
    /// # Errors
    /// See [`TraceSummary::from_json`].
    pub fn validate(&self) -> Result<(), FleetError> {
        if self.schema != FLEET_TRACE_SCHEMA {
            return Err(FleetError::SchemaMismatch(self.schema.clone()));
        }
        if !self.bucket_s.is_finite() || self.bucket_s <= 0.0 {
            return Err(FleetError::BadKnob("bucket_s must be positive".into()));
        }
        if self.buckets == 0 {
            return Err(FleetError::BadKnob("buckets must be positive".into()));
        }
        if self.apps.is_empty() {
            return Err(FleetError::EmptyFleet);
        }
        for app in &self.apps {
            if app.invocations.len() != self.buckets as usize {
                return Err(FleetError::Truncated {
                    app: app.name.clone(),
                    have: app.invocations.len(),
                    want: self.buckets as usize,
                });
            }
        }
        Ok(())
    }

    /// Total invocations across the fleet.
    pub fn total_invocations(&self) -> u64 {
        self.apps
            .iter()
            .flat_map(|a| a.invocations.iter())
            .map(|&c| c as u64)
            .sum()
    }

    /// Bucket width as a duration (micros-exact).
    pub fn bucket(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.bucket_s)
    }

    /// Converts to a runnable [`FleetSpec`]: duration = `buckets` × bucket
    /// width, each app replaying its exact counts.
    ///
    /// # Errors
    /// Propagates validation failures.
    pub fn to_fleet_spec(&self) -> Result<FleetSpec, FleetError> {
        self.validate()?;
        let bucket = self.bucket();
        let spec = FleetSpec {
            name: self.name.clone(),
            duration: SimDuration::from_micros(bucket.as_micros() * self.buckets as u64),
            apps: self
                .apps
                .iter()
                .map(|a| AppSpec {
                    name: a.name.clone(),
                    profile: a.profile.clone(),
                    process: AppProcess::Buckets {
                        bucket,
                        counts: a.invocations.clone(),
                    },
                })
                .collect(),
        };
        spec.validate()?;
        Ok(spec)
    }
}

/// Lazy iterator over one app's arrival instants.
#[derive(Debug, Clone)]
pub struct AppStream {
    rng: SimRng,
    end: SimTime,
    state: AppState,
}

#[derive(Debug, Clone)]
enum AppState {
    OnOff {
        rate: f64,
        mean_busy: SimDuration,
        median_idle: SimDuration,
        idle_sigma: f64,
        segment_start: SimTime,
        segment_end: SimTime,
        cursor: SimTime,
        in_busy: bool,
    },
    Buckets {
        bucket: SimDuration,
        counts: Vec<u32>,
        idx: usize,
        remaining: u32,
        cursor: SimTime,
    },
}

impl AppStream {
    /// Starts one app's stream on its own RNG substream.
    pub fn new(process: &AppProcess, duration: SimDuration, seed: Seed) -> AppStream {
        let state = match process {
            AppProcess::OnOff {
                rate,
                mean_busy,
                median_idle,
                idle_sigma,
            } => AppState::OnOff {
                rate: *rate,
                mean_busy: *mean_busy,
                median_idle: *median_idle,
                idle_sigma: *idle_sigma,
                segment_start: SimTime::ZERO,
                segment_end: SimTime::ZERO,
                cursor: SimTime::ZERO,
                in_busy: false,
            },
            AppProcess::Buckets { bucket, counts } => AppState::Buckets {
                bucket: *bucket,
                counts: counts.clone(),
                idx: 0,
                remaining: 0,
                cursor: SimTime::ZERO,
            },
        };
        AppStream {
            rng: seed.rng(),
            end: SimTime::ZERO + duration,
            state,
        }
    }
}

impl Iterator for AppStream {
    type Item = SimTime;

    fn next(&mut self) -> Option<SimTime> {
        match &mut self.state {
            AppState::OnOff {
                rate,
                mean_busy,
                median_idle,
                idle_sigma,
                segment_start,
                segment_end,
                cursor,
                in_busy,
            } => loop {
                if *in_busy {
                    let t = *cursor + self.rng.exp_interval(*rate);
                    if t >= *segment_end {
                        *in_busy = false;
                        *segment_start = *segment_end;
                    } else {
                        *cursor = t;
                        return Some(t);
                    }
                } else {
                    if *segment_start >= self.end {
                        return None;
                    }
                    let idle = self.rng.lognormal(*median_idle, *idle_sigma);
                    *segment_start = segment_start.saturating_add(idle).min(self.end);
                    if *segment_start >= self.end {
                        return None;
                    }
                    let busy = self.rng.exp_mean(*mean_busy);
                    *segment_end = segment_start.saturating_add(busy).min(self.end);
                    if *rate > 0.0 {
                        *in_busy = true;
                        *cursor = *segment_start;
                    } else {
                        *segment_start = *segment_end;
                    }
                }
            },
            AppState::Buckets {
                bucket,
                counts,
                idx,
                remaining,
                cursor,
            } => {
                if *remaining == 0 {
                    while *idx < counts.len() && counts[*idx] == 0 {
                        *idx += 1;
                    }
                    if *idx >= counts.len() {
                        return None;
                    }
                    *remaining = counts[*idx];
                    *cursor = SimTime::from_micros(bucket.as_micros() * *idx as u64);
                }
                // The minimum of n uniforms on the remaining window
                // [cursor, bucket_end): CDF 1-(1-x/L)^n, inverted below.
                // Conditioning on it leaves n-1 uniforms on the rest, so
                // sequential draws replay the bucket's exact count.
                let bucket_end =
                    SimTime::from_micros(bucket.as_micros() * (*idx as u64 + 1)).min(self.end);
                let window = bucket_end.duration_since(*cursor).as_secs_f64();
                let u = self.rng.uniform();
                let gap = window * (1.0 - u.powf(1.0 / *remaining as f64));
                let at = cursor.saturating_add(SimDuration::from_secs_f64(gap)).min(bucket_end);
                *cursor = at;
                *remaining -= 1;
                if *remaining == 0 {
                    *idx += 1;
                }
                Some(at)
            }
        }
    }
}

/// Merges this many streams or fewer with a linear min-scan instead of a
/// binary heap. Partitioned fleet cells typically hold a few dozen apps
/// (`apps / FLEET_CELLS`), where a branch-predictable scan over a dense
/// `SimTime` array beats the heap's pointer-chasing sift by 2-3x per pop.
const SCAN_MERGE_MAX: usize = 64;

/// The merge frontier: one pending arrival per live stream.
#[derive(Debug, Clone)]
enum MergeFrontier {
    /// Small merges: `next[slot]` is that stream's pending arrival
    /// (`SimTime::MAX` = exhausted); each pop min-scans the array. `live`
    /// counts non-exhausted slots so an empty merge terminates without a
    /// scan full of sentinels.
    Scan { next: Vec<SimTime>, live: usize },
    /// Large merges: min-heap on (next arrival, slot); the slot tie-break
    /// makes same-instant pops deterministic (lower global app index first).
    Heap(BinaryHeap<Reverse<(SimTime, u32)>>),
}

/// K-way merge of per-app arrival streams into one time-ordered stream of
/// `(arrival, app)` pairs. Holds exactly one pending arrival per live app —
/// the whole point: O(apps) memory however many requests flow through.
///
/// Both frontier representations pop in the identical order — smallest
/// `(arrival, slot)` pair, so same-instant arrivals break ties toward the
/// lower global app index — which keeps merged output byte-identical
/// whichever representation the app count selects.
#[derive(Debug, Clone)]
pub struct FleetArrivalStream {
    ids: Vec<u32>,
    streams: Vec<AppStream>,
    frontier: MergeFrontier,
}

impl FleetArrivalStream {
    /// Merges `(global_app_index, stream)` pairs.
    pub fn merge(apps: impl IntoIterator<Item = (u32, AppStream)>) -> Self {
        let mut ids = Vec::new();
        let mut streams = Vec::new();
        for (id, stream) in apps {
            ids.push(id);
            streams.push(stream);
        }
        let frontier = if streams.len() <= SCAN_MERGE_MAX {
            let mut live = 0;
            let next = streams
                .iter_mut()
                .map(|s| match s.next() {
                    Some(t) => {
                        live += 1;
                        t
                    }
                    None => SimTime::MAX,
                })
                .collect();
            MergeFrontier::Scan { next, live }
        } else {
            let mut heap = BinaryHeap::with_capacity(streams.len());
            for (slot, s) in streams.iter_mut().enumerate() {
                if let Some(t) = s.next() {
                    heap.push(Reverse((t, slot as u32)));
                }
            }
            MergeFrontier::Heap(heap)
        };
        FleetArrivalStream { ids, streams, frontier }
    }

    /// Number of apps in the merge (live or exhausted).
    pub fn apps(&self) -> usize {
        self.streams.len()
    }
}

impl Iterator for FleetArrivalStream {
    type Item = (SimTime, u32);

    fn next(&mut self) -> Option<(SimTime, u32)> {
        let (at, slot) = match &mut self.frontier {
            MergeFrontier::Scan { next, live } => {
                if *live == 0 {
                    return None;
                }
                // Strict `<` keeps the first (lowest) slot on ties, matching
                // the heap's (t, slot) ordering.
                let mut best = 0;
                for (slot, &t) in next.iter().enumerate().skip(1) {
                    if t < next[best] {
                        best = slot;
                    }
                }
                let at = next[best];
                match self.streams[best].next() {
                    Some(t) => {
                        debug_assert!(t >= at, "app stream went backwards");
                        next[best] = t;
                    }
                    None => {
                        next[best] = SimTime::MAX;
                        *live -= 1;
                    }
                }
                (at, best as u32)
            }
            MergeFrontier::Heap(heap) => {
                let Reverse((at, slot)) = heap.pop()?;
                if let Some(t) = self.streams[slot as usize].next() {
                    debug_assert!(t >= at, "app stream went backwards");
                    heap.push(Reverse((t, slot)));
                }
                (at, slot)
            }
        };
        Some((at, self.ids[slot as usize]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profiles() -> Vec<String> {
        vec!["cnn".into(), "lstm".into()]
    }

    fn small_synth() -> FleetSynthesis {
        FleetSynthesis {
            apps: 20,
            zipf_exponent: 1.1,
            total_rate: 40.0,
            mean_busy_s: 10.0,
            median_idle_s: 20.0,
            idle_sigma: 1.5,
            duration_s: 300.0,
        }
    }

    #[test]
    fn synthesis_builds_zipf_fleet() {
        let fleet = small_synth().build("synth", &profiles()).unwrap();
        assert_eq!(fleet.apps.len(), 20);
        assert_eq!(fleet.apps[0].profile, "cnn");
        assert_eq!(fleet.apps[1].profile, "lstm");
        // Rank-0 app strictly more popular than rank-19.
        let rate = |i: usize| match fleet.apps[i].process {
            AppProcess::OnOff { rate, .. } => rate,
            _ => unreachable!(),
        };
        assert!(rate(0) > rate(19) * 10.0);
        // Long-run expectation tracks total_rate × duration.
        let expect = fleet.expected_requests();
        assert!((expect - 40.0 * 300.0).abs() / (40.0 * 300.0) < 1e-6);
    }

    #[test]
    fn synthesis_rejects_bad_knobs() {
        let mut s = small_synth();
        s.total_rate = -1.0;
        assert!(matches!(
            s.build("x", &profiles()),
            Err(FleetError::BadKnob(_))
        ));
        assert!(matches!(
            small_synth().build("x", &[]),
            Err(FleetError::EmptyFleet)
        ));
    }

    #[test]
    fn merged_stream_is_sorted_and_bounded() {
        let fleet = small_synth().build("synth", &profiles()).unwrap();
        let arrivals: Vec<(SimTime, u32)> = fleet.arrival_stream(Seed(7)).collect();
        assert!(arrivals.len() > 1000, "got {}", arrivals.len());
        assert!(arrivals.windows(2).all(|w| w[0].0 <= w[1].0));
        let end = SimTime::ZERO + fleet.duration;
        assert!(arrivals.iter().all(|&(t, _)| t <= end));
        assert!(arrivals.iter().all(|&(_, a)| (a as usize) < fleet.apps.len()));
    }

    #[test]
    fn per_app_sequences_are_partition_invariant() {
        // App i's arrivals must be the same whether it is streamed alone or
        // inside the full merge — the property sharded fleet runs rely on.
        let fleet = small_synth().build("synth", &profiles()).unwrap();
        let seed = Seed(11);
        let full: Vec<(SimTime, u32)> = fleet.arrival_stream(seed).collect();
        for i in [0u32, 7, 19] {
            let alone: Vec<SimTime> = fleet
                .arrival_stream_for(seed, [i])
                .map(|(t, _)| t)
                .collect();
            let filtered: Vec<SimTime> = full
                .iter()
                .filter(|&&(_, a)| a == i)
                .map(|&(t, _)| t)
                .collect();
            assert_eq!(alone, filtered, "app {i}");
        }
    }

    #[test]
    fn materialize_matches_stream() {
        let fleet = small_synth().build("synth", &profiles()).unwrap();
        let tr = fleet.materialize(Seed(3));
        let streamed: Vec<SimTime> = fleet.arrival_stream(Seed(3)).map(|(t, _)| t).collect();
        assert_eq!(tr.arrivals(), &streamed[..]);
        assert_eq!(tr.name(), "synth");
    }

    #[test]
    fn bucket_replay_is_exact() {
        let bucket = SimDuration::from_secs(10);
        let counts = vec![3u32, 0, 5, 1];
        let process = AppProcess::Buckets {
            bucket,
            counts: counts.clone(),
        };
        let duration = SimDuration::from_secs(40);
        let arrivals: Vec<SimTime> =
            AppStream::new(&process, duration, Seed(9).substream("t")).collect();
        assert_eq!(arrivals.len(), 9);
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        for (i, &want) in counts.iter().enumerate() {
            let lo = 10_000_000 * i as u64;
            let hi = 10_000_000 * (i + 1) as u64;
            let got = arrivals
                .iter()
                .filter(|t| t.as_micros() >= lo && t.as_micros() <= hi)
                .count();
            // Boundary clamping can place a sample exactly on `hi`; the
            // half-open count still must match when buckets are counted in
            // order (no sample may leave its bucket).
            assert!(
                got >= want as usize,
                "bucket {i}: {got} arrivals, want {want}"
            );
        }
        // Exact per-bucket counts under half-open bucketing.
        let mut per_bucket = vec![0u32; counts.len()];
        for t in &arrivals {
            let idx = ((t.as_micros() / 10_000_000) as usize).min(counts.len() - 1);
            per_bucket[idx] += 1;
        }
        assert_eq!(per_bucket, counts);
    }

    #[test]
    fn trace_summary_json_roundtrip() {
        let summary = TraceSummary {
            schema: FLEET_TRACE_SCHEMA.into(),
            name: "sample".into(),
            bucket_s: 60.0,
            buckets: 3,
            apps: vec![TraceApp {
                name: "app-a".into(),
                profile: "cnn".into(),
                invocations: vec![5, 0, 2],
                duration_ms_p50: Some(35.0),
                memory_mb_p50: None,
                artifact_mb: Some(96.0),
            }],
        };
        let parsed = TraceSummary::from_json(&summary.to_json()).unwrap();
        assert_eq!(parsed, summary);
        let fleet = parsed.to_fleet_spec().unwrap();
        assert_eq!(fleet.duration, SimDuration::from_secs(180));
        assert_eq!(fleet.expected_requests(), 7.0);
    }

    #[test]
    fn trace_summary_rejects_schema_and_truncation() {
        let err = TraceSummary::from_json(r#"{"schema":"other/v9","name":"x","bucket_s":60.0,"buckets":1,"apps":[{"name":"a","profile":"p","invocations":[1]}]}"#)
            .unwrap_err();
        assert!(matches!(err, FleetError::SchemaMismatch(_)));
        let err = TraceSummary::from_json(&format!(
            r#"{{"schema":"{FLEET_TRACE_SCHEMA}","name":"x","bucket_s":60.0,"buckets":3,"apps":[{{"name":"a","profile":"p","invocations":[1,2]}}]}}"#
        ))
        .unwrap_err();
        assert_eq!(
            err,
            FleetError::Truncated {
                app: "a".into(),
                have: 2,
                want: 3
            }
        );
        assert!(matches!(
            TraceSummary::from_json("{not json"),
            Err(FleetError::Parse(_))
        ));
        let err = TraceSummary::from_json(&format!(
            r#"{{"schema":"{FLEET_TRACE_SCHEMA}","name":"x","bucket_s":60.0,"buckets":1,"apps":[]}}"#
        ))
        .unwrap_err();
        assert_eq!(err, FleetError::EmptyFleet);
    }

    #[test]
    fn csv_ingest_accumulates_and_validates() {
        let csv = "\
# name=prod,bucket_s=60,buckets=3
app,profile,bucket,invocations
frontdoor,cnn,0,4
frontdoor,cnn,2,2
batch,lstm,1,9
frontdoor,cnn,0,1
";
        let summary = TraceSummary::from_csv(csv).unwrap();
        assert_eq!(summary.apps.len(), 2);
        assert_eq!(summary.apps[0].name, "frontdoor");
        assert_eq!(summary.apps[0].invocations, vec![5, 0, 2]);
        assert_eq!(summary.apps[1].invocations, vec![0, 9, 0]);
        assert_eq!(summary.total_invocations(), 16);

        assert!(matches!(
            TraceSummary::from_csv(""),
            Err(FleetError::Parse(_))
        ));
        assert!(matches!(
            TraceSummary::from_csv("# name=x,bucket_s=60,buckets=2\na,p,5,1\n"),
            Err(FleetError::Parse(_))
        ));
        // Truncated mid-row: missing the count column.
        assert!(matches!(
            TraceSummary::from_csv("# name=x,bucket_s=60,buckets=2\na,p,1\n"),
            Err(FleetError::Parse(_))
        ));
        // One app under two profiles is ambiguous.
        assert!(matches!(
            TraceSummary::from_csv("# name=x,bucket_s=60,buckets=2\na,p,0,1\na,q,1,1\n"),
            Err(FleetError::Parse(_))
        ));
    }

    #[test]
    fn stream_is_deterministic_per_seed() {
        let fleet = small_synth().build("synth", &profiles()).unwrap();
        let a: Vec<(SimTime, u32)> = fleet.arrival_stream(Seed(5)).collect();
        let b: Vec<(SimTime, u32)> = fleet.arrival_stream(Seed(5)).collect();
        let c: Vec<(SimTime, u32)> = fleet.arrival_stream(Seed(6)).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
