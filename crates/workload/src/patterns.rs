//! Additional workload shapes beyond the paper's MMPP: a diurnal
//! (time-of-day) cycle and a flash crowd. Both are non-homogeneous Poisson
//! processes sampled by thinning, and both exist to stress the serving
//! platforms on patterns the MMPP presets cannot express — slow predictable
//! ramps and a single extreme spike.

use crate::trace::WorkloadTrace;
use slsb_sim::{Seed, SimDuration, SimTime};
use std::f64::consts::TAU;

/// A sinusoidal day-night cycle: rate oscillates between
/// `base - amplitude` and `base + amplitude` with the given period.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalSpec {
    /// Trace label.
    pub name: &'static str,
    /// Mean arrival rate (requests/second).
    pub base_rate: f64,
    /// Peak-to-mean rate difference (requests/second); must not exceed
    /// `base_rate`.
    pub amplitude: f64,
    /// Length of one day-night cycle.
    pub period: SimDuration,
    /// Total trace duration.
    pub duration: SimDuration,
}

impl DiurnalSpec {
    /// Instantaneous rate at `t` seconds.
    pub fn rate_at(&self, t_secs: f64) -> f64 {
        self.base_rate + self.amplitude * (TAU * t_secs / self.period.as_secs_f64()).sin()
    }

    /// Samples a trace via Poisson thinning.
    ///
    /// # Panics
    /// Panics if amplitude exceeds the base rate or parameters are not
    /// finite and positive.
    pub fn generate(&self, seed: Seed) -> WorkloadTrace {
        assert!(
            self.base_rate.is_finite() && self.base_rate > 0.0,
            "invalid base rate"
        );
        assert!(
            self.amplitude.is_finite() && (0.0..=self.base_rate).contains(&self.amplitude),
            "amplitude must be within [0, base_rate]"
        );
        let max_rate = self.base_rate + self.amplitude;
        let arrivals = thin(seed, self.duration, max_rate, |t| self.rate_at(t));
        WorkloadTrace::new(self.name, self.duration, arrivals)
    }
}

/// A flash crowd: a low background rate with one rectangular spike.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashCrowdSpec {
    /// Trace label.
    pub name: &'static str,
    /// Background rate (requests/second).
    pub base_rate: f64,
    /// Rate during the spike.
    pub spike_rate: f64,
    /// When the spike begins.
    pub spike_start: SimTime,
    /// How long the spike lasts.
    pub spike_duration: SimDuration,
    /// Total trace duration.
    pub duration: SimDuration,
}

impl FlashCrowdSpec {
    /// Instantaneous rate at `t` seconds.
    pub fn rate_at(&self, t_secs: f64) -> f64 {
        let start = self.spike_start.as_secs_f64();
        let end = start + self.spike_duration.as_secs_f64();
        if (start..end).contains(&t_secs) {
            self.spike_rate
        } else {
            self.base_rate
        }
    }

    /// Samples a trace via Poisson thinning.
    ///
    /// # Panics
    /// Panics if rates are not finite/positive or the spike is slower than
    /// the background.
    pub fn generate(&self, seed: Seed) -> WorkloadTrace {
        assert!(
            self.base_rate.is_finite() && self.base_rate > 0.0,
            "invalid base rate"
        );
        assert!(
            self.spike_rate.is_finite() && self.spike_rate >= self.base_rate,
            "spike must be at least the background rate"
        );
        let arrivals = thin(seed, self.duration, self.spike_rate, |t| self.rate_at(t));
        WorkloadTrace::new(self.name, self.duration, arrivals)
    }
}

/// Samples a non-homogeneous Poisson process with rate `rate_at` bounded by
/// `max_rate`, by thinning a homogeneous process at `max_rate`.
fn thin(
    seed: Seed,
    duration: SimDuration,
    max_rate: f64,
    rate_at: impl Fn(f64) -> f64,
) -> Vec<SimTime> {
    let mut rng = seed.substream("nhpp-thinning").rng();
    let mut arrivals = Vec::new();
    let mut t = SimTime::ZERO;
    loop {
        t += rng.exp_interval(max_rate);
        if t.as_micros() >= duration.as_micros() {
            break;
        }
        let keep_prob = rate_at(t.as_secs_f64()) / max_rate;
        if rng.chance(keep_prob) {
            arrivals.push(t);
        }
    }
    arrivals
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diurnal() -> DiurnalSpec {
        DiurnalSpec {
            name: "diurnal",
            base_rate: 50.0,
            amplitude: 40.0,
            period: SimDuration::from_secs(300),
            duration: SimDuration::from_secs(900),
        }
    }

    #[test]
    fn diurnal_count_matches_mean_rate() {
        let tr = diurnal().generate(Seed(1));
        // Over whole periods the sinusoid integrates to the base rate.
        let expected = 50.0 * 900.0;
        let n = tr.len() as f64;
        assert!((n - expected).abs() / expected < 0.05, "count {n}");
    }

    #[test]
    fn diurnal_peaks_and_troughs_differ() {
        let tr = diurnal().generate(Seed(2));
        let series = tr.rate_series(SimDuration::from_secs(10));
        // Peak of the cycle sits near t=75 (sin max), trough near t=225.
        let peak = series[7].1 as f64 / 10.0;
        let trough = series[22].1 as f64 / 10.0;
        assert!(peak > 2.0 * trough, "peak {peak} vs trough {trough}");
    }

    #[test]
    fn flash_crowd_concentrates_in_spike() {
        let spec = FlashCrowdSpec {
            name: "flash",
            base_rate: 5.0,
            spike_rate: 200.0,
            spike_start: SimTime::from_secs_f64(300.0),
            spike_duration: SimDuration::from_secs(60),
            duration: SimDuration::from_secs(600),
        };
        let tr = spec.generate(Seed(3));
        let in_spike = tr
            .arrivals()
            .iter()
            .filter(|t| (300.0..360.0).contains(&t.as_secs_f64()))
            .count();
        // Expected: spike 12000 vs background 2700.
        assert!(in_spike as f64 > tr.len() as f64 * 0.7, "spike share");
    }

    #[test]
    fn rate_at_is_bounded() {
        let d = diurnal();
        for i in 0..900 {
            let r = d.rate_at(i as f64);
            assert!((10.0..=90.0).contains(&r));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(diurnal().generate(Seed(7)), diurnal().generate(Seed(7)));
        assert_ne!(diurnal().generate(Seed(7)), diurnal().generate(Seed(8)));
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn excessive_amplitude_panics() {
        DiurnalSpec {
            amplitude: 60.0,
            ..diurnal()
        }
        .generate(Seed(1));
    }

    #[test]
    #[should_panic(expected = "spike")]
    fn slow_spike_panics() {
        FlashCrowdSpec {
            name: "bad",
            base_rate: 10.0,
            spike_rate: 5.0,
            spike_start: SimTime::ZERO,
            spike_duration: SimDuration::from_secs(10),
            duration: SimDuration::from_secs(100),
        }
        .generate(Seed(1));
    }
}
