//! Property-based tests of workload-generation invariants.

use proptest::prelude::*;
use slsb_sim::{Seed, SimDuration, SimTime};
use slsb_workload::{
    merge, split_round_robin, AppProcess, AppStream, FleetSynthesis, InputKind, MmppPreset,
    MmppSpec, PoissonProcess, RequestPool, WorkloadTrace,
};

fn spec(rate_high: f64, rate_low: f64, secs: u64) -> MmppSpec {
    MmppSpec {
        name: "prop",
        rate_high,
        rate_low,
        mean_high_dwell: SimDuration::from_secs(20),
        mean_low_dwell: SimDuration::from_secs(40),
        duration: SimDuration::from_secs(secs),
    }
}

proptest! {
    /// MMPP arrivals are sorted and within the duration for any parameters.
    #[test]
    fn mmpp_arrivals_sorted_in_range(
        rate_high in 1.0f64..300.0,
        low_frac in 0.0f64..1.0,
        secs in 10u64..600,
        seed in 0u64..1000,
    ) {
        let tr = spec(rate_high, rate_high * low_frac, secs).generate(Seed(seed));
        let a = tr.arrivals();
        prop_assert!(a.windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(a.iter().all(|t| t.as_micros() <= secs * 1_000_000));
    }

    /// Expected request count scales linearly with duration.
    #[test]
    fn mmpp_expectation_linear_in_duration(rate in 5.0f64..100.0, secs in 50u64..500) {
        let one = spec(rate, rate / 4.0, secs);
        let two = spec(rate, rate / 4.0, secs * 2);
        prop_assert!((two.expected_requests() / one.expected_requests() - 2.0).abs() < 1e-9);
    }

    /// Generated counts concentrate around the expectation. A single draw
    /// has high variance (few modulation cycles per trace), so average a
    /// small batch of consecutive seeds.
    #[test]
    fn mmpp_count_near_expectation(seed in 0u64..300) {
        let s = spec(80.0, 20.0, 600);
        let batch = 6;
        let mean = (0..batch)
            .map(|i| s.generate(Seed(seed * 1000 + i)).len() as f64)
            .sum::<f64>() / batch as f64;
        let e = s.expected_requests();
        prop_assert!((mean - e).abs() / e < 0.35, "mean {mean} vs expectation {e}");
    }

    /// Split/merge is lossless for any client count.
    #[test]
    fn split_merge_roundtrip(seed in 0u64..300, clients in 1usize..32) {
        let tr = spec(30.0, 8.0, 120).generate(Seed(seed));
        let parts = split_round_robin(&tr, clients);
        prop_assert_eq!(parts.len(), clients);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        prop_assert_eq!(total, tr.len());
        let merged = merge("m", &parts);
        prop_assert_eq!(merged.arrivals(), tr.arrivals());
    }

    /// Split balance: client loads differ by at most one request.
    #[test]
    fn split_is_balanced(seed in 0u64..300, clients in 1usize..16) {
        let tr = spec(20.0, 5.0, 90).generate(Seed(seed));
        let parts = split_round_robin(&tr, clients);
        let min = parts.iter().map(|p| p.len()).min().unwrap();
        let max = parts.iter().map(|p| p.len()).max().unwrap();
        prop_assert!(max - min <= 1);
    }

    /// Poisson counts grow with rate.
    #[test]
    fn poisson_monotone_in_rate(seed in 0u64..200, rate in 1.0f64..50.0) {
        let d = SimDuration::from_secs(300);
        let lo = PoissonProcess::new(rate, d).generate(Seed(seed)).len();
        let hi = PoissonProcess::new(rate * 4.0, d).generate(Seed(seed)).len();
        prop_assert!(hi > lo);
    }

    /// CSV round-trip is exact for arbitrary traces.
    #[test]
    fn trace_csv_roundtrip(times in prop::collection::vec(0u64..100_000_000u64, 0..200)) {
        let arrivals: Vec<SimTime> = times.iter().map(|&t| SimTime::from_micros(t)).collect();
        let tr = WorkloadTrace::new("prop", SimDuration::from_secs(100), arrivals);
        let parsed = WorkloadTrace::from_csv(&tr.to_csv()).unwrap();
        prop_assert_eq!(parsed, tr);
    }

    /// Rate series conserves the total request count.
    #[test]
    fn rate_series_conserves(seed in 0u64..200, bucket_s in 1u64..60) {
        let tr = spec(40.0, 10.0, 200).generate(Seed(seed));
        let series = tr.rate_series(SimDuration::from_secs(bucket_s));
        let total: u64 = series.iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(total as usize, tr.len());
    }

    /// The streaming generator is byte-identical to the materialized path
    /// for all three paper presets and arbitrary seeds — the contract that
    /// lets the fleet engine pull arrivals lazily without changing any
    /// published number.
    #[test]
    fn mmpp_stream_matches_materialized(seed in 0u64..5000) {
        for p in MmppPreset::ALL {
            let spec = p.spec();
            let eager = spec.generate(Seed(seed));
            let lazy: Vec<SimTime> = spec.stream(Seed(seed)).collect();
            prop_assert_eq!(eager.arrivals(), &lazy[..]);
        }
    }

    /// Same contract for arbitrary (non-preset) MMPP parameters.
    #[test]
    fn mmpp_stream_matches_for_any_spec(
        rate_high in 0.0f64..200.0,
        low_frac in 0.0f64..1.0,
        secs in 5u64..400,
        seed in 0u64..1000,
    ) {
        let s = spec(rate_high, rate_high * low_frac, secs);
        let eager = s.generate(Seed(seed));
        let lazy: Vec<SimTime> = s.stream(Seed(seed)).collect();
        prop_assert_eq!(eager.arrivals(), &lazy[..]);
    }

    /// Bucket replay reproduces an ingested trace's per-bucket counts
    /// exactly, for any counts and any seed.
    #[test]
    fn fleet_bucket_replay_exact(
        counts in prop::collection::vec(0u32..50, 1..20),
        seed in 0u64..500,
    ) {
        let bucket = SimDuration::from_secs(30);
        let duration = SimDuration::from_micros(bucket.as_micros() * counts.len() as u64);
        let process = AppProcess::Buckets { bucket, counts: counts.clone() };
        let arrivals: Vec<SimTime> =
            AppStream::new(&process, duration, Seed(seed).substream("app")).collect();
        prop_assert_eq!(arrivals.len() as u64, counts.iter().map(|&c| c as u64).sum::<u64>());
        prop_assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        let mut got = vec![0u32; counts.len()];
        for t in &arrivals {
            let idx = ((t.as_micros() / bucket.as_micros()) as usize).min(counts.len() - 1);
            got[idx] += 1;
        }
        prop_assert_eq!(got, counts);
    }

    /// The fleet k-way merge is sorted, bounded, complete (every app's solo
    /// sequence appears verbatim), and deterministic per seed.
    #[test]
    fn fleet_merge_is_sorted_and_partition_invariant(seed in 0u64..200, apps in 1u32..24) {
        let fleet = FleetSynthesis {
            apps,
            zipf_exponent: 1.1,
            total_rate: 30.0,
            mean_busy_s: 8.0,
            median_idle_s: 15.0,
            idle_sigma: 1.5,
            duration_s: 120.0,
        }
        .build("prop-fleet", &["p".to_string()])
        .unwrap();
        let merged: Vec<(SimTime, u32)> = fleet.arrival_stream(Seed(seed)).collect();
        prop_assert!(merged.windows(2).all(|w| w[0].0 <= w[1].0));
        let end = SimTime::ZERO + fleet.duration;
        prop_assert!(merged.iter().all(|&(t, _)| t <= end));
        let pick = seed as u32 % apps;
        let alone: Vec<SimTime> = fleet
            .arrival_stream_for(Seed(seed), [pick])
            .map(|(t, _)| t)
            .collect();
        let filtered: Vec<SimTime> = merged
            .iter()
            .filter(|&&(_, a)| a == pick)
            .map(|&(t, _)| t)
            .collect();
        prop_assert_eq!(alone, filtered);
    }

    /// Request pool picks are always members of the pool and payload sizes
    /// stay in the input kind's range.
    #[test]
    fn pool_picks_valid(seed in 0u64..200, size in 1usize..300) {
        let pool = RequestPool::generate(InputKind::Image, size);
        let (lo, hi) = InputKind::Image.size_range();
        let mut rng = Seed(seed).rng();
        for _ in 0..50 {
            let p = pool.pick(&mut rng);
            prop_assert!((p.id as usize) < size);
            prop_assert!(p.size_bytes >= lo && p.size_bytes <= hi);
        }
    }
}

/// Regression pinned from `properties.proptest-regressions` (shrunk case
/// `seed = 77` of the count-near-expectation property). The vendored
/// proptest runner does not replay `.proptest-regressions` files, so the
/// case lives here explicitly.
#[test]
fn regression_count_near_expectation_seed_77() {
    let s = spec(80.0, 20.0, 600);
    let batch = 6;
    let mean = (0..batch)
        .map(|i| s.generate(Seed(77 * 1000 + i)).len() as f64)
        .sum::<f64>()
        / batch as f64;
    let e = s.expected_requests();
    assert!(
        (mean - e).abs() / e < 0.35,
        "mean {mean} vs expectation {e}"
    );
}
