//! Property-based tests for the simulation kernel's invariants.

use proptest::prelude::*;
use slsb_sim::event::{Engine, EventQueue, Kernel, System};
use slsb_sim::stats::{Accumulator, GaugeSeries, SampleSet};
use slsb_sim::time::{SimDuration, SimTime};
use slsb_sim::Seed;

/// A system that records delivery order and timestamps.
struct Collector {
    delivered: Vec<(SimTime, u64)>,
}

impl System for Collector {
    type Ev = u64;
    fn handle(&mut self, _q: &mut EventQueue<u64>, at: SimTime, ev: u64) {
        self.delivered.push((at, ev));
    }
}

/// A system that schedules deterministic follow-up events, including
/// `schedule_now` chains, so kernel differential tests exercise feedback
/// scheduling (events inserted behind or at the wheel cursor) and not
/// just pre-loaded schedules.
struct Chainer {
    seen: Vec<(SimTime, u64)>,
    budget: u32,
}

impl System for Chainer {
    type Ev = u64;
    fn handle(&mut self, q: &mut EventQueue<u64>, at: SimTime, ev: u64) {
        self.seen.push((at, ev));
        if self.budget == 0 {
            return;
        }
        self.budget -= 1;
        let next = ev.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        match ev % 4 {
            // Same-instant chain: must run after already-queued events at
            // this timestamp, identically on both kernels.
            0 => q.schedule_now(next),
            // Short hop, usually within the current wheel bucket.
            1 => q.schedule_after(SimDuration::from_micros(next % 1_024), next),
            // Far hop that crosses wheel blocks into the overflow map.
            2 => q.schedule_after(SimDuration::from_micros(next % (1 << 23)), next),
            _ => {}
        }
    }
}

/// Shapes a raw generated value into a delay that stresses every wheel
/// path: same-instant ties, intra-bucket, block-boundary, far overflow.
fn shape_delay(raw: u64) -> u64 {
    match raw % 4 {
        0 => 0,
        1 => raw % 1_024,
        2 => raw % (1 << 22),
        _ => raw,
    }
}

proptest! {
    /// The clock never goes backwards, regardless of scheduling order.
    #[test]
    fn clock_is_monotone(times in prop::collection::vec(0u64..10_000_000, 1..200)) {
        let mut eng = Engine::new(Collector { delivered: Vec::new() });
        for (i, &t) in times.iter().enumerate() {
            eng.queue.schedule_at(SimTime::from_micros(t), i as u64);
        }
        eng.run_to_completion();
        let stamps: Vec<SimTime> = eng.system.delivered.iter().map(|&(t, _)| t).collect();
        prop_assert!(stamps.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(stamps.len(), times.len());
    }

    /// Events sharing a timestamp are delivered in insertion (FIFO) order.
    #[test]
    fn equal_timestamps_are_fifo(n in 1usize..100, t in 0u64..1_000_000) {
        let mut eng = Engine::new(Collector { delivered: Vec::new() });
        for i in 0..n {
            eng.queue.schedule_at(SimTime::from_micros(t), i as u64);
        }
        eng.run_to_completion();
        let ids: Vec<u64> = eng.system.delivered.iter().map(|&(_, e)| e).collect();
        prop_assert_eq!(ids, (0..n as u64).collect::<Vec<_>>());
    }

    /// run_until(h) then run_to_completion delivers the same multiset of
    /// events as a single run_to_completion.
    #[test]
    fn horizon_split_is_transparent(
        times in prop::collection::vec(0u64..1_000_000, 1..100),
        h in 0u64..1_000_000,
    ) {
        let mut a = Engine::new(Collector { delivered: Vec::new() });
        let mut b = Engine::new(Collector { delivered: Vec::new() });
        for (i, &t) in times.iter().enumerate() {
            a.queue.schedule_at(SimTime::from_micros(t), i as u64);
            b.queue.schedule_at(SimTime::from_micros(t), i as u64);
        }
        a.run_to_completion();
        b.run_until(SimTime::from_micros(h));
        b.run_to_completion();
        prop_assert_eq!(a.system.delivered, b.system.delivered);
    }

    /// Accumulator mean always lies between min and max.
    #[test]
    fn accumulator_mean_bounded(xs in prop::collection::vec(-1e6f64..1e6, 1..300)) {
        let mut acc = Accumulator::new();
        for &x in &xs {
            acc.add(x);
        }
        let mean = acc.mean().unwrap();
        prop_assert!(acc.min().unwrap() <= mean + 1e-9);
        prop_assert!(mean <= acc.max().unwrap() + 1e-9);
        prop_assert!(acc.variance().unwrap() >= -1e-9);
    }

    /// Merging accumulators in any split equals sequential accumulation.
    #[test]
    fn accumulator_merge_associative(
        xs in prop::collection::vec(-1e3f64..1e3, 2..200),
        split in 1usize..199,
    ) {
        let split = split.min(xs.len() - 1);
        let mut whole = Accumulator::new();
        for &x in &xs { whole.add(x); }
        let (l, r) = xs.split_at(split);
        let mut a = Accumulator::new();
        let mut b = Accumulator::new();
        for &x in l { a.add(x); }
        for &x in r { b.add(x); }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-6);
        prop_assert!((a.variance().unwrap() - whole.variance().unwrap()).abs() < 1e-4);
    }

    /// Percentiles are monotone in q and bounded by the extremes.
    #[test]
    fn percentiles_monotone(xs in prop::collection::vec(0f64..1e6, 1..200)) {
        let mut s = SampleSet::new();
        for &x in &xs { s.push(x); }
        let qs = [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0];
        let vals: Vec<f64> = qs.iter().map(|&q| s.percentile(q).unwrap()).collect();
        prop_assert!(vals.windows(2).all(|w| w[0] <= w[1] + 1e-9));
        let mean = s.mean().unwrap();
        prop_assert!(vals[0] <= mean + 1e-9 && mean <= vals[qs.len() - 1] + 1e-9);
    }

    /// Gauge deltas conserve: final value equals the sum of deltas.
    #[test]
    fn gauge_conserves_deltas(deltas in prop::collection::vec(-5i64..=5, 1..200)) {
        let mut g = GaugeSeries::new();
        let mut t = 0u64;
        for &d in &deltas {
            t += 7;
            g.record_delta(SimTime::from_micros(t), d);
        }
        prop_assert_eq!(g.current(), deltas.iter().sum::<i64>());
        prop_assert!(g.peak() >= g.current());
        prop_assert!(g.peak() >= 0);
    }

    /// Substream derivation is injective enough: distinct labels rarely
    /// collide (we require none over a small generated set).
    #[test]
    fn substreams_distinct(labels in prop::collection::hash_set("[a-z]{1,8}", 2..20)) {
        let seed = Seed(0xDEADBEEF);
        let derived: std::collections::HashSet<u64> =
            labels.iter().map(|l| seed.substream(l).0).collect();
        prop_assert_eq!(derived.len(), labels.len());
    }

    /// Exponential samples are nonnegative and rate-ordered in the mean.
    #[test]
    fn exp_samples_positive(seed in 0u64..1000, rate in 0.1f64..100.0) {
        let mut rng = Seed(seed).rng();
        for _ in 0..50 {
            let d = rng.exp_interval(rate);
            prop_assert!(d >= SimDuration::ZERO);
        }
    }

    /// The timer wheel and the reference binary heap agree pop-for-pop on
    /// arbitrary schedules, including same-instant FIFO ties, interleaved
    /// pops, and far-future overflow deltas.
    #[test]
    fn wheel_and_heap_agree_pop_for_pop(
        raws in prop::collection::vec(0u64..16_777_216, 1..250),
        pops in prop::collection::vec(0u64..4, 1..250),
    ) {
        let mut wheel = EventQueue::new();
        let mut heap = EventQueue::with_kernel(Kernel::Heap);
        prop_assert_eq!(wheel.kernel(), Kernel::Wheel);
        for (i, &raw) in raws.iter().enumerate() {
            let at = wheel.now() + SimDuration::from_micros(shape_delay(raw));
            wheel.schedule_at(at, i as u64);
            heap.schedule_at(at, i as u64);
            // Interleave pops with inserts so the wheel's cursor advances
            // mid-schedule and later inserts land behind or at it.
            for _ in 0..pops[i % pops.len()] {
                prop_assert_eq!(wheel.pop(), heap.pop());
            }
        }
        loop {
            let (a, b) = (wheel.pop(), heap.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        prop_assert!(wheel.is_empty() && heap.is_empty());
    }

    /// Full engine runs with feedback scheduling (schedule_now chains,
    /// short and block-crossing follow-ups) deliver identical sequences
    /// on both kernels.
    #[test]
    fn kernels_agree_under_chained_scheduling(
        times in prop::collection::vec(0u64..8_000_000, 1..60),
    ) {
        let run = |kernel: Kernel| {
            let mut eng = Engine::with_queue(
                Chainer { seen: Vec::new(), budget: 300 },
                EventQueue::with_kernel(kernel),
            );
            for (i, &t) in times.iter().enumerate() {
                eng.queue.schedule_at(SimTime::from_micros(t), i as u64);
            }
            eng.run_to_completion();
            eng.system.seen
        };
        prop_assert_eq!(run(Kernel::Wheel), run(Kernel::Heap));
    }

    /// Horizon-bounded draining agrees across kernels: popping with a
    /// moving horizon yields the same events and leaves both queues in
    /// the same state.
    #[test]
    fn kernels_agree_on_horizon_pops(
        raws in prop::collection::vec(0u64..16_777_216, 1..200),
        h in 1u64..4_194_304,
    ) {
        let mut wheel = EventQueue::new();
        let mut heap = EventQueue::with_kernel(Kernel::Heap);
        for (i, &raw) in raws.iter().enumerate() {
            let at = SimTime::from_micros(shape_delay(raw));
            wheel.schedule_at(at, i as u64);
            heap.schedule_at(at, i as u64);
        }
        let mut horizon = SimTime::ZERO;
        while !wheel.is_empty() || !heap.is_empty() {
            horizon += SimDuration::from_micros(h);
            loop {
                let (a, b) = (wheel.pop_at_or_before(horizon), heap.pop_at_or_before(horizon));
                prop_assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
            prop_assert_eq!(wheel.len(), heap.len());
        }
    }
}
