//! Property-based tests for the simulation kernel's invariants.

use proptest::prelude::*;
use slsb_sim::event::{Engine, EventQueue, System};
use slsb_sim::stats::{Accumulator, GaugeSeries, SampleSet};
use slsb_sim::time::{SimDuration, SimTime};
use slsb_sim::Seed;

/// A system that records delivery order and timestamps.
struct Collector {
    delivered: Vec<(SimTime, u64)>,
}

impl System for Collector {
    type Ev = u64;
    fn handle(&mut self, _q: &mut EventQueue<u64>, at: SimTime, ev: u64) {
        self.delivered.push((at, ev));
    }
}

proptest! {
    /// The clock never goes backwards, regardless of scheduling order.
    #[test]
    fn clock_is_monotone(times in prop::collection::vec(0u64..10_000_000, 1..200)) {
        let mut eng = Engine::new(Collector { delivered: Vec::new() });
        for (i, &t) in times.iter().enumerate() {
            eng.queue.schedule_at(SimTime::from_micros(t), i as u64);
        }
        eng.run_to_completion();
        let stamps: Vec<SimTime> = eng.system.delivered.iter().map(|&(t, _)| t).collect();
        prop_assert!(stamps.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(stamps.len(), times.len());
    }

    /// Events sharing a timestamp are delivered in insertion (FIFO) order.
    #[test]
    fn equal_timestamps_are_fifo(n in 1usize..100, t in 0u64..1_000_000) {
        let mut eng = Engine::new(Collector { delivered: Vec::new() });
        for i in 0..n {
            eng.queue.schedule_at(SimTime::from_micros(t), i as u64);
        }
        eng.run_to_completion();
        let ids: Vec<u64> = eng.system.delivered.iter().map(|&(_, e)| e).collect();
        prop_assert_eq!(ids, (0..n as u64).collect::<Vec<_>>());
    }

    /// run_until(h) then run_to_completion delivers the same multiset of
    /// events as a single run_to_completion.
    #[test]
    fn horizon_split_is_transparent(
        times in prop::collection::vec(0u64..1_000_000, 1..100),
        h in 0u64..1_000_000,
    ) {
        let mut a = Engine::new(Collector { delivered: Vec::new() });
        let mut b = Engine::new(Collector { delivered: Vec::new() });
        for (i, &t) in times.iter().enumerate() {
            a.queue.schedule_at(SimTime::from_micros(t), i as u64);
            b.queue.schedule_at(SimTime::from_micros(t), i as u64);
        }
        a.run_to_completion();
        b.run_until(SimTime::from_micros(h));
        b.run_to_completion();
        prop_assert_eq!(a.system.delivered, b.system.delivered);
    }

    /// Accumulator mean always lies between min and max.
    #[test]
    fn accumulator_mean_bounded(xs in prop::collection::vec(-1e6f64..1e6, 1..300)) {
        let mut acc = Accumulator::new();
        for &x in &xs {
            acc.add(x);
        }
        let mean = acc.mean().unwrap();
        prop_assert!(acc.min().unwrap() <= mean + 1e-9);
        prop_assert!(mean <= acc.max().unwrap() + 1e-9);
        prop_assert!(acc.variance().unwrap() >= -1e-9);
    }

    /// Merging accumulators in any split equals sequential accumulation.
    #[test]
    fn accumulator_merge_associative(
        xs in prop::collection::vec(-1e3f64..1e3, 2..200),
        split in 1usize..199,
    ) {
        let split = split.min(xs.len() - 1);
        let mut whole = Accumulator::new();
        for &x in &xs { whole.add(x); }
        let (l, r) = xs.split_at(split);
        let mut a = Accumulator::new();
        let mut b = Accumulator::new();
        for &x in l { a.add(x); }
        for &x in r { b.add(x); }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-6);
        prop_assert!((a.variance().unwrap() - whole.variance().unwrap()).abs() < 1e-4);
    }

    /// Percentiles are monotone in q and bounded by the extremes.
    #[test]
    fn percentiles_monotone(xs in prop::collection::vec(0f64..1e6, 1..200)) {
        let mut s = SampleSet::new();
        for &x in &xs { s.push(x); }
        let qs = [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0];
        let vals: Vec<f64> = qs.iter().map(|&q| s.percentile(q).unwrap()).collect();
        prop_assert!(vals.windows(2).all(|w| w[0] <= w[1] + 1e-9));
        let mean = s.mean().unwrap();
        prop_assert!(vals[0] <= mean + 1e-9 && mean <= vals[qs.len() - 1] + 1e-9);
    }

    /// Gauge deltas conserve: final value equals the sum of deltas.
    #[test]
    fn gauge_conserves_deltas(deltas in prop::collection::vec(-5i64..=5, 1..200)) {
        let mut g = GaugeSeries::new();
        let mut t = 0u64;
        for &d in &deltas {
            t += 7;
            g.record_delta(SimTime::from_micros(t), d);
        }
        prop_assert_eq!(g.current(), deltas.iter().sum::<i64>());
        prop_assert!(g.peak() >= g.current());
        prop_assert!(g.peak() >= 0);
    }

    /// Substream derivation is injective enough: distinct labels rarely
    /// collide (we require none over a small generated set).
    #[test]
    fn substreams_distinct(labels in prop::collection::hash_set("[a-z]{1,8}", 2..20)) {
        let seed = Seed(0xDEADBEEF);
        let derived: std::collections::HashSet<u64> =
            labels.iter().map(|l| seed.substream(l).0).collect();
        prop_assert_eq!(derived.len(), labels.len());
    }

    /// Exponential samples are nonnegative and rate-ordered in the mean.
    #[test]
    fn exp_samples_positive(seed in 0u64..1000, rate in 0.1f64..100.0) {
        let mut rng = Seed(seed).rng();
        for _ in 0..50 {
            let d = rng.exp_interval(rate);
            prop_assert!(d >= SimDuration::ZERO);
        }
    }
}
