//! Generic discrete-event queue and drive loop.
//!
//! The kernel is deliberately small: a [`System`] owns all domain state and
//! handles its own event alphabet `System::Ev`; the [`Engine`] owns the
//! clock and the pending-event heap and repeatedly hands the earliest event
//! back to the system. Ties in time are broken by insertion order (FIFO),
//! which both matches physical intuition and keeps runs deterministic.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A pending event: fire `ev` at instant `at`.
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event on
        // top. Sequence number breaks ties FIFO.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Priority queue of future events plus the current virtual time.
///
/// Systems receive `&mut EventQueue` while handling an event so they can
/// schedule follow-ups; scheduling into the past is a causality violation
/// and panics.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at the epoch.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `ev` to fire at absolute instant `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the current time.
    pub fn schedule_at(&mut self, at: SimTime, ev: E) {
        assert!(
            at >= self.now,
            "causality violation: scheduling at {at} but now is {now}",
            now = self.now
        );
        self.heap.push(Scheduled {
            at,
            seq: self.seq,
            ev,
        });
        self.seq += 1;
    }

    /// Schedules `ev` to fire `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, ev: E) {
        let at = self.now + delay;
        self.schedule_at(at, ev);
    }

    /// Schedules `ev` to fire immediately (at the current time, after any
    /// event already scheduled for this instant).
    pub fn schedule_now(&mut self, ev: E) {
        self.schedule_at(self.now, ev);
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        debug_assert!(s.at >= self.now, "event queue went back in time");
        self.now = s.at;
        Some((s.at, s.ev))
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Advances the clock to `t` without delivering events — used to close
    /// out a run at a horizon after the last event.
    ///
    /// # Panics
    /// Panics if `t` is in the past or if an undelivered event precedes it.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(t >= self.now, "advance_to would rewind the clock");
        if let Some(at) = self.peek_time() {
            assert!(at >= t, "advance_to would skip a pending event");
        }
        self.now = t;
    }
}

/// A simulated system: domain state plus an event handler.
pub trait System {
    /// The system's event alphabet.
    type Ev;

    /// Handles one event; may schedule follow-up events on `queue`.
    fn handle(&mut self, queue: &mut EventQueue<Self::Ev>, at: SimTime, ev: Self::Ev);
}

/// A read-only tap called with every event just before delivery; see
/// [`Engine::set_observer`].
pub type Observer<Ev> = Box<dyn FnMut(SimTime, &Ev)>;

/// Drives a [`System`] by repeatedly delivering the earliest pending event.
pub struct Engine<S: System> {
    /// The pending-event queue and clock. Public so callers can seed the
    /// initial events before running.
    pub queue: EventQueue<S::Ev>,
    /// The domain state under simulation.
    pub system: S,
    events_processed: u64,
    observer: Option<Observer<S::Ev>>,
}

impl<S: System> Engine<S> {
    /// Wraps `system` with an empty queue at the epoch.
    pub fn new(system: S) -> Self {
        Engine {
            queue: EventQueue::new(),
            system,
            events_processed: 0,
            observer: None,
        }
    }

    /// Installs an observer called with every event just before it is
    /// delivered to the system. Observers are read-only taps for tracing
    /// and debugging: they cannot schedule, mutate the system, or otherwise
    /// change the run, so installing one never alters simulation results.
    pub fn set_observer(&mut self, obs: Observer<S::Ev>) {
        self.observer = Some(obs);
    }

    /// Removes the observer installed by [`Engine::set_observer`], if any.
    pub fn clear_observer(&mut self) {
        self.observer = None;
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Total events delivered so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Runs until the queue drains. Returns the number of events delivered
    /// by this call.
    pub fn run_to_completion(&mut self) -> u64 {
        self.run_until(SimTime::MAX)
    }

    /// Runs until the queue drains or the next event would be strictly after
    /// `horizon`. Events at exactly `horizon` are delivered. Returns the
    /// number of events delivered by this call.
    pub fn run_until(&mut self, horizon: SimTime) -> u64 {
        let mut delivered = 0;
        while let Some(at) = self.queue.peek_time() {
            if at > horizon {
                break;
            }
            let (at, ev) = self.queue.pop().expect("peeked event vanished");
            if let Some(obs) = self.observer.as_mut() {
                obs(at, &ev);
            }
            self.system.handle(&mut self.queue, at, ev);
            delivered += 1;
            self.events_processed += 1;
        }
        delivered
    }

    /// Consumes the engine, returning the system for inspection.
    pub fn into_system(self) -> S {
        self.system
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Recorder {
        seen: Vec<(SimTime, u32)>,
        chain_until: u32,
    }

    impl System for Recorder {
        type Ev = u32;
        fn handle(&mut self, queue: &mut EventQueue<u32>, at: SimTime, ev: u32) {
            self.seen.push((at, ev));
            if ev < self.chain_until {
                queue.schedule_after(SimDuration::from_secs(1), ev + 1);
            }
        }
    }

    fn recorder() -> Recorder {
        Recorder {
            seen: Vec::new(),
            chain_until: 0,
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut eng = Engine::new(recorder());
        eng.queue.schedule_at(SimTime::from_secs_f64(3.0), 3);
        eng.queue.schedule_at(SimTime::from_secs_f64(1.0), 1);
        eng.queue.schedule_at(SimTime::from_secs_f64(2.0), 2);
        assert_eq!(eng.run_to_completion(), 3);
        let order: Vec<u32> = eng.system.seen.iter().map(|&(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_pop_fifo() {
        let mut eng = Engine::new(recorder());
        let t = SimTime::from_secs_f64(1.0);
        for i in 0..100 {
            eng.queue.schedule_at(t, i);
        }
        eng.run_to_completion();
        let order: Vec<u32> = eng.system.seen.iter().map(|&(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn chained_events_advance_clock() {
        let mut eng = Engine::new(Recorder {
            seen: Vec::new(),
            chain_until: 5,
        });
        eng.queue.schedule_at(SimTime::ZERO, 0);
        eng.run_to_completion();
        assert_eq!(eng.system.seen.len(), 6);
        assert_eq!(eng.now(), SimTime::from_secs_f64(5.0));
    }

    #[test]
    fn run_until_delivers_events_at_horizon_inclusive() {
        let mut eng = Engine::new(recorder());
        eng.queue.schedule_at(SimTime::from_secs_f64(1.0), 1);
        eng.queue.schedule_at(SimTime::from_secs_f64(2.0), 2);
        eng.queue.schedule_at(SimTime::from_secs_f64(3.0), 3);
        assert_eq!(eng.run_until(SimTime::from_secs_f64(2.0)), 2);
        assert_eq!(eng.queue.len(), 1);
        assert_eq!(eng.now(), SimTime::from_secs_f64(2.0));
    }

    #[test]
    #[should_panic(expected = "causality violation")]
    fn scheduling_in_the_past_panics() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.schedule_at(SimTime::from_secs_f64(5.0), 0);
        q.pop();
        q.schedule_at(SimTime::from_secs_f64(1.0), 1);
    }

    #[test]
    fn schedule_now_runs_after_already_queued_same_instant_events() {
        struct Inject {
            seen: Vec<u32>,
        }
        impl System for Inject {
            type Ev = u32;
            fn handle(&mut self, queue: &mut EventQueue<u32>, _at: SimTime, ev: u32) {
                self.seen.push(ev);
                if ev == 0 {
                    queue.schedule_now(99);
                }
            }
        }
        let mut eng = Engine::new(Inject { seen: Vec::new() });
        eng.queue.schedule_at(SimTime::ZERO, 0);
        eng.queue.schedule_at(SimTime::ZERO, 1);
        eng.run_to_completion();
        assert_eq!(eng.system.seen, vec![0, 1, 99]);
    }

    #[test]
    fn observer_sees_every_event_without_changing_the_run() {
        use std::cell::RefCell;
        use std::rc::Rc;

        let mut plain = Engine::new(recorder());
        plain.queue.schedule_at(SimTime::from_secs_f64(1.0), 1);
        plain.queue.schedule_at(SimTime::from_secs_f64(2.0), 2);
        plain.run_to_completion();

        let taps: Rc<RefCell<Vec<(SimTime, u32)>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&taps);
        let mut observed = Engine::new(recorder());
        observed.set_observer(Box::new(move |at, &ev| sink.borrow_mut().push((at, ev))));
        observed.queue.schedule_at(SimTime::from_secs_f64(1.0), 1);
        observed.queue.schedule_at(SimTime::from_secs_f64(2.0), 2);
        observed.run_to_completion();

        assert_eq!(observed.system.seen, plain.system.seen);
        assert_eq!(*taps.borrow(), plain.system.seen);
        assert_eq!(observed.events_processed(), plain.events_processed());
    }

    #[test]
    fn clear_observer_stops_the_tap() {
        use std::cell::RefCell;
        use std::rc::Rc;

        let taps: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&taps);
        let mut eng = Engine::new(recorder());
        eng.set_observer(Box::new(move |_, &ev| sink.borrow_mut().push(ev)));
        eng.queue.schedule_at(SimTime::from_secs_f64(1.0), 1);
        eng.run_to_completion();
        eng.clear_observer();
        eng.queue.schedule_at(SimTime::from_secs_f64(2.0), 2);
        eng.run_to_completion();
        assert_eq!(*taps.borrow(), vec![1]);
        assert_eq!(eng.system.seen.len(), 2);
    }

    #[test]
    fn empty_queue_reports_empty() {
        let q: EventQueue<u32> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.peek_time(), None);
    }
}
