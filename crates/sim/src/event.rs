//! Generic discrete-event queue and drive loop.
//!
//! The kernel is deliberately small: a [`System`] owns all domain state and
//! handles its own event alphabet `System::Ev`; the [`Engine`] owns the
//! clock and the pending-event queue and repeatedly hands the earliest event
//! back to the system. Ties in time are broken by insertion order (FIFO),
//! which both matches physical intuition and keeps runs deterministic.
//!
//! Two interchangeable kernels implement the queue (see [`Kernel`]): the
//! default hierarchical timer wheel ([`crate::wheel`]) with O(1) amortized
//! schedule/pop for near-future events, and the original binary heap, kept
//! as the reference model for differential tests and the perf baseline.
//! Both deliver the exact same `(time, sequence)` order, so switching
//! kernels never changes a simulation's results, only its speed.

use crate::alloc::{Region, RegionGuard};
use crate::prof::ProfGuard;
use crate::time::{SimDuration, SimTime};
use crate::wheel::TimerWheel;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A pending event: fire `ev` at instant `at`.
pub(crate) struct Scheduled<E> {
    pub(crate) at: SimTime,
    pub(crate) seq: u64,
    pub(crate) ev: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event on
        // top. Sequence number breaks ties FIFO.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Which scheduler implementation backs an [`EventQueue`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Kernel {
    /// Hierarchical timer wheel: O(1) amortized schedule/pop (the default).
    #[default]
    Wheel,
    /// The original `BinaryHeap`: O(log n) per operation. Retained as the
    /// reference model for equivalence tests and as the benchmark baseline.
    Heap,
}

impl Kernel {
    /// Stable lowercase name, used in benchmark reports.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Wheel => "wheel",
            Kernel::Heap => "heap",
        }
    }
}

// The wheel is boxed: its inline footprint (ring pointer, occupancy
// bitmap, cursors) dwarfs the heap variant's, and `EventQueue` lives
// inside `Engine` values that move around.
enum Store<E> {
    Wheel(Box<TimerWheel<E>>),
    Heap(BinaryHeap<Scheduled<E>>),
}

/// Priority queue of future events plus the current virtual time.
///
/// Systems receive `&mut EventQueue` while handling an event so they can
/// schedule follow-ups; scheduling into the past is a causality violation
/// and panics.
pub struct EventQueue<E> {
    store: Store<E>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at the epoch.
    pub fn new() -> Self {
        Self::with_kernel(Kernel::Wheel)
    }

    /// An empty queue pre-sized for roughly `cap` concurrently pending
    /// events (e.g. a scenario's expected request count).
    pub fn with_capacity(cap: usize) -> Self {
        Self::with_kernel_and_capacity(Kernel::Wheel, cap)
    }

    /// An empty queue backed by the chosen [`Kernel`].
    pub fn with_kernel(kernel: Kernel) -> Self {
        Self::with_kernel_and_capacity(kernel, 0)
    }

    /// [`EventQueue::with_kernel`] with a capacity hint.
    pub fn with_kernel_and_capacity(kernel: Kernel, cap: usize) -> Self {
        let store = match kernel {
            Kernel::Wheel => Store::Wheel(Box::new(TimerWheel::with_capacity(cap))),
            Kernel::Heap => Store::Heap(BinaryHeap::with_capacity(cap)),
        };
        EventQueue {
            store,
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Which kernel backs this queue.
    pub fn kernel(&self) -> Kernel {
        match self.store {
            Store::Wheel(_) => Kernel::Wheel,
            Store::Heap(_) => Kernel::Heap,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.store {
            Store::Wheel(w) => w.len(),
            Store::Heap(h) => h.len(),
        }
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedules `ev` to fire at absolute instant `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the current time.
    pub fn schedule_at(&mut self, at: SimTime, ev: E) {
        assert!(
            at >= self.now,
            "causality violation: scheduling at {at} but now is {now}",
            now = self.now
        );
        let _r = RegionGuard::enter(Region::Kernel);
        let _p = ProfGuard::enter("kernel/schedule");
        let s = Scheduled {
            at,
            seq: self.seq,
            ev,
        };
        self.seq += 1;
        match &mut self.store {
            Store::Wheel(w) => w.insert(s),
            Store::Heap(h) => h.push(s),
        }
    }

    /// Schedules a batch of events in iteration order.
    ///
    /// Exactly equivalent to calling [`EventQueue::schedule_at`] once per
    /// item — sequence numbers are assigned in iteration order, so
    /// same-instant events pop FIFO in batch order — but the kernel dispatch
    /// and causality check setup are paid once per batch instead of once per
    /// event. This is the entry point platforms and the executor use for
    /// bursts: initial deliveries, batch dispatch, retry storms,
    /// outage-window re-queues.
    ///
    /// # Panics
    /// Panics if any event's instant is before the current time.
    pub fn schedule_many<I>(&mut self, events: I)
    where
        I: IntoIterator<Item = (SimTime, E)>,
    {
        let _r = RegionGuard::enter(Region::Kernel);
        let _p = ProfGuard::enter("kernel/schedule");
        let now = self.now;
        match &mut self.store {
            Store::Wheel(w) => {
                for (at, ev) in events {
                    assert!(at >= now, "causality violation: scheduling at {at} but now is {now}");
                    let s = Scheduled {
                        at,
                        seq: self.seq,
                        ev,
                    };
                    self.seq += 1;
                    w.insert(s);
                }
            }
            Store::Heap(h) => {
                for (at, ev) in events {
                    assert!(at >= now, "causality violation: scheduling at {at} but now is {now}");
                    let s = Scheduled {
                        at,
                        seq: self.seq,
                        ev,
                    };
                    self.seq += 1;
                    h.push(s);
                }
            }
        }
    }

    /// [`EventQueue::schedule_many`] with per-event delays relative to the
    /// current time.
    pub fn schedule_many_after<I>(&mut self, events: I)
    where
        I: IntoIterator<Item = (SimDuration, E)>,
    {
        let now = self.now;
        self.schedule_many(events.into_iter().map(|(delay, ev)| (now + delay, ev)));
    }

    /// Schedules `ev` to fire `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, ev: E) {
        let at = self.now + delay;
        self.schedule_at(at, ev);
    }

    /// Schedules `ev` to fire immediately (at the current time, after any
    /// event already scheduled for this instant).
    pub fn schedule_now(&mut self, ev: E) {
        self.schedule_at(self.now, ev);
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let _r = RegionGuard::enter(Region::Kernel);
        let _p = ProfGuard::enter("kernel/pop");
        let s = match &mut self.store {
            Store::Wheel(w) => w.pop()?,
            Store::Heap(h) => h.pop()?,
        };
        debug_assert!(s.at >= self.now, "event queue went back in time");
        self.now = s.at;
        Some((s.at, s.ev))
    }

    /// Pops the earliest event if it fires at or before `horizon`,
    /// advancing the clock to its timestamp; returns `None` (clock
    /// untouched) when the queue is empty or the next event is later.
    /// One kernel operation per delivered event — this is the hot path of
    /// [`Engine::run_until`].
    pub fn pop_at_or_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        let _r = RegionGuard::enter(Region::Kernel);
        let _p = ProfGuard::enter("kernel/pop");
        let s = match &mut self.store {
            Store::Wheel(w) => w.pop_at_or_before(horizon)?,
            Store::Heap(h) => {
                // The heap keeps the historical peek-then-pop shape.
                if h.peek().is_none_or(|s| s.at > horizon) {
                    return None;
                }
                h.pop().expect("peeked event vanished")
            }
        };
        debug_assert!(s.at >= self.now, "event queue went back in time");
        self.now = s.at;
        Some((s.at, s.ev))
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.store {
            Store::Wheel(w) => w.peek(),
            Store::Heap(h) => h.peek().map(|s| s.at),
        }
    }

    /// Advances the clock to `t` without delivering events — used to close
    /// out a run at a horizon after the last event.
    ///
    /// # Panics
    /// Panics if `t` is in the past or if an undelivered event precedes it.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(t >= self.now, "advance_to would rewind the clock");
        if let Some(at) = self.peek_time() {
            assert!(at >= t, "advance_to would skip a pending event");
        }
        self.now = t;
    }
}

/// A simulated system: domain state plus an event handler.
pub trait System {
    /// The system's event alphabet.
    type Ev;

    /// Handles one event; may schedule follow-up events on `queue`.
    fn handle(&mut self, queue: &mut EventQueue<Self::Ev>, at: SimTime, ev: Self::Ev);
}

/// A read-only tap called with every event just before delivery; see
/// [`Engine::set_observer`].
pub type Observer<Ev> = Box<dyn FnMut(SimTime, &Ev)>;

/// Drives a [`System`] by repeatedly delivering the earliest pending event.
pub struct Engine<S: System> {
    /// The pending-event queue and clock. Public so callers can seed the
    /// initial events before running.
    pub queue: EventQueue<S::Ev>,
    /// The domain state under simulation.
    pub system: S,
    events_processed: u64,
    observer: Option<Observer<S::Ev>>,
}

impl<S: System> Engine<S> {
    /// Wraps `system` with an empty queue at the epoch.
    pub fn new(system: S) -> Self {
        Self::with_queue(system, EventQueue::new())
    }

    /// Wraps `system` around a caller-built queue — the way to pick a
    /// [`Kernel`] or a capacity hint for the run.
    pub fn with_queue(system: S, queue: EventQueue<S::Ev>) -> Self {
        Engine {
            queue,
            system,
            events_processed: 0,
            observer: None,
        }
    }

    /// Installs an observer called with every event just before it is
    /// delivered to the system. Observers are read-only taps for tracing
    /// and debugging: they cannot schedule, mutate the system, or otherwise
    /// change the run, so installing one never alters simulation results.
    pub fn set_observer(&mut self, obs: Observer<S::Ev>) {
        self.observer = Some(obs);
    }

    /// Removes the observer installed by [`Engine::set_observer`], if any.
    pub fn clear_observer(&mut self) {
        self.observer = None;
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Total events delivered so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Runs until the queue drains. Returns the number of events delivered
    /// by this call.
    pub fn run_to_completion(&mut self) -> u64 {
        self.run_until(SimTime::MAX)
    }

    /// Runs until the queue drains or the next event would be strictly after
    /// `horizon`. Events at exactly `horizon` are delivered. Returns the
    /// number of events delivered by this call.
    pub fn run_until(&mut self, horizon: SimTime) -> u64 {
        let mut delivered = 0;
        while let Some((at, ev)) = self.queue.pop_at_or_before(horizon) {
            if let Some(obs) = self.observer.as_mut() {
                obs(at, &ev);
            }
            self.system.handle(&mut self.queue, at, ev);
            delivered += 1;
            self.events_processed += 1;
        }
        delivered
    }

    /// Consumes the engine, returning the system for inspection.
    pub fn into_system(self) -> S {
        self.system
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KERNELS: [Kernel; 2] = [Kernel::Wheel, Kernel::Heap];

    struct Recorder {
        seen: Vec<(SimTime, u32)>,
        chain_until: u32,
    }

    impl System for Recorder {
        type Ev = u32;
        fn handle(&mut self, queue: &mut EventQueue<u32>, at: SimTime, ev: u32) {
            self.seen.push((at, ev));
            if ev < self.chain_until {
                queue.schedule_after(SimDuration::from_secs(1), ev + 1);
            }
        }
    }

    fn recorder() -> Recorder {
        Recorder {
            seen: Vec::new(),
            chain_until: 0,
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        for kernel in KERNELS {
            let mut eng = Engine::with_queue(recorder(), EventQueue::with_kernel(kernel));
            eng.queue.schedule_at(SimTime::from_secs_f64(3.0), 3);
            eng.queue.schedule_at(SimTime::from_secs_f64(1.0), 1);
            eng.queue.schedule_at(SimTime::from_secs_f64(2.0), 2);
            assert_eq!(eng.run_to_completion(), 3);
            let order: Vec<u32> = eng.system.seen.iter().map(|&(_, e)| e).collect();
            assert_eq!(order, vec![1, 2, 3], "{}", kernel.name());
        }
    }

    #[test]
    fn ties_pop_fifo() {
        for kernel in KERNELS {
            let mut eng = Engine::with_queue(recorder(), EventQueue::with_kernel(kernel));
            let t = SimTime::from_secs_f64(1.0);
            for i in 0..100 {
                eng.queue.schedule_at(t, i);
            }
            eng.run_to_completion();
            let order: Vec<u32> = eng.system.seen.iter().map(|&(_, e)| e).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>(), "{}", kernel.name());
        }
    }

    #[test]
    fn chained_events_advance_clock() {
        let mut eng = Engine::new(Recorder {
            seen: Vec::new(),
            chain_until: 5,
        });
        eng.queue.schedule_at(SimTime::ZERO, 0);
        eng.run_to_completion();
        assert_eq!(eng.system.seen.len(), 6);
        assert_eq!(eng.now(), SimTime::from_secs_f64(5.0));
    }

    #[test]
    fn run_until_delivers_events_at_horizon_inclusive() {
        for kernel in KERNELS {
            let mut eng = Engine::with_queue(recorder(), EventQueue::with_kernel(kernel));
            eng.queue.schedule_at(SimTime::from_secs_f64(1.0), 1);
            eng.queue.schedule_at(SimTime::from_secs_f64(2.0), 2);
            eng.queue.schedule_at(SimTime::from_secs_f64(3.0), 3);
            assert_eq!(eng.run_until(SimTime::from_secs_f64(2.0)), 2);
            assert_eq!(eng.queue.len(), 1);
            assert_eq!(eng.now(), SimTime::from_secs_f64(2.0));
        }
    }

    #[test]
    #[should_panic(expected = "causality violation")]
    fn scheduling_in_the_past_panics() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.schedule_at(SimTime::from_secs_f64(5.0), 0);
        q.pop();
        q.schedule_at(SimTime::from_secs_f64(1.0), 1);
    }

    #[test]
    #[should_panic(expected = "causality violation")]
    fn scheduling_in_the_past_panics_on_heap_kernel() {
        let mut q: EventQueue<u32> = EventQueue::with_kernel(Kernel::Heap);
        q.schedule_at(SimTime::from_secs_f64(5.0), 0);
        q.pop();
        q.schedule_at(SimTime::from_secs_f64(1.0), 1);
    }

    #[test]
    fn schedule_now_runs_after_already_queued_same_instant_events() {
        struct Inject {
            seen: Vec<u32>,
        }
        impl System for Inject {
            type Ev = u32;
            fn handle(&mut self, queue: &mut EventQueue<u32>, _at: SimTime, ev: u32) {
                self.seen.push(ev);
                if ev == 0 {
                    queue.schedule_now(99);
                }
            }
        }
        for kernel in KERNELS {
            let mut eng =
                Engine::with_queue(Inject { seen: Vec::new() }, EventQueue::with_kernel(kernel));
            eng.queue.schedule_at(SimTime::ZERO, 0);
            eng.queue.schedule_at(SimTime::ZERO, 1);
            eng.run_to_completion();
            assert_eq!(eng.system.seen, vec![0, 1, 99], "{}", kernel.name());
        }
    }

    #[test]
    fn observer_sees_every_event_without_changing_the_run() {
        use std::cell::RefCell;
        use std::rc::Rc;

        let mut plain = Engine::new(recorder());
        plain.queue.schedule_at(SimTime::from_secs_f64(1.0), 1);
        plain.queue.schedule_at(SimTime::from_secs_f64(2.0), 2);
        plain.run_to_completion();

        let taps: Rc<RefCell<Vec<(SimTime, u32)>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&taps);
        let mut observed = Engine::new(recorder());
        observed.set_observer(Box::new(move |at, &ev| sink.borrow_mut().push((at, ev))));
        observed.queue.schedule_at(SimTime::from_secs_f64(1.0), 1);
        observed.queue.schedule_at(SimTime::from_secs_f64(2.0), 2);
        observed.run_to_completion();

        assert_eq!(observed.system.seen, plain.system.seen);
        assert_eq!(*taps.borrow(), plain.system.seen);
        assert_eq!(observed.events_processed(), plain.events_processed());
    }

    #[test]
    fn clear_observer_stops_the_tap() {
        use std::cell::RefCell;
        use std::rc::Rc;

        let taps: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&taps);
        let mut eng = Engine::new(recorder());
        eng.set_observer(Box::new(move |_, &ev| sink.borrow_mut().push(ev)));
        eng.queue.schedule_at(SimTime::from_secs_f64(1.0), 1);
        eng.run_to_completion();
        eng.clear_observer();
        eng.queue.schedule_at(SimTime::from_secs_f64(2.0), 2);
        eng.run_to_completion();
        assert_eq!(*taps.borrow(), vec![1]);
        assert_eq!(eng.system.seen.len(), 2);
    }

    #[test]
    fn empty_queue_reports_empty() {
        let q: EventQueue<u32> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.peek_time(), None);
        assert_eq!(q.kernel(), Kernel::Wheel);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut q: EventQueue<u32> = EventQueue::with_capacity(10_000);
        q.schedule_at(SimTime::from_micros(5), 1);
        q.schedule_at(SimTime::from_micros(3), 0);
        assert_eq!(q.pop(), Some((SimTime::from_micros(3), 0)));
        assert_eq!(q.pop(), Some((SimTime::from_micros(5), 1)));
        assert_eq!(q.pop(), None);
    }

    // ----------------------------------------------------- wheel-specific

    /// One block of the wheel spans 2^22 µs; events past that go through
    /// the far overflow. Exercise both sides plus the exact boundary.
    #[test]
    fn far_future_events_interleave_with_near_ones() {
        let block = 1u64 << 22;
        let times = [
            0,
            1,
            1023,
            1024,
            block - 1,
            block,
            block + 1,
            3 * block,
            3 * block + 512,
            600_000_000, // a keep-alive-style reclaim, many blocks out
        ];
        let mut q: EventQueue<usize> = EventQueue::new();
        // Schedule in a scrambled order.
        for (i, &t) in times.iter().enumerate().rev() {
            q.schedule_at(SimTime::from_micros(t), i);
        }
        let mut popped = Vec::new();
        while let Some((at, i)) = q.pop() {
            popped.push((at.as_micros(), i));
        }
        let mut expect: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        // Scheduled in reverse order, so equal times pop in reverse index
        // order (FIFO by insertion).
        expect.sort_by_key(|&(t, i)| (t, std::cmp::Reverse(i)));
        assert_eq!(popped, expect);
    }

    /// After the cursor drains a bucket, scheduling back into that bucket
    /// (legal while `now` sits inside it) must still deliver in order.
    #[test]
    fn rescheduling_into_a_drained_bucket_keeps_order() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.schedule_at(SimTime::from_micros(5_000_000), 0);
        assert_eq!(q.pop(), Some((SimTime::from_micros(5_000_000), 0)));
        // Same 1.024 ms bucket as the popped event: the cursor has moved
        // past it, so this lands in the ready spill.
        q.schedule_at(SimTime::from_micros(5_000_400), 2);
        q.schedule_at(SimTime::from_micros(5_000_300), 1);
        q.schedule_at(SimTime::from_micros(5_500_000), 3);
        assert_eq!(q.pop(), Some((SimTime::from_micros(5_000_300), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_micros(5_000_400), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_micros(5_500_000), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_at_or_before_respects_the_horizon() {
        for kernel in KERNELS {
            let mut q: EventQueue<u32> = EventQueue::with_kernel(kernel);
            q.schedule_at(SimTime::from_micros(10), 0);
            q.schedule_at(SimTime::from_micros(20), 1);
            let h = SimTime::from_micros(15);
            assert_eq!(q.pop_at_or_before(h), Some((SimTime::from_micros(10), 0)));
            assert_eq!(q.pop_at_or_before(h), None, "{}", kernel.name());
            assert_eq!(q.now(), SimTime::from_micros(10));
            assert_eq!(q.len(), 1);
            // A later horizon releases the held event.
            assert_eq!(
                q.pop_at_or_before(SimTime::from_micros(20)),
                Some((SimTime::from_micros(20), 1))
            );
        }
    }

    #[test]
    fn advance_to_works_after_a_refused_pop() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.schedule_at(SimTime::from_micros(10), 0);
        q.schedule_at(SimTime::from_secs_f64(700.0), 1);
        assert_eq!(
            q.pop_at_or_before(SimTime::from_micros(50)),
            Some((SimTime::from_micros(10), 0))
        );
        assert_eq!(q.pop_at_or_before(SimTime::from_micros(50)), None);
        q.advance_to(SimTime::from_micros(50));
        assert_eq!(q.now(), SimTime::from_micros(50));
        assert_eq!(q.peek_time(), Some(SimTime::from_secs_f64(700.0)));
    }

    /// `schedule_many` must be observationally identical to calling
    /// `schedule` once per item — including sequence assignment, so
    /// same-instant ties pop FIFO in batch order, interleaved correctly
    /// with singly-scheduled events before and after the batch.
    #[test]
    fn schedule_many_matches_repeated_schedule() {
        let t = |us: u64| SimTime::from_micros(us);
        // Mix of ties (three events at 50), out-of-order times, a
        // behind-the-batch instant, and far-future outliers.
        let batch: Vec<(SimTime, u32)> = vec![
            (t(50), 10),
            (t(20), 11),
            (t(50), 12),
            (t(5_000_000), 13),
            (t(50), 14),
            (t(7), 15),
        ];
        for kernel in KERNELS {
            let mut one: EventQueue<u32> = EventQueue::with_kernel(kernel);
            let mut many: EventQueue<u32> = EventQueue::with_kernel(kernel);
            for q in [&mut one, &mut many] {
                q.schedule_at(t(50), 0); // pre-existing tie at the batch instant
                q.schedule_at(t(3), 1);
            }
            for &(at, ev) in &batch {
                one.schedule_at(at, ev);
            }
            many.schedule_many(batch.iter().copied());
            for q in [&mut one, &mut many] {
                q.schedule_at(t(50), 2); // post-batch tie must pop after the batch's
            }
            let drain = |q: &mut EventQueue<u32>| {
                let mut out = Vec::new();
                while let Some(p) = q.pop() {
                    out.push(p);
                }
                out
            };
            let a = drain(&mut one);
            let b = drain(&mut many);
            assert_eq!(a, b, "{}", kernel.name());
            // And the tie order itself is pinned: batch order 10, 12, 14
            // between the pre- and post-batch events at t=50.
            let ties: Vec<u32> = b
                .iter()
                .filter(|&&(at, _)| at == t(50))
                .map(|&(_, e)| e)
                .collect();
            assert_eq!(ties, vec![0, 10, 12, 14, 2], "{}", kernel.name());
        }
    }

    /// `schedule_many_after` offsets every delay from the same `now`.
    #[test]
    fn schedule_many_after_offsets_from_now() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.schedule_at(SimTime::from_micros(10), 0);
        q.pop();
        q.schedule_many_after([
            (SimDuration::from_micros(5), 1),
            (SimDuration::ZERO, 2),
        ]);
        assert_eq!(q.pop(), Some((SimTime::from_micros(10), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_micros(15), 1)));
        assert_eq!(q.pop(), None);
    }

    /// Deterministic pseudo-random stress: the wheel and the heap must
    /// deliver identical sequences, block boundaries and all.
    #[test]
    fn wheel_matches_heap_on_scrambled_schedules() {
        let mut wheel: EventQueue<u32> = EventQueue::new();
        let mut heap: EventQueue<u32> = EventQueue::with_kernel(Kernel::Heap);
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut pending = 0u32;
        for i in 0..5_000u32 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            // Mix of same-instant, near, block-scale, and far deltas.
            let delta = match x % 4 {
                0 => 0,
                1 => x % 1_024,
                2 => x % (1 << 22),
                _ => x % (1 << 24),
            };
            let at = wheel.now() + SimDuration::from_micros(delta);
            wheel.schedule_at(at, i);
            heap.schedule_at(at, i);
            pending += 1;
            if x.is_multiple_of(3) {
                while pending > x as u32 % 8 {
                    assert_eq!(wheel.pop(), heap.pop());
                    pending -= 1;
                }
            }
        }
        loop {
            let (a, b) = (wheel.pop(), heap.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
