//! # slsb-sim — deterministic discrete-event simulation kernel
//!
//! The foundation every other `slsbench` crate builds on:
//!
//! - [`time`] — integer-microsecond virtual time ([`SimTime`], [`SimDuration`]);
//! - [`event`] — a generic event queue and drive loop ([`Engine`], [`System`]);
//! - [`rng`] — one experiment seed fanned out into labelled, independent
//!   substreams ([`Seed`], [`SimRng`]);
//! - [`stats`] — streaming accumulators, exact percentiles, time-bucketed
//!   series and step-function gauges for the analyzer.
//!
//! Determinism contract: for a fixed seed and configuration, a simulation is
//! bit-for-bit reproducible. This is enforced by integer time, FIFO
//! tie-breaking in the event queue, and substream-isolated randomness.
//!
//! ```
//! use slsb_sim::{Engine, EventQueue, SimDuration, SimTime, System};
//!
//! // A system that counts down: each event schedules the next one later.
//! struct Countdown(Vec<u32>);
//! impl System for Countdown {
//!     type Ev = u32;
//!     fn handle(&mut self, q: &mut EventQueue<u32>, _at: SimTime, n: u32) {
//!         self.0.push(n);
//!         if n > 0 {
//!             q.schedule_after(SimDuration::from_secs(1), n - 1);
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new(Countdown(Vec::new()));
//! engine.queue.schedule_at(SimTime::ZERO, 3);
//! engine.run_to_completion();
//! assert_eq!(engine.system.0, vec![3, 2, 1, 0]);
//! assert_eq!(engine.now(), SimTime::from_secs_f64(3.0));
//! ```

pub mod alloc;
pub mod event;
pub mod prof;
pub mod rng;
pub mod stats;
pub mod time;
mod wheel;

pub use event::{Engine, EventQueue, Kernel, Observer, System};
pub use prof::{ProfGuard, ProfileNode};
pub use rng::{Seed, SimRng};
pub use stats::{Accumulator, GaugeSeries, Histogram, SampleSet, TimeSeries};
pub use time::{SimDuration, SimTime};
