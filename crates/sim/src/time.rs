//! Virtual time for the discrete-event simulator.
//!
//! Time is represented as an integer number of **microseconds** since the
//! simulation epoch. Integer time gives the event queue a total order with no
//! floating-point drift, which is what makes runs bit-for-bit reproducible
//! for a given seed.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of microseconds in one second.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// An instant on the simulation clock (microseconds since the epoch).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A non-negative span of simulated time (microseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch, `t = 0`.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from whole microseconds since the epoch.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Builds an instant from whole milliseconds since the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Builds an instant from fractional seconds since the epoch.
    ///
    /// # Panics
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid time: {secs}");
        SimTime((secs * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self`; elapsed time in a causal
    /// simulation must be non-negative, so a violation is a logic error.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: earlier is after self"),
        )
    }

    /// Duration since `earlier`, or zero if `earlier` is in the future.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The instant `dur` later, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, dur: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(dur.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * MICROS_PER_SEC)
    }

    /// Builds a duration from fractional seconds.
    ///
    /// # Panics
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration: {secs}");
        SimDuration((secs * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Whole microseconds in this duration.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional seconds in this duration.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// True when the duration is exactly zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Sum saturating at [`SimDuration::MAX`].
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Difference saturating at zero.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Rounds **up** to the next multiple of `quantum`, used by billing
    /// models that charge in coarse increments (e.g. 100 ms on Cloud
    /// Functions, 1 ms on Lambda).
    ///
    /// # Panics
    /// Panics if `quantum` is zero.
    pub fn round_up_to(self, quantum: SimDuration) -> SimDuration {
        assert!(quantum.0 > 0, "round_up_to: zero quantum");
        let q = quantum.0;
        SimDuration(self.0.div_ceil(q) * q)
    }

    /// Multiplies by a non-negative scalar, rounding to whole microseconds.
    ///
    /// # Panics
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid factor: {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs_f64(1.5).as_micros(), 1_500_000);
        assert_eq!(SimTime::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimDuration::from_secs(3).as_secs_f64(), 3.0);
        assert_eq!(SimDuration::from_secs_f64(0.000001).as_micros(), 1);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs_f64(10.0);
        let d = SimDuration::from_secs(4);
        assert_eq!((t + d).as_secs_f64(), 14.0);
        assert_eq!((t - d).as_secs_f64(), 6.0);
        assert_eq!((t + d).duration_since(t), d);
        assert_eq!(d + d, SimDuration::from_secs(8));
        assert_eq!(d - SimDuration::from_secs(1), SimDuration::from_secs(3));
        assert_eq!(d * 3, SimDuration::from_secs(12));
        assert_eq!(d / 2, SimDuration::from_secs(2));
    }

    #[test]
    #[should_panic(expected = "earlier is after self")]
    fn duration_since_panics_on_negative_span() {
        let _ = SimTime::ZERO.duration_since(SimTime::from_secs_f64(1.0));
    }

    #[test]
    fn saturating_duration_since_clamps() {
        let early = SimTime::from_secs_f64(1.0);
        let late = SimTime::from_secs_f64(5.0);
        assert_eq!(early.saturating_duration_since(late), SimDuration::ZERO);
        assert_eq!(
            late.saturating_duration_since(early),
            SimDuration::from_secs(4)
        );
    }

    #[test]
    fn round_up_to_billing_quanta() {
        let q = SimDuration::from_millis(100);
        assert_eq!(
            SimDuration::from_millis(1).round_up_to(q),
            SimDuration::from_millis(100)
        );
        assert_eq!(
            SimDuration::from_millis(100).round_up_to(q),
            SimDuration::from_millis(100)
        );
        assert_eq!(
            SimDuration::from_millis(101).round_up_to(q),
            SimDuration::from_millis(200)
        );
        assert_eq!(SimDuration::ZERO.round_up_to(q), SimDuration::ZERO);
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_micros(10);
        assert_eq!(d.mul_f64(1.55), SimDuration::from_micros(16));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_micros(1);
        let b = SimTime::from_micros(2);
        assert!(a < b);
        assert!(SimDuration::from_micros(1) < SimDuration::from_micros(2));
    }

    #[test]
    fn display_formats_as_seconds() {
        assert_eq!(SimTime::from_secs_f64(1.25).to_string(), "1.250s");
        assert_eq!(SimDuration::from_millis(50).to_string(), "0.050s");
    }
}
