//! Allocation accounting shared by the whole workspace.
//!
//! The `slsb` binary installs a counting `#[global_allocator]` (see
//! `slsb-bench`); the counter itself lives here, at the bottom of the crate
//! graph, so any layer can read it and the bench crate does not need to be a
//! dependency of the code it measures.
//!
//! Two levels of detail:
//!
//! - [`allocation_count`] — a single process-wide relaxed counter, always
//!   on. One `fetch_add` per allocation.
//! - **Region attribution** — when enabled with [`enable_breakdown`], each
//!   allocation is also charged to the [`Region`] the current thread is in
//!   ([`RegionGuard`]). Disabled (the default), a guard costs one relaxed
//!   load and the allocator hook one relaxed load, so instrumented hot paths
//!   stay honest when nobody is looking at the breakdown.
//!
//! Regions nest: entering a region remembers the previous one and restores
//! it on drop, so e.g. platform code calling back into the kernel is charged
//! to the kernel while the call lasts.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Coarse subsystem buckets for the allocation breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Region {
    /// Executor setup, request bookkeeping, everything unclaimed.
    Executor = 0,
    /// Event-queue schedule/pop (both kernels).
    Kernel = 1,
    /// Platform models: submit/handle/drain, scaling, billing.
    Platform = 2,
    /// Observability: trace recording, span emission.
    Obs = 3,
}

/// Number of [`Region`] variants.
pub const REGIONS: usize = 4;

/// Stable lowercase names, index-aligned with [`Region`] discriminants.
pub const REGION_NAMES: [&str; REGIONS] = ["executor", "kernel", "platform", "obs"];

static COUNT: AtomicU64 = AtomicU64::new(0);
static BREAKDOWN: AtomicBool = AtomicBool::new(false);
static REGION_COUNTS: [AtomicU64; REGIONS] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

thread_local! {
    static CURRENT: Cell<u8> = const { Cell::new(Region::Executor as u8) };
}

/// Records one allocation. Called by the counting global allocator; must not
/// allocate (it runs inside `GlobalAlloc::alloc`).
#[inline]
pub fn note_alloc() {
    COUNT.fetch_add(1, Ordering::Relaxed);
    if BREAKDOWN.load(Ordering::Relaxed) {
        let r = CURRENT.with(|c| c.get());
        REGION_COUNTS[r as usize & (REGIONS - 1)].fetch_add(1, Ordering::Relaxed);
    }
    if crate::prof::enabled() {
        crate::prof::note_thread_alloc();
    }
}

/// Total allocations observed since process start (0 unless a counting
/// allocator is installed).
#[inline]
pub fn allocation_count() -> u64 {
    COUNT.load(Ordering::Relaxed)
}

/// Turns per-region attribution on or off. Off by default; benchmarks flip
/// it on only for the measured section they want broken down.
pub fn enable_breakdown(on: bool) {
    BREAKDOWN.store(on, Ordering::Relaxed);
}

/// Per-region allocation totals, index-aligned with [`REGION_NAMES`]. Only
/// grows while breakdown is enabled.
pub fn region_counts() -> [u64; REGIONS] {
    let mut out = [0; REGIONS];
    for (slot, c) in out.iter_mut().zip(REGION_COUNTS.iter()) {
        *slot = c.load(Ordering::Relaxed);
    }
    out
}

/// Resets the per-region totals (the grand total keeps counting).
pub fn reset_region_counts() {
    for c in REGION_COUNTS.iter() {
        c.store(0, Ordering::Relaxed);
    }
}

/// Charges this thread's allocations to `region` until dropped, then
/// restores the previous region. Near-free while breakdown is disabled.
pub struct RegionGuard {
    prev: u8,
    active: bool,
}

impl RegionGuard {
    #[inline]
    pub fn enter(region: Region) -> Self {
        if !BREAKDOWN.load(Ordering::Relaxed) {
            return RegionGuard {
                prev: 0,
                active: false,
            };
        }
        let prev = CURRENT.with(|c| c.replace(region as u8));
        RegionGuard { prev, active: true }
    }
}

impl Drop for RegionGuard {
    #[inline]
    fn drop(&mut self) {
        if self.active {
            let prev = self.prev;
            CURRENT.with(|c| c.set(prev));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test, not several: breakdown state is process-global and the
    // harness runs tests concurrently.
    #[test]
    fn regions_nest_restore_and_gate() {
        // Disabled: guards are inert and nothing is attributed.
        enable_breakdown(false);
        reset_region_counts();
        let _g = RegionGuard::enter(Region::Platform);
        drop(_g);
        note_alloc();
        assert_eq!(region_counts(), [0; REGIONS]);
        assert!(allocation_count() >= 1);

        // Enabled: charges follow the innermost guard and restore on drop.
        enable_breakdown(true);
        let before = region_counts();
        {
            let _p = RegionGuard::enter(Region::Platform);
            note_alloc();
            {
                let _k = RegionGuard::enter(Region::Kernel);
                note_alloc();
                note_alloc();
            }
            note_alloc();
        }
        note_alloc(); // back to Executor
        let after = region_counts();
        enable_breakdown(false);
        assert_eq!(after[Region::Platform as usize] - before[Region::Platform as usize], 2);
        assert_eq!(after[Region::Kernel as usize] - before[Region::Kernel as usize], 2);
        assert_eq!(after[Region::Executor as usize] - before[Region::Executor as usize], 1);
    }
}
