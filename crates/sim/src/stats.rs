//! Streaming statistics used by the analyzer: scalar accumulators, exact
//! percentile sets, time-bucketed series, and step-function gauges.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Welford-style streaming accumulator: count, mean, variance, min, max.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Accumulator {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Accumulator {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds a duration observation in seconds.
    pub fn add_duration(&mut self, d: SimDuration) {
        self.add(d.as_secs_f64());
    }

    /// Folds `other` into `self` (parallel Welford merge).
    pub fn merge(&mut self, other: &Accumulator) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no observations have been added.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Population variance, or `None` when empty.
    pub fn variance(&self) -> Option<f64> {
        (self.count > 0).then(|| self.m2 / self.count as f64)
    }

    /// Population standard deviation, or `None` when empty.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Minimum observation, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.mean * self.count as f64
    }
}

/// Exact percentile computation over a retained sample set.
///
/// Retention is fine at benchmark scale (≤ ~10⁵ requests per run); the
/// analyzer needs exact tail latencies, not sketches.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SampleSet {
    samples: Vec<f64>,
    #[serde(skip)]
    sorted: bool,
}

impl SampleSet {
    /// An empty sample set.
    pub fn new() -> Self {
        SampleSet {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Adds a duration observation in seconds.
    pub fn push_duration(&mut self, d: SimDuration) {
        self.push(d.as_secs_f64());
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
    }

    /// The `q`-th percentile (0–100) by the nearest-rank definition: the
    /// smallest sample such that at least `q`% of the set is ≤ it. Always an
    /// observed value — never an interpolated one — so small sample counts
    /// report real latencies instead of fabricated midpoints. `None` when
    /// empty.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 100]`.
    pub fn percentile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&q), "percentile out of range: {q}");
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
        let n = self.samples.len();
        let idx = if q == 0.0 {
            0
        } else {
            ((q / 100.0 * n as f64).ceil() as usize).max(1) - 1
        };
        Some(self.samples[idx.min(n - 1)])
    }

    /// Median (p50), or `None` when empty.
    pub fn median(&mut self) -> Option<f64> {
        self.percentile(50.0)
    }

    /// Standard deviation (population), or `None` when empty.
    pub fn std_dev(&self) -> Option<f64> {
        let mean = self.mean()?;
        let var = self
            .samples
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f64>()
            / self.samples.len() as f64;
        Some(var.sqrt())
    }

    /// Immutable view of the raw samples (unsorted order not guaranteed).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// A fixed-bin linear histogram over `[lo, hi)` with under/overflow bins.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// A histogram with `bins` equal-width bins spanning `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "empty histogram range");
        assert!(bins > 0, "zero histogram bins");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    pub fn add(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((x - self.lo) / (self.hi - self.lo) * self.bins.len() as f64) as usize;
            let last = self.bins.len() - 1;
            self.bins[idx.min(last)] += 1;
        }
    }

    /// Total observations, including under/overflow.
    pub fn count(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range's end.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// `(bin_start, bin_end, count)` triples.
    pub fn bins(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins.iter().enumerate().map(move |(i, &c)| {
            (
                self.lo + width * i as f64,
                self.lo + width * (i + 1) as f64,
                c,
            )
        })
    }

    /// Fraction of in-range observations at or below `x` (empirical CDF
    /// evaluated at bin granularity; under/overflow included in the
    /// denominator).
    pub fn cdf(&self, x: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let mut acc = self.underflow;
        for (start, end, c) in self.bins() {
            let _ = start;
            if end <= x {
                acc += c;
            }
        }
        if x >= self.hi {
            acc += self.overflow;
        }
        acc as f64 / total as f64
    }
}

/// Per-bucket statistics of a value observed over simulated time — e.g.
/// "average latency of requests arriving in each 10 s window", the series
/// plotted by the paper's timeline figures.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeSeries {
    bucket: SimDuration,
    buckets: Vec<Accumulator>,
}

impl TimeSeries {
    /// A series with the given bucket width.
    ///
    /// # Panics
    /// Panics if `bucket` is zero.
    pub fn new(bucket: SimDuration) -> Self {
        assert!(!bucket.is_zero(), "zero bucket width");
        TimeSeries {
            bucket,
            buckets: Vec::new(),
        }
    }

    /// Records observation `value` at instant `at`.
    pub fn add(&mut self, at: SimTime, value: f64) {
        let idx = (at.as_micros() / self.bucket.as_micros()) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize_with(idx + 1, Accumulator::new);
        }
        self.buckets[idx].add(value);
    }

    /// Bucket width.
    pub fn bucket_width(&self) -> SimDuration {
        self.bucket
    }

    /// Iterates `(bucket_start, stats)` for every bucket, including empty
    /// interior ones.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, &Accumulator)> + '_ {
        self.buckets.iter().enumerate().map(move |(i, acc)| {
            (
                SimTime::from_micros(i as u64 * self.bucket.as_micros()),
                acc,
            )
        })
    }

    /// Number of buckets (span of observations / bucket width, rounded up).
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// True when no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }
}

/// A step-function gauge sampled over time — e.g. the number of running
/// instances. Records every change and can report per-bucket maxima,
/// matching how the paper plots instance counts.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GaugeSeries {
    /// `(instant, new_value)` change points, in nondecreasing time order.
    points: Vec<(SimTime, i64)>,
    current: i64,
    peak: i64,
}

impl GaugeSeries {
    /// A gauge starting at zero.
    pub fn new() -> Self {
        GaugeSeries::default()
    }

    /// Current value.
    pub fn current(&self) -> i64 {
        self.current
    }

    /// All-time maximum value.
    pub fn peak(&self) -> i64 {
        self.peak
    }

    /// Applies a delta at instant `at`.
    ///
    /// # Panics
    /// Panics if `at` precedes the previous change (gauges are recorded in
    /// simulation order).
    pub fn record_delta(&mut self, at: SimTime, delta: i64) {
        self.record(at, self.current + delta);
    }

    /// Sets the value at instant `at`.
    pub fn record(&mut self, at: SimTime, value: i64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(at >= last, "gauge recorded out of order");
        }
        self.current = value;
        self.peak = self.peak.max(value);
        self.points.push((at, value));
    }

    /// Sums several gauges into one step function: the result's value at
    /// any instant is the sum of the parts' values at that instant.
    ///
    /// Change points are replayed as deltas, merged by `(time, part index)`
    /// — a canonical order that depends only on the parts themselves, never
    /// on how they were produced. This is what lets sharded runs merge
    /// per-shard instance gauges into a fleet gauge byte-identically for
    /// any worker count.
    pub fn merge_summed<'a, I>(parts: I) -> GaugeSeries
    where
        I: IntoIterator<Item = &'a GaugeSeries>,
    {
        let parts: Vec<&GaugeSeries> = parts.into_iter().collect();
        let mut cursor = vec![0usize; parts.len()];
        let mut prev = vec![0i64; parts.len()];
        let total: usize = parts.iter().map(|p| p.points.len()).sum();
        let mut out = GaugeSeries::new();
        out.points.reserve(total);
        let mut sum = 0i64;
        if parts.len() <= 8 {
            // k is small (one part per shard); a linear scan beats a heap.
            for _ in 0..total {
                let mut best: Option<(SimTime, usize)> = None;
                for (i, p) in parts.iter().enumerate() {
                    if let Some(&(t, _)) = p.points.get(cursor[i]) {
                        if best.is_none_or(|(bt, _)| t < bt) {
                            best = Some((t, i));
                        }
                    }
                }
                let (t, i) = best.expect("total counted points");
                let (_, v) = parts[i].points[cursor[i]];
                sum += v - prev[i];
                prev[i] = v;
                cursor[i] += 1;
                out.record(t, sum);
            }
        } else {
            // Large k (fleet runs merge one series per app): a min-heap on
            // (t, part) makes this O(total log k). The tuple order pops the
            // lowest-index part among equal instants — exactly the choice
            // the linear scan makes — so both paths are byte-identical.
            use std::cmp::Reverse;
            use std::collections::BinaryHeap;
            let mut heap: BinaryHeap<Reverse<(SimTime, usize)>> =
                BinaryHeap::with_capacity(parts.len());
            for (i, p) in parts.iter().enumerate() {
                if let Some(&(t, _)) = p.points.first() {
                    heap.push(Reverse((t, i)));
                }
            }
            while let Some(Reverse((t, i))) = heap.pop() {
                let (_, v) = parts[i].points[cursor[i]];
                sum += v - prev[i];
                prev[i] = v;
                cursor[i] += 1;
                if let Some(&(nt, _)) = parts[i].points.get(cursor[i]) {
                    heap.push(Reverse((nt, i)));
                }
                out.record(t, sum);
            }
        }
        out
    }

    /// Value at instant `at` (the most recent change at or before `at`, or
    /// zero before the first change).
    pub fn value_at(&self, at: SimTime) -> i64 {
        match self.points.binary_search_by(|&(t, _)| t.cmp(&at)) {
            Ok(mut i) => {
                // Several changes can share a timestamp; take the last.
                while i + 1 < self.points.len() && self.points[i + 1].0 == at {
                    i += 1;
                }
                self.points[i].1
            }
            Err(0) => 0,
            Err(i) => self.points[i - 1].1,
        }
    }

    /// Maximum value attained in `[start, start + width)`.
    pub fn bucket_max(&self, start: SimTime, width: SimDuration) -> i64 {
        let end = start + width;
        let mut max = self.value_at(start);
        for &(t, v) in &self.points {
            if t >= start && t < end {
                max = max.max(v);
            }
        }
        max
    }

    /// Per-bucket maxima from time zero through the last change.
    pub fn bucket_maxima(&self, width: SimDuration) -> Vec<(SimTime, i64)> {
        let Some(&(last, _)) = self.points.last() else {
            return Vec::new();
        };
        let n = last.as_micros() / width.as_micros() + 1;
        (0..n)
            .map(|i| {
                let start = SimTime::from_micros(i * width.as_micros());
                (start, self.bucket_max(start, width))
            })
            .collect()
    }

    /// Time-weighted average value over `[SimTime::ZERO, end]`.
    pub fn time_weighted_mean(&self, end: SimTime) -> f64 {
        if end == SimTime::ZERO {
            return 0.0;
        }
        let mut area = 0.0;
        let mut prev_t = SimTime::ZERO;
        let mut prev_v = 0i64;
        for &(t, v) in &self.points {
            if t > end {
                break;
            }
            area += prev_v as f64 * t.duration_since(prev_t).as_secs_f64();
            prev_t = t;
            prev_v = v;
        }
        area += prev_v as f64 * end.saturating_duration_since(prev_t).as_secs_f64();
        area / end.as_secs_f64()
    }

    /// The raw change points.
    pub fn points(&self) -> &[(SimTime, i64)] {
        &self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn accumulator_matches_hand_computed() {
        let mut a = Accumulator::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            a.add(x);
        }
        assert_eq!(a.count(), 8);
        assert!((a.mean().unwrap() - 5.0).abs() < 1e-12);
        assert!((a.std_dev().unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(a.min().unwrap(), 2.0);
        assert_eq!(a.max().unwrap(), 9.0);
        assert!((a.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn accumulator_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Accumulator::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut left = Accumulator::new();
        let mut right = Accumulator::new();
        for &x in &xs[..37] {
            left.add(x);
        }
        for &x in &xs[37..] {
            right.add(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-9);
        assert!((left.variance().unwrap() - whole.variance().unwrap()).abs() < 1e-9);
    }

    #[test]
    fn accumulator_merge_with_empty() {
        let mut a = Accumulator::new();
        a.add(1.0);
        let b = Accumulator::new();
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let mut c = Accumulator::new();
        c.merge(&a);
        assert_eq!(c.count(), 1);
        assert_eq!(c.mean(), Some(1.0));
    }

    #[test]
    fn empty_accumulator_returns_none() {
        let a = Accumulator::new();
        assert!(a.mean().is_none());
        assert!(a.std_dev().is_none());
        assert!(a.min().is_none());
        assert!(a.max().is_none());
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let mut s = SampleSet::new();
        for x in [15.0, 20.0, 35.0, 40.0, 50.0] {
            s.push(x);
        }
        assert_eq!(s.percentile(0.0), Some(15.0));
        assert_eq!(s.percentile(100.0), Some(50.0));
        // p50 of 5 samples: ceil(0.5·5) = rank 3 → 35.
        assert_eq!(s.median(), Some(35.0));
        // p25: ceil(0.25·5) = rank 2 → 20.
        assert_eq!(s.percentile(25.0), Some(20.0));
        // p10: ceil(0.1·5) = rank 1 → the smallest sample, never an
        // interpolated value below every observation.
        assert_eq!(s.percentile(10.0), Some(15.0));
        assert_eq!(s.percentile(95.0), Some(50.0));
    }

    #[test]
    fn small_sample_percentiles_return_observed_values() {
        // Nearest-rank must hand back actual observations at small n — the
        // regime where interpolation fabricates values nobody measured.
        let mut s = SampleSet::new();
        for x in 1..=10 {
            s.push(x as f64);
        }
        assert_eq!(s.percentile(90.0), Some(9.0));
        assert_eq!(s.percentile(91.0), Some(10.0));
        assert_eq!(s.percentile(99.0), Some(10.0));
        assert_eq!(s.percentile(50.0), Some(5.0));

        let mut quad = SampleSet::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            quad.push(x);
        }
        assert_eq!(quad.percentile(50.0), Some(2.0));
        assert_eq!(quad.percentile(75.0), Some(3.0));
        assert_eq!(quad.percentile(76.0), Some(4.0));

        let mut single = SampleSet::new();
        single.push(42.0);
        for q in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(single.percentile(q), Some(42.0));
        }
    }

    #[test]
    fn sampleset_mean_std() {
        let mut s = SampleSet::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            s.push(x);
        }
        assert_eq!(s.mean(), Some(2.5));
        assert!((s.std_dev().unwrap() - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn empty_sampleset() {
        let mut s = SampleSet::new();
        assert!(s.is_empty());
        assert!(s.mean().is_none());
        assert!(s.percentile(50.0).is_none());
    }

    #[test]
    fn timeseries_buckets_observations() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(10));
        ts.add(secs(1.0), 5.0);
        ts.add(secs(9.9), 15.0);
        ts.add(secs(25.0), 100.0);
        assert_eq!(ts.len(), 3);
        let v: Vec<_> = ts.iter().collect();
        assert_eq!(v[0].1.mean(), Some(10.0));
        assert!(v[1].1.is_empty());
        assert_eq!(v[2].1.mean(), Some(100.0));
        assert_eq!(v[2].0, secs(20.0));
    }

    #[test]
    fn histogram_counts_and_bounds() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [-1.0, 0.0, 1.9, 2.0, 9.99, 10.0, 42.0] {
            h.add(x);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        let bins: Vec<u64> = h.bins().map(|(_, _, c)| c).collect();
        assert_eq!(bins, vec![2, 1, 0, 0, 1]);
    }

    #[test]
    fn histogram_cdf_monotone() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        for i in 0..100 {
            h.add(i as f64);
        }
        let cdf_50 = h.cdf(50.0);
        let cdf_90 = h.cdf(90.0);
        assert!((cdf_50 - 0.5).abs() < 0.05);
        assert!(cdf_50 < cdf_90);
        assert!((h.cdf(100.0) - 1.0).abs() < 1e-12);
        assert_eq!(h.cdf(-5.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty histogram range")]
    fn histogram_bad_range_panics() {
        Histogram::new(5.0, 5.0, 3);
    }

    #[test]
    fn gauge_value_at_and_peak() {
        let mut g = GaugeSeries::new();
        g.record_delta(secs(1.0), 2);
        g.record_delta(secs(2.0), 3);
        g.record_delta(secs(5.0), -4);
        assert_eq!(g.current(), 1);
        assert_eq!(g.peak(), 5);
        assert_eq!(g.value_at(SimTime::ZERO), 0);
        assert_eq!(g.value_at(secs(1.5)), 2);
        assert_eq!(g.value_at(secs(2.0)), 5);
        assert_eq!(g.value_at(secs(10.0)), 1);
    }

    #[test]
    fn gauge_same_instant_changes_take_last() {
        let mut g = GaugeSeries::new();
        g.record(secs(1.0), 1);
        g.record(secs(1.0), 7);
        assert_eq!(g.value_at(secs(1.0)), 7);
    }

    #[test]
    fn gauge_bucket_maxima() {
        let mut g = GaugeSeries::new();
        g.record(secs(1.0), 4);
        g.record(secs(3.0), 2);
        g.record(secs(12.0), 9);
        let m = g.bucket_maxima(SimDuration::from_secs(10));
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].1, 4);
        assert_eq!(m[1].1, 9);
    }

    #[test]
    fn gauge_time_weighted_mean() {
        let mut g = GaugeSeries::new();
        g.record(secs(0.0), 2);
        g.record(secs(5.0), 4);
        // 2 for 5s, 4 for 5s → mean 3 over [0, 10]
        assert!((g.time_weighted_mean(secs(10.0)) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn gauge_rejects_time_travel() {
        let mut g = GaugeSeries::new();
        g.record(secs(2.0), 1);
        g.record(secs(1.0), 2);
    }

    #[test]
    fn gauge_merge_summed_is_pointwise_sum() {
        let mut a = GaugeSeries::new();
        a.record_delta(secs(1.0), 2);
        a.record_delta(secs(4.0), -1);
        let mut b = GaugeSeries::new();
        b.record_delta(secs(2.0), 5);
        b.record_delta(secs(4.0), -5);
        let m = GaugeSeries::merge_summed([&a, &b]);
        for t in [0.0, 1.0, 1.5, 2.0, 3.0, 4.0, 9.0] {
            assert_eq!(
                m.value_at(secs(t)),
                a.value_at(secs(t)) + b.value_at(secs(t)),
                "t = {t}"
            );
        }
        assert_eq!(m.peak(), 7);
        assert_eq!(m.current(), 1);
        // Canonical: merging in the same part order is reproducible, and an
        // empty merge is the zero gauge.
        assert_eq!(
            m.points(),
            GaugeSeries::merge_summed([&a, &b]).points()
        );
        assert!(GaugeSeries::merge_summed([]).points().is_empty());
    }

    #[test]
    fn gauge_merge_heap_path_matches_linear_scan() {
        // Above 8 parts the merge switches to a heap; both paths must be
        // byte-identical, including the tie-break among equal instants.
        let parts: Vec<GaugeSeries> = (0..20)
            .map(|i| {
                let mut g = GaugeSeries::new();
                // Deliberate cross-part timestamp collisions.
                g.record_delta(secs((i % 5) as f64), i + 1);
                g.record_delta(secs(5.0 + (i % 3) as f64), -(i + 1) / 2);
                g
            })
            .collect();
        let heap_merged = GaugeSeries::merge_summed(parts.iter());
        // Pairwise-fold through the ≤8-part linear path as the oracle.
        let mut oracle = GaugeSeries::new();
        for p in &parts {
            oracle = GaugeSeries::merge_summed([&oracle, p]);
        }
        assert_eq!(heap_merged.points(), oracle.points());
        for t in [0.0, 1.0, 2.5, 4.0, 5.0, 6.0, 7.0, 10.0] {
            let want: i64 = parts.iter().map(|p| p.value_at(secs(t))).sum();
            assert_eq!(heap_merged.value_at(secs(t)), want, "t = {t}");
        }
    }
}
