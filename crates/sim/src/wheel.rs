//! Hierarchical timer wheel (calendar queue) — the default kernel behind
//! [`EventQueue`](crate::event::EventQueue).
//!
//! Serving simulations schedule almost everything into the near future
//! (service completions, network hops, scaler ticks), with a thin tail of
//! far-future events (keep-alive reclaims, outage windows). A binary heap
//! pays O(log n) and a cache miss per operation regardless; the wheel makes
//! the common case O(1) amortized:
//!
//! - **Near ring**: one block of [`BUCKETS`] buckets, each
//!   2^[`BUCKET_SHIFT`] µs wide (4.096 ms), covering ~4.19 s ahead of the
//!   drain cursor. Scheduling is an index computation plus a `Vec::push`.
//!   The ring is deliberately shallow (1024 buckets ≈ 24 KB of `Vec`
//!   headers) so the randomly-indexed bucket metadata stays cache-resident;
//!   bucket width never affects delivery order, which is always the full
//!   `(time, sequence)` sort within a drained bucket.
//! - **Far overflow**: events beyond the current block land in a
//!   `BTreeMap` keyed by block index; whole blocks are pulled forward and
//!   scattered into the ring when the cursor reaches them.
//! - **Ready spill**: the next non-empty bucket is drained into a single
//!   sorted buffer (`ready`, newest-first so popping from the back is
//!   oldest-first). Events scheduled behind the cursor — `schedule_now`
//!   and short follow-ups inside an already-drained bucket — are
//!   order-inserted here, which is what preserves the exact
//!   `(time, sequence)` FIFO contract a heap provides.
//!
//! Bucket `Vec`s are recycled rather than freed: draining swaps a bucket
//! with the (empty) ready buffer, and far blocks return to a spare pool
//! after scattering, so steady-state operation allocates nothing.

use crate::event::Scheduled;
use crate::time::SimTime;
use std::cmp;
use std::collections::BTreeMap;
use std::mem;

/// log2 of the bucket width in microseconds (4.096 ms per bucket).
pub(crate) const BUCKET_SHIFT: u32 = 12;
/// log2 of the bucket count per block.
const BLOCK_BITS: u32 = 10;
/// Buckets per block; one block spans ~4.19 s.
pub(crate) const BUCKETS: usize = 1 << BLOCK_BITS;
const SLOT_MASK: u64 = (BUCKETS as u64) - 1;
const WORDS: usize = BUCKETS / 64;

pub(crate) struct TimerWheel<E> {
    /// Drained-but-undelivered events, sorted descending by `(at, seq)` so
    /// the earliest is at the back. Also absorbs behind-cursor inserts.
    ready: Vec<Scheduled<E>>,
    /// The current block of near-future buckets, indexed by `bucket & mask`.
    ring: Box<[Vec<Scheduled<E>>]>,
    /// Occupancy bitmap over `ring` (one bit per bucket).
    occ: [u64; WORDS],
    /// Absolute index of the next bucket the drain cursor will visit.
    /// Invariant: every far block key is strictly greater than
    /// `cur >> BLOCK_BITS`, and every ring bucket holds only events of the
    /// cursor's block at slots `>= cur & mask`.
    cur: u64,
    /// Far-future events, grouped by block index, each group unsorted.
    far: BTreeMap<u64, Vec<Scheduled<E>>>,
    /// Recycled block vectors (capacity retained across reuse).
    spare: Vec<Vec<Scheduled<E>>>,
    len: usize,
}

impl<E> TimerWheel<E> {
    pub(crate) fn with_capacity(cap: usize) -> Self {
        TimerWheel {
            // `ready` cycles capacity with the ring buckets, so seeding it
            // covers the largest burst bucket; simultaneous occupancy is far
            // below total request count, hence the cap.
            ready: Vec::with_capacity(cap.min(1024)),
            ring: (0..BUCKETS).map(|_| Vec::new()).collect(),
            occ: [0; WORDS],
            cur: 0,
            far: BTreeMap::new(),
            spare: Vec::new(),
            len: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    fn bucket(at: SimTime) -> u64 {
        at.as_micros() >> BUCKET_SHIFT
    }

    pub(crate) fn insert(&mut self, s: Scheduled<E>) {
        let b = Self::bucket(s.at);
        self.len += 1;
        if b < self.cur {
            // The cursor already passed this bucket (the event lands at or
            // just after `now`): order-insert into the ready spill so time
            // order and FIFO ties survive.
            let key = (s.at, s.seq);
            let pos = self.ready.partition_point(|e| (e.at, e.seq) > key);
            self.ready.insert(pos, s);
        } else if b >> BLOCK_BITS == self.cur >> BLOCK_BITS {
            let slot = (b & SLOT_MASK) as usize;
            self.ring[slot].push(s);
            self.occ[slot >> 6] |= 1 << (slot & 63);
        } else {
            let blk = b >> BLOCK_BITS;
            match self.far.get_mut(&blk) {
                Some(v) => v.push(s),
                None => {
                    let mut v = self.spare.pop().unwrap_or_default();
                    v.push(s);
                    self.far.insert(blk, v);
                }
            }
        }
    }

    pub(crate) fn pop(&mut self) -> Option<Scheduled<E>> {
        loop {
            if let Some(s) = self.ready.pop() {
                self.len -= 1;
                return Some(s);
            }
            if self.len == 0 {
                return None;
            }
            self.advance();
        }
    }

    /// Pops the earliest event only if it fires at or before `horizon`.
    pub(crate) fn pop_at_or_before(&mut self, horizon: SimTime) -> Option<Scheduled<E>> {
        loop {
            if let Some(s) = self.ready.last() {
                if s.at > horizon {
                    return None;
                }
                self.len -= 1;
                return self.ready.pop();
            }
            if self.len == 0 {
                return None;
            }
            self.advance();
        }
    }

    /// Timestamp of the earliest pending event without disturbing anything.
    pub(crate) fn peek(&self) -> Option<SimTime> {
        if let Some(s) = self.ready.last() {
            return Some(s.at);
        }
        if self.len == 0 {
            return None;
        }
        let start = (self.cur & SLOT_MASK) as usize;
        if let Some(slot) = self.next_occupied(start) {
            return self.ring[slot].iter().map(|s| s.at).min();
        }
        let (_, v) = self.far.first_key_value().expect("pending events exist");
        v.iter().map(|s| s.at).min()
    }

    /// Moves the next non-empty bucket (or far block) toward `ready`.
    /// Precondition: `ready` is empty and `len > 0`.
    fn advance(&mut self) {
        let start = (self.cur & SLOT_MASK) as usize;
        if let Some(slot) = self.next_occupied(start) {
            self.occ[slot >> 6] &= !(1 << (slot & 63));
            // Swap instead of take: the bucket inherits `ready`'s old
            // capacity, so allocations circulate instead of repeating.
            mem::swap(&mut self.ring[slot], &mut self.ready);
            self.ready
                .sort_unstable_by_key(|s| cmp::Reverse((s.at, s.seq)));
            self.cur = (self.cur & !SLOT_MASK) | slot as u64;
            self.cur += 1;
            if self.cur & SLOT_MASK == 0 {
                // Crossed into the next block: its far events (if any) are
                // now near-future and must be reachable through the ring.
                self.pull_far_if_current();
            }
        } else {
            // Block exhausted with nothing in the ring: jump the cursor to
            // the earliest far block.
            let (blk, v) = self.far.pop_first().expect("len > 0 but nothing pending");
            self.cur = blk << BLOCK_BITS;
            self.scatter(v);
        }
    }

    fn pull_far_if_current(&mut self) {
        let blk = self.cur >> BLOCK_BITS;
        if self.far.first_key_value().is_some_and(|(&k, _)| k == blk) {
            let v = self.far.pop_first().expect("first key checked").1;
            self.scatter(v);
        }
    }

    /// Distributes one far block's events into the ring. The cursor must
    /// sit at the start of that block.
    fn scatter(&mut self, mut v: Vec<Scheduled<E>>) {
        for s in v.drain(..) {
            let b = Self::bucket(s.at);
            debug_assert_eq!(b >> BLOCK_BITS, self.cur >> BLOCK_BITS);
            debug_assert!(b >= self.cur);
            let slot = (b & SLOT_MASK) as usize;
            self.ring[slot].push(s);
            self.occ[slot >> 6] |= 1 << (slot & 63);
        }
        self.spare.push(v);
    }

    fn next_occupied(&self, start: usize) -> Option<usize> {
        let mut w = start >> 6;
        let mut word = self.occ[w] & (!0u64 << (start & 63));
        loop {
            if word != 0 {
                return Some((w << 6) + word.trailing_zeros() as usize);
            }
            w += 1;
            if w == WORDS {
                return None;
            }
            word = self.occ[w];
        }
    }
}
