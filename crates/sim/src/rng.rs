//! Deterministic randomness with labelled substreams.
//!
//! Every experiment takes one `u64` seed. Components derive independent
//! substreams from it by label (`seed.substream("clients")`,
//! `seed.substream("coldstart")`, …) so that adding a random draw in one
//! component never perturbs the sequence seen by another — a prerequisite
//! for meaningful A/B comparisons between platform configurations.
//!
//! The generator is a self-contained xoshiro256++ (seeded by SplitMix64
//! expansion) with inverse-transform exponential and Box–Muller normal
//! samplers, so the crate has no external RNG dependency and every draw is
//! a pure function of the seed — the property the parallel run harness
//! relies on for bit-identical results regardless of thread count.

use crate::time::SimDuration;

/// An experiment seed from which component substreams are derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Seed(pub u64);

impl Seed {
    /// Derives a child seed for the component named `label`.
    ///
    /// Uses FNV-1a over the label mixed with the parent seed via
    /// SplitMix64-style finalization; labels that differ in any byte give
    /// unrelated child seeds.
    pub fn substream(self, label: &str) -> Seed {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET ^ self.0;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        Seed(splitmix64(h))
    }

    /// Derives a child seed for the `index`-th member of a homogeneous group
    /// (e.g. client #3).
    pub fn substream_indexed(self, label: &str, index: u64) -> Seed {
        Seed(splitmix64(self.substream(label).0 ^ splitmix64(index)))
    }

    /// Builds the RNG for this (sub)stream.
    pub fn rng(self) -> SimRng {
        // Expand the 64-bit seed into xoshiro256++ state via SplitMix64,
        // the seeding procedure recommended by the xoshiro authors.
        let mut sm = self.0;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            splitmix64_mix(sm)
        };
        SimRng {
            state: [next(), next(), next(), next()],
        }
    }
}

fn splitmix64(z: u64) -> u64 {
    splitmix64_mix(z.wrapping_add(0x9e37_79b9_7f4a_7c15))
}

fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Seeded random source with samplers for the distributions the simulators
/// use. Internally a xoshiro256++ generator.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

impl SimRng {
    /// Next raw 64-bit draw (xoshiro256++ step).
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// Uniform draw in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 high bits give every representable double in [0, 1) at the
        // standard spacing.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index: empty range");
        // Widening-multiply range reduction (Lemire); bias is < 2^-64 per
        // draw, far below anything a simulation statistic can observe.
        (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Exponential inter-arrival sample with the given rate (events/sec).
    ///
    /// # Panics
    /// Panics if `rate_per_sec` is not strictly positive and finite.
    pub fn exp_interval(&mut self, rate_per_sec: f64) -> SimDuration {
        assert!(
            rate_per_sec.is_finite() && rate_per_sec > 0.0,
            "invalid rate: {rate_per_sec}"
        );
        // Inverse transform: -ln(1 - U) / λ, with 1 - U > 0 guaranteed
        // because uniform() < 1.
        let u = self.uniform();
        SimDuration::from_secs_f64(-(1.0 - u).ln() / rate_per_sec)
    }

    /// Exponential sample with the given mean.
    pub fn exp_mean(&mut self, mean: SimDuration) -> SimDuration {
        let m = mean.as_secs_f64();
        if m <= 0.0 {
            return SimDuration::ZERO;
        }
        self.exp_interval(1.0 / m)
    }

    /// Standard normal draw (Box–Muller; the second variate is discarded so
    /// each call consumes exactly two uniforms — stream position never
    /// depends on call history).
    fn standard_normal(&mut self) -> f64 {
        let u1 = loop {
            let u = self.uniform();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Log-normal duration around `median` with shape `sigma` (σ of the
    /// underlying normal). Models service-time jitter: strictly positive,
    /// right-skewed — the shape cloud latencies empirically follow.
    pub fn lognormal(&mut self, median: SimDuration, sigma: f64) -> SimDuration {
        let m = median.as_secs_f64();
        if m <= 0.0 {
            return SimDuration::ZERO;
        }
        if sigma <= 0.0 {
            return median;
        }
        let z = self.standard_normal();
        SimDuration::from_secs_f64((m.ln() + sigma * z).exp())
    }

    /// Normal duration clamped at zero. For mild symmetric jitter.
    pub fn normal_clamped(&mut self, mean: SimDuration, std_dev: SimDuration) -> SimDuration {
        let s = std_dev.as_secs_f64();
        if s <= 0.0 {
            return mean;
        }
        let z = self.standard_normal();
        SimDuration::from_secs_f64((mean.as_secs_f64() + s * z).max(0.0))
    }

    /// Uniform duration in `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn uniform_duration(&mut self, lo: SimDuration, hi: SimDuration) -> SimDuration {
        assert!(lo <= hi, "uniform_duration: lo > hi");
        if lo == hi {
            return lo;
        }
        let span = hi.as_micros() - lo.as_micros() + 1;
        let offset = (((self.next_u64() as u128) * (span as u128)) >> 64) as u64;
        SimDuration::from_micros(lo.as_micros() + offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Seed(42).rng();
        let mut b = Seed(42).rng();
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn different_labels_give_different_streams() {
        let s = Seed(42);
        let mut a = s.substream("clients").rng();
        let mut b = s.substream("coldstart").rng();
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 2, "streams should be unrelated");
    }

    #[test]
    fn substream_is_stable() {
        // Guards reproducibility across refactors: the derivation is part of
        // the observable contract.
        assert_eq!(Seed(1).substream("x"), Seed(1).substream("x"));
        assert_ne!(Seed(1).substream("x"), Seed(2).substream("x"));
        assert_ne!(
            Seed(1).substream_indexed("c", 0),
            Seed(1).substream_indexed("c", 1)
        );
    }

    #[test]
    fn exp_interval_mean_is_inverse_rate() {
        let mut rng = Seed(7).rng();
        let n = 20_000;
        let total: f64 = (0..n)
            .map(|_| rng.exp_interval(4.0).as_secs_f64())
            .sum::<f64>();
        let mean = total / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean} should be ~0.25");
    }

    #[test]
    fn lognormal_median_is_roughly_median() {
        let mut rng = Seed(9).rng();
        let median = SimDuration::from_millis(100);
        let mut below = 0;
        let n = 10_000;
        for _ in 0..n {
            if rng.lognormal(median, 0.3) < median {
                below += 1;
            }
        }
        let frac = below as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.03, "median fraction {frac}");
    }

    #[test]
    fn degenerate_parameters_short_circuit() {
        let mut rng = Seed(3).rng();
        assert_eq!(rng.exp_mean(SimDuration::ZERO), SimDuration::ZERO);
        assert_eq!(
            rng.lognormal(SimDuration::from_secs(1), 0.0),
            SimDuration::from_secs(1)
        );
        assert_eq!(
            rng.normal_clamped(SimDuration::from_secs(1), SimDuration::ZERO),
            SimDuration::from_secs(1)
        );
        let d = SimDuration::from_secs(2);
        assert_eq!(rng.uniform_duration(d, d), d);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Seed(5).rng();
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn index_covers_range() {
        let mut rng = Seed(11).rng();
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.index(8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn uniform_duration_stays_in_bounds() {
        let mut rng = Seed(13).rng();
        let lo = SimDuration::from_millis(10);
        let hi = SimDuration::from_millis(20);
        for _ in 0..1000 {
            let d = rng.uniform_duration(lo, hi);
            assert!(d >= lo && d <= hi);
        }
    }

    #[test]
    fn normal_is_roughly_symmetric() {
        let mut rng = Seed(17).rng();
        let mean = SimDuration::from_millis(500);
        let sd = SimDuration::from_millis(50);
        let n = 10_000;
        let above = (0..n)
            .filter(|_| rng.normal_clamped(mean, sd) > mean)
            .count();
        let frac = above as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.03, "above-mean fraction {frac}");
    }
}
