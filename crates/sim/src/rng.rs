//! Deterministic randomness with labelled substreams.
//!
//! Every experiment takes one `u64` seed. Components derive independent
//! substreams from it by label (`seed.substream("clients")`,
//! `seed.substream("coldstart")`, …) so that adding a random draw in one
//! component never perturbs the sequence seen by another — a prerequisite
//! for meaningful A/B comparisons between platform configurations.
//!
//! The generator is a self-contained xoshiro256++ (seeded by SplitMix64
//! expansion) with ziggurat exponential and normal samplers on the hot
//! path, so the crate has no external RNG dependency and every draw is
//! a pure function of the seed — the property the parallel run harness
//! relies on for bit-identical results regardless of thread count.
//!
//! The ziggurat samplers (Marsaglia & Tsang, 256 layers) accept ~98–99 %
//! of draws with one `u64`, two table loads, a multiply, and a compare —
//! no `ln`/`sqrt`/`cos` — which is what lifts fleet throughput past the
//! libm-bound Box–Muller/inverse-transform path. The legacy samplers are
//! kept as `*_reference` differential oracles (the `Kernel::Heap`
//! precedent): statistical tests pin the fast path against them. Note the
//! ziggurat consumes a *variable* number of raw draws per sample
//! (rejection), so the stream position now depends on the values drawn;
//! determinism is unaffected because every draw remains a pure function
//! of the substream seed.

use crate::time::SimDuration;
use std::sync::OnceLock;

/// An experiment seed from which component substreams are derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Seed(pub u64);

impl Seed {
    /// Derives a child seed for the component named `label`.
    ///
    /// Uses FNV-1a over the label mixed with the parent seed via
    /// SplitMix64-style finalization; labels that differ in any byte give
    /// unrelated child seeds.
    pub fn substream(self, label: &str) -> Seed {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET ^ self.0;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        Seed(splitmix64(h))
    }

    /// Derives a child seed for the `index`-th member of a homogeneous group
    /// (e.g. client #3).
    pub fn substream_indexed(self, label: &str, index: u64) -> Seed {
        Seed(splitmix64(self.substream(label).0 ^ splitmix64(index)))
    }

    /// Builds the RNG for this (sub)stream.
    pub fn rng(self) -> SimRng {
        // Expand the 64-bit seed into xoshiro256++ state via SplitMix64,
        // the seeding procedure recommended by the xoshiro authors.
        let mut sm = self.0;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            splitmix64_mix(sm)
        };
        SimRng {
            state: [next(), next(), next(), next()],
        }
    }
}

fn splitmix64(z: u64) -> u64 {
    splitmix64_mix(z.wrapping_add(0x9e37_79b9_7f4a_7c15))
}

fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Layers in each ziggurat (the classic 256-layer construction; accept
/// probability on the single-compare fast path is ~98–99 %).
const ZIG_LAYERS: usize = 256;
/// Rightmost layer edge of the normal ziggurat (Marsaglia & Tsang).
const ZIG_NORM_R: f64 = 3.654_152_885_361_009;
/// Per-layer area of the normal ziggurat for the unnormalized pdf
/// `exp(-x²/2)` (base strip rectangle + tail share the same area).
const ZIG_NORM_V: f64 = 4.928_673_233_992_336e-3;
/// Rightmost layer edge of the exponential ziggurat.
const ZIG_EXP_R: f64 = 7.697_117_470_131_487;
/// Per-layer area of the exponential ziggurat for `exp(-x)`.
const ZIG_EXP_V: f64 = 3.949_659_822_581_557e-3;

/// Precomputed ziggurat layer edges `x[i]` (strictly decreasing,
/// `x[LAYERS] = 0`) and pdf values `f[i] = pdf(x[i])`.
struct ZigTable {
    x: [f64; ZIG_LAYERS + 1],
    f: [f64; ZIG_LAYERS + 1],
}

/// Builds a ziggurat table from the published `(r, v)` constants and the
/// (unnormalized, monotone-decreasing) pdf with its inverse. Purely a
/// function of math constants, so lazily initializing it never threatens
/// determinism.
fn build_zig_table(r: f64, v: f64, pdf: fn(f64) -> f64, pdf_inv: fn(f64) -> f64) -> ZigTable {
    let mut x = [0.0; ZIG_LAYERS + 1];
    let mut f = [0.0; ZIG_LAYERS + 1];
    // The base strip (layer 0) is a rectangle of area v whose width
    // overshoots r; the overshoot region maps onto the tail.
    x[0] = v / pdf(r);
    x[1] = r;
    for i in 2..ZIG_LAYERS {
        // Equal-area recurrence: v = x[i-1]·(pdf(x[i]) − pdf(x[i-1])).
        // Clamp guards the last few layers against f64 rounding pushing
        // the argument of the inverse pdf above 1.
        let y = (v / x[i - 1] + pdf(x[i - 1])).min(1.0);
        x[i] = pdf_inv(y);
    }
    x[ZIG_LAYERS] = 0.0;
    for i in 0..=ZIG_LAYERS {
        f[i] = pdf(x[i]);
    }
    ZigTable { x, f }
}

fn zig_norm_table() -> &'static ZigTable {
    static T: OnceLock<ZigTable> = OnceLock::new();
    T.get_or_init(|| {
        build_zig_table(
            ZIG_NORM_R,
            ZIG_NORM_V,
            |x| (-0.5 * x * x).exp(),
            |y| (-2.0 * y.ln()).sqrt(),
        )
    })
}

fn zig_exp_table() -> &'static ZigTable {
    static T: OnceLock<ZigTable> = OnceLock::new();
    T.get_or_init(|| build_zig_table(ZIG_EXP_R, ZIG_EXP_V, |x| (-x).exp(), |y| -y.ln()))
}

/// Seeded random source with samplers for the distributions the simulators
/// use. Internally a xoshiro256++ generator.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

impl SimRng {
    /// Next raw 64-bit draw (xoshiro256++ step).
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// Uniform draw in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 high bits give every representable double in [0, 1) at the
        // standard spacing.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index: empty range");
        // Widening-multiply range reduction (Lemire); bias is < 2^-64 per
        // draw, far below anything a simulation statistic can observe.
        (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Uniform draw in `(0, 1]` (safe to take the log of).
    fn nonzero_uniform(&mut self) -> f64 {
        1.0 - self.uniform()
    }

    /// Standard exponential draw (mean 1) via the 256-layer ziggurat:
    /// ~98 % of draws cost one `u64`, two table loads, and one compare.
    /// Pinned statistically against [`Self::standard_exp_reference`].
    pub fn standard_exp(&mut self) -> f64 {
        let t = zig_exp_table();
        loop {
            let bits = self.next_u64();
            // Low 8 bits pick the layer; bits 11.. form the 53-bit uniform
            // (disjoint bit ranges, so layer and position are independent
            // enough for every published use of this construction).
            let i = (bits & 0xff) as usize;
            let u = (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            let x = u * t.x[i];
            if x < t.x[i + 1] {
                return x;
            }
            if i == 0 {
                // Base strip overshoot: the exponential tail beyond r is
                // itself exponential (memorylessness).
                return ZIG_EXP_R - self.nonzero_uniform().ln();
            }
            // Wedge: accept under the true pdf.
            if t.f[i + 1] + (t.f[i] - t.f[i + 1]) * self.uniform() < (-x).exp() {
                return x;
            }
        }
    }

    /// Standard exponential draw via the legacy inverse transform
    /// (`-ln(1-U)`): one `ln` per draw. Kept as the differential oracle
    /// for [`Self::standard_exp`].
    pub fn standard_exp_reference(&mut self) -> f64 {
        -self.nonzero_uniform().ln()
    }

    /// Exponential inter-arrival sample with the given rate (events/sec).
    ///
    /// # Panics
    /// Panics if `rate_per_sec` is not strictly positive and finite.
    pub fn exp_interval(&mut self, rate_per_sec: f64) -> SimDuration {
        assert!(
            rate_per_sec.is_finite() && rate_per_sec > 0.0,
            "invalid rate: {rate_per_sec}"
        );
        SimDuration::from_secs_f64(self.standard_exp() / rate_per_sec)
    }

    /// Exponential sample with the given mean.
    pub fn exp_mean(&mut self, mean: SimDuration) -> SimDuration {
        let m = mean.as_secs_f64();
        if m <= 0.0 {
            return SimDuration::ZERO;
        }
        self.exp_interval(1.0 / m)
    }

    /// Standard normal draw via the symmetric 256-layer ziggurat: ~99 %
    /// of draws cost one `u64`, two table loads, and one compare — no
    /// `ln`/`sqrt`/`cos`. Pinned statistically against
    /// [`Self::standard_normal_reference`].
    pub fn standard_normal(&mut self) -> f64 {
        let t = zig_norm_table();
        loop {
            let bits = self.next_u64();
            let i = (bits & 0xff) as usize;
            // 53-bit uniform mapped onto [-1, 1); sign comes for free.
            let u = 2.0 * ((bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) - 1.0;
            let x = u * t.x[i];
            if x.abs() < t.x[i + 1] {
                return x;
            }
            if i == 0 {
                // Base strip overshoot: Marsaglia's exact tail method for
                // the region beyond ±r.
                loop {
                    let x = self.nonzero_uniform().ln() / ZIG_NORM_R; // ≤ 0
                    let y = self.nonzero_uniform().ln(); // ≤ 0
                    if -2.0 * y >= x * x {
                        return if u < 0.0 {
                            x - ZIG_NORM_R
                        } else {
                            ZIG_NORM_R - x
                        };
                    }
                }
            }
            if t.f[i + 1] + (t.f[i] - t.f[i + 1]) * self.uniform() < (-0.5 * x * x).exp() {
                return x;
            }
        }
    }

    /// Standard normal draw via the legacy Box–Muller transform (the
    /// second variate is discarded so each call consumes exactly two
    /// uniforms). Kept as the differential oracle for
    /// [`Self::standard_normal`].
    pub fn standard_normal_reference(&mut self) -> f64 {
        let u1 = loop {
            let u = self.uniform();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Log-normal duration around `median` with shape `sigma` (σ of the
    /// underlying normal). Models service-time jitter: strictly positive,
    /// right-skewed — the shape cloud latencies empirically follow.
    pub fn lognormal(&mut self, median: SimDuration, sigma: f64) -> SimDuration {
        let m = median.as_secs_f64();
        if m <= 0.0 {
            return SimDuration::ZERO;
        }
        if sigma <= 0.0 {
            return median;
        }
        let z = self.standard_normal();
        SimDuration::from_secs_f64((m.ln() + sigma * z).exp())
    }

    /// Normal duration clamped at zero. For mild symmetric jitter.
    pub fn normal_clamped(&mut self, mean: SimDuration, std_dev: SimDuration) -> SimDuration {
        let s = std_dev.as_secs_f64();
        if s <= 0.0 {
            return mean;
        }
        let z = self.standard_normal();
        SimDuration::from_secs_f64((mean.as_secs_f64() + s * z).max(0.0))
    }

    /// Uniform duration in `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn uniform_duration(&mut self, lo: SimDuration, hi: SimDuration) -> SimDuration {
        assert!(lo <= hi, "uniform_duration: lo > hi");
        if lo == hi {
            return lo;
        }
        let span = hi.as_micros() - lo.as_micros() + 1;
        let offset = (((self.next_u64() as u128) * (span as u128)) >> 64) as u64;
        SimDuration::from_micros(lo.as_micros() + offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Seed(42).rng();
        let mut b = Seed(42).rng();
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn different_labels_give_different_streams() {
        let s = Seed(42);
        let mut a = s.substream("clients").rng();
        let mut b = s.substream("coldstart").rng();
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 2, "streams should be unrelated");
    }

    #[test]
    fn substream_is_stable() {
        // Guards reproducibility across refactors: the derivation is part of
        // the observable contract.
        assert_eq!(Seed(1).substream("x"), Seed(1).substream("x"));
        assert_ne!(Seed(1).substream("x"), Seed(2).substream("x"));
        assert_ne!(
            Seed(1).substream_indexed("c", 0),
            Seed(1).substream_indexed("c", 1)
        );
    }

    #[test]
    fn exp_interval_mean_is_inverse_rate() {
        let mut rng = Seed(7).rng();
        let n = 20_000;
        let total: f64 = (0..n)
            .map(|_| rng.exp_interval(4.0).as_secs_f64())
            .sum::<f64>();
        let mean = total / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean} should be ~0.25");
    }

    #[test]
    fn lognormal_median_is_roughly_median() {
        let mut rng = Seed(9).rng();
        let median = SimDuration::from_millis(100);
        let mut below = 0;
        let n = 10_000;
        for _ in 0..n {
            if rng.lognormal(median, 0.3) < median {
                below += 1;
            }
        }
        let frac = below as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.03, "median fraction {frac}");
    }

    #[test]
    fn degenerate_parameters_short_circuit() {
        let mut rng = Seed(3).rng();
        assert_eq!(rng.exp_mean(SimDuration::ZERO), SimDuration::ZERO);
        assert_eq!(
            rng.lognormal(SimDuration::from_secs(1), 0.0),
            SimDuration::from_secs(1)
        );
        assert_eq!(
            rng.normal_clamped(SimDuration::from_secs(1), SimDuration::ZERO),
            SimDuration::from_secs(1)
        );
        let d = SimDuration::from_secs(2);
        assert_eq!(rng.uniform_duration(d, d), d);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Seed(5).rng();
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn index_covers_range() {
        let mut rng = Seed(11).rng();
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.index(8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn uniform_duration_stays_in_bounds() {
        let mut rng = Seed(13).rng();
        let lo = SimDuration::from_millis(10);
        let hi = SimDuration::from_millis(20);
        for _ in 0..1000 {
            let d = rng.uniform_duration(lo, hi);
            assert!(d >= lo && d <= hi);
        }
    }

    /// Two-sample Kolmogorov–Smirnov statistic: max gap between the
    /// empirical CDFs. Inputs are sorted in place.
    fn ks_statistic(a: &mut [f64], b: &mut [f64]) -> f64 {
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let (mut i, mut j, mut d) = (0usize, 0usize, 0.0f64);
        while i < a.len() && j < b.len() {
            if a[i] <= b[j] {
                i += 1;
            } else {
                j += 1;
            }
            let gap = (i as f64 / a.len() as f64 - j as f64 / b.len() as f64).abs();
            d = d.max(gap);
        }
        d
    }

    #[test]
    fn ziggurat_tables_are_well_formed() {
        for t in [super::zig_norm_table(), super::zig_exp_table()] {
            // Strictly decreasing edges down to zero, pdf values rising
            // to pdf(0) = 1: the invariants the accept tests rely on.
            for i in 0..super::ZIG_LAYERS {
                assert!(t.x[i] > t.x[i + 1], "x not decreasing at {i}");
                assert!(t.f[i] < t.f[i + 1] + 1e-12, "f not increasing at {i}");
            }
            assert_eq!(t.x[super::ZIG_LAYERS], 0.0);
            assert!((t.f[super::ZIG_LAYERS] - 1.0).abs() < 1e-12);
        }
        assert_eq!(super::zig_norm_table().x[1], super::ZIG_NORM_R);
        assert_eq!(super::zig_exp_table().x[1], super::ZIG_EXP_R);
    }

    #[test]
    fn ziggurat_normal_matches_reference_moments() {
        let mut rng = Seed(101).rng();
        let n = 200_000;
        let (mut sum, mut sum2, mut sum3) = (0.0, 0.0, 0.0);
        for _ in 0..n {
            let z = rng.standard_normal();
            sum += z;
            sum2 += z * z;
            sum3 += z * z * z;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        let skew = sum3 / n as f64;
        // 3σ bounds for N draws of a standard normal: mean ±3/√n,
        // variance ±3·√(2/n), third moment ±3·√(15/n).
        assert!(mean.abs() < 3.0 / (n as f64).sqrt(), "mean {mean}");
        assert!((var - 1.0).abs() < 3.0 * (2.0 / n as f64).sqrt(), "var {var}");
        assert!(skew.abs() < 3.0 * (15.0 / n as f64).sqrt(), "skew {skew}");
    }

    #[test]
    fn ziggurat_exp_matches_reference_moments() {
        let mut rng = Seed(103).rng();
        let n = 200_000;
        let (mut sum, mut sum2) = (0.0, 0.0);
        for _ in 0..n {
            let e = rng.standard_exp();
            assert!(e >= 0.0);
            sum += e;
            sum2 += e * e;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        // Exp(1): mean 1 (σ²=1), variance 1 (var of X² terms ⇒ wide σ).
        assert!((mean - 1.0).abs() < 3.0 / (n as f64).sqrt(), "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn ziggurat_normal_ks_close_to_reference() {
        // Differential pin: the fast path and the legacy oracle must draw
        // from the same distribution. Deterministic seeds make the KS
        // statistic reproducible; 0.02 is the α≈0.001 critical value at
        // this sample size.
        let n = 20_000;
        let mut a: Vec<f64> = {
            let mut r = Seed(201).rng();
            (0..n).map(|_| r.standard_normal()).collect()
        };
        let mut b: Vec<f64> = {
            let mut r = Seed(202).rng();
            (0..n).map(|_| r.standard_normal_reference()).collect()
        };
        let d = ks_statistic(&mut a, &mut b);
        assert!(d < 0.02, "normal KS statistic {d}");
    }

    #[test]
    fn ziggurat_exp_ks_close_to_reference() {
        let n = 20_000;
        let mut a: Vec<f64> = {
            let mut r = Seed(203).rng();
            (0..n).map(|_| r.standard_exp()).collect()
        };
        let mut b: Vec<f64> = {
            let mut r = Seed(204).rng();
            (0..n).map(|_| r.standard_exp_reference()).collect()
        };
        let d = ks_statistic(&mut a, &mut b);
        assert!(d < 0.02, "exp KS statistic {d}");
    }

    #[test]
    fn ziggurat_tail_region_is_reachable() {
        // The |z| > r tail fires with probability ~2.6e-4 per draw; a
        // large fixed-seed sweep must hit it (exercising the Marsaglia
        // tail branch) and never exceed plausible magnitudes.
        let mut rng = Seed(205).rng();
        let mut tail = 0u32;
        for _ in 0..500_000 {
            let z = rng.standard_normal();
            assert!(z.abs() < 7.0, "implausible normal draw {z}");
            if z.abs() > super::ZIG_NORM_R {
                tail += 1;
            }
        }
        assert!(tail > 20, "tail hits {tail}");
    }

    #[test]
    fn normal_is_roughly_symmetric() {
        let mut rng = Seed(17).rng();
        let mean = SimDuration::from_millis(500);
        let sd = SimDuration::from_millis(50);
        let n = 10_000;
        let above = (0..n)
            .filter(|_| rng.normal_clamped(mean, sd) > mean)
            .count();
        let frac = above as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.03, "above-mean fraction {frac}");
    }
}
