//! Hierarchical self-profiler shared by the whole workspace.
//!
//! Generalizes the [`crate::alloc`] region-guard idiom from four flat
//! allocation buckets into a *tree* of named scopes that accumulate
//! inclusive wall time, entry counts, and heap allocations. The same
//! discipline applies:
//!
//! - **Disabled (the default)** a [`ProfGuard`] costs one relaxed atomic
//!   load and the allocator hook one relaxed load — instrumented hot
//!   paths stay honest when nobody is profiling.
//! - **Enabled** each guard stamps `Instant::now()` on entry and exit and
//!   charges the elapsed time to a per-thread tree node keyed by the
//!   nesting path of labels (`executor/cell` → `executor/engine` →
//!   `kernel/pop`, …). Nodes are found by a short linear scan of the
//!   parent's children, so steady-state profiling allocates only when a
//!   path is seen for the first time.
//!
//! Per-thread trees are flushed into a process-wide merged tree whenever
//! a thread's guard stack empties (i.e. its outermost scope closes), so
//! work done on the parallel runner's worker threads is captured without
//! any cross-thread coordination on the hot path. [`take`] snapshots the
//! merged tree — children sorted by label — and resets it.
//!
//! # Determinism
//!
//! The profiler never reads simulation state, touches an RNG, or changes
//! control flow: enabling it cannot perturb a run (traces stay
//! byte-identical). Conversely, the *shape* of the snapshot — the set of
//! label paths and each node's `calls` — is a pure function of the work
//! performed, so for a fixed seed and configuration it is identical
//! across `--jobs` / `--shards` worker budgets (the merge is additive
//! and the snapshot sorts children). Wall times and allocation counts
//! are measurements, not replayable quantities, and vary run to run.

use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns profiling on or off. Off by default; `slsb run --profile` flips
/// it on for the run it wants attributed.
pub fn enable(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether profiling is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Per-thread allocation counter, bumped by the global allocator hook.

thread_local! {
    static TL_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Records one allocation on this thread's profiler counter. Called from
/// [`crate::alloc::note_alloc`] (i.e. inside `GlobalAlloc::alloc`), so it
/// must not allocate; a const-initialized `Cell` thread-local satisfies
/// that, and `try_with` keeps TLS-teardown allocations from panicking.
#[inline]
pub fn note_thread_alloc() {
    let _ = TL_ALLOCS.try_with(|c| c.set(c.get() + 1));
}

#[inline]
fn thread_allocs() -> u64 {
    TL_ALLOCS.try_with(Cell::get).unwrap_or(0)
}

// ---------------------------------------------------------------------------
// Per-thread profile tree.

struct LocalNode {
    label: &'static str,
    /// Indices into `LocalTree::nodes`. Scopes nest a handful deep and
    /// have few distinct children, so a linear scan beats a map.
    children: Vec<u32>,
    calls: u64,
    nanos: u64,
    allocs: u64,
}

impl LocalNode {
    fn new(label: &'static str) -> LocalNode {
        LocalNode {
            label,
            children: Vec::new(),
            calls: 0,
            nanos: 0,
            allocs: 0,
        }
    }
}

struct LocalTree {
    /// `nodes[0]` is the sentinel root (empty label, never reported).
    nodes: Vec<LocalNode>,
    /// Active guard stack, innermost last.
    stack: Vec<u32>,
}

impl LocalTree {
    fn new() -> LocalTree {
        LocalTree {
            nodes: vec![LocalNode::new("")],
            stack: Vec::new(),
        }
    }

    fn child_of(&mut self, parent: u32, label: &'static str) -> u32 {
        for &c in &self.nodes[parent as usize].children {
            if self.nodes[c as usize].label == label {
                return c;
            }
        }
        let idx = self.nodes.len() as u32;
        self.nodes.push(LocalNode::new(label));
        self.nodes[parent as usize].children.push(idx);
        idx
    }
}

thread_local! {
    static TREE: RefCell<LocalTree> = RefCell::new(LocalTree::new());
}

// ---------------------------------------------------------------------------
// Process-wide merged tree.

#[derive(Default)]
struct MergedNode {
    calls: u64,
    nanos: u64,
    allocs: u64,
    children: BTreeMap<&'static str, MergedNode>,
}

static MERGED: Mutex<BTreeMap<&'static str, MergedNode>> = Mutex::new(BTreeMap::new());

fn merge_into(dst: &mut BTreeMap<&'static str, MergedNode>, tree: &LocalTree, node: u32) {
    for &c in &tree.nodes[node as usize].children {
        let child = &tree.nodes[c as usize];
        let slot = dst.entry(child.label).or_default();
        slot.calls += child.calls;
        slot.nanos += child.nanos;
        slot.allocs += child.allocs;
        merge_into(&mut slot.children, tree, c);
    }
}

fn flush_local(tree: &mut LocalTree) {
    if tree.nodes.len() == 1 {
        return;
    }
    {
        let mut merged = MERGED.lock().expect("profiler mutex poisoned");
        merge_into(&mut merged, tree, 0);
    }
    tree.nodes.clear();
    tree.nodes.push(LocalNode::new(""));
}

/// Discards all accumulated profile data (merged and this thread's
/// local tree). Call before the section you want to attribute.
pub fn reset() {
    TREE.with(|t| {
        let mut t = t.borrow_mut();
        debug_assert!(t.stack.is_empty(), "reset inside an active ProfGuard");
        t.nodes.clear();
        t.nodes.push(LocalNode::new(""));
    });
    MERGED.lock().expect("profiler mutex poisoned").clear();
}

/// Snapshots the merged profile tree as sorted root nodes and resets it.
/// Flushes the calling thread's local tree first; worker threads flush
/// themselves whenever their outermost guard closes, so by the time the
/// coordinating thread calls this every scoped region has landed.
pub fn take() -> Vec<ProfileNode> {
    TREE.with(|t| flush_local(&mut t.borrow_mut()));
    let mut merged = MERGED.lock().expect("profiler mutex poisoned");
    let out = std::mem::take(&mut *merged);
    drop(merged);
    out.into_iter().map(|(label, n)| snapshot(label, n)).collect()
}

fn snapshot(label: &'static str, node: MergedNode) -> ProfileNode {
    ProfileNode {
        label: label.to_string(),
        calls: node.calls,
        nanos: node.nanos,
        allocs: node.allocs,
        children: node
            .children
            .into_iter()
            .map(|(l, n)| snapshot(l, n))
            .collect(),
    }
}

// ---------------------------------------------------------------------------
// Snapshot type.

/// One node of a profile snapshot: a named scope with inclusive totals
/// and its children sorted by label.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileNode {
    /// Scope label (e.g. `"kernel/pop"`).
    pub label: String,
    /// Times the scope was entered.
    pub calls: u64,
    /// Inclusive wall time, nanoseconds (children included).
    pub nanos: u64,
    /// Inclusive heap allocations on the owning thread.
    pub allocs: u64,
    /// Nested scopes, sorted by label.
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    /// Inclusive wall time in seconds.
    pub fn secs(&self) -> f64 {
        self.nanos as f64 / 1e9
    }

    /// Exclusive wall time: inclusive minus the children's inclusive.
    /// Saturating, because a child timed on a different thread of the
    /// same merged path can (rarely) exceed the parent's own clock.
    pub fn exclusive_nanos(&self) -> u64 {
        self.nanos
            .saturating_sub(self.children.iter().map(|c| c.nanos).sum())
    }

    /// Looks a direct child up by label.
    pub fn child(&self, label: &str) -> Option<&ProfileNode> {
        self.children.iter().find(|c| c.label == label)
    }

    /// The tree with every measurement dropped: label paths and call
    /// counts only. Two runs of the same seed and configuration produce
    /// equal shapes; wall times and allocation counts differ.
    pub fn shape(&self) -> ProfileNode {
        ProfileNode {
            label: self.label.clone(),
            calls: self.calls,
            nanos: 0,
            allocs: 0,
            children: self.children.iter().map(ProfileNode::shape).collect(),
        }
    }
}

// ---------------------------------------------------------------------------
// The guard.

/// Charges this thread's wall time and allocations to `label` until
/// dropped. Inert — one relaxed load — while profiling is disabled.
///
/// Guards must be dropped in LIFO order; Rust scoping gives this for
/// free as long as a guard is bound to a local (`let _g = …`).
pub struct ProfGuard {
    start: Option<Instant>,
    start_allocs: u64,
    node: u32,
}

impl ProfGuard {
    /// Opens a scope nested under the innermost active scope on this
    /// thread (or at the root if none is active).
    #[inline]
    pub fn enter(label: &'static str) -> ProfGuard {
        if !ENABLED.load(Ordering::Relaxed) {
            return ProfGuard {
                start: None,
                start_allocs: 0,
                node: 0,
            };
        }
        Self::enter_at(label, false)
    }

    /// Opens a scope attached directly to the root, regardless of any
    /// scope currently active on this thread. Used for scopes whose
    /// placement must not depend on which thread runs them (a shard cell
    /// runs inline under `--jobs 1` but on a pool worker otherwise).
    #[inline]
    pub fn enter_root(label: &'static str) -> ProfGuard {
        if !ENABLED.load(Ordering::Relaxed) {
            return ProfGuard {
                start: None,
                start_allocs: 0,
                node: 0,
            };
        }
        Self::enter_at(label, true)
    }

    #[cold]
    fn enter_at(label: &'static str, at_root: bool) -> ProfGuard {
        let node = TREE.with(|t| {
            let mut t = t.borrow_mut();
            let parent = if at_root {
                0
            } else {
                t.stack.last().copied().unwrap_or(0)
            };
            let node = t.child_of(parent, label);
            t.stack.push(node);
            node
        });
        ProfGuard {
            start: Some(Instant::now()),
            start_allocs: thread_allocs(),
            node,
        }
    }
}

impl Drop for ProfGuard {
    #[inline]
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let allocs = thread_allocs().wrapping_sub(self.start_allocs);
            let node = self.node;
            TREE.with(|t| {
                let mut t = t.borrow_mut();
                let popped = t.stack.pop();
                debug_assert_eq!(popped, Some(node), "ProfGuard dropped out of order");
                let n = &mut t.nodes[node as usize];
                n.calls += 1;
                n.nanos += nanos;
                n.allocs += allocs;
                if t.stack.is_empty() {
                    flush_local(&mut t);
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test, not several: the enabled flag and merged tree are
    // process-global and the harness runs tests concurrently. (The
    // repo-level `tests/profiler.rs` suite exercises the executor
    // integration in its own process.)
    #[test]
    fn guards_build_a_tree_and_disabled_guards_are_inert() {
        // Disabled: no state accumulates.
        enable(false);
        reset();
        {
            let _a = ProfGuard::enter("a");
            let _b = ProfGuard::enter("a/b");
        }
        assert!(take().is_empty());

        // Enabled: nesting shapes the tree, counts accumulate.
        enable(true);
        reset();
        for _ in 0..3 {
            let _a = ProfGuard::enter("a");
            {
                let _b = ProfGuard::enter("b");
            }
            {
                let _b = ProfGuard::enter("b");
            }
        }
        {
            let _r = ProfGuard::enter_root("root2");
        }
        enable(false);
        let roots = take();
        assert_eq!(roots.len(), 2, "{roots:?}");
        let a = roots.iter().find(|r| r.label == "a").expect("root a");
        assert_eq!(a.calls, 3);
        assert_eq!(a.children.len(), 1);
        assert_eq!(a.children[0].label, "b");
        assert_eq!(a.children[0].calls, 6);
        assert!(a.nanos >= a.children[0].nanos);
        assert!(roots.iter().any(|r| r.label == "root2"));

        // Shapes of identical work are equal even though times differ.
        enable(true);
        reset();
        let work = || {
            let _a = ProfGuard::enter("w");
            let _b = ProfGuard::enter("x");
        };
        work();
        let s1: Vec<ProfileNode> = take().iter().map(ProfileNode::shape).collect();
        work();
        let s2: Vec<ProfileNode> = take().iter().map(ProfileNode::shape).collect();
        enable(false);
        assert_eq!(s1, s2);

        // enter_root detaches from the active scope.
        enable(true);
        reset();
        {
            let _outer = ProfGuard::enter("outer");
            let _detached = ProfGuard::enter_root("detached");
        }
        enable(false);
        let roots = take();
        assert_eq!(roots.len(), 2, "{roots:?}");
        assert!(roots.iter().all(|r| r.children.is_empty()), "{roots:?}");

        // Worker threads flush on their own when the outermost scope
        // closes, so `take` on the main thread sees their work merged.
        enable(true);
        reset();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    let _c = ProfGuard::enter_root("cell");
                    let _k = ProfGuard::enter("kernel");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        enable(false);
        let roots = take();
        let cell = roots.iter().find(|r| r.label == "cell").expect("cell root");
        assert_eq!(cell.calls, 4);
        assert_eq!(cell.children[0].calls, 4);

        // Snapshots serialize and round-trip.
        let json = serde_json::to_string(&cell).unwrap();
        let back: ProfileNode = serde_json::from_str(&json).unwrap();
        assert_eq!(&back, cell);
    }
}
