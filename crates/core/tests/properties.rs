//! Property-based tests of the framework's end-to-end invariants: for any
//! valid deployment and any workload, the executor resolves every request,
//! conserves counts, keeps latency causal, and stays deterministic.

use proptest::prelude::*;
use slsb_core::{
    analyze, oracle_bound, Analysis, BatchPolicy, Deployment, Executor, ExecutorConfig,
    RetryPolicy,
};
use slsb_model::{ModelKind, RuntimeKind};
use slsb_platform::{
    FaultPlan, KeepAlivePolicy, PlatformKind, PolicySet, ScalingPolicy,
};
use slsb_sim::{Seed, SimDuration, SimTime};
use slsb_workload::{MmppSpec, WorkloadTrace};

fn any_platform() -> impl Strategy<Value = PlatformKind> {
    prop::sample::select(PlatformKind::ALL.to_vec())
}

/// Sum of every terminal outcome counter — must always equal `total`.
fn resolved(a: &Analysis) -> u64 {
    a.succeeded
        + a.failed_queue_full
        + a.failed_timeout
        + a.failed_rejected
        + a.failed_throttled
        + a.failed_crashed
        + a.failed_retries
}

fn any_model() -> impl Strategy<Value = ModelKind> {
    prop::sample::select(ModelKind::ALL.to_vec())
}

fn small_trace(rate: f64, secs: u64, seed: u64) -> WorkloadTrace {
    MmppSpec {
        name: "prop",
        rate_high: rate,
        rate_low: rate / 4.0,
        mean_high_dwell: SimDuration::from_secs(15),
        mean_low_dwell: SimDuration::from_secs(30),
        duration: SimDuration::from_secs(secs),
    }
    .generate(Seed(seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every request resolves to exactly one outcome, and the analyzer's
    /// counts always balance — for any platform × model × workload.
    #[test]
    fn conservation_holds_everywhere(
        platform in any_platform(),
        model in any_model(),
        rate in 5.0f64..60.0,
        seed in 0u64..1000,
    ) {
        let trace = small_trace(rate, 60, seed);
        let dep = Deployment::new(platform, model, RuntimeKind::Tf115);
        let run = Executor::default().run(&dep, &trace, Seed(seed)).unwrap();
        prop_assert_eq!(run.records.len(), trace.len());
        let a = analyze(&run);
        prop_assert_eq!(resolved(&a), a.total);
        prop_assert!((0.0..=1.0).contains(&a.success_ratio));
        prop_assert!(a.cost.total().as_dollars() >= 0.0);
    }

    /// Latency is bounded below by the physical floor (two network legs)
    /// and above by the client timeout.
    #[test]
    fn latency_bounds(seed in 0u64..1000, rate in 5.0f64..40.0) {
        let trace = small_trace(rate, 60, seed);
        let cfg = ExecutorConfig::default();
        let floor = (cfg.network.one_way_latency + cfg.network.one_way_latency).as_secs_f64();
        let dep = Deployment::new(
            PlatformKind::AwsServerless,
            ModelKind::MobileNet,
            RuntimeKind::Ort14,
        );
        let run = Executor::new(cfg).run(&dep, &trace, Seed(seed)).unwrap();
        for r in run.successes() {
            let lat = r.latency.unwrap();
            prop_assert!(lat.as_secs_f64() >= floor, "below network floor");
            prop_assert!(lat <= cfg.timeout, "success past the timeout");
        }
    }

    /// Intra-run sharding is worker-count invariant: the merged result of
    /// a sharded run is byte-identical (serialized analysis and raw
    /// records) for every shard budget, for any platform × seed, with and
    /// without faults and retries active.
    #[test]
    fn sharded_runs_are_worker_count_invariant(
        platform in any_platform(),
        seed in 0u64..1000,
        shards in 2usize..9,
        faulted in prop::sample::select(vec![false, true]),
        retrying in prop::sample::select(vec![false, true]),
    ) {
        let trace = small_trace(20.0, 60, seed);
        let dep = Deployment::new(platform, ModelKind::MobileNet, RuntimeKind::Tf115);
        let mut exec = if retrying {
            Executor::new(ExecutorConfig {
                retry: RetryPolicy::standard(),
                ..ExecutorConfig::default()
            })
        } else {
            Executor::default()
        };
        if faulted {
            let mut plan = FaultPlan::none();
            plan.crash_mid_exec = 0.05;
            plan.packet_loss = 0.05;
            exec = exec.with_faults(plan);
        }
        let reference = exec.clone().with_shards(1).run(&dep, &trace, Seed(seed)).unwrap();
        let sharded = exec.with_shards(shards).run(&dep, &trace, Seed(seed)).unwrap();
        prop_assert_eq!(&reference.records, &sharded.records);
        prop_assert_eq!(reference.engine_events, sharded.engine_events);
        prop_assert_eq!(
            serde_json::to_string(&analyze(&reference)).unwrap(),
            serde_json::to_string(&analyze(&sharded)).unwrap()
        );
    }

    /// SLO attainment is monotone in the threshold and bounded by the
    /// success ratio.
    #[test]
    fn slo_attainment_monotone(seed in 0u64..500) {
        let trace = small_trace(30.0, 60, seed);
        let dep = Deployment::new(
            PlatformKind::AwsCpu,
            ModelKind::Albert,
            RuntimeKind::Tf115,
        );
        let run = Executor::default().run(&dep, &trace, Seed(seed)).unwrap();
        let thresholds = [0.1, 0.5, 1.0, 10.0, 60.0];
        let vals: Vec<f64> = thresholds
            .iter()
            .map(|&s| run.slo_attainment(SimDuration::from_secs_f64(s)))
            .collect();
        prop_assert!(vals.windows(2).all(|w| w[0] <= w[1] + 1e-12));
        prop_assert!(vals[4] <= run.success_ratio() + 1e-12);
    }

    /// Batching conserves logical requests for any batch size.
    #[test]
    fn batching_conserves(batch in 1u32..16, seed in 0u64..500) {
        let trace = small_trace(25.0, 45, seed);
        let dep = Deployment::new(
            PlatformKind::AwsServerless,
            ModelKind::MobileNet,
            RuntimeKind::Ort14,
        )
        .with_batch_size(batch);
        let run = Executor::default().run(&dep, &trace, Seed(seed)).unwrap();
        prop_assert_eq!(run.records.len(), trace.len());
        prop_assert!(run.records.iter().all(|r| r.sent_at >= r.arrival));
        // Invocation count shrinks at least by ~the batch factor (up to the
        // per-client remainder).
        let max_invocations = trace.len() as u64 / u64::from(batch) + 8;
        prop_assert!(
            run.platform.invocations <= max_invocations,
            "{} invocations for {} requests at batch {batch}",
            run.platform.invocations,
            trace.len()
        );
    }

    /// Adaptive batching never holds a request longer than max_wait plus
    /// the service path.
    #[test]
    fn adaptive_batching_bounds_hold(seed in 0u64..300) {
        let max_wait = SimDuration::from_millis(400);
        let exec = Executor::new(ExecutorConfig {
            batch_override: Some(BatchPolicy::Adaptive {
                max_wait,
                max_batch: 8,
            }),
            ..ExecutorConfig::default()
        });
        let trace = small_trace(20.0, 45, seed);
        let dep = Deployment::new(
            PlatformKind::AwsServerless,
            ModelKind::MobileNet,
            RuntimeKind::Ort14,
        );
        let run = exec.run(&dep, &trace, Seed(seed)).unwrap();
        for r in &run.records {
            prop_assert!(r.sent_at.saturating_duration_since(r.arrival) <= max_wait);
        }
    }

    /// The whole pipeline is deterministic for any seed.
    #[test]
    fn pipeline_deterministic(seed in 0u64..300, platform in any_platform()) {
        let trace = small_trace(15.0, 45, seed);
        let dep = Deployment::new(platform, ModelKind::MobileNet, RuntimeKind::Tf115);
        let exec = Executor::default();
        let a = exec.run(&dep, &trace, Seed(seed)).unwrap();
        let b = exec.run(&dep, &trace, Seed(seed)).unwrap();
        prop_assert_eq!(a.records, b.records);
    }
}

/// Arbitrary retry policies plus a client-path fault mix, from a flat
/// vector of unit uniforms (the vendored proptest has no tuple
/// strategies).
fn retry_setup(u: &[f64]) -> (RetryPolicy, FaultPlan) {
    let policy = RetryPolicy {
        max_attempts: 1 + (u[0] * 3.99) as u32,
        attempt_timeout: SimDuration::from_secs_f64(0.5 + u[1] * 4.0),
        base_backoff: SimDuration::from_secs_f64(0.05 + u[2]),
        max_backoff: SimDuration::from_secs_f64(1.0 + u[3] * 7.0),
        jitter: u[4],
        budget: if u[5] < 0.3 {
            (u[5] * 400.0) as u64
        } else {
            u64::MAX
        },
    };
    let mut plan = FaultPlan::none();
    plan.packet_loss = u[6] * 0.3;
    plan.client_jitter_ms = u[7] * 40.0;
    plan.crash_mid_exec = u[8] * 0.2;
    (policy, plan)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Retry invariants for any policy × client-fault mix: every request
    /// still resolves exactly once, re-sends never exceed the per-
    /// invocation attempt cap or the fleet budget, and no success is
    /// reported past the client deadline.
    #[test]
    fn retries_respect_attempt_and_deadline_bounds(
        u in prop::collection::vec(0.0f64..1.0, 9..10),
        seed in 0u64..300,
    ) {
        let (policy, plan) = retry_setup(&u);
        let cfg = ExecutorConfig { retry: policy, ..ExecutorConfig::default() };
        let trace = small_trace(20.0, 45, seed);
        let dep = Deployment::new(
            PlatformKind::AwsServerless,
            ModelKind::MobileNet,
            RuntimeKind::Ort14,
        );
        let run = Executor::new(cfg)
            .with_faults(plan)
            .run(&dep, &trace, Seed(seed))
            .unwrap();
        prop_assert_eq!(run.records.len(), trace.len());
        let a = analyze(&run);
        prop_assert_eq!(resolved(&a), a.total);
        // Each invocation re-sends at most (max_attempts - 1) times, and
        // the fleet never exceeds its retry budget.
        let cap = u64::from(policy.max_attempts - 1) * trace.len() as u64;
        prop_assert!(run.retries <= cap, "{} re-sends > cap {cap}", run.retries);
        prop_assert!(run.retries <= policy.budget);
        // Total client wall-time never exceeds the per-request deadline.
        for r in run.successes() {
            prop_assert!(r.latency.unwrap() <= cfg.timeout, "success past deadline");
        }
    }

    /// Attaching a recorder never changes the simulation: the recorded
    /// run's records and analysis are identical to the unrecorded run's,
    /// for any retry policy and fault mix.
    #[test]
    fn recorded_run_is_byte_identical(
        u in prop::collection::vec(0.0f64..1.0, 9..10),
        seed in 0u64..200,
    ) {
        let (policy, plan) = retry_setup(&u);
        let cfg = ExecutorConfig { retry: policy, ..ExecutorConfig::default() };
        let trace = small_trace(15.0, 30, seed);
        let dep = Deployment::new(
            PlatformKind::AwsServerless,
            ModelKind::MobileNet,
            RuntimeKind::Tf115,
        );
        let exec = Executor::new(cfg).with_faults(plan);
        let plain = exec.run(&dep, &trace, Seed(seed)).unwrap();
        let mut rec = slsb_obs::JsonlRecorder::new(Vec::new());
        let recorded = exec.run_recorded(&dep, &trace, Seed(seed), &mut rec).unwrap();
        prop_assert_eq!(&plain.records, &recorded.records);
        prop_assert_eq!(plain.retries, recorded.retries);
        prop_assert_eq!(plain.client_faults, recorded.client_faults);
        prop_assert_eq!(plain.platform.faults, recorded.platform.faults);
        let (pa, ra) = (analyze(&plain), analyze(&recorded));
        prop_assert_eq!(
            serde_json::to_string(&pa).unwrap(),
            serde_json::to_string(&ra).unwrap()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The clairvoyant oracle is a true lower bound for **every** zoo
    /// member on **every** trace: no policy ever beats it on cold starts
    /// or cost, and the conservation invariants keep holding under
    /// non-default policies.
    #[test]
    fn oracle_bounds_every_zoo_member(
        name in prop::sample::select(PolicySet::ZOO.to_vec()),
        platform in any_platform(),
        rate in 5.0f64..50.0,
        seed in 0u64..500,
    ) {
        let policy = PolicySet::by_name(name).expect("zoo name resolves");
        let trace = small_trace(rate, 60, seed);
        let dep = Deployment::new(platform, ModelKind::MobileNet, RuntimeKind::Tf115)
            .with_policy(policy);
        let run = Executor::default().run(&dep, &trace, Seed(seed)).unwrap();
        let a = analyze(&run);
        prop_assert_eq!(resolved(&a), a.total);
        let b = oracle_bound(&run);
        prop_assert!(
            b.cold_starts <= run.platform.cold_started,
            "policy {} on {:?}: oracle cold {} > actual {}",
            name, platform, b.cold_starts, run.platform.cold_started
        );
        let actual_cost = run.platform.cost.total().as_dollars();
        prop_assert!(
            b.cost_dollars <= actual_cost + 1e-9,
            "policy {} on {:?}: oracle cost {} > actual {}",
            name, platform, b.cost_dollars, actual_cost
        );
        prop_assert!((0.0..=1.0).contains(&b.warm_ratio));
    }

    /// An infinite fixed keep-alive (with speculative scaling off)
    /// degenerates to first-touch-only cold starts on a strictly
    /// sequential trace: one cold pipeline, every later request warm. The
    /// platform default re-colds on every arrival because the idle gaps
    /// exceed its window — and the oracle's floor of one bounds both.
    #[test]
    fn infinite_keep_alive_is_first_touch_cold_only(
        requests in 3usize..9,
        seed in 0u64..200,
    ) {
        // Gaps of 1200 s dwarf both platform defaults (600 s AWS, 900 s
        // GCP) and leave zero execution overlap.
        let gap = 1200u64;
        let arrivals: Vec<SimTime> = (0..requests)
            .map(|k| SimTime::ZERO + SimDuration::from_secs(k as u64 * gap))
            .collect();
        let trace = WorkloadTrace::new(
            "sparse",
            SimDuration::from_secs(requests as u64 * gap),
            arrivals,
        );
        let forever = PolicySet {
            keep_alive: KeepAlivePolicy::Fixed { idle_s: 1e12 },
            scaling: ScalingPolicy::NoOverprovision,
            ..PolicySet::default()
        };
        let dep = Deployment::new(
            PlatformKind::AwsServerless,
            ModelKind::MobileNet,
            RuntimeKind::Ort14,
        );
        let warm_run = Executor::default()
            .run(&dep.with_policy(forever), &trace, Seed(seed))
            .unwrap();
        prop_assert_eq!(warm_run.platform.cold_started, 1, "one cold pipeline total");
        let mut by_arrival: Vec<_> = warm_run.records.iter().collect();
        by_arrival.sort_by_key(|r| r.arrival);
        prop_assert!(by_arrival[0].cold_start.is_some(), "first touch pays the cold start");
        for r in &by_arrival[1..] {
            prop_assert!(r.cold_start.is_none(), "request at {:?} re-cold", r.arrival);
        }

        // The platform default forgets the instance between arrivals.
        let cold_run = Executor::default().run(&dep, &trace, Seed(seed)).unwrap();
        prop_assert!(
            cold_run.platform.cold_started >= requests as u64,
            "default keep-alive must re-cold every sparse arrival: {} < {}",
            cold_run.platform.cold_started,
            requests
        );

        // Oracle floor: sequential execution needs exactly one instance.
        let b = oracle_bound(&warm_run);
        prop_assert_eq!(b.cold_starts, 1);
        prop_assert!(b.cold_starts <= cold_run.platform.cold_started);
    }
}
