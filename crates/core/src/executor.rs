//! The executor (paper Figure 3): an open-loop client fleet replaying a
//! workload trace against one simulated serving system.
//!
//! Requests fire at their trace timestamps regardless of outstanding
//! responses (the paper's clients replay a pre-generated workload), each
//! client draws its payload from the shared request pool, and a per-request
//! HTTP timeout converts slow responses into failures — the mechanism
//! behind every success-ratio number in the evaluation.

use crate::batching::{plan_invocations_into, BatchPolicy, InvocationPlan};
use crate::plan::{Deployment, PlanError};
use crate::runner::{parallel_map, Jobs};
use serde::{Deserialize, Serialize};
use slsb_model::ModelKind;
use slsb_obs::{EventKind, FaultKind, MemoryRecorder, Recorder, SpanOutcome, TraceEvent};
use slsb_platform::{
    ColdStartBreakdown, FailureReason, FaultInjector, FaultPlan, NetworkProfile, Outcome, Platform,
    PlatformEvent, PlatformReport, PlatformScheduler, RequestId, ServingRequest, ServingResponse,
};
use slsb_sim::alloc::{Region, RegionGuard};
use slsb_sim::{Engine, EventQueue, Kernel, ProfGuard, Seed, SimDuration, SimRng, SimTime, System};
use slsb_workload::{InputKind, RequestPool, WorkloadTrace};
use std::cell::RefCell;
use std::sync::Arc;

/// Client retry policy: how an invocation is re-issued after a failed or
/// timed-out attempt. The default (`max_attempts = 1`) disables retries
/// entirely, and the disabled policy is guaranteed to leave the executor's
/// legacy single-attempt path byte-identical.
///
/// An attempt fails when the platform answers with any failure, or when no
/// response reaches the client within [`RetryPolicy::attempt_timeout`] of
/// the attempt being sent. Between attempts the client backs off
/// exponentially — `base_backoff · 2^(attempt-1)` capped at `max_backoff` —
/// plus a deterministic jitter drawn from the run seed's `"retry-backoff"`
/// substream. Retrying never extends the overall client deadline: an
/// attempt that could only fire after `arrival + timeout` is not sent, and
/// a fleet-wide [`RetryPolicy::budget`] bounds total re-sends.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts per invocation, first send included (1 = disabled).
    #[serde(default = "default_one_attempt")]
    pub max_attempts: u32,
    /// Per-attempt client timeout, measured from the attempt's send.
    #[serde(default = "default_attempt_timeout")]
    pub attempt_timeout: SimDuration,
    /// Backoff before the second attempt; doubles each further attempt.
    #[serde(default = "default_base_backoff")]
    pub base_backoff: SimDuration,
    /// Upper bound on the (pre-jitter) backoff.
    #[serde(default = "default_max_backoff")]
    pub max_backoff: SimDuration,
    /// Jitter fraction: each backoff is stretched by up to this fraction,
    /// drawn deterministically from the run seed.
    #[serde(default = "default_retry_jitter")]
    pub jitter: f64,
    /// Fleet-wide budget of re-sends; once spent, failures resolve
    /// immediately. Guards against retry storms amplifying an outage.
    #[serde(default = "default_retry_budget")]
    pub budget: u64,
}

fn default_one_attempt() -> u32 {
    1
}

fn default_attempt_timeout() -> SimDuration {
    SimDuration::from_secs(10)
}

fn default_base_backoff() -> SimDuration {
    SimDuration::from_millis(500)
}

fn default_max_backoff() -> SimDuration {
    SimDuration::from_secs(8)
}

fn default_retry_jitter() -> f64 {
    0.25
}

fn default_retry_budget() -> u64 {
    u64::MAX
}

fn default_retry() -> RetryPolicy {
    RetryPolicy::disabled()
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::disabled()
    }
}

impl RetryPolicy {
    /// The no-retry policy: one attempt, legacy client behavior.
    pub fn disabled() -> Self {
        RetryPolicy {
            max_attempts: 1,
            attempt_timeout: default_attempt_timeout(),
            base_backoff: default_base_backoff(),
            max_backoff: default_max_backoff(),
            jitter: default_retry_jitter(),
            budget: default_retry_budget(),
        }
    }

    /// A sensible enabled policy: 3 attempts, 10 s per attempt, 0.5 s → 8 s
    /// exponential backoff with 25 % jitter, unbounded budget.
    pub fn standard() -> Self {
        RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::disabled()
        }
    }

    /// Whether the retry machinery is active at all.
    pub fn enabled(&self) -> bool {
        self.max_attempts > 1
    }

    /// Parses a compact `key=value` spec, e.g.
    /// `"attempts=3,timeout=10,base=0.5,max=8,jitter=0.25,budget=1000"`
    /// (durations in seconds). Unspecified keys keep the
    /// [`RetryPolicy::standard`] values; `"off"` yields the disabled policy.
    ///
    /// # Errors
    /// Returns a description of the first malformed key or value.
    pub fn parse_spec(spec: &str) -> Result<RetryPolicy, String> {
        if spec.trim() == "off" {
            return Ok(RetryPolicy::disabled());
        }
        let mut p = RetryPolicy::standard();
        for part in spec.split(',').filter(|s| !s.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("retry spec item '{part}' is not key=value"))?;
            let key = key.trim();
            let value = value.trim();
            fn num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, String> {
                value
                    .parse()
                    .map_err(|_| format!("retry spec '{key}' has a malformed value '{value}'"))
            }
            match key {
                "attempts" => p.max_attempts = num(key, value)?,
                "timeout" => p.attempt_timeout = SimDuration::from_secs_f64(num(key, value)?),
                "base" => p.base_backoff = SimDuration::from_secs_f64(num(key, value)?),
                "max" => p.max_backoff = SimDuration::from_secs_f64(num(key, value)?),
                "jitter" => p.jitter = num(key, value)?,
                "budget" => p.budget = num(key, value)?,
                other => return Err(format!("unknown retry spec key '{other}'")),
            }
        }
        if p.max_attempts == 0 {
            return Err("retry spec needs attempts >= 1".into());
        }
        if !(0.0..=10.0).contains(&p.jitter) {
            return Err(format!("retry jitter {} out of range [0, 10]", p.jitter));
        }
        Ok(p)
    }
}

/// Client-fleet configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutorConfig {
    /// Number of client nodes (the paper uses 8).
    pub clients: usize,
    /// Request-pool size (the paper uses 200).
    pub pool_size: usize,
    /// Client HTTP timeout; a response slower than this counts as failed.
    pub timeout: SimDuration,
    /// Client↔endpoint network path.
    pub network: NetworkProfile,
    /// Batching override: `None` derives [`BatchPolicy::Fixed`] from the
    /// deployment's `batch_size`; `Some` replaces it (used by the adaptive-
    /// batching extension).
    pub batch_override: Option<BatchPolicy>,
    /// Client retry policy (disabled by default).
    #[serde(default = "default_retry")]
    pub retry: RetryPolicy,
    /// Intra-run sharding worker budget. `0` (the default) keeps the
    /// legacy single-sequence replay. Any value ≥ 1 switches to sharded
    /// mode: the run splits into one cell per client (events never cross
    /// cells), cells execute on up to this many workers, and the merged
    /// result is byte-identical for *every* budget — `shards = 1` and
    /// `shards = 64` differ only in thread count. Sharded results differ
    /// from the legacy mode's by design (each cell owns a platform and
    /// draws its own RNG substreams).
    #[serde(default = "default_no_shards")]
    pub shards: usize,
}

fn default_no_shards() -> usize {
    0
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            clients: 8,
            pool_size: RequestPool::DEFAULT_SIZE,
            timeout: SimDuration::from_secs(60),
            network: NetworkProfile::DEFAULT,
            batch_override: None,
            retry: RetryPolicy::disabled(),
            shards: 0,
        }
    }
}

/// The resolved fate of one logical request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestRecord {
    /// Position in the workload trace.
    pub index: usize,
    /// Which client issued it.
    pub client: u32,
    /// Trace arrival instant (when the user "pressed send").
    pub arrival: SimTime,
    /// When the carrying invocation actually fired (later than `arrival`
    /// under batching).
    pub sent_at: SimTime,
    /// Payload bytes attributed to this request.
    pub payload_bytes: u64,
    /// Final outcome after applying the client timeout.
    pub outcome: Outcome,
    /// End-to-end latency from `arrival` to client receive (present for
    /// successes).
    pub latency: Option<SimDuration>,
    /// Cold-start breakdown when one was on this request's path.
    pub cold_start: Option<ColdStartBreakdown>,
    /// Server-side predict time of the carrying invocation.
    pub predict: SimDuration,
    /// Platform-side queueing of the carrying invocation.
    pub queued: SimDuration,
}

/// Everything one run produces.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The deployment that served the run.
    pub deployment: Deployment,
    /// Workload name (e.g. `"workload-120"`), shared with the trace's
    /// interned name rather than cloned per run.
    pub workload: Arc<str>,
    /// Nominal workload duration.
    pub duration: SimDuration,
    /// One record per logical request, trace order.
    pub records: Vec<RequestRecord>,
    /// Platform-side accounting (cost, instances, cold starts).
    pub platform: PlatformReport,
    /// Discrete events the simulation kernel delivered during the run —
    /// cross-checkable against the trace's closing `run_closed` event.
    pub engine_events: u64,
    /// Client-path faults injected (request packets lost in flight).
    pub client_faults: u64,
    /// Re-sends the client fleet issued beyond each invocation's first
    /// attempt (0 whenever the retry policy is disabled).
    pub retries: u64,
}

impl RunResult {
    /// Requests that succeeded.
    pub fn successes(&self) -> impl Iterator<Item = &RequestRecord> + '_ {
        self.records.iter().filter(|r| r.outcome.is_success())
    }

    /// Success ratio over all requests.
    pub fn success_ratio(&self) -> f64 {
        if self.records.is_empty() {
            return 1.0;
        }
        self.successes().count() as f64 / self.records.len() as f64
    }

    /// Fraction of *all* requests answered successfully within `slo` —
    /// failures count against attainment, unlike percentile-of-successes
    /// metrics.
    pub fn slo_attainment(&self, slo: SimDuration) -> f64 {
        if self.records.is_empty() {
            return 1.0;
        }
        let within = self
            .successes()
            .filter(|r| r.latency.expect("success has latency") <= slo)
            .count();
        within as f64 / self.records.len() as f64
    }
}

/// Runs deployments against workload traces.
#[derive(Debug, Clone, Default)]
pub struct Executor {
    cfg: ExecutorConfig,
    faults: FaultPlan,
    kernel: Kernel,
}

enum ExecEvent {
    /// An invocation's payload reaches the platform. In retry mode the id
    /// encodes the attempt: `id = (attempt - 1) · n_invocations + inv`.
    Deliver(usize),
    Platform(PlatformEvent),
    /// A platform response reaches the issuing client (retry mode only);
    /// carries an index into the response log.
    ClientRecv(usize),
    /// An attempt's per-attempt timeout expired (retry mode only); carries
    /// the attempt-encoded invocation id.
    AttemptTimeout(usize),
}

/// The client-side fate of one invocation, fixed the moment the issuing
/// client stops waiting (accepts a response, exhausts retries, or hits a
/// deadline).
#[derive(Debug, Clone, Copy)]
struct Resolution {
    outcome: Outcome,
    /// When the client received the resolving response (successes).
    received_at: SimTime,
    predict: SimDuration,
    queued: SimDuration,
    cold_start: Option<ColdStartBreakdown>,
}

/// Per-request span scratch: `(receive, net_in, exec, net_out)`.
type SpanParts = (SimTime, SimDuration, SimDuration, SimDuration);

/// Memoized request pool: pools are pure functions of `(kind, size,
/// samples)`, so a run can reuse the previous run's pool whenever the key
/// matches instead of regenerating (and reallocating) it.
struct PoolMemo {
    kind: InputKind,
    size: usize,
    samples: u32,
    pool: RequestPool,
}

/// Run-lifetime buffers, recycled across runs on the same thread.
///
/// Everything the executor used to allocate per run — per-client arrival
/// lists, the invocation plan, the per-invocation tables, retry state,
/// the response log, span scratch — lives here. Buffers are `clear()`ed
/// (keeping capacity) instead of dropped, so on a thread replaying many
/// traces (replication, benches) the steady-state request path performs
/// no per-request heap allocation. One arena per thread via [`ARENA`];
/// worker threads in a sharded or replicated run each get their own.
#[derive(Default)]
struct RunArena {
    client_rngs: Vec<SimRng>,
    per_client: Vec<Vec<(usize, SimTime)>>,
    plan: InvocationPlan,
    payload_per_invocation: Vec<u64>,
    inferences_per_invocation: Vec<u32>,
    net_in: Vec<SimDuration>,
    deliver_at: Vec<SimTime>,
    deadline: Vec<SimTime>,
    attempt: Vec<u32>,
    resolution: Vec<Option<Resolution>>,
    inv_of: Vec<u64>,
    spans: Vec<Option<SpanParts>>,
    responses: Vec<(usize, ServingResponse)>,
    resp_scratch: Vec<ServingResponse>,
    buffer: Vec<(SimDuration, PlatformEvent)>,
    pool: Option<PoolMemo>,
}

impl RunArena {
    /// Empties every buffer (keeping capacity) ahead of a run. The pool
    /// memo survives: pools are deterministic in their key, so reuse can
    /// never change results.
    fn begin(&mut self) {
        self.client_rngs.clear();
        for c in &mut self.per_client {
            c.clear();
        }
        self.plan.clear();
        self.payload_per_invocation.clear();
        self.inferences_per_invocation.clear();
        self.net_in.clear();
        self.deliver_at.clear();
        self.deadline.clear();
        self.attempt.clear();
        self.resolution.clear();
        self.inv_of.clear();
        self.spans.clear();
        self.responses.clear();
        self.resp_scratch.clear();
        self.buffer.clear();
    }
}

thread_local! {
    /// The calling thread's run arena. Runs borrow it for their whole
    /// duration; the executor never re-enters itself, so the `RefCell`
    /// borrow cannot conflict.
    static ARENA: RefCell<RunArena> = RefCell::new(RunArena::default());
}

/// Returns the memoized pool for the key, regenerating it on a miss.
fn pooled(memo: &mut Option<PoolMemo>, kind: InputKind, size: usize, samples: u32) -> &RequestPool {
    let hit = matches!(
        memo,
        Some(m) if m.kind == kind && m.size == size && m.samples == samples
    );
    if !hit {
        *memo = Some(PoolMemo {
            kind,
            size,
            samples,
            pool: RequestPool::generate(kind, size).with_samples_per_request(samples),
        });
    }
    &memo.as_ref().expect("memo just filled").pool
}

/// Which requests one [`Executor::run_cell`] replay carries.
enum CellRequests<'a> {
    /// The whole trace, assigned to clients round-robin (the legacy,
    /// unsharded path — byte-identical to the pre-sharding executor).
    RoundRobin {
        /// Sorted trace arrivals; record index = position.
        arrivals: &'a [SimTime],
    },
    /// One shard cell: a single client's requests, each tagged with its
    /// global trace index.
    Client {
        /// The owning client id.
        client: u32,
        /// `(global trace index, arrival)`, sorted by arrival.
        arrivals: &'a [(usize, SimTime)],
    },
}

/// What one cell (or the whole legacy run) produces, before merging.
struct CellOutput {
    records: Vec<RequestRecord>,
    report: PlatformReport,
    engine_events: u64,
    client_faults: u64,
    retries: u64,
}

struct ExecSystem<'r> {
    platform: Platform,
    /// The run's invocations (send instants + member record indices).
    plan: &'r InvocationPlan,
    payload_per_invocation: &'r [u64],
    inferences_per_invocation: &'r [u32],
    /// Response log: invocation idx (attempt-encoded in retry mode) →
    /// platform response.
    responses: &'r mut Vec<(usize, ServingResponse)>,
    /// Drain scratch, reused every drain so collecting responses does not
    /// allocate.
    resp_scratch: &'r mut Vec<ServingResponse>,
    buffer: &'r mut Vec<(SimDuration, PlatformEvent)>,
    /// Trace sink threaded into every platform scheduler, if recording.
    rec: Option<&'r mut dyn Recorder>,
    /// Client-path fault injector (packet loss, request-path jitter).
    client_faults: FaultInjector,
    /// Retry machinery; everything below is inert when it is disabled.
    retry: RetryPolicy,
    /// Invocation count, for decoding attempt-encoded request ids.
    n_inv: usize,
    /// Network time on each invocation's request path (pre-jitter).
    net_in: &'r [SimDuration],
    /// Response-path network time.
    response_net: SimDuration,
    /// Per-invocation overall client deadline (`send_at + timeout`).
    deadline: &'r [SimTime],
    /// Current attempt per invocation, 1-based (retry mode only).
    attempt: &'r mut [u32],
    /// Client-side fate per invocation, once fixed (retry mode only).
    resolution: &'r mut [Option<Resolution>],
    /// Re-sends issued so far, bounded by the policy budget.
    retries_used: u64,
    /// Deterministic jitter source for retry backoffs.
    backoff_rng: SimRng,
}

impl ExecSystem<'_> {
    fn with_platform<R>(
        &mut self,
        queue: &mut EventQueue<ExecEvent>,
        f: impl FnOnce(&mut Platform, &mut PlatformScheduler<'_>) -> R,
    ) -> R {
        let r = {
            let _region = RegionGuard::enter(Region::Platform);
            let _p = ProfGuard::enter(self.platform.prof_label());
            let rec = self.rec.as_deref_mut().map(|r| r as &mut dyn Recorder);
            let mut sched = PlatformScheduler::with_recorder(queue.now(), self.buffer, rec);
            f(&mut self.platform, &mut sched)
        };
        if !self.buffer.is_empty() {
            queue.schedule_many_after(
                self.buffer
                    .drain(..)
                    .map(|(d, e)| (d, ExecEvent::Platform(e))),
            );
        }
        r
    }

    fn drain(&mut self, queue: &mut EventQueue<ExecEvent>) {
        // Most events complete nothing; probe before paying for scope
        // guards and the buffer hand-off.
        if !self.platform.has_responses() {
            return;
        }
        {
            let _region = RegionGuard::enter(Region::Platform);
            let _p = ProfGuard::enter(self.platform.prof_label());
            self.platform.drain_responses_into(self.resp_scratch);
        }
        if self.resp_scratch.is_empty() {
            return;
        }
        let retrying = self.retry.enabled();
        for resp in self.resp_scratch.drain(..) {
            let receive_at = resp.completed_at + self.response_net;
            let idx = self.responses.len();
            self.responses.push((resp.id.0 as usize, resp));
            if retrying {
                queue.schedule_at(receive_at, ExecEvent::ClientRecv(idx));
            }
        }
    }

    /// Post-run drain: collects responses without arming client events
    /// (the engine has stopped; late receipts can no longer matter).
    fn drain_final(&mut self) {
        self.platform.drain_responses_into(self.resp_scratch);
        for resp in self.resp_scratch.drain(..) {
            self.responses.push((resp.id.0 as usize, resp));
        }
    }

    fn decode(&self, id: usize) -> (usize, u32) {
        let n = self.n_inv.max(1);
        (id % n, (id / n) as u32 + 1)
    }

    /// Whether an event about `inv`'s attempt `attempt` is stale: the
    /// invocation already resolved, or the client has moved on to a later
    /// attempt (late responses from abandoned attempts are dropped).
    fn stale(&self, inv: usize, attempt: u32) -> bool {
        self.resolution[inv].is_some() || self.attempt[inv] != attempt
    }

    fn emit_fault(&mut self, at: SimTime, kind: FaultKind) {
        if let Some(r) = self.rec.as_deref_mut() {
            if r.enabled() {
                r.record(&TraceEvent {
                    at,
                    kind: EventKind::Fault {
                        component: None,
                        kind,
                    },
                });
            }
        }
    }

    /// One attempt failed (platform failure or per-attempt timeout):
    /// schedule the next attempt if policy, budget, and the overall
    /// deadline allow, otherwise fix the invocation's failure.
    fn attempt_failed(
        &mut self,
        queue: &mut EventQueue<ExecEvent>,
        inv: usize,
        reason: FailureReason,
    ) {
        let attempt = self.attempt[inv];
        let now = queue.now();
        if attempt < self.retry.max_attempts && self.retries_used < self.retry.budget {
            let base = (self.retry.base_backoff.as_secs_f64()
                * f64::from(1u32 << (attempt - 1).min(20)))
            .min(self.retry.max_backoff.as_secs_f64());
            let jitter = if self.retry.jitter > 0.0 {
                base * self.retry.jitter * self.backoff_rng.uniform()
            } else {
                0.0
            };
            let send_at = now + SimDuration::from_secs_f64(base + jitter);
            if send_at <= self.deadline[inv] {
                self.retries_used += 1;
                self.attempt[inv] = attempt + 1;
                let id = attempt as usize * self.n_inv + inv;
                let deliver_at = send_at + self.net_in[inv] + self.client_faults.client_jitter();
                queue.schedule_at(deliver_at, ExecEvent::Deliver(id));
                queue.schedule_at(
                    send_at + self.retry.attempt_timeout,
                    ExecEvent::AttemptTimeout(id),
                );
                return;
            }
        }
        // No further attempt: exhausted attempts surface as their own
        // failure class; budget or deadline exhaustion keeps the last
        // attempt's own reason.
        let final_reason = if attempt >= self.retry.max_attempts {
            FailureReason::RetriesExhausted
        } else {
            reason
        };
        self.resolution[inv] = Some(Resolution {
            outcome: Outcome::Failure(final_reason),
            received_at: now,
            predict: SimDuration::ZERO,
            queued: SimDuration::ZERO,
            cold_start: None,
        });
    }
}

impl System for ExecSystem<'_> {
    type Ev = ExecEvent;
    fn handle(&mut self, queue: &mut EventQueue<ExecEvent>, _at: SimTime, ev: ExecEvent) {
        let sys = self;
        match ev {
            ExecEvent::Deliver(id) => {
                let (inv, attempt) = sys.decode(id);
                if sys.retry.enabled() && sys.stale(inv, attempt) {
                    return;
                }
                if sys.client_faults.drop_packet() {
                    // The platform never sees the request; the attempt
                    // timeout (retry mode) or the client timeout (legacy
                    // mode) is what the client eventually observes.
                    sys.emit_fault(queue.now(), FaultKind::PacketLoss);
                    return;
                }
                let req = ServingRequest {
                    id: RequestId(id as u64),
                    arrival: queue.now(),
                    payload_bytes: sys.payload_per_invocation[inv],
                    inferences: sys.inferences_per_invocation[inv],
                };
                sys.with_platform(queue, |p, s| p.submit(s, req));
            }
            ExecEvent::Platform(e) => {
                sys.with_platform(queue, |p, s| p.handle(s, e));
            }
            ExecEvent::ClientRecv(idx) => {
                let (id, resp) = sys.responses[idx];
                let (inv, attempt) = sys.decode(id);
                if sys.stale(inv, attempt) {
                    return;
                }
                match resp.outcome {
                    Outcome::Success => {
                        sys.resolution[inv] = Some(Resolution {
                            outcome: Outcome::Success,
                            received_at: queue.now(),
                            predict: resp.predict,
                            queued: resp.queued,
                            cold_start: resp.cold_start,
                        });
                    }
                    Outcome::Failure(reason) => {
                        sys.attempt_failed(queue, inv, reason);
                    }
                }
            }
            ExecEvent::AttemptTimeout(id) => {
                let (inv, attempt) = sys.decode(id);
                if sys.stale(inv, attempt) {
                    return;
                }
                sys.attempt_failed(queue, inv, FailureReason::ClientTimeout);
            }
        }
        sys.drain(queue);
    }
}

impl Executor {
    /// An executor with the given configuration.
    pub fn new(cfg: ExecutorConfig) -> Self {
        Executor {
            cfg,
            faults: FaultPlan::none(),
            kernel: Kernel::default(),
        }
    }

    /// Selects the event-queue kernel for every run this executor performs.
    /// Both kernels deliver identical results; the non-default [`Kernel::Heap`]
    /// exists so `slsb bench` can measure the timer wheel against the
    /// original binary-heap scheduler on the same code path.
    #[must_use]
    pub fn with_kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// The configuration.
    pub fn config(&self) -> &ExecutorConfig {
        &self.cfg
    }

    /// Installs a fault plan on every run this executor performs. The plan
    /// is threaded into the platform (crashes, storage faults, throttling,
    /// outages) and into the client path (jitter, packet loss); an empty
    /// plan is a byte-identical no-op.
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// The installed fault plan.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// The request pool an executor builds for `model`.
    pub fn pool_for(&self, model: ModelKind, samples_per_request: u32) -> RequestPool {
        let kind = if model.profile().image_input {
            InputKind::Image
        } else {
            InputKind::Text
        };
        RequestPool::generate(kind, self.cfg.pool_size)
            .with_samples_per_request(samples_per_request)
    }

    /// Enables intra-run sharding with the given worker budget; see
    /// [`ExecutorConfig::shards`].
    #[must_use]
    pub fn with_shards(mut self, workers: usize) -> Self {
        self.cfg.shards = workers.max(1);
        self
    }

    /// The sharding worker budget, if sharded mode is on.
    pub fn shards(&self) -> Option<usize> {
        (self.cfg.shards > 0).then_some(self.cfg.shards)
    }

    /// Replays `trace` against `deployment`, returning per-request records
    /// and the platform report.
    ///
    /// # Errors
    /// Fails when the deployment is invalid.
    pub fn run(
        &self,
        deployment: &Deployment,
        trace: &WorkloadTrace,
        seed: Seed,
    ) -> Result<RunResult, PlanError> {
        if self.shards().is_some() {
            return self.run_sharded(deployment, trace, seed, None);
        }
        let platform = deployment.build(seed)?;
        Ok(self.run_built(deployment, platform, trace, seed))
    }

    /// Like [`Executor::run`] but streams every trace event — platform
    /// lifecycle, per-request spans, and the closing summary — into `rec`.
    /// Recording is write-only: the returned [`RunResult`] is identical to
    /// the one an unrecorded run produces.
    ///
    /// # Errors
    /// Fails when the deployment is invalid.
    pub fn run_recorded(
        &self,
        deployment: &Deployment,
        trace: &WorkloadTrace,
        seed: Seed,
        rec: &mut dyn Recorder,
    ) -> Result<RunResult, PlanError> {
        if self.shards().is_some() {
            return self.run_sharded(deployment, trace, seed, Some(rec));
        }
        let platform = deployment.build(seed)?;
        Ok(self.run_built_recorded(deployment, platform, trace, seed, Some(rec)))
    }

    /// Replays `trace` against an already-built platform. This is the
    /// ablation entry point: callers may hand-construct a platform whose
    /// knobs the [`Deployment`] surface does not expose (e.g. a custom
    /// over-provisioning factor); `deployment` is then only descriptive
    /// metadata for the records. Always the legacy single-sequence path:
    /// a single pre-built platform cannot be split into shard cells, so
    /// [`ExecutorConfig::shards`] is ignored here.
    pub fn run_built(
        &self,
        deployment: &Deployment,
        platform: Platform,
        trace: &WorkloadTrace,
        seed: Seed,
    ) -> RunResult {
        self.run_built_recorded(deployment, platform, trace, seed, None)
    }

    /// [`Executor::run_built`] with an optional trace recorder attached.
    // The `as_deref_mut` below is not needless: `&mut dyn Recorder` is
    // invariant, so the trait object must be re-created via a reborrow for
    // its lifetime to shrink to the closure-local arena borrow.
    #[allow(clippy::needless_option_as_deref)]
    pub fn run_built_recorded(
        &self,
        deployment: &Deployment,
        platform: Platform,
        trace: &WorkloadTrace,
        seed: Seed,
        rec: Option<&mut dyn Recorder>,
    ) -> RunResult {
        let mut rec = rec;
        let out = ARENA.with(|arena| {
            self.run_cell(
                deployment,
                platform,
                trace.duration(),
                CellRequests::RoundRobin {
                    arrivals: trace.arrivals(),
                },
                seed,
                rec.as_deref_mut().map(|r| r as &mut dyn Recorder),
                &mut arena.borrow_mut(),
            )
        });
        RunResult {
            deployment: *deployment,
            workload: trace.shared_name(),
            duration: trace.duration(),
            records: out.records,
            platform: out.report,
            engine_events: out.engine_events,
            client_faults: out.client_faults,
            retries: out.retries,
        }
    }

    /// Sharded replay: the run splits into one cell per client — no event,
    /// RNG draw, or platform state crosses a cell boundary — and the cells
    /// execute on up to [`ExecutorConfig::shards`] workers. Each cell owns
    /// a platform built from `seed`'s `("shard", client)` substream and
    /// replays exactly one client's requests; outputs merge in canonical
    /// cell order, so the result is byte-identical for every worker
    /// budget.
    fn run_sharded(
        &self,
        deployment: &Deployment,
        trace: &WorkloadTrace,
        seed: Seed,
        rec: Option<&mut dyn Recorder>,
    ) -> Result<RunResult, PlanError> {
        let workers = self.cfg.shards.max(1);
        let clients = self.cfg.clients.max(1);
        let tracing = rec.as_deref().is_some_and(|r| r.enabled());
        // Validate the deployment once up front so every cell below can
        // assume it builds (build is deterministic in its seed).
        deployment.build(seed.substream_indexed("shard", 0))?;

        // Canonical cells: requests go to clients round-robin exactly as in
        // the legacy splitter, and each client becomes one cell. The
        // decomposition depends only on the trace and the client count,
        // never on the worker budget.
        let n = trace.arrivals().len();
        let mut cells: Vec<Vec<(usize, SimTime)>> = vec![Vec::new(); clients];
        for (i, &arrival) in trace.arrivals().iter().enumerate() {
            cells[i % clients].push((i, arrival));
        }

        let ids: Vec<u32> = (0..clients as u32).collect();
        let mut outs: Vec<(CellOutput, Option<MemoryRecorder>)> =
            parallel_map(Jobs::new(workers), &ids, |_, &c| {
                let cell_seed = seed.substream_indexed("shard", u64::from(c));
                let platform = deployment
                    .build(cell_seed)
                    .expect("deployment validated above");
                let mut cell_rec = if tracing {
                    Some(MemoryRecorder::new())
                } else {
                    None
                };
                let out = ARENA.with(|arena| {
                    self.run_cell(
                        deployment,
                        platform,
                        trace.duration(),
                        CellRequests::Client {
                            client: c,
                            arrivals: &cells[c as usize],
                        },
                        cell_seed,
                        cell_rec.as_mut().map(|r| r as &mut dyn Recorder),
                        &mut arena.borrow_mut(),
                    )
                });
                (out, cell_rec)
            });

        // Merge in canonical cell order. Cell c's k-th record is global
        // request c + k·clients, so records interleave back by index.
        let mut records: Vec<RequestRecord> = Vec::with_capacity(n);
        for i in 0..n {
            records.push(outs[i % clients].0.records[i / clients]);
        }
        let reports: Vec<PlatformReport> = outs.iter().map(|(o, _)| o.report.clone()).collect();
        let engine_events: u64 = outs.iter().map(|(o, _)| o.engine_events).sum();
        let client_faults: u64 = outs.iter().map(|(o, _)| o.client_faults).sum();
        let retries: u64 = outs.iter().map(|(o, _)| o.retries).sum();

        if let Some(r) = rec {
            if r.enabled() {
                // Replay each cell's buffered trace in cell order, dropping
                // the per-cell closing summaries in favour of one merged
                // RunClosed. Events are time-ordered within a cell, not
                // globally; `slsb trace` views sort where it matters.
                let _region = RegionGuard::enter(Region::Obs);
                let _p = ProfGuard::enter("executor/merge");
                for (_, cell_rec) in &mut outs {
                    let Some(m) = cell_rec.take() else { continue };
                    for ev in m.into_events() {
                        if matches!(ev.kind, EventKind::RunClosed { .. }) {
                            continue;
                        }
                        r.record(&ev);
                    }
                }
                let horizon = SimTime::ZERO
                    + trace.duration()
                    + self.cfg.timeout
                    + SimDuration::from_secs(30);
                r.record(&TraceEvent {
                    at: horizon,
                    kind: EventKind::RunClosed {
                        engine_events,
                        requests: n as u64,
                    },
                });
            }
        }

        Ok(RunResult {
            deployment: *deployment,
            workload: trace.shared_name(),
            duration: trace.duration(),
            records,
            platform: PlatformReport::merge_shards(&reports),
            engine_events,
            client_faults,
            retries,
        })
    }

    /// Replays one request set against one platform: the whole trace in
    /// legacy mode, or a single client's shard cell. All run-lifetime
    /// state lives in `arena`, recycled across calls on the same thread.
    #[allow(clippy::too_many_lines, clippy::too_many_arguments)]
    fn run_cell<'a>(
        &self,
        deployment: &Deployment,
        platform: Platform,
        duration: SimDuration,
        requests: CellRequests<'_>,
        seed: Seed,
        rec: Option<&'a mut dyn Recorder>,
        arena: &'a mut RunArena,
    ) -> CellOutput {
        // Root-attached on purpose: a cell runs inline under `--jobs 1`
        // but on a pool worker otherwise, and the profile tree must not
        // depend on which thread hosts it.
        let _cell = ProfGuard::enter_root("executor/cell");
        let tracing = rec.as_deref().is_some_and(|r| r.enabled());
        let retrying = self.cfg.retry.enabled();
        let mut platform = platform;
        // An empty plan installs an injector that never draws, so this is
        // unconditional without costing byte-identity.
        platform.set_faults(&self.faults, seed);
        let n = match &requests {
            CellRequests::RoundRobin { arrivals } => arrivals.len(),
            CellRequests::Client { arrivals, .. } => arrivals.len(),
        };
        platform.reserve(n);
        let clients = match &requests {
            CellRequests::RoundRobin { .. } => self.cfg.clients.max(1),
            CellRequests::Client { .. } => 1,
        };

        let arrivals_guard = ProfGuard::enter("executor/arrivals");
        arena.begin();
        if arena.per_client.len() < clients {
            arena.per_client.resize_with(clients, Vec::new);
        }
        let RunArena {
            client_rngs,
            per_client,
            plan,
            payload_per_invocation,
            inferences_per_invocation,
            net_in,
            deliver_at,
            deadline,
            attempt,
            resolution,
            inv_of,
            spans,
            responses,
            resp_scratch,
            buffer,
            pool: pool_memo,
        } = arena;

        let input = if deployment.model.profile().image_input {
            InputKind::Image
        } else {
            InputKind::Text
        };
        let pool = pooled(
            pool_memo,
            input,
            self.cfg.pool_size,
            deployment.samples_per_request,
        );

        // Assign requests to clients round-robin (the paper's splitter) and
        // draw payloads from the pool. A shard cell has exactly one client
        // slot; its RNG stream is still keyed by the client's id.
        match &requests {
            CellRequests::RoundRobin { .. } => client_rngs.extend(
                (0..clients).map(|c| seed.substream_indexed("client", c as u64).rng()),
            ),
            CellRequests::Client { client, .. } => {
                client_rngs.push(seed.substream_indexed("client", u64::from(*client)).rng());
            }
        }
        let mut records: Vec<RequestRecord> = Vec::with_capacity(n);
        let blank = |index: usize, client: u32, arrival: SimTime, payload_bytes: u64| {
            RequestRecord {
                index,
                client,
                arrival,
                sent_at: arrival,
                payload_bytes,
                outcome: Outcome::Failure(FailureReason::ClientTimeout),
                latency: None,
                cold_start: None,
                predict: SimDuration::ZERO,
                queued: SimDuration::ZERO,
            }
        };
        {
            let _rng = ProfGuard::enter("rng");
            match &requests {
                CellRequests::RoundRobin { arrivals } => {
                    for (i, &arrival) in arrivals.iter().enumerate() {
                        let slot = i % clients;
                        let payload = pool.pick(&mut client_rngs[slot]);
                        records.push(blank(i, slot as u32, arrival, payload.size_bytes));
                        per_client[slot].push((i, arrival));
                    }
                }
                CellRequests::Client { client, arrivals } => {
                    for (local, &(global, arrival)) in arrivals.iter().enumerate() {
                        let payload = pool.pick(&mut client_rngs[0]);
                        records.push(blank(global, *client, arrival, payload.size_bytes));
                        // Plan members index the *local* record table.
                        per_client[0].push((local, arrival));
                    }
                }
            }
        }

        // Group each client's requests into invocations.
        let policy = self
            .cfg
            .batch_override
            .unwrap_or(if deployment.batch_size > 1 {
                BatchPolicy::Fixed(deployment.batch_size)
            } else {
                BatchPolicy::None
            });
        for arrivals in per_client.iter().take(clients) {
            plan_invocations_into(arrivals, policy, plan);
        }
        let n_inv = plan.len();
        // Record when each request's invocation fired, and (when tracing)
        // which invocation carries each record — the join key to the
        // platform's per-invocation trace events.
        if tracing {
            inv_of.resize(n, 0);
        }
        for inv_idx in 0..n_inv {
            let send_at = plan.send_at(inv_idx);
            for &m in plan.members(inv_idx) {
                records[m as usize].sent_at = send_at;
                if tracing {
                    inv_of[m as usize] = inv_idx as u64;
                }
            }
        }
        payload_per_invocation.extend((0..n_inv).map(|i| {
            plan.members(i)
                .iter()
                .map(|&m| records[m as usize].payload_bytes)
                .sum::<u64>()
        }));
        inferences_per_invocation
            .extend((0..n_inv).map(|i| plan.members(i).len() as u32 * deployment.inference_repeats));

        // First-attempt client-path jitter is drawn here in invocation
        // order; retry-time draws then follow in event order — both
        // deterministic.
        let mut client_faults =
            FaultInjector::new(self.faults.clone(), seed.substream("client-faults"));
        net_in.extend(
            payload_per_invocation
                .iter()
                .map(|&bytes| self.cfg.network.transfer_time(bytes)),
        );
        deliver_at.extend(
            (0..n_inv).map(|i| plan.send_at(i) + net_in[i] + client_faults.client_jitter()),
        );
        if retrying {
            deadline.extend((0..n_inv).map(|i| plan.send_at(i) + self.cfg.timeout));
            attempt.resize(n_inv, 1);
            resolution.resize(n_inv, None);
        }
        // Deliveries (and in retry mode, their timeouts) are scheduled up
        // front, so the queue's high-water mark is about one entry per
        // invocation plus in-flight platform events.
        drop(arrivals_guard);
        let engine_guard = ProfGuard::enter("executor/engine");
        let queue_cap = if retrying { 2 * n + 64 } else { n + 64 };
        let queue = EventQueue::with_kernel_and_capacity(self.kernel, queue_cap);
        responses.reserve(n_inv);
        let mut engine = Engine::with_queue(
            ExecSystem {
                platform,
                plan: &*plan,
                payload_per_invocation: payload_per_invocation.as_slice(),
                inferences_per_invocation: inferences_per_invocation.as_slice(),
                responses,
                resp_scratch,
                buffer,
                rec,
                client_faults,
                retry: self.cfg.retry,
                n_inv,
                net_in: net_in.as_slice(),
                response_net: self.cfg.network.response_time(),
                deadline: deadline.as_slice(),
                attempt: attempt.as_mut_slice(),
                resolution: resolution.as_mut_slice(),
                retries_used: 0,
                backoff_rng: seed.substream("retry-backoff").rng(),
            },
            queue,
        );

        let horizon = SimTime::ZERO + duration + self.cfg.timeout + SimDuration::from_secs(30);

        // Platform startup at t = 0.
        {
            let sys = &mut engine.system;
            {
                let _region = RegionGuard::enter(Region::Platform);
                let _p = ProfGuard::enter(sys.platform.prof_label());
                let startup_rec = sys.rec.as_deref_mut().map(|r| r as &mut dyn Recorder);
                let mut sched =
                    PlatformScheduler::with_recorder(SimTime::ZERO, sys.buffer, startup_rec);
                sys.platform.start(&mut sched, SimTime::ZERO + duration);
            }
            engine.queue.schedule_many_after(
                sys.buffer
                    .drain(..)
                    .map(|(d, e)| (d, ExecEvent::Platform(e))),
            );
        }

        // Invocation deliveries: network transfer happens on the way in.
        // In retry mode each first attempt also arms its attempt timeout.
        // One batched kernel call replaces per-event dispatch; iteration
        // order matches the legacy per-event loop, so sequence numbers —
        // and therefore same-instant FIFO ties — are unchanged.
        if retrying {
            let attempt_timeout = self.cfg.retry.attempt_timeout;
            engine.queue.schedule_many((0..n_inv).flat_map(|idx| {
                [
                    (deliver_at[idx], ExecEvent::Deliver(idx)),
                    (
                        plan.send_at(idx) + attempt_timeout,
                        ExecEvent::AttemptTimeout(idx),
                    ),
                ]
            }));
        } else {
            engine.queue.schedule_many(
                deliver_at
                    .iter()
                    .enumerate()
                    .map(|(idx, &at)| (at, ExecEvent::Deliver(idx))),
            );
        }

        engine.run_until(horizon);
        engine.queue.advance_to(horizon);
        // Rented capacity is torn down shortly after the workload ends (the
        // paper estimates hourly-billed systems "based on the actual
        // execution time"); the extra drain window exists only so late
        // responses can reach the clients.
        let teardown = SimTime::ZERO + duration + SimDuration::from_secs(30);
        engine.system.platform.finalize(teardown.min(horizon));
        engine.system.drain_final();
        drop(engine_guard);
        let _resolve = ProfGuard::enter("executor/resolve");

        // Resolve records from responses.
        let engine_events = engine.events_processed();
        let response_net = self.cfg.network.response_time();
        let mut sys = engine.system;
        let recorder = sys.rec.take();
        // Per-record span data, populated while resolving; only sized when
        // a recorder wants it.
        if tracing {
            spans.resize(n, None);
        }
        if retrying {
            // Retry mode resolved invocations online, at client-receive
            // time; apply each invocation's fixed fate to its members.
            // Invocations with no resolution (still waiting at the horizon)
            // keep the default client-timeout outcome.
            for inv_idx in 0..n_inv {
                let Some(res) = sys.resolution[inv_idx] else {
                    continue;
                };
                for &m in sys.plan.members(inv_idx) {
                    let rec = &mut records[m as usize];
                    rec.predict = res.predict;
                    rec.queued = res.queued;
                    rec.cold_start = res.cold_start;
                    match res.outcome {
                        Outcome::Failure(reason) => {
                            rec.outcome = Outcome::Failure(reason);
                        }
                        Outcome::Success => {
                            let e2e = res.received_at.saturating_duration_since(rec.arrival);
                            if e2e > self.cfg.timeout {
                                rec.outcome = Outcome::Failure(FailureReason::ClientTimeout);
                            } else {
                                rec.outcome = Outcome::Success;
                                rec.latency = Some(e2e);
                            }
                        }
                    }
                    if tracing {
                        // The winning attempt's exec time is approximated by
                        // its predict time (the retransmission history makes
                        // the phase algebra of the single-shot path moot).
                        spans[m as usize] = Some((
                            res.received_at,
                            sys.net_in[inv_idx],
                            res.predict,
                            response_net,
                        ));
                    }
                }
            }
        } else {
            for (inv_idx, resp) in sys.responses.iter() {
                let receive = resp.completed_at + response_net;
                let net_in = sys.net_in[*inv_idx];
                let delivered = sys.plan.send_at(*inv_idx) + net_in;
                for &m in sys.plan.members(*inv_idx) {
                    let rec = &mut records[m as usize];
                    let e2e = receive.saturating_duration_since(rec.arrival);
                    rec.predict = resp.predict;
                    rec.queued = resp.queued;
                    rec.cold_start = resp.cold_start;
                    match resp.outcome {
                        Outcome::Failure(reason) => {
                            rec.outcome = Outcome::Failure(reason);
                        }
                        Outcome::Success if e2e > self.cfg.timeout => {
                            rec.outcome = Outcome::Failure(FailureReason::ClientTimeout);
                        }
                        Outcome::Success => {
                            rec.outcome = Outcome::Success;
                            rec.latency = Some(e2e);
                        }
                    }
                    if tracing {
                        // Exec time is what remains of the platform's span after
                        // its own queueing; exact for successes.
                        let exec = resp
                            .completed_at
                            .saturating_duration_since(delivered + resp.queued);
                        spans[m as usize] = Some((receive, net_in, exec, response_net));
                    }
                }
            }
        }

        if let Some(r) = recorder {
            if r.enabled() {
                let _region = RegionGuard::enter(Region::Obs);
                let _p = ProfGuard::enter("executor/spans");
                for (m, rec) in records.iter().enumerate() {
                    let (at, net_in, exec, net_out) = match spans[m] {
                        Some(s) => s,
                        // The platform never answered: the client's timeout
                        // is the whole story, no server-side phases.
                        None => (
                            horizon,
                            SimDuration::ZERO,
                            SimDuration::ZERO,
                            SimDuration::ZERO,
                        ),
                    };
                    let outcome = match rec.outcome {
                        Outcome::Success => SpanOutcome::Success,
                        Outcome::Failure(FailureReason::QueueFull) => SpanOutcome::QueueFull,
                        Outcome::Failure(FailureReason::ClientTimeout) => {
                            SpanOutcome::ClientTimeout
                        }
                        Outcome::Failure(FailureReason::Rejected) => SpanOutcome::Rejected,
                        Outcome::Failure(FailureReason::Throttled) => SpanOutcome::Throttled,
                        Outcome::Failure(FailureReason::Crashed) => SpanOutcome::Crashed,
                        Outcome::Failure(FailureReason::RetriesExhausted) => {
                            SpanOutcome::RetriesExhausted
                        }
                    };
                    r.record(&TraceEvent {
                        at,
                        kind: EventKind::RequestSpan {
                            request: rec.index as u64,
                            client: rec.client,
                            invocation: inv_of[m],
                            arrival: rec.arrival,
                            batch: rec.sent_at.saturating_duration_since(rec.arrival),
                            net_in,
                            queued: rec.queued,
                            exec,
                            net_out,
                            cold: rec.cold_start.is_some(),
                            outcome,
                        },
                    });
                }
                r.record(&TraceEvent {
                    at: horizon,
                    kind: EventKind::RunClosed {
                        engine_events,
                        requests: n as u64,
                    },
                });
            }
        }

        CellOutput {
            records,
            report: sys.platform.report(),
            engine_events,
            client_faults: sys.client_faults.injected(),
            retries: sys.retries_used,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slsb_model::RuntimeKind;
    use slsb_platform::PlatformKind;

    use slsb_workload::{MmppSpec, WorkloadTrace};

    fn small_trace(rate: f64, secs: u64) -> WorkloadTrace {
        MmppSpec {
            name: "test",
            rate_high: rate,
            rate_low: rate / 4.0,
            mean_high_dwell: SimDuration::from_secs(20),
            mean_low_dwell: SimDuration::from_secs(40),
            duration: SimDuration::from_secs(secs),
        }
        .generate(Seed(99))
    }

    fn deployment(platform: PlatformKind) -> Deployment {
        Deployment::new(platform, ModelKind::MobileNet, RuntimeKind::Tf115)
    }

    #[test]
    fn every_request_is_resolved() {
        let exec = Executor::default();
        let trace = small_trace(10.0, 120);
        for platform in [
            PlatformKind::AwsServerless,
            PlatformKind::AwsManagedMl,
            PlatformKind::AwsCpu,
            PlatformKind::AwsGpu,
        ] {
            let run = exec.run(&deployment(platform), &trace, Seed(1)).unwrap();
            assert_eq!(run.records.len(), trace.len());
            // No unresolved successes-without-latency.
            for r in &run.records {
                if r.outcome.is_success() {
                    assert!(r.latency.is_some());
                }
            }
        }
    }

    #[test]
    fn serverless_succeeds_under_burst() {
        let exec = Executor::default();
        let trace = small_trace(30.0, 120);
        let run = exec
            .run(&deployment(PlatformKind::AwsServerless), &trace, Seed(2))
            .unwrap();
        assert!(run.success_ratio() > 0.99, "SR {}", run.success_ratio());
        assert!(run.platform.cold_started > 0);
    }

    #[test]
    fn warm_serverless_latency_is_small() {
        let exec = Executor::default();
        let trace = small_trace(10.0, 300);
        let run = exec
            .run(&deployment(PlatformKind::AwsServerless), &trace, Seed(3))
            .unwrap();
        // Average warm latency (excluding cold starts) well under a second.
        let warm: Vec<f64> = run
            .successes()
            .filter(|r| r.cold_start.is_none())
            .filter_map(|r| r.latency.map(|l| l.as_secs_f64()))
            .collect();
        assert!(!warm.is_empty());
        let mean = warm.iter().sum::<f64>() / warm.len() as f64;
        assert!(mean < 0.3, "warm mean {mean}");
    }

    #[test]
    fn cpu_server_collapses_at_high_rate() {
        let exec = Executor::default();
        let trace = small_trace(120.0, 180);
        let run = exec
            .run(&deployment(PlatformKind::AwsCpu), &trace, Seed(4))
            .unwrap();
        assert!(
            run.success_ratio() < 0.8,
            "CPU server should drop requests: SR {}",
            run.success_ratio()
        );
    }

    #[test]
    fn batching_delays_requests_but_cuts_invocations() {
        let exec = Executor::default();
        let trace = small_trace(20.0, 120);
        let single = exec
            .run(&deployment(PlatformKind::AwsServerless), &trace, Seed(5))
            .unwrap();
        let batched_dep = deployment(PlatformKind::AwsServerless).with_batch_size(8);
        let batched = exec.run(&batched_dep, &trace, Seed(5)).unwrap();
        assert!(batched.platform.invocations * 4 < single.platform.invocations);
        let mean = |r: &RunResult| {
            let v: Vec<f64> = r
                .successes()
                .filter_map(|x| x.latency.map(|l| l.as_secs_f64()))
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(mean(&batched) > mean(&single), "batching must add latency");
    }

    #[test]
    fn batched_records_share_invocation_but_keep_own_arrival() {
        let exec = Executor::default();
        let trace = small_trace(20.0, 60);
        let dep = deployment(PlatformKind::AwsServerless).with_batch_size(4);
        let run = exec.run(&dep, &trace, Seed(6)).unwrap();
        // sent_at ≥ arrival always; strictly greater for early batch members.
        assert!(run.records.iter().all(|r| r.sent_at >= r.arrival));
        assert!(run.records.iter().any(|r| r.sent_at > r.arrival));
    }

    #[test]
    fn invalid_deployment_is_rejected() {
        let exec = Executor::default();
        let trace = small_trace(5.0, 30);
        let dep = Deployment::new(
            PlatformKind::GcpManagedMl,
            ModelKind::MobileNet,
            RuntimeKind::Ort14,
        );
        assert!(exec.run(&dep, &trace, Seed(7)).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let exec = Executor::default();
        let trace = small_trace(15.0, 90);
        let dep = deployment(PlatformKind::AwsServerless);
        let a = exec.run(&dep, &trace, Seed(8)).unwrap();
        let b = exec.run(&dep, &trace, Seed(8)).unwrap();
        assert_eq!(a.records, b.records);
        let c = exec.run(&dep, &trace, Seed(9)).unwrap();
        assert_ne!(a.records, c.records);
    }

    #[test]
    fn empty_trace_runs_cleanly() {
        let exec = Executor::default();
        let trace = WorkloadTrace::new("empty", SimDuration::from_secs(10), vec![]);
        let run = exec
            .run(&deployment(PlatformKind::AwsServerless), &trace, Seed(10))
            .unwrap();
        assert!(run.records.is_empty());
        assert_eq!(run.success_ratio(), 1.0);
    }
}
