//! The executor (paper Figure 3): an open-loop client fleet replaying a
//! workload trace against one simulated serving system.
//!
//! Requests fire at their trace timestamps regardless of outstanding
//! responses (the paper's clients replay a pre-generated workload), each
//! client draws its payload from the shared request pool, and a per-request
//! HTTP timeout converts slow responses into failures — the mechanism
//! behind every success-ratio number in the evaluation.

use crate::batching::{plan_invocations, BatchPolicy, Invocation};
use crate::plan::{Deployment, PlanError};
use serde::{Deserialize, Serialize};
use slsb_model::ModelKind;
use slsb_obs::{EventKind, Recorder, SpanOutcome, TraceEvent};
use slsb_platform::{
    ColdStartBreakdown, FailureReason, NetworkProfile, Outcome, Platform, PlatformEvent,
    PlatformReport, PlatformScheduler, RequestId, ServingRequest,
};
use slsb_sim::{Engine, EventQueue, Seed, SimDuration, SimTime, System};
use slsb_workload::{InputKind, RequestPool, WorkloadTrace};

/// Client-fleet configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutorConfig {
    /// Number of client nodes (the paper uses 8).
    pub clients: usize,
    /// Request-pool size (the paper uses 200).
    pub pool_size: usize,
    /// Client HTTP timeout; a response slower than this counts as failed.
    pub timeout: SimDuration,
    /// Client↔endpoint network path.
    pub network: NetworkProfile,
    /// Batching override: `None` derives [`BatchPolicy::Fixed`] from the
    /// deployment's `batch_size`; `Some` replaces it (used by the adaptive-
    /// batching extension).
    pub batch_override: Option<BatchPolicy>,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            clients: 8,
            pool_size: RequestPool::DEFAULT_SIZE,
            timeout: SimDuration::from_secs(60),
            network: NetworkProfile::DEFAULT,
            batch_override: None,
        }
    }
}

/// The resolved fate of one logical request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestRecord {
    /// Position in the workload trace.
    pub index: usize,
    /// Which client issued it.
    pub client: u32,
    /// Trace arrival instant (when the user "pressed send").
    pub arrival: SimTime,
    /// When the carrying invocation actually fired (later than `arrival`
    /// under batching).
    pub sent_at: SimTime,
    /// Payload bytes attributed to this request.
    pub payload_bytes: u64,
    /// Final outcome after applying the client timeout.
    pub outcome: Outcome,
    /// End-to-end latency from `arrival` to client receive (present for
    /// successes).
    pub latency: Option<SimDuration>,
    /// Cold-start breakdown when one was on this request's path.
    pub cold_start: Option<ColdStartBreakdown>,
    /// Server-side predict time of the carrying invocation.
    pub predict: SimDuration,
    /// Platform-side queueing of the carrying invocation.
    pub queued: SimDuration,
}

/// Everything one run produces.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The deployment that served the run.
    pub deployment: Deployment,
    /// Workload name (e.g. `"workload-120"`).
    pub workload: String,
    /// Nominal workload duration.
    pub duration: SimDuration,
    /// One record per logical request, trace order.
    pub records: Vec<RequestRecord>,
    /// Platform-side accounting (cost, instances, cold starts).
    pub platform: PlatformReport,
    /// Discrete events the simulation kernel delivered during the run —
    /// cross-checkable against the trace's closing `run_closed` event.
    pub engine_events: u64,
}

impl RunResult {
    /// Requests that succeeded.
    pub fn successes(&self) -> impl Iterator<Item = &RequestRecord> + '_ {
        self.records.iter().filter(|r| r.outcome.is_success())
    }

    /// Success ratio over all requests.
    pub fn success_ratio(&self) -> f64 {
        if self.records.is_empty() {
            return 1.0;
        }
        self.successes().count() as f64 / self.records.len() as f64
    }

    /// Fraction of *all* requests answered successfully within `slo` —
    /// failures count against attainment, unlike percentile-of-successes
    /// metrics.
    pub fn slo_attainment(&self, slo: SimDuration) -> f64 {
        if self.records.is_empty() {
            return 1.0;
        }
        let within = self
            .successes()
            .filter(|r| r.latency.expect("success has latency") <= slo)
            .count();
        within as f64 / self.records.len() as f64
    }
}

/// Runs deployments against workload traces.
#[derive(Debug, Clone, Default)]
pub struct Executor {
    cfg: ExecutorConfig,
}

enum ExecEvent {
    Deliver(usize),
    Platform(PlatformEvent),
}

struct ExecSystem<'r> {
    platform: Platform,
    invocations: Vec<Invocation>,
    payload_per_invocation: Vec<u64>,
    inferences_per_invocation: Vec<u32>,
    /// Response bookkeeping: invocation idx → (send instant, member record
    /// indices).
    responses: Vec<(usize, slsb_platform::ServingResponse)>,
    buffer: Vec<(SimDuration, PlatformEvent)>,
    /// Trace sink threaded into every platform scheduler, if recording.
    rec: Option<&'r mut dyn Recorder>,
}

impl ExecSystem<'_> {
    fn with_platform<R>(
        &mut self,
        queue: &mut EventQueue<ExecEvent>,
        f: impl FnOnce(&mut Platform, &mut PlatformScheduler<'_>) -> R,
    ) -> R {
        let rec = self.rec.as_deref_mut().map(|r| r as &mut dyn Recorder);
        let mut sched = PlatformScheduler::with_recorder(queue.now(), &mut self.buffer, rec);
        let r = f(&mut self.platform, &mut sched);
        for (d, e) in self.buffer.drain(..) {
            queue.schedule_after(d, ExecEvent::Platform(e));
        }
        r
    }

    fn drain(&mut self) {
        let new = self.platform.drain_responses();
        for resp in new {
            self.responses.push((resp.id.0 as usize, resp));
        }
    }
}

impl System for ExecSystem<'_> {
    type Ev = ExecEvent;
    fn handle(&mut self, queue: &mut EventQueue<ExecEvent>, _at: SimTime, ev: ExecEvent) {
        match ev {
            ExecEvent::Deliver(idx) => {
                let req = ServingRequest {
                    id: RequestId(idx as u64),
                    arrival: queue.now(),
                    payload_bytes: self.payload_per_invocation[idx],
                    inferences: self.inferences_per_invocation[idx],
                };
                self.with_platform(queue, |p, s| p.submit(s, req));
            }
            ExecEvent::Platform(e) => {
                self.with_platform(queue, |p, s| p.handle(s, e));
            }
        }
        self.drain();
    }
}

impl Executor {
    /// An executor with the given configuration.
    pub fn new(cfg: ExecutorConfig) -> Self {
        Executor { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &ExecutorConfig {
        &self.cfg
    }

    /// The request pool an executor builds for `model`.
    pub fn pool_for(&self, model: ModelKind, samples_per_request: u32) -> RequestPool {
        let kind = if model.profile().image_input {
            InputKind::Image
        } else {
            InputKind::Text
        };
        RequestPool::generate(kind, self.cfg.pool_size)
            .with_samples_per_request(samples_per_request)
    }

    /// Replays `trace` against `deployment`, returning per-request records
    /// and the platform report.
    ///
    /// # Errors
    /// Fails when the deployment is invalid.
    pub fn run(
        &self,
        deployment: &Deployment,
        trace: &WorkloadTrace,
        seed: Seed,
    ) -> Result<RunResult, PlanError> {
        let platform = deployment.build(seed)?;
        Ok(self.run_built(deployment, platform, trace, seed))
    }

    /// Like [`Executor::run`] but streams every trace event — platform
    /// lifecycle, per-request spans, and the closing summary — into `rec`.
    /// Recording is write-only: the returned [`RunResult`] is identical to
    /// the one an unrecorded run produces.
    ///
    /// # Errors
    /// Fails when the deployment is invalid.
    pub fn run_recorded(
        &self,
        deployment: &Deployment,
        trace: &WorkloadTrace,
        seed: Seed,
        rec: &mut dyn Recorder,
    ) -> Result<RunResult, PlanError> {
        let platform = deployment.build(seed)?;
        Ok(self.run_built_recorded(deployment, platform, trace, seed, Some(rec)))
    }

    /// Replays `trace` against an already-built platform. This is the
    /// ablation entry point: callers may hand-construct a platform whose
    /// knobs the [`Deployment`] surface does not expose (e.g. a custom
    /// over-provisioning factor); `deployment` is then only descriptive
    /// metadata for the records.
    pub fn run_built(
        &self,
        deployment: &Deployment,
        platform: Platform,
        trace: &WorkloadTrace,
        seed: Seed,
    ) -> RunResult {
        self.run_built_recorded(deployment, platform, trace, seed, None)
    }

    /// [`Executor::run_built`] with an optional trace recorder attached.
    pub fn run_built_recorded(
        &self,
        deployment: &Deployment,
        platform: Platform,
        trace: &WorkloadTrace,
        seed: Seed,
        rec: Option<&mut dyn Recorder>,
    ) -> RunResult {
        let tracing = rec.as_deref().is_some_and(|r| r.enabled());
        let pool = self.pool_for(deployment.model, deployment.samples_per_request);

        // Assign requests to clients round-robin (the paper's splitter) and
        // draw payloads from the pool.
        let n = trace.arrivals().len();
        let clients = self.cfg.clients.max(1);
        let mut client_rngs: Vec<_> = (0..clients)
            .map(|c| seed.substream_indexed("client", c as u64).rng())
            .collect();
        let mut records: Vec<RequestRecord> = Vec::with_capacity(n);
        let mut per_client: Vec<Vec<(usize, SimTime)>> = vec![Vec::new(); clients];
        for (i, &arrival) in trace.arrivals().iter().enumerate() {
            let client = i % clients;
            let payload = pool.pick(&mut client_rngs[client]);
            records.push(RequestRecord {
                index: i,
                client: client as u32,
                arrival,
                sent_at: arrival,
                payload_bytes: payload.size_bytes,
                outcome: Outcome::Failure(FailureReason::ClientTimeout),
                latency: None,
                cold_start: None,
                predict: SimDuration::ZERO,
                queued: SimDuration::ZERO,
            });
            per_client[client].push((i, arrival));
        }

        // Group each client's requests into invocations.
        let policy = self
            .cfg
            .batch_override
            .unwrap_or(if deployment.batch_size > 1 {
                BatchPolicy::Fixed(deployment.batch_size)
            } else {
                BatchPolicy::None
            });
        let mut invocations: Vec<Invocation> = Vec::with_capacity(n);
        for arrivals in &per_client {
            invocations.extend(plan_invocations(arrivals, policy));
        }
        // Record when each request's invocation fired, and (when tracing)
        // which invocation carries each record — the join key to the
        // platform's per-invocation trace events.
        let mut inv_of: Vec<u64> = if tracing { vec![0; n] } else { Vec::new() };
        for (inv_idx, inv) in invocations.iter().enumerate() {
            for &m in &inv.members {
                records[m].sent_at = inv.send_at;
                if tracing {
                    inv_of[m] = inv_idx as u64;
                }
            }
        }
        let payload_per_invocation: Vec<u64> = invocations
            .iter()
            .map(|inv| inv.members.iter().map(|&m| records[m].payload_bytes).sum())
            .collect();
        let inferences_per_invocation: Vec<u32> = invocations
            .iter()
            .map(|inv| inv.members.len() as u32 * deployment.inference_repeats)
            .collect();

        // Assemble the engine. Deliveries are scheduled up front so the
        // system can own the invocation tables outright.
        let deliveries: Vec<(usize, SimTime)> = invocations
            .iter()
            .enumerate()
            .map(|(idx, inv)| {
                (
                    idx,
                    inv.send_at + self.cfg.network.transfer_time(payload_per_invocation[idx]),
                )
            })
            .collect();
        let mut engine = Engine::new(ExecSystem {
            platform,
            invocations,
            payload_per_invocation,
            inferences_per_invocation,
            responses: Vec::new(),
            buffer: Vec::new(),
            rec,
        });

        let horizon =
            SimTime::ZERO + trace.duration() + self.cfg.timeout + SimDuration::from_secs(30);

        // Platform startup at t = 0.
        {
            let sys = &mut engine.system;
            let startup_rec = sys.rec.as_deref_mut().map(|r| r as &mut dyn Recorder);
            let mut sched =
                PlatformScheduler::with_recorder(SimTime::ZERO, &mut sys.buffer, startup_rec);
            sys.platform
                .start(&mut sched, SimTime::ZERO + trace.duration());
            for (d, e) in sys.buffer.drain(..) {
                engine.queue.schedule_after(d, ExecEvent::Platform(e));
            }
        }

        // Invocation deliveries: network transfer happens on the way in.
        for (idx, deliver_at) in deliveries {
            engine
                .queue
                .schedule_at(deliver_at, ExecEvent::Deliver(idx));
        }

        engine.run_until(horizon);
        engine.queue.advance_to(horizon);
        // Rented capacity is torn down shortly after the workload ends (the
        // paper estimates hourly-billed systems "based on the actual
        // execution time"); the extra drain window exists only so late
        // responses can reach the clients.
        let teardown = SimTime::ZERO + trace.duration() + SimDuration::from_secs(30);
        engine.system.platform.finalize(teardown.min(horizon));
        engine.system.drain();

        // Resolve records from responses.
        let engine_events = engine.events_processed();
        let response_net = self.cfg.network.response_time();
        let mut sys = engine.system;
        let recorder = sys.rec.take();
        // Per-record span data, populated while resolving; only allocated
        // when a recorder wants it.
        let mut spans: Vec<Option<(SimTime, SimDuration, SimDuration, SimDuration)>> =
            if tracing { vec![None; n] } else { Vec::new() };
        for (inv_idx, resp) in &sys.responses {
            let inv = &sys.invocations[*inv_idx];
            let receive = resp.completed_at + response_net;
            let net_in = self
                .cfg
                .network
                .transfer_time(sys.payload_per_invocation[*inv_idx]);
            let delivered = inv.send_at + net_in;
            for &m in &inv.members {
                let rec = &mut records[m];
                let e2e = receive.saturating_duration_since(rec.arrival);
                rec.predict = resp.predict;
                rec.queued = resp.queued;
                rec.cold_start = resp.cold_start;
                match resp.outcome {
                    Outcome::Failure(reason) => {
                        rec.outcome = Outcome::Failure(reason);
                    }
                    Outcome::Success if e2e > self.cfg.timeout => {
                        rec.outcome = Outcome::Failure(FailureReason::ClientTimeout);
                    }
                    Outcome::Success => {
                        rec.outcome = Outcome::Success;
                        rec.latency = Some(e2e);
                    }
                }
                if tracing {
                    // Exec time is what remains of the platform's span after
                    // its own queueing; exact for successes.
                    let exec = resp
                        .completed_at
                        .saturating_duration_since(delivered + resp.queued);
                    spans[m] = Some((receive, net_in, exec, response_net));
                }
            }
        }

        if let Some(r) = recorder {
            if r.enabled() {
                for (m, rec) in records.iter().enumerate() {
                    let (at, net_in, exec, net_out) = match spans[m] {
                        Some(s) => s,
                        // The platform never answered: the client's timeout
                        // is the whole story, no server-side phases.
                        None => (horizon, SimDuration::ZERO, SimDuration::ZERO, SimDuration::ZERO),
                    };
                    let outcome = match rec.outcome {
                        Outcome::Success => SpanOutcome::Success,
                        Outcome::Failure(FailureReason::QueueFull) => SpanOutcome::QueueFull,
                        Outcome::Failure(FailureReason::ClientTimeout) => SpanOutcome::ClientTimeout,
                        Outcome::Failure(FailureReason::Rejected) => SpanOutcome::Rejected,
                    };
                    r.record(&TraceEvent {
                        at,
                        kind: EventKind::RequestSpan {
                            request: rec.index as u64,
                            client: rec.client,
                            invocation: inv_of[m],
                            arrival: rec.arrival,
                            batch: rec.sent_at.saturating_duration_since(rec.arrival),
                            net_in,
                            queued: rec.queued,
                            exec,
                            net_out,
                            cold: rec.cold_start.is_some(),
                            outcome,
                        },
                    });
                }
                r.record(&TraceEvent {
                    at: horizon,
                    kind: EventKind::RunClosed {
                        engine_events,
                        requests: n as u64,
                    },
                });
            }
        }

        RunResult {
            deployment: *deployment,
            workload: trace.name().to_string(),
            duration: trace.duration(),
            records,
            platform: sys.platform.report(),
            engine_events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slsb_model::RuntimeKind;
    use slsb_platform::PlatformKind;

    use slsb_workload::{MmppSpec, WorkloadTrace};

    fn small_trace(rate: f64, secs: u64) -> WorkloadTrace {
        MmppSpec {
            name: "test",
            rate_high: rate,
            rate_low: rate / 4.0,
            mean_high_dwell: SimDuration::from_secs(20),
            mean_low_dwell: SimDuration::from_secs(40),
            duration: SimDuration::from_secs(secs),
        }
        .generate(Seed(99))
    }

    fn deployment(platform: PlatformKind) -> Deployment {
        Deployment::new(platform, ModelKind::MobileNet, RuntimeKind::Tf115)
    }

    #[test]
    fn every_request_is_resolved() {
        let exec = Executor::default();
        let trace = small_trace(10.0, 120);
        for platform in [
            PlatformKind::AwsServerless,
            PlatformKind::AwsManagedMl,
            PlatformKind::AwsCpu,
            PlatformKind::AwsGpu,
        ] {
            let run = exec.run(&deployment(platform), &trace, Seed(1)).unwrap();
            assert_eq!(run.records.len(), trace.len());
            // No unresolved successes-without-latency.
            for r in &run.records {
                if r.outcome.is_success() {
                    assert!(r.latency.is_some());
                }
            }
        }
    }

    #[test]
    fn serverless_succeeds_under_burst() {
        let exec = Executor::default();
        let trace = small_trace(30.0, 120);
        let run = exec
            .run(&deployment(PlatformKind::AwsServerless), &trace, Seed(2))
            .unwrap();
        assert!(run.success_ratio() > 0.99, "SR {}", run.success_ratio());
        assert!(run.platform.cold_started > 0);
    }

    #[test]
    fn warm_serverless_latency_is_small() {
        let exec = Executor::default();
        let trace = small_trace(10.0, 300);
        let run = exec
            .run(&deployment(PlatformKind::AwsServerless), &trace, Seed(3))
            .unwrap();
        // Average warm latency (excluding cold starts) well under a second.
        let warm: Vec<f64> = run
            .successes()
            .filter(|r| r.cold_start.is_none())
            .filter_map(|r| r.latency.map(|l| l.as_secs_f64()))
            .collect();
        assert!(!warm.is_empty());
        let mean = warm.iter().sum::<f64>() / warm.len() as f64;
        assert!(mean < 0.3, "warm mean {mean}");
    }

    #[test]
    fn cpu_server_collapses_at_high_rate() {
        let exec = Executor::default();
        let trace = small_trace(120.0, 180);
        let run = exec
            .run(&deployment(PlatformKind::AwsCpu), &trace, Seed(4))
            .unwrap();
        assert!(
            run.success_ratio() < 0.8,
            "CPU server should drop requests: SR {}",
            run.success_ratio()
        );
    }

    #[test]
    fn batching_delays_requests_but_cuts_invocations() {
        let exec = Executor::default();
        let trace = small_trace(20.0, 120);
        let single = exec
            .run(&deployment(PlatformKind::AwsServerless), &trace, Seed(5))
            .unwrap();
        let batched_dep = deployment(PlatformKind::AwsServerless).with_batch_size(8);
        let batched = exec.run(&batched_dep, &trace, Seed(5)).unwrap();
        assert!(batched.platform.invocations * 4 < single.platform.invocations);
        let mean = |r: &RunResult| {
            let v: Vec<f64> = r
                .successes()
                .filter_map(|x| x.latency.map(|l| l.as_secs_f64()))
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(mean(&batched) > mean(&single), "batching must add latency");
    }

    #[test]
    fn batched_records_share_invocation_but_keep_own_arrival() {
        let exec = Executor::default();
        let trace = small_trace(20.0, 60);
        let dep = deployment(PlatformKind::AwsServerless).with_batch_size(4);
        let run = exec.run(&dep, &trace, Seed(6)).unwrap();
        // sent_at ≥ arrival always; strictly greater for early batch members.
        assert!(run.records.iter().all(|r| r.sent_at >= r.arrival));
        assert!(run.records.iter().any(|r| r.sent_at > r.arrival));
    }

    #[test]
    fn invalid_deployment_is_rejected() {
        let exec = Executor::default();
        let trace = small_trace(5.0, 30);
        let dep = Deployment::new(
            PlatformKind::GcpManagedMl,
            ModelKind::MobileNet,
            RuntimeKind::Ort14,
        );
        assert!(exec.run(&dep, &trace, Seed(7)).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let exec = Executor::default();
        let trace = small_trace(15.0, 90);
        let dep = deployment(PlatformKind::AwsServerless);
        let a = exec.run(&dep, &trace, Seed(8)).unwrap();
        let b = exec.run(&dep, &trace, Seed(8)).unwrap();
        assert_eq!(a.records, b.records);
        let c = exec.run(&dep, &trace, Seed(9)).unwrap();
        assert_ne!(a.records, c.records);
    }

    #[test]
    fn empty_trace_runs_cleanly() {
        let exec = Executor::default();
        let trace = WorkloadTrace::new("empty", SimDuration::from_secs(10), vec![]);
        let run = exec
            .run(&deployment(PlatformKind::AwsServerless), &trace, Seed(10))
            .unwrap();
        assert!(run.records.is_empty());
        assert_eq!(run.success_ratio(), 1.0);
    }
}
