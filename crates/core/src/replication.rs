//! Seed replication: run the same deployment × workload across several
//! seeds and aggregate, reporting mean ± standard deviation for each
//! metric. The paper reports single runs; replication quantifies how much
//! of any comparison is seed noise — essential before reading small
//! deltas off the tables.

use crate::analyzer::{analyze, run_metrics, Analysis};
use crate::executor::Executor;
use crate::plan::{Deployment, PlanError};
use crate::runner::{parallel_map, Jobs};
use crate::scenario::WorkloadSpec;
use serde::{Deserialize, Serialize};
use slsb_obs::MetricsRegistry;
use slsb_sim::{Accumulator, Seed};

/// Mean ± population standard deviation of one metric across replicas.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricSummary {
    /// Mean across replicas.
    pub mean: f64,
    /// Population standard deviation across replicas.
    pub std_dev: f64,
    /// Smallest replica value.
    pub min: f64,
    /// Largest replica value.
    pub max: f64,
}

impl MetricSummary {
    fn from_accumulator(acc: &Accumulator) -> Option<MetricSummary> {
        Some(MetricSummary {
            mean: acc.mean()?,
            std_dev: acc.std_dev()?,
            min: acc.min()?,
            max: acc.max()?,
        })
    }

    /// `mean ± std` rendering.
    pub fn display(&self, precision: usize) -> String {
        format!("{:.p$} ± {:.p$}", self.mean, self.std_dev, p = precision)
    }
}

/// Aggregated results of an n-seed replication.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Replication {
    /// Number of replicas that ran.
    pub replicas: usize,
    /// Mean latency of successful requests (seconds), across replicas.
    pub mean_latency: Option<MetricSummary>,
    /// p99 latency (seconds), across replicas.
    pub p99_latency: Option<MetricSummary>,
    /// Success ratio, across replicas.
    pub success_ratio: MetricSummary,
    /// Total cost (dollars), across replicas.
    pub cost: MetricSummary,
    /// Cold-started instances, across replicas.
    pub cold_started: MetricSummary,
    /// Streaming metrics pooled across every replica: counters sum,
    /// gauges take maxima, histograms add bucket-wise. Merged in seed
    /// order regardless of worker count, so the registry is identical
    /// for any `--jobs` value.
    pub metrics: MetricsRegistry,
    /// The individual analyses, in seed order.
    pub analyses: Vec<Analysis>,
}

/// Runs `deployment` on `workload` with seeds `base_seed..base_seed + n`
/// and aggregates, fanning replicas across all available cores.
///
/// Identical to [`replicate_jobs`] with [`Jobs::available`]; results are
/// bit-identical for any worker count.
///
/// # Errors
/// Fails when the deployment is invalid.
///
/// # Panics
/// Panics if `replicas` is zero.
pub fn replicate(
    executor: &Executor,
    deployment: &Deployment,
    workload: WorkloadSpec,
    base_seed: u64,
    replicas: usize,
) -> Result<Replication, PlanError> {
    replicate_jobs(
        executor,
        deployment,
        workload,
        base_seed,
        replicas,
        Jobs::available(),
    )
}

/// [`replicate`] with an explicit worker count (`--jobs`).
///
/// Each replica is an independent simulation of its own seed, so replicas
/// fan out across `jobs` workers; per-replica analyses land in a slot
/// vector indexed by replica number and are aggregated in seed order, so
/// the result is byte-identical to the sequential path (`jobs = 1`).
///
/// # Errors
/// Fails when the deployment is invalid (first failing seed in seed
/// order, matching the sequential loop).
///
/// # Panics
/// Panics if `replicas` is zero.
pub fn replicate_jobs(
    executor: &Executor,
    deployment: &Deployment,
    workload: WorkloadSpec,
    base_seed: u64,
    replicas: usize,
    jobs: Jobs,
) -> Result<Replication, PlanError> {
    assert!(replicas > 0, "zero replicas");

    // A sharded executor shares the worker budget with the replicate
    // fan-out: replicas occupy up to `jobs` workers, so each run's shard
    // cells get the leftover share (at least one, i.e. sequential cells).
    // Shard results are worker-count independent, so this clamp only
    // bounds thread count — it can never change a result.
    let clamped;
    let executor = match executor.shards() {
        Some(requested) => {
            let budget = crate::runner::shard_worker_budget(jobs.get(), replicas, requested);
            clamped = executor.clone().with_shards(budget);
            &clamped
        }
        None => executor,
    };

    let seeds: Vec<Seed> = (0..replicas).map(|i| Seed(base_seed + i as u64)).collect();
    let per_seed = parallel_map(jobs, &seeds, |_, &seed| {
        let trace = workload.generate(seed.substream("replication-workload"));
        executor
            .run(deployment, &trace, seed)
            .map(|run| (run_metrics(&run), analyze(&run)))
    });

    let mut lat = Accumulator::new();
    let mut p99 = Accumulator::new();
    let mut sr = Accumulator::new();
    let mut cost = Accumulator::new();
    let mut cold = Accumulator::new();
    let mut metrics = MetricsRegistry::new();
    let mut analyses = Vec::with_capacity(replicas);

    // Aggregation happens here, sequentially in seed order — the merge
    // order of the metrics registries (and thus their float sums) never
    // depends on which worker finished first.
    for result in per_seed {
        let (m, a) = result?;
        if let Some(l) = a.latency {
            lat.add(l.mean);
            p99.add(l.p99);
        }
        sr.add(a.success_ratio);
        cost.add(a.cost_dollars());
        cold.add(a.cold_started as f64);
        metrics.merge(&m);
        analyses.push(a);
    }

    Ok(Replication {
        replicas,
        mean_latency: MetricSummary::from_accumulator(&lat),
        p99_latency: MetricSummary::from_accumulator(&p99),
        success_ratio: MetricSummary::from_accumulator(&sr).expect("replicas > 0"),
        cost: MetricSummary::from_accumulator(&cost).expect("replicas > 0"),
        cold_started: MetricSummary::from_accumulator(&cold).expect("replicas > 0"),
        metrics,
        analyses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use slsb_model::{ModelKind, RuntimeKind};
    use slsb_platform::PlatformKind;
    use slsb_workload::MmppPreset;

    fn workload() -> WorkloadSpec {
        WorkloadSpec::Preset {
            which: MmppPreset::W40,
            scale: 0.1,
        }
    }

    fn deployment() -> Deployment {
        Deployment::new(
            PlatformKind::AwsServerless,
            ModelKind::MobileNet,
            RuntimeKind::Ort14,
        )
    }

    #[test]
    fn replication_aggregates_five_seeds() {
        let r = replicate(&Executor::default(), &deployment(), workload(), 100, 5).unwrap();
        assert_eq!(r.replicas, 5);
        assert_eq!(r.analyses.len(), 5);
        let lat = r.mean_latency.unwrap();
        assert!(lat.min <= lat.mean && lat.mean <= lat.max);
        assert!(lat.std_dev >= 0.0);
        assert!(r.success_ratio.mean > 0.95);
        assert!(r.cost.mean > 0.0);
    }

    #[test]
    fn seeds_actually_vary() {
        let r = replicate(&Executor::default(), &deployment(), workload(), 200, 4).unwrap();
        // Different seeds generate different workloads, so costs differ.
        assert!(r.cost.std_dev > 0.0, "replicas should not be identical");
    }

    #[test]
    fn single_replica_has_zero_spread() {
        let r = replicate(&Executor::default(), &deployment(), workload(), 300, 1).unwrap();
        assert_eq!(r.cost.std_dev, 0.0);
        assert_eq!(r.cost.min, r.cost.max);
    }

    #[test]
    fn sharded_replication_is_identical_across_worker_counts() {
        // A sharded executor inside a replicate fan-out hits the worker
        // budget clamp: jobs=1 leaves each run one shard worker, jobs=8
        // splits the pool. Shard results are worker-count independent, so
        // every combination must serialize identically.
        let exec = Executor::default().with_shards(8);
        let dep = deployment();
        let seq = replicate_jobs(&exec, &dep, workload(), 400, 4, Jobs::new(1)).unwrap();
        let par = replicate_jobs(&exec, &dep, workload(), 400, 4, Jobs::new(8)).unwrap();
        assert_eq!(
            serde_json::to_string(&seq).unwrap(),
            serde_json::to_string(&par).unwrap(),
            "sharded replicate must be byte-identical across --jobs"
        );
    }

    #[test]
    fn invalid_deployment_propagates() {
        let bad = Deployment::new(
            PlatformKind::GcpManagedMl,
            ModelKind::MobileNet,
            RuntimeKind::Ort14,
        );
        assert!(replicate(&Executor::default(), &bad, workload(), 1, 2).is_err());
    }

    #[test]
    fn metric_display() {
        let m = MetricSummary {
            mean: 0.1234,
            std_dev: 0.0056,
            min: 0.1,
            max: 0.2,
        };
        assert_eq!(m.display(3), "0.123 ± 0.006");
    }

    #[test]
    #[should_panic(expected = "zero replicas")]
    fn zero_replicas_panics() {
        let _ = replicate(&Executor::default(), &deployment(), workload(), 1, 0);
    }
}
