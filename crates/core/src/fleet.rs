//! Fleet runs: a streaming multi-tenant engine over hundreds of apps.
//!
//! The paper benchmarks one model deployment against one trace. Production
//! serverless fleets look nothing like that: thousands of mostly-idle apps
//! whose popularity follows a heavy-tailed (Zipf-like) curve, each with its
//! own deployment configuration — the regime characterized by the Azure
//! Functions trace study. This module runs that regime without ever
//! materializing the merged request log:
//!
//! - [`FleetScenario`] is the declarative JSON surface: a `fleet` block
//!   (synthesized knobs or an ingested trace summary), a named profile map
//!   of [`Deployment`]s, and a client timeout.
//! - [`FleetRunner`] drives every app's platform instance from the lazy
//!   k-way merge in [`slsb_workload::FleetArrivalStream`]. Arrival-side
//!   memory is O(apps + in-flight), not O(requests): the engine holds at
//!   most one pending merged arrival at a time and pulls the next one only
//!   when the current one fires.
//! - Apps are partitioned over a **fixed** number of cells
//!   ([`FLEET_CELLS`]) by a weighted LPT bin-packing
//!   ([`FleetPartition`]): apps sorted by expected event weight
//!   (rate × duration from the resolved plan) are greedily assigned to
//!   the least-loaded cell. The partition is a pure function of the
//!   [`FleetPlan`] — never of `--jobs`/`--shards`, which only change how
//!   many worker threads execute those cells. Combined with per-app RNG
//!   substreams keyed by global app index
//!   (`substream_indexed("app", i)`, `substream_indexed("fleet-app", i)`,
//!   `substream_indexed("app-payload", i)`), every result — per-app
//!   counters, merged platform report, recorded trace — is byte-identical
//!   for any worker budget. Under Zipf popularity this shrinks the
//!   slowest cell from "head app + 1/8 of the tail" (the old
//!   `app % cells` rule) to ~1/cells of total weight.
//!
//! Unlike the single-app executor there is no client batching and no retry
//! layer: each trace arrival is one invocation, delivered after its
//! payload's network transfer, and resolved against the client timeout when
//! its response (plus response-path network) comes back.

use crate::plan::{Deployment, PlanError};
use crate::runner::{parallel_map, Jobs};
use serde::{Deserialize, Serialize};
use slsb_platform::PolicySet;
use slsb_obs::{
    EventKind, LogLinearHistogram, MemoryRecorder, MetricsRegistry, Recorder, SpanOutcome,
    TraceEvent,
};
use slsb_platform::{
    FailureReason, NetworkProfile, Outcome, Platform, PlatformEvent, PlatformReport,
    PlatformScheduler, RequestId, ServingRequest, ServingResponse,
};
use slsb_sim::alloc::{Region, RegionGuard};
use slsb_sim::{
    Engine, EventQueue, Kernel, ProfGuard, Seed, SimDuration, SimTime, System,
};
use slsb_workload::{FleetError, FleetSpec, FleetSynthesis, InputKind, RequestPool, TraceSummary};
use std::collections::BTreeMap;
use std::fmt;

/// Fixed cell count for intra-run parallelism. The app → cell mapping
/// ([`FleetPartition`], capped by the app count) never depends on the
/// worker budget, so results cannot vary with `--jobs`/`--shards`. 32
/// cells let big boxes keep every core busy while small boxes just run
/// more cells per worker.
pub const FLEET_CELLS: usize = 32;

/// A deterministic weighted assignment of apps to cells.
///
/// Built by LPT (longest-processing-time-first) bin-packing: apps are
/// sorted by descending expected event weight — `expected_requests`
/// over the plan duration plus a constant per-app baseline for platform
/// start/teardown — and greedily placed on the least-loaded cell, ties
/// broken by lowest cell index then lowest app index. The result is a
/// pure function of the [`FleetPlan`] and the cell count, so it can
/// never vary with the worker budget.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetPartition {
    /// Per-cell member lists, ascending global app index within a cell.
    pub cells: Vec<Vec<u32>>,
    /// Per-cell total expected weight (same units as `expected_requests`).
    pub weights: Vec<f64>,
    /// The heaviest single app's weight. A cell can never weigh less
    /// than its heaviest member, so this is the unavoidable floor on the
    /// max cell weight (under Zipf the head app alone can exceed 2× the
    /// mean cell weight — no partition can shrink that cell further).
    pub max_app_weight: f64,
}

/// The balance figures the Zipf fleet smoke gate asserts on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellBalance {
    /// Heaviest cell's total weight.
    pub max_cell: f64,
    /// Mean cell weight.
    pub mean_cell: f64,
    /// Heaviest single app's weight (the indivisible floor).
    pub max_app: f64,
}

impl CellBalance {
    /// Whether the partition is as balanced as the gate demands: the
    /// heaviest cell is within 2× the mean, or is pinned by a single
    /// indivisible head app that no partition could split.
    pub fn is_balanced(&self) -> bool {
        self.max_cell <= (2.0 * self.mean_cell).max(self.max_app * (1.0 + 1e-9))
    }
}

impl FleetPartition {
    /// Partitions `plan`'s apps over `cells` cells.
    ///
    /// # Panics
    /// Panics if `cells == 0`.
    pub fn compute(plan: &FleetPlan, cells: usize) -> FleetPartition {
        assert!(cells > 0, "partition needs at least one cell");
        let duration = plan.spec.duration;
        // Every app carries a fixed baseline (platform build, start,
        // teardown) on top of its request-rate weight, so idle tenants
        // still spread across cells instead of piling onto cell 0.
        let weights: Vec<f64> = plan
            .spec
            .apps
            .iter()
            .map(|a| a.process.expected_requests(duration) + 1.0)
            .collect();
        let mut order: Vec<u32> = (0..weights.len() as u32).collect();
        // Descending weight; equal weights keep ascending app order. Both
        // keys are exact, so the sort is deterministic.
        order.sort_by(|&a, &b| {
            weights[b as usize]
                .total_cmp(&weights[a as usize])
                .then(a.cmp(&b))
        });
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); cells];
        let mut loads = vec![0.0f64; cells];
        for g in order {
            let lightest = loads
                .iter()
                .enumerate()
                .min_by(|(i, a), (j, b)| a.total_cmp(b).then(i.cmp(j)))
                .map(|(i, _)| i)
                .expect("at least one cell");
            loads[lightest] += weights[g as usize];
            members[lightest].push(g);
        }
        for cell in &mut members {
            cell.sort_unstable();
        }
        FleetPartition {
            cells: members,
            weights: loads,
            max_app_weight: weights.iter().copied().fold(0.0f64, f64::max),
        }
    }

    /// The balance figures the Zipf fleet smoke gate asserts on
    /// (`max_cell ≤ max(2 × mean, max_app)`).
    pub fn balance(&self) -> CellBalance {
        CellBalance {
            max_cell: self.weights.iter().copied().fold(0.0f64, f64::max),
            mean_cell: self.weights.iter().sum::<f64>() / self.weights.len().max(1) as f64,
            max_app: self.max_app_weight,
        }
    }
}

/// Why a fleet run failed.
#[derive(Debug)]
pub enum FleetRunError {
    /// A per-app deployment could not be built.
    Plan(PlanError),
    /// The plan resolves to zero apps: there is nothing to run, and a
    /// silent empty result would read as a perfect success ratio.
    EmptyFleet,
    /// Internal stitching invariant broken: an app was produced by no
    /// cell (or two). Indicates a partition bug, reported instead of
    /// panicking so callers can surface which app was lost.
    UnassignedApp {
        /// The global index of the app no cell produced.
        app: u32,
    },
}

impl fmt::Display for FleetRunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetRunError::Plan(e) => write!(f, "invalid deployment: {e}"),
            FleetRunError::EmptyFleet => write!(f, "fleet plan has no apps"),
            FleetRunError::UnassignedApp { app } => {
                write!(f, "app {app} was not assigned to exactly one cell")
            }
        }
    }
}

impl std::error::Error for FleetRunError {}

impl From<PlanError> for FleetRunError {
    fn from(e: PlanError) -> Self {
        FleetRunError::Plan(e)
    }
}

/// How many merged arrivals are pulled from the k-way merge per refill.
/// The burst lands in the kernel through one `schedule_many` call (one
/// prof/region scope, one wheel cursor walk) instead of one
/// `schedule_at` per arrival; memory stays O(apps + burst).
const ARRIVAL_BURST: usize = 64;

/// Where a fleet's apps come from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum FleetSource {
    /// Synthesize from knobs (Zipf popularity over on/off tenants).
    Synth {
        /// Number of apps.
        apps: u32,
        /// Zipf popularity exponent (1.0–1.5 matches production studies).
        zipf_exponent: f64,
        /// Fleet-wide long-run request rate (req/s).
        total_rate: f64,
        /// Mean busy-period length, seconds.
        mean_busy_s: f64,
        /// Median idle gap, seconds (lognormal).
        median_idle_s: f64,
        /// Idle-gap lognormal sigma (heavy tail).
        idle_sigma: f64,
        /// Run duration, seconds.
        duration_s: f64,
    },
    /// Replay an ingested trace summary (`slsb fleet ingest` output). The
    /// path is resolved relative to the scenario file by the CLI; the core
    /// library never touches the filesystem.
    Trace {
        /// Path to the canonical `slsb-fleet-trace/v1` JSON document.
        path: String,
    },
}

/// One complete, replayable fleet experiment description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetScenario {
    /// Human-readable name.
    pub name: String,
    /// Experiment seed.
    pub seed: u64,
    /// Where the apps come from.
    pub fleet: FleetSource,
    /// Named deployment profiles. Synthesized apps round-robin over the
    /// (sorted) profile names; trace apps reference profiles by name.
    pub profiles: BTreeMap<String, Deployment>,
    /// Per-request client timeout, seconds.
    #[serde(default = "FleetScenario::default_timeout_s")]
    pub timeout_s: f64,
    /// Fleet-wide policy override. When set, every app runs under this
    /// policy set regardless of what its profile says; when absent, each
    /// profile's own `policy` applies (and profiles that do not pin one
    /// raise a [`FleetWarning::ProfileWithoutPolicy`], because a fleet
    /// comparison where some apps silently ride platform defaults is
    /// usually a mis-specified experiment).
    #[serde(default)]
    pub policy: Option<PolicySet>,
}

/// A non-fatal diagnostic raised while resolving a fleet scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetWarning {
    /// A deployment profile pins no policy and no fleet-wide override is
    /// set: its apps will run whatever the platform's defaults are.
    ProfileWithoutPolicy {
        /// The policy-less profile's name.
        profile: String,
    },
}

impl fmt::Display for FleetWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetWarning::ProfileWithoutPolicy { profile } => write!(
                f,
                "profile {profile} pins no policy; its apps run platform \
                 defaults (set a profile policy block or a fleet-wide \
                 \"policy\" to silence this)"
            ),
        }
    }
}

/// Why a fleet scenario failed to load or resolve.
#[derive(Debug)]
pub enum FleetScenarioError {
    /// JSON was malformed or did not match the schema.
    Parse(serde_json::Error),
    /// The `profiles` map is empty.
    NoProfiles,
    /// A trace app references a profile that is not in `profiles`.
    UnknownProfile {
        /// The referencing app.
        app: String,
        /// The missing profile name.
        profile: String,
    },
    /// The fleet block is invalid (bad knob, bad trace document).
    Fleet(FleetError),
    /// A resolved per-app deployment violates a platform rule.
    Plan(PlanError),
    /// The scenario replays a trace but no trace document was supplied.
    MissingTrace(String),
}

impl fmt::Display for FleetScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetScenarioError::Parse(e) => write!(f, "fleet scenario parse error: {e}"),
            FleetScenarioError::NoProfiles => write!(f, "fleet scenario has no profiles"),
            FleetScenarioError::UnknownProfile { app, profile } => {
                write!(f, "app {app} references unknown profile {profile}")
            }
            FleetScenarioError::Fleet(e) => write!(f, "invalid fleet: {e}"),
            FleetScenarioError::Plan(e) => write!(f, "invalid deployment: {e}"),
            FleetScenarioError::MissingTrace(p) => {
                write!(f, "fleet replays trace {p} but no trace document was provided")
            }
        }
    }
}

impl std::error::Error for FleetScenarioError {}

impl From<FleetError> for FleetScenarioError {
    fn from(e: FleetError) -> Self {
        FleetScenarioError::Fleet(e)
    }
}

impl From<PlanError> for FleetScenarioError {
    fn from(e: PlanError) -> Self {
        FleetScenarioError::Plan(e)
    }
}

/// A resolved fleet: the workload spec plus one validated deployment per
/// app (profile copies with any per-app trace hints applied).
#[derive(Debug, Clone)]
pub struct FleetPlan {
    /// The multi-tenant workload.
    pub spec: FleetSpec,
    /// One deployment per app, in app order.
    pub deployments: Vec<Deployment>,
    /// Per-request client timeout.
    pub timeout: SimDuration,
    /// Non-fatal diagnostics raised during resolution (e.g. a profile
    /// with no policy block). The CLI prints these to stderr.
    pub warnings: Vec<FleetWarning>,
}

impl FleetScenario {
    fn default_timeout_s() -> f64 {
        60.0
    }

    /// Parses a fleet scenario from JSON.
    ///
    /// # Errors
    /// Fails on malformed JSON or schema mismatch.
    pub fn from_json(json: &str) -> Result<FleetScenario, FleetScenarioError> {
        serde_json::from_str(json).map_err(FleetScenarioError::Parse)
    }

    /// Serializes the scenario to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("fleet scenario is serializable")
    }

    /// The trace-document path this scenario needs, if it replays one.
    pub fn trace_path(&self) -> Option<&str> {
        match &self.fleet {
            FleetSource::Trace { path } => Some(path),
            FleetSource::Synth { .. } => None,
        }
    }

    /// Scales the run duration (synthesized fleets only; `--scale`).
    ///
    /// # Errors
    /// Fails for trace replays, whose duration is fixed by the ingested
    /// bucket grid.
    pub fn scale_duration(&mut self, factor: f64) -> Result<(), FleetScenarioError> {
        match &mut self.fleet {
            FleetSource::Synth { duration_s, .. } => {
                *duration_s *= factor;
                Ok(())
            }
            FleetSource::Trace { .. } => Err(FleetScenarioError::Fleet(FleetError::BadKnob(
                "cannot scale a trace replay's duration".into(),
            ))),
        }
    }

    /// Resolves the scenario into a runnable [`FleetPlan`]. `trace_json`
    /// carries the trace document's contents for [`FleetSource::Trace`]
    /// scenarios (the CLI reads the file; the library stays fs-free).
    ///
    /// # Errors
    /// Fails on invalid knobs, unknown profiles, missing trace input, or a
    /// per-app deployment that violates a platform rule.
    pub fn resolve(&self, trace_json: Option<&str>) -> Result<FleetPlan, FleetScenarioError> {
        if self.profiles.is_empty() {
            return Err(FleetScenarioError::NoProfiles);
        }
        let (spec, mut deployments) = match &self.fleet {
            FleetSource::Synth {
                apps,
                zipf_exponent,
                total_rate,
                mean_busy_s,
                median_idle_s,
                idle_sigma,
                duration_s,
            } => {
                let names: Vec<String> = self.profiles.keys().cloned().collect();
                let spec = FleetSynthesis {
                    apps: *apps,
                    zipf_exponent: *zipf_exponent,
                    total_rate: *total_rate,
                    mean_busy_s: *mean_busy_s,
                    median_idle_s: *median_idle_s,
                    idle_sigma: *idle_sigma,
                    duration_s: *duration_s,
                }
                .build(&self.name, &names)?;
                let deployments = spec
                    .apps
                    .iter()
                    .map(|a| self.profiles[&a.profile])
                    .collect();
                (spec, deployments)
            }
            FleetSource::Trace { path } => {
                let json = trace_json
                    .ok_or_else(|| FleetScenarioError::MissingTrace(path.clone()))?;
                let summary = TraceSummary::from_json(json)?;
                let mut deployments = Vec::with_capacity(summary.apps.len());
                for app in &summary.apps {
                    let base = self.profiles.get(&app.profile).ok_or_else(|| {
                        FleetScenarioError::UnknownProfile {
                            app: app.name.clone(),
                            profile: app.profile.clone(),
                        }
                    })?;
                    let mut dep = *base;
                    if let Some(mb) = app.memory_mb_p50 {
                        dep.memory_mb = mb;
                    }
                    if let Some(mb) = app.artifact_mb {
                        dep.extra_download_mb += mb;
                    }
                    deployments.push(dep);
                }
                (summary.to_fleet_spec()?, deployments)
            }
        };
        let warnings = if let Some(policy) = self.policy {
            for dep in &mut deployments {
                dep.policy = Some(policy);
            }
            Vec::new()
        } else {
            self.profiles
                .iter()
                .filter(|(_, dep)| dep.policy.is_none())
                .map(|(name, _)| FleetWarning::ProfileWithoutPolicy {
                    profile: name.clone(),
                })
                .collect()
        };
        for dep in &deployments {
            dep.validate()?;
        }
        Ok(FleetPlan {
            spec,
            deployments,
            timeout: SimDuration::from_secs_f64(self.timeout_s),
            warnings,
        })
    }
}

/// Per-app outcome rollup of a fleet run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AppResult {
    /// Global app index.
    pub app: u32,
    /// App name.
    pub name: String,
    /// Deployment-profile label.
    pub profile: String,
    /// Requests submitted by the trace.
    pub requests: u64,
    /// Successful responses within the client timeout.
    pub ok: u64,
    /// Failures by reason.
    pub queue_full: u64,
    /// Requests whose end-to-end time exceeded the timeout (including
    /// requests still unresolved at the horizon).
    pub timeout: u64,
    /// Platform-rejected requests.
    pub rejected: u64,
    /// Throttled requests.
    pub throttled: u64,
    /// Requests lost to instance crashes.
    pub crashed: u64,
    /// Cold starts observed on this app's platform.
    pub cold_starts: u64,
    /// End-to-end latency p50 over successes, seconds.
    pub p50_s: Option<f64>,
    /// End-to-end latency p99 over successes, seconds.
    pub p99_s: Option<f64>,
    /// Run cost for this app's platform, dollars.
    pub cost_dollars: f64,
}

/// The outcome of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetRunResult {
    /// Fleet name.
    pub name: String,
    /// Workload duration.
    pub duration: SimDuration,
    /// Total requests submitted.
    pub requests: u64,
    /// Per-app rollups, in global app order.
    pub apps: Vec<AppResult>,
    /// Fleet-wide platform report (per-app reports merged).
    pub platform: PlatformReport,
    /// Fleet-wide end-to-end latency over successes, seconds.
    pub latency: LogLinearHistogram,
    /// Discrete events the simulation kernel delivered, summed over cells.
    pub engine_events: u64,
}

impl FleetRunResult {
    /// Successful requests.
    pub fn ok(&self) -> u64 {
        self.apps.iter().map(|a| a.ok).sum()
    }

    /// Success ratio over submitted requests.
    pub fn success_ratio(&self) -> f64 {
        if self.requests == 0 {
            return 1.0;
        }
        self.ok() as f64 / self.requests as f64
    }

    /// Total run cost, dollars.
    pub fn cost_dollars(&self) -> f64 {
        self.platform.cost.total().as_dollars()
    }
}

/// Runs [`FleetPlan`]s: one platform instance per app, arrivals pulled
/// lazily from the streaming merge, apps partitioned over fixed cells.
#[derive(Debug, Clone)]
pub struct FleetRunner {
    workers: usize,
    network: NetworkProfile,
    kernel: Kernel,
    pool_size: usize,
}

impl Default for FleetRunner {
    fn default() -> Self {
        FleetRunner {
            workers: 1,
            network: NetworkProfile::DEFAULT,
            kernel: Kernel::default(),
            pool_size: RequestPool::DEFAULT_SIZE,
        }
    }
}

impl FleetRunner {
    /// Sets the worker-thread budget. Results are byte-identical for every
    /// value; only wall-clock time changes.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Selects the event-queue kernel.
    #[must_use]
    pub fn with_kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Runs the fleet.
    ///
    /// # Errors
    /// Fails when the plan has no apps or a per-app deployment cannot be
    /// built.
    pub fn run(&self, plan: &FleetPlan, seed: Seed) -> Result<FleetRunResult, FleetRunError> {
        self.run_inner(plan, seed, None)
    }

    /// [`FleetRunner::run`] with every trace event streamed into `rec`:
    /// per-request spans (client = global app index), per-app
    /// [`EventKind::AppClosed`] rollups, platform internals, and a single
    /// merged [`EventKind::RunClosed`]. The returned result is identical to
    /// an unrecorded run's.
    ///
    /// # Errors
    /// Fails when the plan has no apps or a per-app deployment cannot be
    /// built.
    pub fn run_recorded(
        &self,
        plan: &FleetPlan,
        seed: Seed,
        rec: &mut dyn Recorder,
    ) -> Result<FleetRunResult, FleetRunError> {
        self.run_inner(plan, seed, Some(rec))
    }

    fn run_inner(
        &self,
        plan: &FleetPlan,
        seed: Seed,
        rec: Option<&mut dyn Recorder>,
    ) -> Result<FleetRunResult, FleetRunError> {
        let n_apps = plan.spec.apps.len();
        if n_apps == 0 {
            return Err(FleetRunError::EmptyFleet);
        }
        let cells = FLEET_CELLS.min(n_apps);
        let part = FleetPartition::compute(plan, cells);
        let tracing = rec.as_ref().map(|r| r.enabled()).unwrap_or(false);
        let cell_ids: Vec<usize> = (0..cells).collect();
        let outs = parallel_map(Jobs::new(self.workers), &cell_ids, |_, &cell| {
            self.run_cell(plan, seed, &part.cells[cell], tracing)
        });

        let mut cell_outs = Vec::with_capacity(cells);
        for out in outs {
            cell_outs.push(out?);
        }

        // Stitch per-app results back into global order via the
        // partition's member lists (each cell's slots are its members in
        // ascending global order).
        let mut apps: Vec<Option<AppCellResult>> = (0..n_apps).map(|_| None).collect();
        let mut engine_events = 0u64;
        for (c, out) in cell_outs.iter_mut().enumerate() {
            engine_events += out.engine_events;
            for (slot, app) in out.apps.drain(..).enumerate() {
                let g = part.cells[c][slot] as usize;
                if apps[g].replace(app).is_some() {
                    return Err(FleetRunError::UnassignedApp { app: g as u32 });
                }
            }
        }
        let apps: Vec<AppCellResult> = apps
            .into_iter()
            .enumerate()
            .map(|(g, a)| a.ok_or(FleetRunError::UnassignedApp { app: g as u32 }))
            .collect::<Result<_, _>>()?;

        let reports: Vec<PlatformReport> = apps.iter().map(|a| a.report.clone()).collect();
        let platform = PlatformReport::merge_shards(&reports);
        let mut latency = LogLinearHistogram::default();
        let mut results = Vec::with_capacity(n_apps);
        let mut requests = 0u64;
        for (i, a) in apps.iter().enumerate() {
            requests += a.submitted;
            latency.merge(&a.latency);
            let spec = &plan.spec.apps[i];
            results.push(AppResult {
                app: i as u32,
                name: spec.name.clone(),
                profile: spec.profile.clone(),
                requests: a.submitted,
                ok: a.ok,
                queue_full: a.queue_full,
                timeout: a.timeout,
                rejected: a.rejected,
                throttled: a.throttled,
                crashed: a.crashed,
                cold_starts: a.report.cold_started,
                p50_s: a.latency.quantile(50.0),
                p99_s: a.latency.quantile(99.0),
                cost_dollars: a.report.cost.total().as_dollars(),
            });
        }

        let horizon =
            SimTime::ZERO + plan.spec.duration + plan.timeout + SimDuration::from_secs(30);
        if tracing {
            // Replay cell recordings in cell order — a fixed order for a
            // fixed cell count, so the merged trace is byte-identical for
            // any worker budget — and close the run once.
            let _region = RegionGuard::enter(Region::Obs);
            let _p = ProfGuard::enter("fleet/merge");
            let rec = rec.expect("tracing implies a recorder");
            for out in &cell_outs {
                for ev in &out.records {
                    rec.record(ev);
                }
            }
            rec.record(&TraceEvent {
                at: horizon,
                kind: EventKind::RunClosed {
                    engine_events,
                    requests,
                },
            });
        }

        Ok(FleetRunResult {
            name: plan.spec.name.clone(),
            duration: plan.spec.duration,
            requests,
            apps: results,
            platform,
            latency,
            engine_events,
        })
    }

    /// Runs one cell: the partition's member apps, each on its own
    /// platform, fed by the lazy merge of exactly those apps' arrival
    /// substreams.
    fn run_cell(
        &self,
        plan: &FleetPlan,
        seed: Seed,
        globals: &[u32],
        tracing: bool,
    ) -> Result<FleetCellOut, PlanError> {
        let _cell = ProfGuard::enter_root("fleet/cell");
        let duration = plan.spec.duration;

        // Global app index → cell slot, for mapping merged arrivals onto
        // this cell's apps without a search. Only this cell's members are
        // meaningful entries.
        let mut slot_of = vec![0u32; plan.spec.apps.len()];
        for (slot, &g) in globals.iter().enumerate() {
            slot_of[g as usize] = slot as u32;
        }

        // Per-app platforms, payloads, and counters. Pools are pure
        // functions of (input kind, size, samples): memoize per cell.
        let setup = ProfGuard::enter("fleet/setup");
        let mut pools: BTreeMap<(bool, u32), RequestPool> = BTreeMap::new();
        let mut apps = Vec::with_capacity(globals.len());
        for &g in globals {
            let dep = &plan.deployments[g as usize];
            let mut platform = dep.build(seed.substream_indexed("fleet-app", u64::from(g)))?;
            let expected = plan.spec.apps[g as usize]
                .process
                .expected_requests(duration);
            platform.reserve(expected.ceil() as usize + 8);
            let image = dep.model.profile().image_input;
            let kind = if image { InputKind::Image } else { InputKind::Text };
            let pool = pools.entry((image, dep.samples_per_request)).or_insert_with(|| {
                RequestPool::generate(kind, self.pool_size)
                    .with_samples_per_request(dep.samples_per_request)
            });
            // One fixed payload per app: tenants re-send the same artifact.
            let payload = pool.pick(&mut seed.substream_indexed("app-payload", u64::from(g)).rng());
            apps.push(AppState {
                platform,
                global: g,
                payload_bytes: payload.size_bytes,
                inferences: dep.inference_repeats.max(1),
                net_in: self.network.transfer_time(payload.size_bytes),
                submitted: 0,
                resolved: 0,
                ok: 0,
                queue_full: 0,
                timeout: 0,
                rejected: 0,
                throttled: 0,
                crashed: 0,
                latency: LogLinearHistogram::default(),
            });
        }
        let stream = plan
            .spec
            .arrival_stream_for(seed, globals.iter().copied());
        drop(setup);

        let engine_guard = ProfGuard::enter("fleet/engine");
        let mut records = tracing.then(MemoryRecorder::new);
        let mut buffer: Vec<(SimDuration, PlatformEvent)> = Vec::new();
        let mut resp_scratch: Vec<ServingResponse> = Vec::new();
        let mut arrival_scratch: Vec<(SimTime, FleetEvent)> = Vec::with_capacity(ARRIVAL_BURST);
        let queue = EventQueue::with_kernel_and_capacity(
            self.kernel,
            (globals.len() * 4 + ARRIVAL_BURST).max(64),
        );
        let mut engine = Engine::with_queue(
            FleetSystem {
                apps,
                stream,
                slot_of,
                outstanding_arrivals: 0,
                buffer: &mut buffer,
                resp_scratch: &mut resp_scratch,
                arrival_scratch: &mut arrival_scratch,
                rec: records.as_mut().map(|r| r as &mut dyn Recorder),
                timeout: plan.timeout,
                response_net: self.network.response_time(),
            },
            queue,
        );

        let horizon = SimTime::ZERO + duration + plan.timeout + SimDuration::from_secs(30);

        // Platform startups at t = 0, then the first arrival burst. Every
        // later burst is pulled when the previous one's last arrival
        // fires: the queue holds at most ARRIVAL_BURST pending arrivals
        // per cell at any instant.
        for slot in 0..engine.system.apps.len() {
            let sys = &mut engine.system;
            {
                let _region = RegionGuard::enter(Region::Platform);
                let _p = ProfGuard::enter(sys.apps[slot].platform.prof_label());
                let rec = sys.rec.as_deref_mut().map(|r| r as &mut dyn Recorder);
                let mut sched = PlatformScheduler::with_recorder(SimTime::ZERO, sys.buffer, rec);
                sys.apps[slot].platform.start(&mut sched, SimTime::ZERO + duration);
            }
            let s = slot as u32;
            engine.queue.schedule_many_after(
                sys.buffer
                    .drain(..)
                    .map(|(d, e)| (d, FleetEvent::Platform(s, e))),
            );
        }
        engine.system.refill_arrivals(&mut engine.queue);

        engine.run_until(horizon);
        engine.queue.advance_to(horizon);
        let engine_events = engine.events_processed();
        drop(engine_guard);

        // Teardown mirrors the single-app executor: rented capacity is
        // released shortly after the workload ends; anything still
        // unresolved at the horizon counts as a client timeout.
        let _resolve = ProfGuard::enter("fleet/resolve");
        let teardown = (SimTime::ZERO + duration + SimDuration::from_secs(30)).min(horizon);
        let sys = &mut engine.system;
        let mut out_apps = Vec::with_capacity(sys.apps.len());
        for slot in 0..sys.apps.len() {
            {
                let _region = RegionGuard::enter(Region::Platform);
                let _p = ProfGuard::enter(sys.apps[slot].platform.prof_label());
                sys.apps[slot].platform.finalize(teardown);
                sys.apps[slot]
                    .platform
                    .drain_responses_into(sys.resp_scratch);
            }
            let mut pending = std::mem::take(sys.resp_scratch);
            for resp in pending.drain(..) {
                sys.resolve(slot, resp);
            }
            *sys.resp_scratch = pending;
            let a = &mut sys.apps[slot];
            a.timeout += a.submitted - a.resolved;
            let report = a.platform.report();
            if let Some(r) = sys.rec.as_deref_mut() {
                r.record(&TraceEvent {
                    at: horizon,
                    kind: EventKind::AppClosed {
                        app: a.global,
                        requests: a.submitted,
                        cost_micro_dollars: report.cost.total().as_micro_dollars(),
                    },
                });
            }
            out_apps.push(AppCellResult {
                submitted: a.submitted,
                ok: a.ok,
                queue_full: a.queue_full,
                timeout: a.timeout,
                rejected: a.rejected,
                throttled: a.throttled,
                crashed: a.crashed,
                latency: std::mem::take(&mut a.latency),
                report,
            });
        }

        Ok(FleetCellOut {
            apps: out_apps,
            engine_events,
            records: records.map(|r| r.into_events()).unwrap_or_default(),
        })
    }
}

/// Per-app rollup produced inside a cell (global naming happens later).
struct AppCellResult {
    submitted: u64,
    ok: u64,
    queue_full: u64,
    timeout: u64,
    rejected: u64,
    throttled: u64,
    crashed: u64,
    latency: LogLinearHistogram,
    report: PlatformReport,
}

struct FleetCellOut {
    /// One entry per cell slot, slot order (= ascending global index).
    apps: Vec<AppCellResult>,
    engine_events: u64,
    records: Vec<TraceEvent>,
}

/// Live state of one app inside a cell.
struct AppState {
    platform: Platform,
    global: u32,
    payload_bytes: u64,
    inferences: u32,
    /// Request-path network time for this app's fixed payload.
    net_in: SimDuration,
    submitted: u64,
    resolved: u64,
    ok: u64,
    queue_full: u64,
    timeout: u64,
    rejected: u64,
    throttled: u64,
    crashed: u64,
    latency: LogLinearHistogram,
}

/// Events of the fleet engine.
#[derive(Debug, Clone)]
enum FleetEvent {
    /// A merged trace arrival fires for cell slot `.0`; handling it pulls
    /// and schedules the next merged arrival.
    Arrive(u32),
    /// An arrival's payload finishes its network transfer and reaches slot
    /// `.0`'s platform.
    Deliver(u32),
    /// A platform-internal event for slot `.0`.
    Platform(u32, PlatformEvent),
}

struct FleetSystem<'r> {
    /// Cell-local apps, slot order.
    apps: Vec<AppState>,
    /// Lazy k-way merge of this cell's arrival substreams.
    stream: slsb_workload::FleetArrivalStream,
    /// Global app index → this cell's slot (valid for members only).
    slot_of: Vec<u32>,
    /// Arrive events scheduled from the current burst and not yet fired;
    /// when it hits zero the next burst is pulled from the merge.
    outstanding_arrivals: u32,
    /// Platform scheduling buffer, reused across calls.
    buffer: &'r mut Vec<(SimDuration, PlatformEvent)>,
    /// Response drain scratch, reused across calls.
    resp_scratch: &'r mut Vec<ServingResponse>,
    /// Arrival-burst scratch, reused across refills (arena-style: grows
    /// once to ARRIVAL_BURST and is drained in place every refill).
    arrival_scratch: &'r mut Vec<(SimTime, FleetEvent)>,
    /// Trace sink threaded into platform schedulers, if recording.
    rec: Option<&'r mut dyn Recorder>,
    /// Per-request client timeout.
    timeout: SimDuration,
    /// Response-path network time.
    response_net: SimDuration,
}

impl FleetSystem<'_> {
    /// Pulls up to [`ARRIVAL_BURST`] merged arrivals into the scratch
    /// buffer and hands them to the kernel in one `schedule_many` call.
    /// The merge yields nondecreasing times, so everything pulled here is
    /// at or after the queue's current instant.
    fn refill_arrivals(&mut self, queue: &mut EventQueue<FleetEvent>) {
        debug_assert!(self.arrival_scratch.is_empty());
        while self.arrival_scratch.len() < ARRIVAL_BURST {
            match self.stream.next() {
                Some((t, global)) => {
                    let slot = self.slot_of[global as usize];
                    self.arrival_scratch.push((t, FleetEvent::Arrive(slot)));
                }
                None => break,
            }
        }
        self.outstanding_arrivals = self.arrival_scratch.len() as u32;
        if !self.arrival_scratch.is_empty() {
            queue.schedule_many(self.arrival_scratch.drain(..));
        }
    }
    fn with_platform<R>(
        &mut self,
        queue: &mut EventQueue<FleetEvent>,
        slot: usize,
        f: impl FnOnce(&mut Platform, &mut PlatformScheduler<'_>) -> R,
    ) -> R {
        let r = {
            let _region = RegionGuard::enter(Region::Platform);
            let _p = ProfGuard::enter(self.apps[slot].platform.prof_label());
            let rec = self.rec.as_deref_mut().map(|r| r as &mut dyn Recorder);
            let mut sched = PlatformScheduler::with_recorder(queue.now(), self.buffer, rec);
            f(&mut self.apps[slot].platform, &mut sched)
        };
        if !self.buffer.is_empty() {
            let s = slot as u32;
            queue.schedule_many_after(
                self.buffer
                    .drain(..)
                    .map(|(d, e)| (d, FleetEvent::Platform(s, e))),
            );
        }
        r
    }

    fn drain(&mut self, slot: usize) {
        // Most events complete nothing (arrivals, deliveries, reclaim
        // checks), so probe before paying for scope guards and the
        // buffer hand-off.
        if !self.apps[slot].platform.has_responses() {
            return;
        }
        {
            let _region = RegionGuard::enter(Region::Platform);
            let _p = ProfGuard::enter(self.apps[slot].platform.prof_label());
            self.apps[slot]
                .platform
                .drain_responses_into(self.resp_scratch);
        }
        if self.resp_scratch.is_empty() {
            return;
        }
        // Swap the scratch out so `resolve` can borrow `self` freely;
        // capacity is preserved across calls either way.
        let mut pending = std::mem::take(self.resp_scratch);
        for resp in pending.drain(..) {
            self.resolve(slot, resp);
        }
        *self.resp_scratch = pending;
    }

    /// Resolves one response against the client timeout and folds it into
    /// the app's counters (emitting a span when recording). The request id
    /// encodes the trace-arrival instant in microseconds, so end-to-end
    /// time needs no per-request bookkeeping.
    fn resolve(&mut self, slot: usize, resp: ServingResponse) {
        let arrival = SimTime::from_micros(resp.id.0);
        let receive = resp.completed_at + self.response_net;
        let e2e = receive.saturating_duration_since(arrival);
        let a = &mut self.apps[slot];
        a.resolved += 1;
        let outcome = if e2e > self.timeout {
            Outcome::Failure(FailureReason::ClientTimeout)
        } else {
            resp.outcome
        };
        match outcome {
            Outcome::Success => {
                a.ok += 1;
                a.latency.record(e2e.as_secs_f64());
            }
            Outcome::Failure(FailureReason::QueueFull) => a.queue_full += 1,
            Outcome::Failure(FailureReason::ClientTimeout) => a.timeout += 1,
            Outcome::Failure(FailureReason::Rejected) => a.rejected += 1,
            Outcome::Failure(FailureReason::Throttled) => a.throttled += 1,
            Outcome::Failure(FailureReason::Crashed) => a.crashed += 1,
            Outcome::Failure(FailureReason::RetriesExhausted) => a.timeout += 1,
        }
        if let Some(r) = self.rec.as_deref_mut() {
            if r.enabled() {
                let _region = RegionGuard::enter(Region::Obs);
                let delivered = arrival + a.net_in;
                let exec = resp
                    .completed_at
                    .saturating_duration_since(delivered + resp.queued);
                r.record(&TraceEvent {
                    at: receive,
                    kind: EventKind::RequestSpan {
                        request: resp.id.0,
                        client: a.global,
                        invocation: resp.id.0,
                        arrival,
                        batch: SimDuration::ZERO,
                        net_in: a.net_in,
                        queued: resp.queued,
                        exec,
                        net_out: self.response_net,
                        cold: resp.cold_start.is_some(),
                        outcome: match outcome {
                            Outcome::Success => SpanOutcome::Success,
                            Outcome::Failure(FailureReason::QueueFull) => SpanOutcome::QueueFull,
                            Outcome::Failure(FailureReason::ClientTimeout) => {
                                SpanOutcome::ClientTimeout
                            }
                            Outcome::Failure(FailureReason::Rejected) => SpanOutcome::Rejected,
                            Outcome::Failure(FailureReason::Throttled) => SpanOutcome::Throttled,
                            Outcome::Failure(FailureReason::Crashed) => SpanOutcome::Crashed,
                            Outcome::Failure(FailureReason::RetriesExhausted) => {
                                SpanOutcome::RetriesExhausted
                            }
                        },
                    },
                });
            }
        }
    }
}

impl System for FleetSystem<'_> {
    type Ev = FleetEvent;

    fn handle(&mut self, queue: &mut EventQueue<FleetEvent>, at: SimTime, ev: FleetEvent) {
        match ev {
            FleetEvent::Arrive(slot) => {
                let s = slot as usize;
                self.apps[s].submitted += 1;
                queue.schedule_at(at + self.apps[s].net_in, FleetEvent::Deliver(slot));
                // When the burst drains, pull the next one: arrival-side
                // memory stays O(apps + burst), independent of the
                // request count.
                self.outstanding_arrivals -= 1;
                if self.outstanding_arrivals == 0 {
                    self.refill_arrivals(queue);
                }
            }
            FleetEvent::Deliver(slot) => {
                let s = slot as usize;
                let arrival =
                    SimTime::from_micros(at.as_micros() - self.apps[s].net_in.as_micros());
                let req = ServingRequest {
                    id: RequestId(arrival.as_micros()),
                    arrival: at,
                    payload_bytes: self.apps[s].payload_bytes,
                    inferences: self.apps[s].inferences,
                };
                self.with_platform(queue, s, |p, sched| p.submit(sched, req));
                self.drain(s);
            }
            FleetEvent::Platform(slot, e) => {
                let s = slot as usize;
                self.with_platform(queue, s, |p, sched| p.handle(sched, e));
                self.drain(s);
            }
        }
    }
}

/// Metrics rollup of a fleet run: fleet-wide counters plus per-app
/// distribution histograms (requests and cost over apps).
pub fn fleet_metrics(run: &FleetRunResult) -> MetricsRegistry {
    let _p = ProfGuard::enter("analyzer/fleet-metrics");
    let mut m = MetricsRegistry::new();
    m.inc("fleet_apps", run.apps.len() as u64);
    m.inc("requests_total", run.requests);
    m.inc("engine_events", run.engine_events);
    m.inc("cold_starts", run.platform.cold_started);
    m.inc("invocations", run.platform.invocations);
    for a in &run.apps {
        m.inc("requests_ok", a.ok);
        m.inc("requests_queue_full", a.queue_full);
        m.inc("requests_timeout", a.timeout);
        m.inc("requests_rejected", a.rejected);
        m.inc("requests_throttled", a.throttled);
        m.inc("requests_crashed", a.crashed);
        m.observe("app_requests", a.requests as f64);
        m.observe("app_cost_dollars", a.cost_dollars);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use slsb_model::{ModelKind, RuntimeKind};
    use slsb_platform::PlatformKind;

    fn profile() -> Deployment {
        Deployment::new(
            PlatformKind::AwsServerless,
            ModelKind::MobileNet,
            RuntimeKind::Ort14,
        )
    }

    fn scenario(apps: u32, rate: f64, secs: f64) -> FleetScenario {
        let mut profiles = BTreeMap::new();
        profiles.insert("edge".to_string(), profile());
        profiles.insert("bulk".to_string(), profile().with_memory_mb(4096.0));
        FleetScenario {
            name: "fleet-test".into(),
            seed: 11,
            fleet: FleetSource::Synth {
                apps,
                zipf_exponent: 1.1,
                total_rate: rate,
                mean_busy_s: 10.0,
                median_idle_s: 30.0,
                idle_sigma: 1.5,
                duration_s: secs,
            },
            profiles,
            timeout_s: 60.0,
            policy: None,
        }
    }

    #[test]
    fn empty_fleet_is_a_typed_error_not_a_panic() {
        // Scenario resolution rejects zero-app sources, but FleetPlan is
        // an open struct: a caller can hand the runner an empty plan
        // directly. The runner must refuse it with the typed error
        // instead of reporting a vacuous 100 % success.
        let plan = FleetPlan {
            spec: slsb_workload::FleetSpec {
                name: "empty".into(),
                duration: SimDuration::from_secs(60),
                apps: vec![],
            },
            deployments: vec![],
            timeout: SimDuration::from_secs(60),
            warnings: vec![],
        };
        let err = FleetRunner::default().run(&plan, Seed(1)).unwrap_err();
        assert!(matches!(err, FleetRunError::EmptyFleet), "{err}");
        assert!(err.to_string().contains("no apps"));
        let mut rec = MemoryRecorder::new();
        let err = FleetRunner::default()
            .run_recorded(&plan, Seed(1), &mut rec)
            .unwrap_err();
        assert!(matches!(err, FleetRunError::EmptyFleet), "{err}");
    }

    #[test]
    fn partition_covers_every_app_exactly_once() {
        let plan = scenario(100, 40.0, 200.0).resolve(None).expect("resolve");
        let part = FleetPartition::compute(&plan, FLEET_CELLS);
        assert_eq!(part.cells.len(), FLEET_CELLS);
        let mut seen = vec![0u32; 100];
        for cell in &part.cells {
            // Slot order within a cell is ascending global index — the
            // contract the stitch step relies on.
            assert!(cell.windows(2).all(|w| w[0] < w[1]));
            for &g in cell {
                seen[g as usize] += 1;
            }
        }
        assert!(seen.iter().all(|&n| n == 1), "coverage {seen:?}");
    }

    #[test]
    fn partition_balances_zipf_weight() {
        // Under Zipf(1.1) popularity the old `app % cells` rule left the
        // head app's cell with ~head + tail/cells of the weight. LPT must
        // keep the heaviest cell within 2× the mean unless a single
        // indivisible head app already exceeds that (then the head cell
        // must hold exactly that app and nothing else).
        let plan = scenario(200, 100.0, 300.0).resolve(None).expect("resolve");
        let part = FleetPartition::compute(&plan, FLEET_CELLS);
        let b = part.balance();
        assert!(b.mean_cell > 0.0);
        assert!(
            b.is_balanced(),
            "max cell {} vs mean {} (max app {}) exceeds the balance gate",
            b.max_cell,
            b.mean_cell,
            b.max_app
        );
        // The modulo partition would fail this gate: its head cell holds
        // the head app plus a 1/cells share of the tail.
        let modulo_head: f64 = plan
            .spec
            .apps
            .iter()
            .enumerate()
            .filter(|(i, _)| i % FLEET_CELLS == 0)
            .map(|(_, a)| a.process.expected_requests(plan.spec.duration) + 1.0)
            .sum();
        assert!(
            modulo_head > b.max_cell,
            "modulo head cell {modulo_head} should be heavier than LPT max {}",
            b.max_cell
        );
    }

    #[test]
    fn partition_is_a_pure_function_of_the_plan() {
        let plan = scenario(60, 30.0, 180.0).resolve(None).expect("resolve");
        let a = FleetPartition::compute(&plan, FLEET_CELLS);
        let b = FleetPartition::compute(&plan, FLEET_CELLS);
        assert_eq!(a, b);
    }

    #[test]
    fn fleet_scenario_json_roundtrip() {
        let sc = scenario(40, 20.0, 120.0);
        let parsed = FleetScenario::from_json(&sc.to_json()).expect("roundtrip");
        assert_eq!(parsed, sc);
    }

    #[test]
    fn fleet_run_is_identical_across_worker_budgets() {
        // Plan-purity property over the whole worker-budget axis: the
        // partition is a function of the plan alone, so every budget in
        // 1/2/4/8 must produce byte-identical per-app results, counters,
        // platform rollups, and metrics snapshots. Two plan shapes so a
        // cells-vs-apps boundary (apps < FLEET_CELLS) is covered too.
        for (apps, rate, duration, seed) in [(40, 25.0, 150.0, 11), (9, 12.0, 90.0, 23)] {
            let plan = scenario(apps, rate, duration).resolve(None).expect("resolve");
            let seed = Seed(seed);
            let one = FleetRunner::default().run(&plan, seed).expect("run");
            assert!(one.requests > 0, "fleet produced no requests");
            let one_apps = serde_json::to_string(&one.apps).unwrap();
            let one_metrics = serde_json::to_string(&fleet_metrics(&one)).unwrap();
            for workers in [2, 4, 8] {
                let n = FleetRunner::default()
                    .with_workers(workers)
                    .run(&plan, seed)
                    .expect("run");
                assert_eq!(one_apps, serde_json::to_string(&n.apps).unwrap(), "workers={workers}");
                assert_eq!(one.requests, n.requests, "workers={workers}");
                assert_eq!(one.engine_events, n.engine_events, "workers={workers}");
                assert_eq!(
                    format!("{:?}", one.platform),
                    format!("{:?}", n.platform),
                    "workers={workers}"
                );
                assert_eq!(
                    one_metrics,
                    serde_json::to_string(&fleet_metrics(&n)).unwrap(),
                    "workers={workers}"
                );
            }
        }
    }

    #[test]
    fn fleet_recording_is_identical_across_worker_budgets() {
        let plan = scenario(24, 15.0, 90.0).resolve(None).expect("resolve");
        let seed = Seed(3);
        let mut rec1 = MemoryRecorder::new();
        FleetRunner::default()
            .run_recorded(&plan, seed, &mut rec1)
            .expect("run");
        assert!(!rec1.events().is_empty());
        let baseline = serde_json::to_string(&rec1.events().to_vec()).unwrap();
        for workers in [2, 4, 8] {
            let mut rec4 = MemoryRecorder::new();
            FleetRunner::default()
                .with_workers(workers)
                .run_recorded(&plan, seed, &mut rec4)
                .expect("run");
            assert_eq!(
                baseline,
                serde_json::to_string(&rec4.events().to_vec()).unwrap(),
                "workers={workers}"
            );
        }
        let closes = rec1
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::RunClosed { .. }))
            .count();
        assert_eq!(closes, 1, "exactly one merged RunClosed");
        let app_closes = rec1
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::AppClosed { .. }))
            .count();
        assert_eq!(app_closes, 24, "one AppClosed per app");
    }

    #[test]
    fn fleet_accounts_every_arrival() {
        let plan = scenario(16, 20.0, 120.0).resolve(None).expect("resolve");
        let seed = Seed(5);
        let run = FleetRunner::default().run(&plan, seed).expect("run");
        let expected = plan.spec.arrival_stream(seed).count() as u64;
        assert_eq!(run.requests, expected, "every merged arrival submitted");
        let resolved: u64 = run
            .apps
            .iter()
            .map(|a| a.ok + a.queue_full + a.timeout + a.rejected + a.throttled + a.crashed)
            .sum();
        assert_eq!(resolved, run.requests, "every request resolved somewhere");
        assert!(run.success_ratio() > 0.5, "fleet mostly succeeds");
    }

    #[test]
    fn fleet_metrics_rolls_up() {
        let plan = scenario(12, 10.0, 90.0).resolve(None).expect("resolve");
        let run = FleetRunner::default().run(&plan, Seed(2)).expect("run");
        let m = fleet_metrics(&run);
        assert_eq!(m.counter("fleet_apps"), 12);
        assert_eq!(m.counter("requests_total"), run.requests);
        assert!(m.histogram("app_requests").is_some());
    }

    #[test]
    fn trace_replay_applies_profile_hints() {
        let summary = TraceSummary {
            schema: slsb_workload::FLEET_TRACE_SCHEMA.to_string(),
            name: "hints".into(),
            bucket_s: 60.0,
            buckets: 2,
            apps: vec![slsb_workload::TraceApp {
                name: "a".into(),
                profile: "edge".into(),
                invocations: vec![3, 1],
                duration_ms_p50: Some(80.0),
                memory_mb_p50: Some(3072.0),
                artifact_mb: Some(25.0),
            }],
        };
        let mut profiles = BTreeMap::new();
        profiles.insert("edge".to_string(), profile());
        let sc = FleetScenario {
            name: "trace-test".into(),
            seed: 1,
            fleet: FleetSource::Trace {
                path: "raw.json".into(),
            },
            profiles,
            timeout_s: 60.0,
            policy: None,
        };
        let plan = sc.resolve(Some(&summary.to_json())).expect("resolve");
        assert_eq!(plan.deployments[0].memory_mb, 3072.0);
        assert!(plan.deployments[0].extra_download_mb >= 25.0);
        let run = FleetRunner::default().run(&plan, Seed(1)).expect("run");
        assert_eq!(run.requests, 4, "bucket replay is exact");
    }

    #[test]
    fn policy_less_profiles_warn_and_fleet_policy_silences() {
        let sc = scenario(8, 10.0, 60.0);
        let plan = sc.resolve(None).expect("resolve");
        // Both profiles ("bulk", "edge") pin no policy → one warning each,
        // in sorted profile order.
        assert_eq!(
            plan.warnings,
            vec![
                FleetWarning::ProfileWithoutPolicy {
                    profile: "bulk".into()
                },
                FleetWarning::ProfileWithoutPolicy {
                    profile: "edge".into()
                },
            ]
        );
        assert!(plan.warnings[0].to_string().contains("bulk"));

        // A fleet-wide policy silences the warning and lands on every app.
        let mut pinned = sc.clone();
        pinned.policy = PolicySet::by_name("hybrid_histogram");
        assert!(pinned.policy.is_some());
        let plan = pinned.resolve(None).expect("resolve");
        assert!(plan.warnings.is_empty());
        assert!(plan
            .deployments
            .iter()
            .all(|d| d.policy == pinned.policy));

        // A profile-level policy also silences its own warning.
        let mut per_profile = sc.clone();
        for dep in per_profile.profiles.values_mut() {
            dep.policy = Some(PolicySet::default());
        }
        let plan = per_profile.resolve(None).expect("resolve");
        assert!(plan.warnings.is_empty());
    }

    #[test]
    fn fleet_policy_roundtrips_through_json() {
        let mut sc = scenario(4, 5.0, 30.0);
        sc.policy = PolicySet::by_name("fixed");
        let parsed = FleetScenario::from_json(&sc.to_json()).expect("roundtrip");
        assert_eq!(parsed, sc);
        assert_eq!(parsed.policy, sc.policy);
    }

    #[test]
    fn missing_trace_and_unknown_profile_are_errors() {
        let mut profiles = BTreeMap::new();
        profiles.insert("edge".to_string(), profile());
        let sc = FleetScenario {
            name: "t".into(),
            seed: 1,
            fleet: FleetSource::Trace {
                path: "raw.json".into(),
            },
            profiles,
            timeout_s: 60.0,
            policy: None,
        };
        assert!(matches!(
            sc.resolve(None),
            Err(FleetScenarioError::MissingTrace(_))
        ));
        let summary = TraceSummary {
            schema: slsb_workload::FLEET_TRACE_SCHEMA.to_string(),
            name: "x".into(),
            bucket_s: 60.0,
            buckets: 1,
            apps: vec![slsb_workload::TraceApp {
                name: "a".into(),
                profile: "nope".into(),
                invocations: vec![1],
                duration_ms_p50: None,
                memory_mb_p50: None,
                artifact_mb: None,
            }],
        };
        assert!(matches!(
            sc.resolve(Some(&summary.to_json())),
            Err(FleetScenarioError::UnknownProfile { .. })
        ));
    }
}
