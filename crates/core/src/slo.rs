//! Service-level objectives: the vocabulary a serving deployment is
//! judged against, and the evaluator that turns a run's per-request
//! outcomes into attainment and error-budget numbers.
//!
//! An [`SloSpec`] carries up to four objectives — p50 latency, p99
//! latency, success ratio, and cost per 1 000 requests — plus optional
//! per-tenant (per-client) overrides of the latency/success targets.
//! Specs come from a scenario file's `slo` section or the `--slo` CLI
//! flag's compact `key=value` syntax; [`SloSpec::evaluate`] scores a set
//! of [`SloSample`]s into an [`SloReport`].
//!
//! Error budget convention: `budget_consumed` is the fraction of the
//! allowed slack actually used, so `1.0` means the objective is exactly
//! at its target and anything above is a miss. For the success ratio the
//! slack is the allowed failure fraction `1 - target`; for latency
//! percentiles the slack is the fraction of requests allowed above the
//! target latency (`0.5` for p50, `0.01` for p99); for cost it is the
//! target itself. Budgets are capped at [`BUDGET_CAP`] so degenerate
//! runs (zero allowed failures, all requests failing) stay finite and
//! JSON-serializable.

use serde::{Deserialize, Serialize};
use slsb_sim::SampleSet;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Upper cap on reported `budget_consumed`, keeping degenerate ratios
/// finite (vendored serde_json renders non-finite floats as `null`).
pub const BUDGET_CAP: f64 = 1e6;

/// Latency/success/cost targets. All fields optional; omitted targets
/// are simply not evaluated.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SloTargets {
    /// Median latency target, seconds.
    #[serde(default = "Default::default")]
    pub p50_s: Option<f64>,
    /// 99th-percentile latency target, seconds.
    #[serde(default = "Default::default")]
    pub p99_s: Option<f64>,
    /// Minimum fraction of requests that must succeed, in `(0, 1]`.
    #[serde(default = "Default::default")]
    pub success_ratio: Option<f64>,
    /// Maximum cost per 1 000 requests, dollars.
    #[serde(default = "Default::default")]
    pub cost_per_1k: Option<f64>,
}

impl SloTargets {
    fn is_empty(&self) -> bool {
        self.p50_s.is_none()
            && self.p99_s.is_none()
            && self.success_ratio.is_none()
            && self.cost_per_1k.is_none()
    }

    fn validate(&self, what: &str) -> Result<(), String> {
        for (name, v) in [("p50", self.p50_s), ("p99", self.p99_s), ("cost1k", self.cost_per_1k)] {
            if let Some(v) = v {
                if !v.is_finite() || v <= 0.0 {
                    return Err(format!("{what}: {name} target must be positive, got {v}"));
                }
            }
        }
        if let Some(sr) = self.success_ratio {
            if !sr.is_finite() || sr <= 0.0 || sr > 1.0 {
                return Err(format!("{what}: success-ratio target must be in (0, 1], got {sr}"));
            }
        }
        if let (Some(p50), Some(p99)) = (self.p50_s, self.p99_s) {
            if p99 < p50 {
                return Err(format!("{what}: p99 target {p99} is below the p50 target {p50}"));
            }
        }
        Ok(())
    }
}

/// A full SLO: run-wide targets plus per-tenant (client index) overrides.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SloSpec {
    /// Run-wide targets, evaluated over all requests.
    #[serde(default = "Default::default")]
    pub targets: SloTargets,
    /// Per-tenant overrides keyed by client index (stringly keyed so the
    /// scenario JSON reads naturally). Cost is run-wide only; tenant
    /// cost targets are rejected at validation.
    #[serde(default = "Default::default")]
    pub tenants: BTreeMap<String, SloTargets>,
}

impl SloSpec {
    /// True when no objective is set anywhere.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty() && self.tenants.values().all(SloTargets::is_empty)
    }

    /// Sanity-checks every target.
    pub fn validate(&self) -> Result<(), String> {
        self.targets.validate("slo")?;
        for (tenant, t) in &self.tenants {
            tenant
                .parse::<u32>()
                .map_err(|_| format!("slo: tenant key {tenant:?} is not a client index"))?;
            t.validate(&format!("slo tenant {tenant}"))?;
            if t.cost_per_1k.is_some() {
                return Err(format!(
                    "slo tenant {tenant}: cost-per-1k is run-wide only (billing is not attributed per tenant)"
                ));
            }
        }
        Ok(())
    }

    /// Parses the compact CLI syntax: comma-separated `key=value` pairs
    /// where the key is `p50`, `p99`, `sr`, or `cost1k`, optionally
    /// suffixed `@<client>` for a tenant override — e.g.
    /// `p99=0.5,sr=0.99,cost1k=0.05,p99@2=1.0`.
    pub fn parse(spec: &str) -> Result<SloSpec, String> {
        let mut out = SloSpec::default();
        for pair in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("--slo: expected key=value, got {pair:?}"))?;
            let value: f64 = value
                .trim()
                .parse()
                .map_err(|_| format!("--slo: {key}: not a number: {value:?}"))?;
            let key = key.trim();
            let (obj, tenant) = match key.split_once('@') {
                Some((obj, tenant)) => (obj, Some(tenant)),
                None => (key, None),
            };
            let targets = match tenant {
                Some(t) => {
                    t.parse::<u32>()
                        .map_err(|_| format!("--slo: tenant {t:?} is not a client index"))?;
                    out.tenants.entry(t.to_string()).or_default()
                }
                None => &mut out.targets,
            };
            match obj {
                "p50" => targets.p50_s = Some(value),
                "p99" => targets.p99_s = Some(value),
                "sr" => targets.success_ratio = Some(value),
                "cost1k" => targets.cost_per_1k = Some(value),
                other => {
                    return Err(format!(
                        "--slo: unknown objective {other:?} (expected p50, p99, sr, or cost1k)"
                    ))
                }
            }
        }
        out.validate()?;
        Ok(out)
    }

    /// Scores per-request samples (plus the run's total cost, when known)
    /// against this spec. `cost` is in dollars for the whole run; pass
    /// `None` when the caller has no billing data (e.g. the trace-replay
    /// path) and cost objectives will be skipped with a note.
    pub fn evaluate(&self, samples: &[SloSample], cost: Option<f64>) -> SloReport {
        let mut objectives = Vec::new();
        eval_targets(&self.targets, None, samples, cost, &mut objectives);
        for (tenant, targets) in &self.tenants {
            let tid: u32 = tenant.parse().unwrap_or(u32::MAX);
            let subset: Vec<SloSample> = samples
                .iter()
                .filter(|s| s.client == tid)
                .copied()
                .collect();
            eval_targets(targets, Some(tenant.clone()), &subset, None, &mut objectives);
        }
        let attained = objectives.iter().all(|o| o.attained);
        SloReport {
            objectives,
            attained,
        }
    }
}

/// One request's contribution to SLO scoring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSample {
    /// Client (tenant) index the request belonged to.
    pub client: u32,
    /// Whether the request ultimately succeeded.
    pub ok: bool,
    /// End-to-end latency, seconds (failed requests still carry the
    /// latency of their failed span; only successes count toward latency
    /// objectives).
    pub latency_s: f64,
}

/// A single scored objective.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloObjective {
    /// Which objective: `"p50"`, `"p99"`, `"success_ratio"`, `"cost_per_1k"`.
    pub objective: String,
    /// Tenant (client index as a string) for overrides, `None` run-wide.
    #[serde(default = "Default::default")]
    pub tenant: Option<String>,
    /// The target value.
    pub target: f64,
    /// The measured value (`null`-free: degenerate cases are capped).
    pub actual: f64,
    /// Whether the measurement met the target.
    pub attained: bool,
    /// Fraction of the error budget consumed (1.0 = exactly at target),
    /// capped at [`BUDGET_CAP`].
    pub budget_consumed: f64,
}

/// The scored SLO for one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloReport {
    /// Every evaluated objective, run-wide first, then tenants in key
    /// order.
    pub objectives: Vec<SloObjective>,
    /// True when every objective was met.
    pub attained: bool,
}

impl SloReport {
    /// Objectives that missed their target.
    pub fn misses(&self) -> impl Iterator<Item = &SloObjective> {
        self.objectives.iter().filter(|o| !o.attained)
    }

    /// The `slsb run` / `slsb trace` text rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "slo           : {} ({}/{} objectives attained)",
            if self.attained { "ATTAINED" } else { "MISSED" },
            self.objectives.iter().filter(|o| o.attained).count(),
            self.objectives.len(),
        );
        for o in &self.objectives {
            let scope = match &o.tenant {
                Some(t) => format!("{}@{t}", o.objective),
                None => o.objective.clone(),
            };
            let _ = writeln!(
                out,
                "  {:<18} target {:>10.4}  actual {:>10.4}  budget {:>8.2}x  {}",
                scope,
                o.target,
                o.actual,
                o.budget_consumed,
                if o.attained { "ok" } else { "MISS" },
            );
        }
        out
    }
}

fn cap(x: f64) -> f64 {
    if x.is_finite() {
        x.min(BUDGET_CAP)
    } else {
        BUDGET_CAP
    }
}

fn eval_targets(
    t: &SloTargets,
    tenant: Option<String>,
    samples: &[SloSample],
    cost: Option<f64>,
    out: &mut Vec<SloObjective>,
) {
    let total = samples.len();
    let ok: Vec<&SloSample> = samples.iter().filter(|s| s.ok).collect();

    let mut latency_objective = |name: &str, target: f64, q: f64, slack: f64| {
        let mut set = SampleSet::new();
        for s in &ok {
            set.push(s.latency_s);
        }
        // No successful request ⇒ the percentile is unbounded: report the
        // cap, full budget burned.
        let actual = set.percentile(q).map_or(BUDGET_CAP, cap);
        let over = ok.iter().filter(|s| s.latency_s > target).count();
        let frac_over = if ok.is_empty() {
            1.0
        } else {
            over as f64 / ok.len() as f64
        };
        out.push(SloObjective {
            objective: name.to_string(),
            tenant: tenant.clone(),
            target,
            actual,
            attained: actual <= target,
            budget_consumed: cap(frac_over / slack),
        });
    };
    if let Some(target) = t.p50_s {
        latency_objective("p50", target, 50.0, 0.5);
    }
    if let Some(target) = t.p99_s {
        latency_objective("p99", target, 99.0, 0.01);
    }

    if let Some(target) = t.success_ratio {
        let actual = if total == 0 {
            // No traffic for this tenant: vacuously attained.
            1.0
        } else {
            ok.len() as f64 / total as f64
        };
        let allowed_failures = 1.0 - target;
        let failures = 1.0 - actual;
        let budget = if failures <= 0.0 {
            0.0
        } else if allowed_failures <= 0.0 {
            BUDGET_CAP
        } else {
            cap(failures / allowed_failures)
        };
        out.push(SloObjective {
            objective: "success_ratio".to_string(),
            tenant: tenant.clone(),
            target,
            actual,
            attained: actual >= target,
            budget_consumed: budget,
        });
    }

    if let Some(target) = t.cost_per_1k {
        if let Some(cost) = cost {
            let actual = if total == 0 {
                0.0
            } else {
                cap(cost / total as f64 * 1000.0)
            };
            out.push(SloObjective {
                objective: "cost_per_1k".to_string(),
                tenant: tenant.clone(),
                target,
                actual,
                attained: actual <= target,
                budget_consumed: cap(actual / target),
            });
        }
        // No billing data (trace replay): the objective is skipped rather
        // than scored against a made-up number.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<SloSample> {
        // Client 0: 50 fast successes; client 1: 40 slow successes + 10
        // failures.
        let mut v = Vec::new();
        for _ in 0..50 {
            v.push(SloSample {
                client: 0,
                ok: true,
                latency_s: 0.1,
            });
        }
        for _ in 0..40 {
            v.push(SloSample {
                client: 1,
                ok: true,
                latency_s: 0.9,
            });
        }
        for _ in 0..10 {
            v.push(SloSample {
                client: 1,
                ok: false,
                latency_s: 2.0,
            });
        }
        v
    }

    #[test]
    fn parse_compact_syntax_with_tenant_overrides() {
        let spec = SloSpec::parse("p50=0.2,p99=0.5,sr=0.99,cost1k=0.05,p99@1=1.0").unwrap();
        assert_eq!(spec.targets.p50_s, Some(0.2));
        assert_eq!(spec.targets.p99_s, Some(0.5));
        assert_eq!(spec.targets.success_ratio, Some(0.99));
        assert_eq!(spec.targets.cost_per_1k, Some(0.05));
        assert_eq!(spec.tenants["1"].p99_s, Some(1.0));
        assert!(!spec.is_empty());
        assert!(SloSpec::default().is_empty());
    }

    #[test]
    fn parse_rejects_nonsense() {
        assert!(SloSpec::parse("p51=0.2").is_err());
        assert!(SloSpec::parse("p50").is_err());
        assert!(SloSpec::parse("p50=fast").is_err());
        assert!(SloSpec::parse("p50=-1").is_err());
        assert!(SloSpec::parse("sr=1.5").is_err());
        assert!(SloSpec::parse("p99@zero=1.0").is_err());
        assert!(SloSpec::parse("p50=0.5,p99=0.1").is_err());
        assert!(SloSpec::parse("cost1k@1=0.5").is_err());
    }

    #[test]
    fn evaluation_scores_run_wide_and_tenant_objectives() {
        let spec = SloSpec::parse("p99=1.0,sr=0.95,cost1k=1.0,sr@1=0.95").unwrap();
        let report = spec.evaluate(&samples(), Some(0.05));
        // Run-wide: p99 of successes is 0.9 ≤ 1.0 ok; success ratio is
        // 0.9 < 0.95 miss; cost/1k = 0.05/100*1000 = 0.5 ≤ 1.0 ok.
        // Tenant 1: 40/50 = 0.8 < 0.95 miss.
        assert!(!report.attained);
        let by_name: BTreeMap<String, &SloObjective> = report
            .objectives
            .iter()
            .map(|o| {
                let key = match &o.tenant {
                    Some(t) => format!("{}@{t}", o.objective),
                    None => o.objective.clone(),
                };
                (key, o)
            })
            .collect();
        assert!(by_name["p99"].attained);
        assert!(!by_name["success_ratio"].attained);
        // 10% failures against a 5% allowance: budget 2x overspent.
        assert!((by_name["success_ratio"].budget_consumed - 2.0).abs() < 1e-9);
        assert!(by_name["cost_per_1k"].attained);
        assert!((by_name["cost_per_1k"].actual - 0.5).abs() < 1e-9);
        assert!(!by_name["success_ratio@1"].attained);
        assert!((by_name["success_ratio@1"].actual - 0.8).abs() < 1e-9);

        let text = report.render();
        assert!(text.contains("MISSED"), "{text}");
        assert!(text.contains("success_ratio@1"), "{text}");
        assert_eq!(report.misses().count(), 2);
    }

    #[test]
    fn degenerate_runs_stay_finite_and_serializable() {
        let spec = SloSpec::parse("p99=0.5,sr=1.0").unwrap();
        let all_failed: Vec<SloSample> = (0..5)
            .map(|_| SloSample {
                client: 0,
                ok: false,
                latency_s: 1.0,
            })
            .collect();
        let report = spec.evaluate(&all_failed, Some(1.0));
        for o in &report.objectives {
            assert!(o.actual.is_finite(), "{o:?}");
            assert!(o.budget_consumed.is_finite(), "{o:?}");
            assert!(o.budget_consumed <= BUDGET_CAP);
        }
        let json = serde_json::to_string(&report).unwrap();
        let back: SloReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);

        // Cost objective without billing data is skipped, not faked.
        let spec = SloSpec::parse("cost1k=1.0").unwrap();
        let report = spec.evaluate(&samples(), None);
        assert!(report.objectives.is_empty());
        assert!(report.attained);
    }

    #[test]
    fn scenario_style_json_round_trips() {
        let json = r#"{
            "targets": {"p99_s": 0.5, "success_ratio": 0.99},
            "tenants": {"2": {"p99_s": 1.0}}
        }"#;
        let spec: SloSpec = serde_json::from_str(json).unwrap();
        spec.validate().unwrap();
        assert_eq!(spec.targets.p99_s, Some(0.5));
        assert_eq!(spec.tenants["2"].p99_s, Some(1.0));
        let back: SloSpec = serde_json::from_str(&serde_json::to_string(&spec).unwrap()).unwrap();
        assert_eq!(back, spec);
    }
}
