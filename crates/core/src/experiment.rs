//! Experiment registry: one entry per table/figure of the paper, plus the
//! extension studies. The entries carry identity and provenance; the
//! regeneration logic lives in `slsb-bench` (the `repro` binary and the
//! Criterion benches both call into it).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Every artifact of the paper's evaluation, plus extensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExperimentId {
    /// Figure 4: the generated MMPP workloads.
    Fig4,
    /// Figure 5a–f: latency + success ratio, 8 systems × 3 models × 3
    /// workloads.
    Fig5,
    /// Table 1: costs for all evaluated systems.
    Table1,
    /// Figure 6: serverless vs ManagedML latency/SR timelines.
    Fig6,
    /// Figure 7: ManagedML instance counts over time.
    Fig7,
    /// Figure 8: serverless vs CPU server timelines.
    Fig8,
    /// Figure 9: serverless vs GPU server timelines.
    Fig9,
    /// Figure 10: cold-start vs warm-up sub-stage breakdown.
    Fig10,
    /// Figure 11: serverless instance counts over time.
    Fig11,
    /// Figure 12a–d: container size / download size / input size /
    /// prediction count micro-benchmarks.
    Fig12,
    /// Figure 13: TF1.15 vs ORT1.4 latency across workloads.
    Fig13,
    /// Table 2: serverless costs with ORT1.4.
    Table2,
    /// Figure 14: TF vs ORT cold/warm breakdown.
    Fig14,
    /// Figure 15: memory-size sweep.
    Fig15,
    /// Figure 16: provisioned-concurrency sweep.
    Fig16,
    /// Figure 17: batch-size sweep.
    Fig17,
    /// Extension: adaptive batching vs fixed batching ablation.
    ExtAdaptive,
    /// Extension: design-space navigator demonstration.
    ExtExplorer,
    /// Extension: over-provisioning / scaling-policy ablation.
    ExtScaling,
    /// Extension: MArk-style hybrid (VM + serverless spillover) study.
    ExtHybrid,
}

impl ExperimentId {
    /// All experiments in paper order (extensions last).
    pub const ALL: [ExperimentId; 20] = [
        ExperimentId::Fig4,
        ExperimentId::Fig5,
        ExperimentId::Table1,
        ExperimentId::Fig6,
        ExperimentId::Fig7,
        ExperimentId::Fig8,
        ExperimentId::Fig9,
        ExperimentId::Fig10,
        ExperimentId::Fig11,
        ExperimentId::Fig12,
        ExperimentId::Fig13,
        ExperimentId::Table2,
        ExperimentId::Fig14,
        ExperimentId::Fig15,
        ExperimentId::Fig16,
        ExperimentId::Fig17,
        ExperimentId::ExtAdaptive,
        ExperimentId::ExtExplorer,
        ExperimentId::ExtScaling,
        ExperimentId::ExtHybrid,
    ];

    /// The `repro` subcommand name.
    pub fn slug(self) -> &'static str {
        match self {
            ExperimentId::Fig4 => "fig4",
            ExperimentId::Fig5 => "fig5",
            ExperimentId::Table1 => "table1",
            ExperimentId::Fig6 => "fig6",
            ExperimentId::Fig7 => "fig7",
            ExperimentId::Fig8 => "fig8",
            ExperimentId::Fig9 => "fig9",
            ExperimentId::Fig10 => "fig10",
            ExperimentId::Fig11 => "fig11",
            ExperimentId::Fig12 => "fig12",
            ExperimentId::Fig13 => "fig13",
            ExperimentId::Table2 => "table2",
            ExperimentId::Fig14 => "fig14",
            ExperimentId::Fig15 => "fig15",
            ExperimentId::Fig16 => "fig16",
            ExperimentId::Fig17 => "fig17",
            ExperimentId::ExtAdaptive => "ext-adaptive",
            ExperimentId::ExtExplorer => "ext-explorer",
            ExperimentId::ExtScaling => "ext-scaling",
            ExperimentId::ExtHybrid => "ext-hybrid",
        }
    }

    /// Parses a `repro` subcommand name.
    pub fn from_slug(slug: &str) -> Option<ExperimentId> {
        ExperimentId::ALL.into_iter().find(|e| e.slug() == slug)
    }

    /// Human title matching the paper.
    pub fn title(self) -> &'static str {
        match self {
            ExperimentId::Fig4 => "Figure 4: generated MMPP workloads",
            ExperimentId::Fig5 => {
                "Figure 5: model serving systems' performance comparison (latency + SR)"
            }
            ExperimentId::Table1 => "Table 1: costs for evaluated model serving systems",
            ExperimentId::Fig6 => "Figure 6: serverless and ManagedML comparison (timelines)",
            ExperimentId::Fig7 => "Figure 7: number of instances on ManagedML services",
            ExperimentId::Fig8 => "Figure 8: serverless and CPU server comparison (timelines)",
            ExperimentId::Fig9 => "Figure 9: serverless and GPU server comparison (timelines)",
            ExperimentId::Fig10 => "Figure 10: breakdown comparison of serverless platforms",
            ExperimentId::Fig11 => "Figure 11: number of instances on serverless platforms",
            ExperimentId::Fig12 => "Figure 12: in-depth analysis with workload-120",
            ExperimentId::Fig13 => "Figure 13: runtime comparison, latency w.r.t. workloads",
            ExperimentId::Table2 => "Table 2: costs for serverless serving with ORT1.4",
            ExperimentId::Fig14 => "Figure 14: breakdown comparison of different runtimes",
            ExperimentId::Fig15 => "Figure 15: vary memory size on AWS-Serverless",
            ExperimentId::Fig16 => "Figure 16: vary provisioned concurrency on AWS-Serverless",
            ExperimentId::Fig17 => "Figure 17: vary batch size on AWS-Serverless",
            ExperimentId::ExtAdaptive => "Extension: adaptive vs fixed batching",
            ExperimentId::ExtExplorer => "Extension: design-space navigator",
            ExperimentId::ExtScaling => "Extension: over-provisioning scaling-policy ablation",
            ExperimentId::ExtHybrid => {
                "Extension: hybrid serving (provisioned VM + serverless spillover)"
            }
        }
    }

    /// True for the extension studies (not in the paper).
    pub fn is_extension(self) -> bool {
        matches!(
            self,
            ExperimentId::ExtAdaptive
                | ExperimentId::ExtExplorer
                | ExperimentId::ExtScaling
                | ExperimentId::ExtHybrid
        )
    }
}

impl fmt::Display for ExperimentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.slug())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slugs_roundtrip() {
        for e in ExperimentId::ALL {
            assert_eq!(ExperimentId::from_slug(e.slug()), Some(e));
        }
        assert_eq!(ExperimentId::from_slug("fig99"), None);
    }

    #[test]
    fn slugs_are_unique() {
        let mut slugs: Vec<&str> = ExperimentId::ALL.iter().map(|e| e.slug()).collect();
        slugs.sort_unstable();
        slugs.dedup();
        assert_eq!(slugs.len(), ExperimentId::ALL.len());
    }

    #[test]
    fn extensions_flagged() {
        assert!(ExperimentId::ExtAdaptive.is_extension());
        assert!(!ExperimentId::Fig5.is_extension());
        assert_eq!(
            ExperimentId::ALL
                .iter()
                .filter(|e| e.is_extension())
                .count(),
            4
        );
    }

    #[test]
    fn titles_nonempty() {
        for e in ExperimentId::ALL {
            assert!(!e.title().is_empty());
            assert_eq!(e.to_string(), e.slug());
        }
    }
}
