//! Design-space navigator — the paper's third "opportunity" (Section 6),
//! implemented: sweep the serverless configuration space (memory × runtime
//! × batch size), score each candidate on latency, success ratio and cost,
//! and return the Pareto front plus the cheapest configuration meeting an
//! SLO.

use crate::analyzer::analyze;
use crate::executor::Executor;
use crate::plan::{Deployment, PlanError};
use crate::runner::{parallel_map, Jobs};
use serde::{Deserialize, Serialize};
use slsb_model::RuntimeKind;
use slsb_sim::Seed;
use slsb_workload::WorkloadTrace;

/// The grid of configurations to sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplorerGrid {
    /// Serverless memory sizes in MB.
    pub memory_mb: Vec<f64>,
    /// Serving runtimes to try.
    pub runtimes: Vec<RuntimeKind>,
    /// Client batch sizes to try.
    pub batch_sizes: Vec<u32>,
}

impl Default for ExplorerGrid {
    fn default() -> Self {
        ExplorerGrid {
            memory_mb: vec![2048.0, 4096.0, 6144.0, 8192.0],
            runtimes: vec![RuntimeKind::Tf115, RuntimeKind::Ort14],
            batch_sizes: vec![1, 2, 4],
        }
    }
}

/// One evaluated configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// The configuration.
    pub deployment: Deployment,
    /// Mean latency in seconds (`INFINITY` when nothing succeeded).
    pub mean_latency: f64,
    /// 95th-percentile latency in seconds.
    pub p95_latency: f64,
    /// Success ratio.
    pub success_ratio: f64,
    /// Run cost in dollars.
    pub cost: f64,
}

/// The sweep's outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Exploration {
    /// All evaluated candidates.
    pub candidates: Vec<Candidate>,
}

impl Exploration {
    /// Candidates not dominated on (mean latency, cost) among those with a
    /// success ratio of at least `min_sr`.
    pub fn pareto_front(&self, min_sr: f64) -> Vec<&Candidate> {
        let eligible: Vec<&Candidate> = self
            .candidates
            .iter()
            .filter(|c| c.success_ratio >= min_sr)
            .collect();
        eligible
            .iter()
            .filter(|c| {
                !eligible.iter().any(|o| {
                    (o.mean_latency < c.mean_latency && o.cost <= c.cost)
                        || (o.mean_latency <= c.mean_latency && o.cost < c.cost)
                })
            })
            .copied()
            .collect()
    }

    /// The cheapest candidate whose p95 latency meets `slo_secs` and whose
    /// success ratio is at least `min_sr`.
    pub fn cheapest_under_slo(&self, slo_secs: f64, min_sr: f64) -> Option<&Candidate> {
        self.candidates
            .iter()
            .filter(|c| c.p95_latency <= slo_secs && c.success_ratio >= min_sr)
            .min_by(|a, b| a.cost.partial_cmp(&b.cost).expect("finite costs"))
    }

    /// The fastest candidate with a success ratio of at least `min_sr`.
    pub fn fastest(&self, min_sr: f64) -> Option<&Candidate> {
        self.candidates
            .iter()
            .filter(|c| c.success_ratio >= min_sr)
            .min_by(|a, b| {
                a.mean_latency
                    .partial_cmp(&b.mean_latency)
                    .expect("comparable latencies")
            })
    }
}

/// Sweeps `grid` around `base` (platform and model fixed) on `trace`,
/// fanning grid cells across all available cores.
///
/// Identical to [`explore_jobs`] with [`Jobs::available`]; results are
/// bit-identical for any worker count.
///
/// # Errors
/// Fails when a generated deployment is invalid (e.g. sweeping runtimes on
/// a TF-only platform).
pub fn explore(
    executor: &Executor,
    base: Deployment,
    grid: &ExplorerGrid,
    trace: &WorkloadTrace,
    seed: Seed,
) -> Result<Exploration, PlanError> {
    explore_jobs(executor, base, grid, trace, seed, Jobs::available())
}

/// [`explore`] with an explicit worker count (`--jobs`).
///
/// Grid cells are enumerated in the same memory × runtime × batch order as
/// the sequential sweep, evaluated on `jobs` workers, and collected into a
/// slot vector indexed by cell number — so `candidates` is byte-identical
/// to the sequential path (`jobs = 1`) for any worker count.
///
/// # Errors
/// Fails when a generated deployment is invalid (first invalid cell in
/// grid order, matching the sequential loop).
pub fn explore_jobs(
    executor: &Executor,
    base: Deployment,
    grid: &ExplorerGrid,
    trace: &WorkloadTrace,
    seed: Seed,
    jobs: Jobs,
) -> Result<Exploration, PlanError> {
    let mut cells =
        Vec::with_capacity(grid.memory_mb.len() * grid.runtimes.len() * grid.batch_sizes.len());
    for &memory_mb in &grid.memory_mb {
        for &runtime in &grid.runtimes {
            for &batch in &grid.batch_sizes {
                let mut d = base;
                d.memory_mb = memory_mb;
                d.runtime = runtime;
                d.batch_size = batch;
                cells.push(d);
            }
        }
    }

    let evaluated = parallel_map(jobs, &cells, |_, d| {
        let run = executor.run(d, trace, seed)?;
        let a = analyze(&run);
        Ok(Candidate {
            deployment: *d,
            mean_latency: a.mean_latency().unwrap_or(f64::INFINITY),
            p95_latency: a.latency.map(|l| l.p95).unwrap_or(f64::INFINITY),
            success_ratio: a.success_ratio,
            cost: a.cost_dollars(),
        })
    });

    let candidates = evaluated
        .into_iter()
        .collect::<Result<Vec<_>, PlanError>>()?;
    Ok(Exploration { candidates })
}

#[cfg(test)]
mod tests {
    use super::*;
    use slsb_model::ModelKind;
    use slsb_platform::PlatformKind;
    use slsb_sim::SimDuration;
    use slsb_workload::MmppSpec;

    fn trace() -> WorkloadTrace {
        MmppSpec {
            name: "explorer-test",
            rate_high: 20.0,
            rate_low: 5.0,
            mean_high_dwell: SimDuration::from_secs(20),
            mean_low_dwell: SimDuration::from_secs(40),
            duration: SimDuration::from_secs(120),
        }
        .generate(Seed(3))
    }

    fn base() -> Deployment {
        Deployment::new(
            PlatformKind::AwsServerless,
            ModelKind::MobileNet,
            RuntimeKind::Tf115,
        )
    }

    fn small_grid() -> ExplorerGrid {
        ExplorerGrid {
            memory_mb: vec![2048.0, 4096.0],
            runtimes: vec![RuntimeKind::Tf115, RuntimeKind::Ort14],
            batch_sizes: vec![1, 4],
        }
    }

    #[test]
    fn sweep_covers_grid() {
        let e = explore(
            &Executor::default(),
            base(),
            &small_grid(),
            &trace(),
            Seed(1),
        )
        .unwrap();
        assert_eq!(e.candidates.len(), 2 * 2 * 2);
        assert!(e.candidates.iter().all(|c| c.cost > 0.0));
    }

    #[test]
    fn pareto_front_is_nondominated() {
        let e = explore(
            &Executor::default(),
            base(),
            &small_grid(),
            &trace(),
            Seed(1),
        )
        .unwrap();
        let front = e.pareto_front(0.99);
        assert!(!front.is_empty());
        for a in &front {
            for b in &front {
                assert!(
                    !(b.mean_latency < a.mean_latency && b.cost < a.cost),
                    "front member dominated"
                );
            }
        }
    }

    #[test]
    fn ort_appears_on_the_front() {
        // Section 5.2: ORT dominates TF on both latency and cost for
        // MobileNet, so the front should be ORT-only.
        let e = explore(
            &Executor::default(),
            base(),
            &small_grid(),
            &trace(),
            Seed(1),
        )
        .unwrap();
        let front = e.pareto_front(0.99);
        assert!(front
            .iter()
            .any(|c| c.deployment.runtime == RuntimeKind::Ort14));
    }

    #[test]
    fn slo_selection_prefers_cheap() {
        let e = explore(
            &Executor::default(),
            base(),
            &small_grid(),
            &trace(),
            Seed(1),
        )
        .unwrap();
        let loose = e.cheapest_under_slo(30.0, 0.9).expect("something fits");
        for c in &e.candidates {
            if c.p95_latency <= 30.0 && c.success_ratio >= 0.9 {
                assert!(loose.cost <= c.cost);
            }
        }
        // An impossible SLO selects nothing.
        assert!(e.cheapest_under_slo(1e-6, 0.9).is_none());
    }

    #[test]
    fn fastest_ignores_cost() {
        let e = explore(
            &Executor::default(),
            base(),
            &small_grid(),
            &trace(),
            Seed(1),
        )
        .unwrap();
        let f = e.fastest(0.9).unwrap();
        for c in &e.candidates {
            if c.success_ratio >= 0.9 {
                assert!(f.mean_latency <= c.mean_latency);
            }
        }
    }
}
