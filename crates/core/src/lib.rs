//! # slsb-core — the paper's benchmarking framework
//!
//! The four components of the paper's Figure 3, plus the design-space
//! tooling of Sections 5–6:
//!
//! - [`plan`] — the planner: a validated [`Deployment`] (platform × model ×
//!   runtime × configuration) enforcing each platform's rules;
//! - [`executor`] — the executor: an 8-client open-loop replay of a
//!   workload trace with request pools, network transfer, batching, and the
//!   per-request timeout that produces success-ratio dynamics;
//! - [`analyzer`] — the analyzer: latency / success-ratio / cost digests,
//!   timelines, and cold-start breakdowns;
//! - [`report`] — paper-style table rendering (Markdown / CSV);
//! - [`batching`] — fixed (Section 5.5) and adaptive (BATCH-style) client
//!   batching policies;
//! - [`explorer`] — the Section 6 "navigation tool" opportunity,
//!   implemented as a configuration sweep with Pareto/SLO selection;
//! - [`experiment`] — the registry mapping every table and figure to a
//!   reproduction id;
//! - [`oracle`] — clairvoyant cold-start / cost lower bounds, reported
//!   beside every run so policies score as a "% of optimal";
//! - [`scenario`] — JSON-declarative experiments (save, share, replay);
//! - [`replication`] — n-seed replication with mean ± std aggregation;
//! - [`runner`] — the parallel run harness: a std-only work-stealing pool
//!   that fans independent simulations across cores with bit-identical,
//!   seed-order-stable results, plus the process-wide workload
//!   [`TraceCache`].
//!
//! ```
//! use slsb_core::{analyze, Deployment, Executor};
//! use slsb_model::{ModelKind, RuntimeKind};
//! use slsb_platform::PlatformKind;
//! use slsb_sim::Seed;
//! use slsb_workload::MmppPreset;
//!
//! let trace = MmppPreset::W40.generate(Seed(7));
//! let deployment = Deployment::new(
//!     PlatformKind::AwsServerless,
//!     ModelKind::MobileNet,
//!     RuntimeKind::Tf115,
//! );
//! let run = Executor::default().run(&deployment, &trace, Seed(7)).unwrap();
//! let analysis = analyze(&run);
//! assert!(analysis.success_ratio > 0.99);
//! ```

pub mod analyzer;
pub mod batching;
pub mod executor;
pub mod experiment;
pub mod fleet;
pub mod explorer;
pub mod oracle;
pub mod plan;
pub mod replication;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod slo;

pub use analyzer::{
    analyze, analyze_with_bucket, run_metrics, slo_metrics, slo_samples, Analysis, ColdStartStats,
    LatencyStats,
};
pub use batching::{plan_invocations, BatchPolicy, Invocation};
pub use executor::{Executor, ExecutorConfig, RequestRecord, RetryPolicy, RunResult};
pub use experiment::ExperimentId;
pub use fleet::{
    fleet_metrics, AppResult, CellBalance, FleetPartition, FleetPlan, FleetRunError, FleetRunResult,
    FleetRunner, FleetScenario, FleetScenarioError, FleetSource, FleetWarning, FLEET_CELLS,
};
pub use explorer::{explore, explore_jobs, Candidate, Exploration, ExplorerGrid};
pub use oracle::{oracle_bound, trace_oracle, OracleBound, TraceOracle};
pub use plan::{Deployment, PlanError};
pub use replication::{replicate, replicate_jobs, MetricSummary, Replication};
pub use report::{ascii_chart, fmt_money, fmt_opt_secs, fmt_pct, fmt_secs, Table};
pub use runner::{parallel_map, run_jobs, Jobs, RunJob, TraceCache};
pub use scenario::{Scenario, ScenarioError, WorkloadSpec};
pub use slo::{SloObjective, SloReport, SloSample, SloSpec, SloTargets};
