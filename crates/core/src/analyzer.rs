//! The analyzer (paper Figure 3): turns raw run records into the paper's
//! three metrics — response latency, request success ratio, and cost —
//! plus the time series and cold-start breakdowns its figures plot.

use crate::executor::{RequestRecord, RunResult};
use crate::slo::{SloReport, SloSample};
use serde::{Deserialize, Serialize};
use slsb_obs::MetricsRegistry;
use slsb_platform::{CostBreakdown, FailureReason, Outcome};
use slsb_sim::{ProfGuard, SampleSet, SimDuration, TimeSeries};

/// Aggregate latency statistics over successful requests (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Number of successful requests.
    pub count: u64,
    /// Mean latency.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

/// Mean cold-start sub-stage durations (seconds) — the paper's Figure 10.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ColdStartStats {
    /// Successful requests that rode a cold start.
    pub cold_requests: u64,
    /// Mean end-to-end latency of cold requests.
    pub e2e_cold: Option<f64>,
    /// Mean end-to-end latency of warm requests.
    pub e2e_warm: Option<f64>,
    /// Mean sandbox boot time.
    pub boot: Option<f64>,
    /// Mean dependency-import time.
    pub import: Option<f64>,
    /// Mean model-download time.
    pub download: Option<f64>,
    /// Mean model-load time.
    pub load: Option<f64>,
    /// Mean predict time on cold requests (includes lazy init).
    pub predict_cold: Option<f64>,
    /// Mean predict time on warm requests.
    pub predict_warm: Option<f64>,
}

/// One bucket of the latency / success-ratio timelines.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// Bucket start, seconds into the workload.
    pub at: f64,
    /// Mean latency of successful requests arriving in the bucket.
    pub mean_latency: Option<f64>,
    /// Success ratio of requests arriving in the bucket.
    pub success_ratio: Option<f64>,
    /// Requests arriving in the bucket.
    pub requests: u64,
}

/// The analyzer's digest of one run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Analysis {
    /// Deployment label (e.g. `"AWS-Serverless/MobileNet/TF1.15"`).
    pub label: String,
    /// Workload name.
    pub workload: String,
    /// Total logical requests.
    pub total: u64,
    /// Successful requests.
    pub succeeded: u64,
    /// Failures rejected for a full platform backlog.
    pub failed_queue_full: u64,
    /// Failures from the client timeout.
    pub failed_timeout: u64,
    /// Other platform rejections.
    pub failed_rejected: u64,
    /// Failures from injected admission throttling or outage windows.
    pub failed_throttled: u64,
    /// Failures from injected instance / handler crashes.
    pub failed_crashed: u64,
    /// Failures after the client retry policy ran out of attempts.
    pub failed_retries: u64,
    /// Discrete faults the platform's injector fired during the run.
    pub faults: u64,
    /// Client-path faults (request packets lost in flight).
    pub client_faults: u64,
    /// Re-sends the client fleet issued beyond first attempts.
    pub retries: u64,
    /// The paper's success ratio (SR).
    pub success_ratio: f64,
    /// Latency aggregates over successes (absent when nothing succeeded).
    pub latency: Option<LatencyStats>,
    /// Latency / SR timeline in `bucket`-wide windows.
    pub series: Vec<SeriesPoint>,
    /// Cold-start breakdown (serverless runs).
    pub cold: ColdStartStats,
    /// Run cost.
    pub cost: CostBreakdown,
    /// Instances that went through the cold-start pipeline.
    pub cold_started: u64,
    /// Billed invocations (serverless).
    pub invocations: u64,
    /// Peak concurrent instances.
    pub peak_instances: i64,
    /// Fraction of instance lifetime spent doing useful work (`None` when
    /// no instance time was recorded).
    pub utilization: Option<f64>,
    /// Instance count over time: `(seconds, max instances in bucket)`.
    pub instance_series: Vec<(f64, i64)>,
}

/// Default timeline bucket width (the paper's timeline figures use a
/// seconds-scale x-axis over a 15-minute run).
pub const DEFAULT_BUCKET: SimDuration = SimDuration::from_secs(10);

/// Analyzes a run with the default 10 s timeline bucket.
pub fn analyze(run: &RunResult) -> Analysis {
    analyze_with_bucket(run, DEFAULT_BUCKET)
}

/// Analyzes a run with an explicit timeline bucket width.
///
/// # Panics
/// Panics if a record claims success without a latency — the executor
/// guarantees resolution, and analyzing a half-resolved log would silently
/// understate failures.
pub fn analyze_with_bucket(run: &RunResult, bucket: SimDuration) -> Analysis {
    let _p = ProfGuard::enter("analyzer");
    let mut latencies = SampleSet::new();
    let mut lat_series = TimeSeries::new(bucket);
    let mut ok_series = TimeSeries::new(bucket);
    let mut failed_queue_full = 0;
    let mut failed_timeout = 0;
    let mut failed_rejected = 0;
    let mut failed_throttled = 0;
    let mut failed_crashed = 0;
    let mut failed_retries = 0;

    let mut cold_e2e = SampleSet::new();
    let mut warm_e2e = SampleSet::new();
    let mut boot = SampleSet::new();
    let mut import = SampleSet::new();
    let mut download = SampleSet::new();
    let mut load = SampleSet::new();
    let mut predict_cold = SampleSet::new();
    let mut predict_warm = SampleSet::new();

    for r in &run.records {
        match r.outcome {
            Outcome::Success => {
                let lat = r
                    .latency
                    .expect("success without latency: unresolved record")
                    .as_secs_f64();
                latencies.push(lat);
                lat_series.add(r.arrival, lat);
                ok_series.add(r.arrival, 1.0);
                record_breakdown(
                    r,
                    lat,
                    &mut cold_e2e,
                    &mut warm_e2e,
                    &mut boot,
                    &mut import,
                    &mut download,
                    &mut load,
                    &mut predict_cold,
                    &mut predict_warm,
                );
            }
            Outcome::Failure(reason) => {
                ok_series.add(r.arrival, 0.0);
                match reason {
                    FailureReason::QueueFull => failed_queue_full += 1,
                    FailureReason::ClientTimeout => failed_timeout += 1,
                    FailureReason::Rejected => failed_rejected += 1,
                    FailureReason::Throttled => failed_throttled += 1,
                    FailureReason::Crashed => failed_crashed += 1,
                    FailureReason::RetriesExhausted => failed_retries += 1,
                }
            }
        }
    }

    let total = run.records.len() as u64;
    let succeeded = latencies.len() as u64;
    let latency = (succeeded > 0).then(|| LatencyStats {
        count: succeeded,
        mean: latencies.mean().expect("non-empty"),
        std_dev: latencies.std_dev().expect("non-empty"),
        p50: latencies.percentile(50.0).expect("non-empty"),
        p95: latencies.percentile(95.0).expect("non-empty"),
        p99: latencies.percentile(99.0).expect("non-empty"),
        max: latencies.percentile(100.0).expect("non-empty"),
    });

    // Iterate over the SR series: it covers every record, while the latency
    // series only has buckets up to the last *successful* request (zipping
    // the two would silently drop trailing all-failure buckets).
    let lat_buckets: Vec<_> = lat_series.iter().map(|(_, acc)| *acc).collect();
    let series = ok_series
        .iter()
        .enumerate()
        .map(|(i, (at, ok_acc))| SeriesPoint {
            at: at.as_secs_f64(),
            mean_latency: lat_buckets.get(i).and_then(|acc| acc.mean()),
            success_ratio: ok_acc.mean(),
            requests: ok_acc.count(),
        })
        .collect();

    let instance_series = run
        .platform
        .instances
        .bucket_maxima(bucket)
        .into_iter()
        .map(|(t, v)| (t.as_secs_f64(), v))
        .collect();

    Analysis {
        label: run.deployment.label(),
        workload: run.workload.to_string(),
        total,
        succeeded,
        failed_queue_full,
        failed_timeout,
        failed_rejected,
        failed_throttled,
        failed_crashed,
        failed_retries,
        faults: run.platform.faults,
        client_faults: run.client_faults,
        retries: run.retries,
        success_ratio: if total == 0 {
            1.0
        } else {
            succeeded as f64 / total as f64
        },
        latency,
        series,
        cold: ColdStartStats {
            cold_requests: cold_e2e.len() as u64,
            e2e_cold: cold_e2e.mean(),
            e2e_warm: warm_e2e.mean(),
            boot: boot.mean(),
            import: import.mean(),
            download: download.mean(),
            load: load.mean(),
            predict_cold: predict_cold.mean(),
            predict_warm: predict_warm.mean(),
        },
        cost: run.platform.cost,
        cold_started: run.platform.cold_started,
        invocations: run.platform.invocations,
        peak_instances: run.platform.instances.peak(),
        utilization: run.platform.utilization(),
        instance_series,
    }
}

/// Distills a run into streaming metrics: outcome counters, a peak-instance
/// gauge, and log-linear latency histograms. Unlike [`Analysis`], the result
/// merges deterministically across replicas (see
/// [`MetricsRegistry::merge`]), which is how the parallel harness aggregates
/// per-worker observations without retaining every sample.
pub fn run_metrics(run: &RunResult) -> MetricsRegistry {
    let _p = ProfGuard::enter("analyzer/metrics");
    let mut m = MetricsRegistry::new();
    m.inc("requests_total", run.records.len() as u64);
    for r in &run.records {
        match r.outcome {
            Outcome::Success => {
                m.inc("requests_ok", 1);
                let lat = r
                    .latency
                    .expect("success without latency: unresolved record");
                m.observe("latency_seconds", lat.as_secs_f64());
                if r.cold_start.is_some() {
                    m.observe("latency_cold_seconds", lat.as_secs_f64());
                } else {
                    m.observe("latency_warm_seconds", lat.as_secs_f64());
                }
                m.observe("queued_seconds", r.queued.as_secs_f64());
                m.observe("predict_seconds", r.predict.as_secs_f64());
            }
            Outcome::Failure(FailureReason::QueueFull) => m.inc("requests_queue_full", 1),
            Outcome::Failure(FailureReason::ClientTimeout) => m.inc("requests_timeout", 1),
            Outcome::Failure(FailureReason::Rejected) => m.inc("requests_rejected", 1),
            Outcome::Failure(FailureReason::Throttled) => m.inc("requests_throttled", 1),
            Outcome::Failure(FailureReason::Crashed) => m.inc("requests_crashed", 1),
            Outcome::Failure(FailureReason::RetriesExhausted) => {
                m.inc("requests_retries_exhausted", 1)
            }
        }
    }
    m.inc("cold_starts", run.platform.cold_started);
    m.inc("invocations", run.platform.invocations);
    m.inc("engine_events", run.engine_events);
    m.inc("faults_total", run.platform.faults);
    m.inc("client_faults_total", run.client_faults);
    m.inc("retries_total", run.retries);
    m.gauge_max("peak_instances", run.platform.instances.peak());
    m
}

/// Per-request SLO samples for [`crate::slo::SloSpec::evaluate`]: one
/// entry per record, carrying tenant, outcome, and end-to-end latency
/// (zero for failures — only successes feed latency objectives).
pub fn slo_samples(run: &RunResult) -> Vec<SloSample> {
    run.records
        .iter()
        .map(|r| SloSample {
            client: r.client,
            ok: matches!(r.outcome, Outcome::Success),
            latency_s: r.latency.map_or(0.0, |l| l.as_secs_f64()),
        })
        .collect()
}

/// Folds a scored SLO into a metrics registry: objective counts plus the
/// per-objective error budget as a histogram, so `slsb diff` and the
/// `--metrics-out` snapshot carry attainment without a full report.
pub fn slo_metrics(m: &mut MetricsRegistry, report: &SloReport) {
    m.inc("slo_objectives_total", report.objectives.len() as u64);
    m.inc(
        "slo_objectives_attained",
        report.objectives.iter().filter(|o| o.attained).count() as u64,
    );
    for o in &report.objectives {
        m.observe("slo_budget_consumed", o.budget_consumed);
    }
}

#[allow(clippy::too_many_arguments)]
fn record_breakdown(
    r: &RequestRecord,
    lat: f64,
    cold_e2e: &mut SampleSet,
    warm_e2e: &mut SampleSet,
    boot: &mut SampleSet,
    import: &mut SampleSet,
    download: &mut SampleSet,
    load: &mut SampleSet,
    predict_cold: &mut SampleSet,
    predict_warm: &mut SampleSet,
) {
    match r.cold_start {
        Some(bd) => {
            cold_e2e.push(lat);
            boot.push_duration(bd.boot);
            import.push_duration(bd.import);
            download.push_duration(bd.download);
            load.push_duration(bd.load);
            predict_cold.push_duration(r.predict);
        }
        None => {
            warm_e2e.push(lat);
            predict_warm.push_duration(r.predict);
        }
    }
}

impl Analysis {
    /// Mean latency in seconds (`NaN`-free: `None` when nothing succeeded).
    pub fn mean_latency(&self) -> Option<f64> {
        self.latency.map(|l| l.mean)
    }

    /// Dollar cost of the run.
    pub fn cost_dollars(&self) -> f64 {
        self.cost.total().as_dollars()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{Executor, ExecutorConfig};
    use crate::plan::Deployment;
    use slsb_model::{ModelKind, RuntimeKind};
    use slsb_platform::PlatformKind;
    use slsb_sim::Seed;
    use slsb_workload::MmppSpec;

    fn run_small(platform: PlatformKind, rate: f64) -> RunResult {
        let trace = MmppSpec {
            name: "analyzer-test",
            rate_high: rate,
            rate_low: rate / 4.0,
            mean_high_dwell: SimDuration::from_secs(20),
            mean_low_dwell: SimDuration::from_secs(40),
            duration: SimDuration::from_secs(150),
        }
        .generate(Seed(5));
        Executor::new(ExecutorConfig::default())
            .run(
                &Deployment::new(platform, ModelKind::MobileNet, RuntimeKind::Tf115),
                &trace,
                Seed(5),
            )
            .unwrap()
    }

    #[test]
    fn counts_are_conserved() {
        let run = run_small(PlatformKind::AwsCpu, 80.0);
        let a = analyze(&run);
        assert_eq!(
            a.succeeded
                + a.failed_queue_full
                + a.failed_timeout
                + a.failed_rejected
                + a.failed_throttled
                + a.failed_crashed
                + a.failed_retries,
            a.total
        );
        assert!((a.success_ratio - a.succeeded as f64 / a.total as f64).abs() < 1e-12);
    }

    #[test]
    fn latency_stats_ordered() {
        let run = run_small(PlatformKind::AwsServerless, 20.0);
        let a = analyze(&run);
        let l = a.latency.expect("successes exist");
        assert!(l.p50 <= l.p95 && l.p95 <= l.p99 && l.p99 <= l.max);
        assert!(l.mean > 0.0 && l.std_dev >= 0.0);
    }

    #[test]
    fn serverless_run_reports_cold_breakdown() {
        let run = run_small(PlatformKind::AwsServerless, 20.0);
        let a = analyze(&run);
        assert!(a.cold.cold_requests > 0);
        assert!(a.cold.e2e_cold.unwrap() > a.cold.e2e_warm.unwrap());
        assert!(a.cold.import.unwrap() > 1.0, "TF import dominates");
        assert!(a.cold.predict_cold.unwrap() > a.cold.predict_warm.unwrap());
        assert!(a.cold_started > 0);
        assert!(a.invocations > 0);
    }

    #[test]
    fn series_covers_run_and_counts_match() {
        let run = run_small(PlatformKind::AwsServerless, 20.0);
        let a = analyze(&run);
        assert!(!a.series.is_empty());
        let series_total: u64 = a.series.iter().map(|p| p.requests).sum();
        assert_eq!(series_total, a.total);
        for p in &a.series {
            if let Some(sr) = p.success_ratio {
                assert!((0.0..=1.0).contains(&sr));
            }
        }
    }

    #[test]
    fn vm_run_has_no_cold_starts_but_costs_rental() {
        let run = run_small(PlatformKind::AwsGpu, 30.0);
        let a = analyze(&run);
        assert_eq!(a.cold.cold_requests, 0);
        assert_eq!(a.cold_started, 0);
        assert!(a.cost_dollars() > 0.0);
        assert_eq!(a.peak_instances, 1);
        // A lightly loaded GPU box is mostly idle.
        let util = a.utilization.expect("instance time recorded");
        assert!(util > 0.0 && util < 0.6, "utilization {util}");
    }

    #[test]
    fn serverless_utilization_reported() {
        let run = run_small(PlatformKind::AwsServerless, 20.0);
        let a = analyze(&run);
        let util = a.utilization.expect("instance time recorded");
        assert!((0.0..=1.0).contains(&util));
    }

    #[test]
    fn all_failure_tail_buckets_stay_in_the_series() {
        // Regression: a run whose trailing buckets contain only failures
        // must still report those buckets (the latency series is shorter
        // than the SR series there).
        use slsb_platform::{CloudProvider, Platform, VmServerConfig};
        let trace = MmppSpec {
            name: "tail-failures",
            rate_high: 50.0,
            rate_low: 50.0,
            mean_high_dwell: SimDuration::from_secs(30),
            mean_low_dwell: SimDuration::from_secs(30),
            duration: SimDuration::from_secs(120),
        }
        .generate(Seed(3));
        // A one-slot queue rejects essentially everything after the first
        // request, so late buckets are failure-only.
        let mut cfg = VmServerConfig::cpu(
            CloudProvider::Aws,
            ModelKind::Vgg.profile(),
            RuntimeKind::Tf115.profile(),
        );
        cfg.queue_capacity = 1;
        let dep = Deployment::new(PlatformKind::AwsCpu, ModelKind::Vgg, RuntimeKind::Tf115);
        let run = Executor::default().run_built(&dep, Platform::vm(cfg, Seed(3)), &trace, Seed(3));
        let a = analyze(&run);
        let series_total: u64 = a.series.iter().map(|p| p.requests).sum();
        assert_eq!(series_total, a.total, "series must cover every request");
        let last = a.series.last().expect("non-empty series");
        assert!(last.mean_latency.is_none() || last.success_ratio.unwrap() < 1.0);
    }

    #[test]
    fn slo_samples_and_metrics_cover_every_record() {
        let run = run_small(PlatformKind::AwsServerless, 20.0);
        let samples = slo_samples(&run);
        assert_eq!(samples.len(), run.records.len());
        assert!(samples.iter().any(|s| s.ok && s.latency_s > 0.0));

        let spec = crate::slo::SloSpec::parse("p99=600.0,sr=0.01").unwrap();
        let report = spec.evaluate(&samples, Some(run.platform.cost.total().as_dollars()));
        assert!(report.attained, "{report:?}");

        let mut m = run_metrics(&run);
        slo_metrics(&mut m, &report);
        assert_eq!(m.counter("slo_objectives_total"), 2);
        assert_eq!(m.counter("slo_objectives_attained"), 2);
        assert_eq!(m.histogram("slo_budget_consumed").unwrap().count(), 2);
    }

    #[test]
    fn empty_run_analyzes_cleanly() {
        let trace = slsb_workload::WorkloadTrace::new("empty", SimDuration::from_secs(5), vec![]);
        let run = Executor::default()
            .run(
                &Deployment::new(
                    PlatformKind::AwsServerless,
                    ModelKind::MobileNet,
                    RuntimeKind::Tf115,
                ),
                &trace,
                Seed(1),
            )
            .unwrap();
        let a = analyze(&run);
        assert_eq!(a.total, 0);
        assert_eq!(a.success_ratio, 1.0);
        assert!(a.latency.is_none());
    }
}
