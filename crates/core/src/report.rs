//! Report rendering: paper-style tables in Markdown and CSV.

use slsb_platform::Money;

/// A simple rectangular table.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders GitHub-flavored Markdown with a bold title line.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            let padded: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("**{}**\n\n", self.title));
        }
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("|-{}-|\n", sep.join("-|-")));
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders RFC-4180-ish CSV (quotes cells containing commas or quotes).
    pub fn to_csv(&self) -> String {
        let esc = |cell: &str| {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// `$0.186`-style money formatting (the paper's Table 1 precision).
pub fn fmt_money(m: Money) -> String {
    format!("${:.3}", m.as_dollars())
}

/// Seconds with millisecond precision.
pub fn fmt_secs(s: f64) -> String {
    format!("{s:.3}s")
}

/// Optional seconds, `-` when absent.
pub fn fmt_opt_secs(s: Option<f64>) -> String {
    s.map(fmt_secs).unwrap_or_else(|| "-".to_string())
}

/// Percentage with the paper's integer precision.
pub fn fmt_pct(frac: f64) -> String {
    format!("{:.1}%", frac * 100.0)
}

/// Renders a series as a fixed-height ASCII column chart — a terminal
/// stand-in for the paper's figures. `None` values render as gaps.
///
/// # Panics
/// Panics if `height` is zero.
pub fn ascii_chart(title: &str, series: &[(f64, Option<f64>)], height: usize) -> String {
    assert!(height > 0, "zero chart height");
    let max = series.iter().filter_map(|&(_, v)| v).fold(0.0f64, f64::max);
    let mut out = String::new();
    out.push_str(&format!("{title} (max {max:.3})\n"));
    if series.is_empty() || max <= 0.0 {
        out.push_str("(no data)\n");
        return out;
    }
    for row in (1..=height).rev() {
        let threshold = max * row as f64 / height as f64;
        let lower = max * (row as f64 - 1.0) / height as f64;
        out.push('\u{250a}');
        for &(_, v) in series {
            out.push(match v {
                Some(x) if x >= threshold => '\u{2588}',
                Some(x) if x > lower => '\u{2584}',
                Some(_) => ' ',
                None => ' ',
            });
        }
        out.push('\n');
    }
    out.push('\u{2514}');
    for _ in series {
        out.push('\u{2500}');
    }
    out.push_str(&format!(
        "\n t: {:.0}s .. {:.0}s\n",
        series.first().map(|&(t, _)| t).unwrap_or(0.0),
        series.last().map(|&(t, _)| t).unwrap_or(0.0)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Costs", &["System", "workload-40"]);
        t.push_row(vec!["AWS-Serverless".into(), "$0.050".into()]);
        t.push_row(vec!["AWS-GPU".into(), "$0.181".into()]);
        t
    }

    #[test]
    fn markdown_shape() {
        let md = sample().to_markdown();
        assert!(md.starts_with("**Costs**"));
        assert_eq!(md.lines().count(), 6); // title, blank, header, sep, 2 rows
        assert!(md.contains("| AWS-Serverless | $0.050"));
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("", &["a", "b"]);
        t.push_row(vec!["x,y".into(), "He said \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"He said \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_panics() {
        let mut t = Table::new("", &["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_money(Money::from_dollars(0.186)), "$0.186");
        assert_eq!(fmt_secs(0.0971), "0.097s");
        assert_eq!(fmt_pct(0.825), "82.5%");
        assert_eq!(fmt_opt_secs(None), "-");
        assert_eq!(fmt_opt_secs(Some(1.5)), "1.500s");
    }

    #[test]
    fn len_and_empty() {
        assert!(Table::new("t", &["a"]).is_empty());
        assert_eq!(sample().len(), 2);
    }

    #[test]
    fn ascii_chart_shapes() {
        let series: Vec<(f64, Option<f64>)> = (0..20)
            .map(|i| (i as f64 * 10.0, Some((i % 7) as f64)))
            .collect();
        let chart = ascii_chart("latency", &series, 5);
        assert!(chart.starts_with("latency"));
        // 1 title + 5 rows + axis + footer.
        assert_eq!(chart.lines().count(), 8);
        assert!(chart.contains('\u{2588}'));
    }

    #[test]
    fn ascii_chart_handles_empty_and_gaps() {
        assert!(ascii_chart("x", &[], 3).contains("no data"));
        let with_gap = ascii_chart("x", &[(0.0, None), (1.0, Some(2.0))], 3);
        assert!(with_gap.contains('\u{2588}'));
    }

    #[test]
    #[should_panic(expected = "zero chart height")]
    fn ascii_chart_zero_height_panics() {
        ascii_chart("x", &[(0.0, Some(1.0))], 0);
    }
}
