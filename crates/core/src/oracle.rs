//! Offline oracle lower bounds for keep-alive / scaling policies.
//!
//! Given a finished run, how well could a *clairvoyant* policy — one that
//! knows the whole trace in advance — possibly have done? This module
//! computes two lower bounds from the run's own records:
//!
//! - **Cold-start floor.** Each successful request occupies a distinct
//!   instance for its predict window `[t_end − predict, t_end]` (the
//!   response-network leg is a per-run constant, so it shifts every window
//!   equally and cancels out of the overlap). A sweep line over those
//!   windows yields the peak number of simultaneously-busy instances;
//!   dividing by the batch size converts request-level overlap to
//!   invocation-level demand. Any policy — oracle included — must have at
//!   least that many instances alive at the peak, and every instance beyond
//!   the provisioned-concurrency floor was necessarily cold-started at
//!   least once. The same argument is the LP-relaxation half of the
//!   path-cover formulation: warm reuse chains are paths through the
//!   interval graph, and the minimum number of paths covering all intervals
//!   is bounded below by the maximum antichain (here: the peak overlap).
//! - **Cost floor.** The fraction of billed time that was unavoidable
//!   work. On serverless platforms the in-handler cold phases (artifact
//!   download + model load) are what an ideal keep-alive would shave, so
//!   the floor is `cost × Σpredict / Σ(predict + download + load)`. On
//!   instance-billed platforms (managed ML, rented VMs, the hybrid) the
//!   floor is `cost × busy_seconds / instance_seconds` — pay only for
//!   instance-time that executed requests.
//!
//! Both bounds are conservative by construction (ratios clamped to
//! `[0, 1]`, overlap counts only successful records), so
//! `oracle ≤ actual` holds for **every** policy in the zoo on **every**
//! trace — a property the proptests in `crates/core/tests/properties.rs`
//! pin down.

use crate::executor::RunResult;
use slsb_obs::{Component, EventKind, SpawnCause, TraceEvent};

/// Clairvoyant lower bounds for one finished run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OracleBound {
    /// Minimum cold starts any keep-alive policy must pay on this trace
    /// (0 on platforms without a cold-start pipeline).
    pub cold_starts: u64,
    /// Minimum spend in dollars for the work actually done.
    pub cost_dollars: f64,
    /// Peak number of simultaneously-executing invocations — the
    /// instance-count floor behind `cold_starts`.
    pub peak_concurrency: u64,
    /// Fraction of billed time that was unavoidable (the cost ratio
    /// before multiplying by actual cost), in `[0, 1]`.
    pub warm_ratio: f64,
}

impl OracleBound {
    /// `lower / actual` as a percentage — "the run achieved N% of
    /// optimal". 100 when the actual already matches the bound (or both
    /// are zero).
    pub fn pct_of_optimal(lower: f64, actual: f64) -> f64 {
        if actual <= 0.0 {
            100.0
        } else {
            (lower / actual * 100.0).clamp(0.0, 100.0)
        }
    }

    /// Cold-start score against an observed cold-start count. A cold
    /// count of zero is already optimal, and a zero floor with observed
    /// cold starts scores 0.
    pub fn cold_score(&self, observed: u64) -> f64 {
        if observed == 0 {
            100.0
        } else {
            Self::pct_of_optimal(self.cold_starts as f64, observed as f64)
        }
    }

    /// Cost score against an observed spend in dollars.
    pub fn cost_score(&self, observed_dollars: f64) -> f64 {
        Self::pct_of_optimal(self.cost_dollars, observed_dollars)
    }
}

/// Computes the oracle bounds for one run from its own records.
pub fn oracle_bound(run: &RunResult) -> OracleBound {
    let batch = u64::from(run.deployment.batch_size.max(1));
    let peak_requests = peak_overlap(run.records.iter().filter_map(|r| {
        let end = (r.arrival + r.latency?).as_secs_f64();
        Some((end - r.predict.as_secs_f64(), end))
    }));
    let peak_concurrency = peak_requests.div_ceil(batch);

    let cold_starts = if run.deployment.platform.is_serverless() {
        peak_concurrency.saturating_sub(u64::from(run.deployment.provisioned_concurrency))
    } else {
        0
    };

    let warm_ratio = if run.deployment.platform.is_serverless() {
        let mut useful = 0.0;
        let mut billed = 0.0;
        for r in run.records.iter().filter(|r| r.latency.is_some()) {
            let predict = r.predict.as_secs_f64();
            useful += predict;
            billed += predict;
            if let Some(cold) = &r.cold_start {
                billed += cold.download.as_secs_f64() + cold.load.as_secs_f64();
            }
        }
        if billed > 0.0 {
            (useful / billed).clamp(0.0, 1.0)
        } else {
            1.0
        }
    } else {
        let p = &run.platform;
        if p.instance_seconds > 0.0 {
            (p.busy_seconds / p.instance_seconds).clamp(0.0, 1.0)
        } else {
            1.0
        }
    };

    OracleBound {
        cold_starts,
        cost_dollars: run.platform.cost.total().as_dollars() * warm_ratio,
        peak_concurrency,
        warm_ratio,
    }
}

/// Cold-start floor recovered from a recorded trace, for `slsb trace`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOracle {
    /// Peak simultaneously-executing serverless invocations.
    pub instance_floor: u64,
    /// `instance_floor` minus pre-provisioned instances — the cold-start
    /// lower bound.
    pub cold_floor: u64,
    /// Cold-start pipelines the trace actually recorded (one
    /// `instance_ready` per cold boot — this also counts speculative
    /// spawns whose first request never paid the cold start).
    pub cold_observed: u64,
}

impl TraceOracle {
    /// "% of optimal" for the recorded cold-start count.
    pub fn score(&self) -> f64 {
        if self.cold_observed == 0 {
            100.0
        } else {
            OracleBound::pct_of_optimal(self.cold_floor as f64, self.cold_observed as f64)
        }
    }
}

/// Extracts the oracle cold-start floor from serverless `exec_start`
/// events. `None` when the trace has no serverless executions (nothing to
/// bound).
pub fn trace_oracle(events: &[TraceEvent]) -> Option<TraceOracle> {
    let mut windows = Vec::new();
    let mut provisioned = 0u64;
    let mut cold_observed = 0u64;
    for ev in events {
        match ev.kind {
            EventKind::ExecStart {
                component: Component::Serverless,
                done_at,
                ..
            } => windows.push((ev.at.as_secs_f64(), done_at.as_secs_f64())),
            EventKind::InstanceReady {
                component: Component::Serverless,
                ..
            } => cold_observed += 1,
            EventKind::InstanceSpawn {
                component: Component::Serverless,
                cause: SpawnCause::Provisioned,
                ..
            } => provisioned += 1,
            _ => {}
        }
    }
    if windows.is_empty() {
        return None;
    }
    let instance_floor = peak_overlap(windows.into_iter());
    Some(TraceOracle {
        instance_floor,
        cold_floor: instance_floor.saturating_sub(provisioned),
        cold_observed,
    })
}

/// Sweep-line maximum point-overlap of half-open intervals `[start, end)`.
/// Ends sort before starts at equal instants, so back-to-back reuse of one
/// instance does not inflate the peak.
fn peak_overlap(intervals: impl Iterator<Item = (f64, f64)>) -> u64 {
    let mut edges: Vec<(f64, i64)> = Vec::new();
    for (start, end) in intervals {
        if end > start {
            edges.push((start, 1));
            edges.push((end, -1));
        }
    }
    edges.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut live = 0i64;
    let mut peak = 0i64;
    for (_, delta) in edges {
        live += delta;
        peak = peak.max(live);
    }
    peak.max(0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use crate::plan::Deployment;
    use slsb_model::{ModelKind, RuntimeKind};
    use slsb_platform::PlatformKind;
    use slsb_sim::Seed;
    use slsb_workload::MmppPreset;

    fn run(platform: PlatformKind, runtime: RuntimeKind) -> RunResult {
        let trace = MmppPreset::W40.generate(Seed(5));
        let dep = Deployment::new(platform, ModelKind::MobileNet, runtime);
        Executor::default().run(&dep, &trace, Seed(5)).unwrap()
    }

    #[test]
    fn peak_overlap_counts_simultaneous_intervals() {
        assert_eq!(peak_overlap(std::iter::empty()), 0);
        // Two overlapping, one disjoint.
        let iv = vec![(0.0, 2.0), (1.0, 3.0), (5.0, 6.0)];
        assert_eq!(peak_overlap(iv.into_iter()), 2);
        // Back-to-back intervals share an instant but never a point.
        let iv = vec![(0.0, 1.0), (1.0, 2.0)];
        assert_eq!(peak_overlap(iv.into_iter()), 1);
        // Empty and inverted intervals are ignored.
        let iv = vec![(1.0, 1.0), (3.0, 2.0), (0.0, 4.0)];
        assert_eq!(peak_overlap(iv.into_iter()), 1);
    }

    #[test]
    fn serverless_bounds_hold_on_a_real_run() {
        let r = run(PlatformKind::AwsServerless, RuntimeKind::Ort14);
        let b = oracle_bound(&r);
        assert!(b.cold_starts <= r.platform.cold_started, "{b:?}");
        let actual = r.platform.cost.total().as_dollars();
        assert!(b.cost_dollars <= actual + 1e-12, "{b:?} vs {actual}");
        assert!((0.0..=1.0).contains(&b.warm_ratio));
        assert!(b.peak_concurrency >= 1);
        assert!(b.cold_score(r.platform.cold_started) <= 100.0);
        assert!(b.cost_score(actual) > 0.0);
    }

    #[test]
    fn instance_billed_platforms_have_no_cold_floor() {
        for platform in [PlatformKind::AwsManagedMl, PlatformKind::AwsGpu] {
            let r = run(platform, RuntimeKind::Tf115);
            let b = oracle_bound(&r);
            assert_eq!(b.cold_starts, 0, "{platform:?}");
            assert!(b.cost_dollars <= r.platform.cost.total().as_dollars() + 1e-12);
            assert!((0.0..=1.0).contains(&b.warm_ratio), "{platform:?} {b:?}");
        }
    }

    #[test]
    fn provisioned_concurrency_lowers_the_cold_floor() {
        let trace = MmppPreset::W40.generate(Seed(5));
        let dep = Deployment::new(
            PlatformKind::AwsServerless,
            ModelKind::MobileNet,
            RuntimeKind::Ort14,
        );
        let plain = Executor::default().run(&dep, &trace, Seed(5)).unwrap();
        let dep_pc = dep.with_provisioned_concurrency(4);
        let warm = Executor::default().run(&dep_pc, &trace, Seed(5)).unwrap();
        let b_plain = oracle_bound(&plain);
        let b_warm = oracle_bound(&warm);
        assert!(b_warm.cold_starts <= b_plain.cold_starts);
        assert!(b_warm.cold_starts <= warm.platform.cold_started);
    }

    #[test]
    fn trace_oracle_reads_serverless_exec_windows() {
        let trace = MmppPreset::W40.generate(Seed(5));
        let dep = Deployment::new(
            PlatformKind::AwsServerless,
            ModelKind::MobileNet,
            RuntimeKind::Ort14,
        );
        let mut rec = slsb_obs::MemoryRecorder::new();
        let run = Executor::default()
            .run_recorded(&dep, &trace, Seed(5), &mut rec)
            .unwrap();
        let t = trace_oracle(rec.events()).expect("serverless trace has exec events");
        assert!(t.cold_floor <= t.cold_observed, "{t:?}");
        assert!(t.instance_floor >= 1);
        assert!((0.0..=100.0).contains(&t.score()));
        // The record-level bound and the trace-level bound agree on the
        // run's observed cold starts being no better than the floor.
        let b = oracle_bound(&run);
        assert!(b.cold_starts <= run.platform.cold_started);
    }

    #[test]
    fn trace_oracle_is_none_without_serverless_events() {
        let trace = MmppPreset::W40.generate(Seed(5));
        let dep = Deployment::new(PlatformKind::AwsGpu, ModelKind::MobileNet, RuntimeKind::Tf115);
        let mut rec = slsb_obs::MemoryRecorder::new();
        Executor::default()
            .run_recorded(&dep, &trace, Seed(5), &mut rec)
            .unwrap();
        assert!(trace_oracle(rec.events()).is_none());
    }
}
