//! Client-side request batching (paper Section 5.5).
//!
//! "Given a batch size, each client sends an invocation to the serverless
//! function only when the number of requests matches the batch size or
//! reaches the end of the workload." [`BatchPolicy::Fixed`] implements
//! exactly that; [`BatchPolicy::Adaptive`] implements the BATCH-style
//! alternative the paper's takeaway suggests — bounded extra waiting
//! instead of a bounded count.

use serde::{Deserialize, Serialize};
use slsb_sim::{SimDuration, SimTime};

/// How a client groups its requests into invocations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BatchPolicy {
    /// One invocation per request.
    None,
    /// Send when `n` requests have accumulated (or at workload end).
    Fixed(u32),
    /// Send when the *first* queued request has waited `max_wait`, or when
    /// `max_batch` requests have accumulated, whichever comes first.
    Adaptive {
        /// Bound on the extra client-side waiting of the oldest request.
        max_wait: SimDuration,
        /// Bound on the batch size.
        max_batch: u32,
    },
}

/// One function invocation carrying one or more logical requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Invocation {
    /// When the client fires the invocation.
    pub send_at: SimTime,
    /// Indices (into the run's record table) of the carried requests.
    pub members: Vec<usize>,
}

/// Groups one client's arrivals (`(record index, arrival)` sorted by
/// arrival) into invocations under `policy`.
///
/// # Panics
/// Panics if a fixed batch size or adaptive max batch is zero.
pub fn plan_invocations(arrivals: &[(usize, SimTime)], policy: BatchPolicy) -> Vec<Invocation> {
    debug_assert!(arrivals.windows(2).all(|w| w[0].1 <= w[1].1));
    match policy {
        BatchPolicy::None => arrivals
            .iter()
            .map(|&(idx, at)| Invocation {
                send_at: at,
                members: vec![idx],
            })
            .collect(),
        BatchPolicy::Fixed(n) => {
            assert!(n > 0, "zero batch size");
            arrivals
                .chunks(n as usize)
                .map(|chunk| Invocation {
                    // The batch fires when its last member arrives (or at
                    // workload end for the final partial batch — same
                    // instant, since these are the last arrivals).
                    send_at: chunk.last().expect("non-empty chunk").1,
                    members: chunk.iter().map(|&(idx, _)| idx).collect(),
                })
                .collect()
        }
        BatchPolicy::Adaptive {
            max_wait,
            max_batch,
        } => {
            assert!(max_batch > 0, "zero max batch");
            let mut out = Vec::new();
            let mut i = 0;
            while i < arrivals.len() {
                let window_end = arrivals[i].1 + max_wait;
                let mut j = i + 1;
                while j < arrivals.len()
                    && arrivals[j].1 <= window_end
                    && (j - i) < max_batch as usize
                {
                    j += 1;
                }
                let last_arrival = arrivals[j - 1].1;
                // Fire as soon as the batch is full; otherwise wait out the
                // window in case more requests show up.
                let send_at = if (j - i) == max_batch as usize {
                    last_arrival
                } else {
                    window_end
                };
                out.push(Invocation {
                    send_at,
                    members: arrivals[i..j].iter().map(|&(idx, _)| idx).collect(),
                });
                i = j;
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn arrivals(times: &[f64]) -> Vec<(usize, SimTime)> {
        times.iter().enumerate().map(|(i, &s)| (i, t(s))).collect()
    }

    #[test]
    fn none_is_one_to_one() {
        let a = arrivals(&[1.0, 2.0, 3.0]);
        let inv = plan_invocations(&a, BatchPolicy::None);
        assert_eq!(inv.len(), 3);
        assert!(inv.iter().all(|i| i.members.len() == 1));
        assert_eq!(inv[1].send_at, t(2.0));
    }

    #[test]
    fn fixed_batches_fire_on_last_member() {
        let a = arrivals(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let inv = plan_invocations(&a, BatchPolicy::Fixed(2));
        assert_eq!(inv.len(), 3);
        assert_eq!(inv[0].members, vec![0, 1]);
        assert_eq!(inv[0].send_at, t(2.0));
        // Final partial batch carries the leftover request.
        assert_eq!(inv[2].members, vec![4]);
        assert_eq!(inv[2].send_at, t(5.0));
    }

    #[test]
    fn fixed_conserves_members() {
        let a = arrivals(&[0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0]);
        for n in 1..=7 {
            let inv = plan_invocations(&a, BatchPolicy::Fixed(n));
            let total: usize = inv.iter().map(|i| i.members.len()).sum();
            assert_eq!(total, 7);
        }
    }

    #[test]
    fn adaptive_full_batch_fires_early() {
        let a = arrivals(&[0.0, 0.1, 0.2, 5.0]);
        let inv = plan_invocations(
            &a,
            BatchPolicy::Adaptive {
                max_wait: SimDuration::from_secs(1),
                max_batch: 3,
            },
        );
        assert_eq!(inv.len(), 2);
        // Full batch fires at its last member's arrival, not the window end.
        assert_eq!(inv[0].members, vec![0, 1, 2]);
        assert_eq!(inv[0].send_at, t(0.2));
    }

    #[test]
    fn adaptive_waits_out_window_when_sparse() {
        let a = arrivals(&[0.0, 10.0]);
        let inv = plan_invocations(
            &a,
            BatchPolicy::Adaptive {
                max_wait: SimDuration::from_secs(2),
                max_batch: 8,
            },
        );
        assert_eq!(inv.len(), 2);
        // A lone request is held until the window closes.
        assert_eq!(inv[0].send_at, t(2.0));
        assert_eq!(inv[1].send_at, t(12.0));
    }

    #[test]
    fn adaptive_bounds_oldest_wait() {
        let times: Vec<f64> = (0..100).map(|i| i as f64 * 0.05).collect();
        let a = arrivals(&times);
        let max_wait = SimDuration::from_millis(500);
        let inv = plan_invocations(
            &a,
            BatchPolicy::Adaptive {
                max_wait,
                max_batch: 64,
            },
        );
        for b in &inv {
            let first_arrival = a[b.members[0]].1;
            assert!(b.send_at.duration_since(first_arrival) <= max_wait);
        }
        let total: usize = inv.iter().map(|i| i.members.len()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn empty_arrivals_yield_nothing() {
        assert!(plan_invocations(&[], BatchPolicy::Fixed(4)).is_empty());
        assert!(plan_invocations(&[], BatchPolicy::None).is_empty());
    }
}
