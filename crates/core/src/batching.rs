//! Client-side request batching (paper Section 5.5).
//!
//! "Given a batch size, each client sends an invocation to the serverless
//! function only when the number of requests matches the batch size or
//! reaches the end of the workload." [`BatchPolicy::Fixed`] implements
//! exactly that; [`BatchPolicy::Adaptive`] implements the BATCH-style
//! alternative the paper's takeaway suggests — bounded extra waiting
//! instead of a bounded count.

use serde::{Deserialize, Serialize};
use slsb_sim::{SimDuration, SimTime};

/// How a client groups its requests into invocations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BatchPolicy {
    /// One invocation per request.
    None,
    /// Send when `n` requests have accumulated (or at workload end).
    Fixed(u32),
    /// Send when the *first* queued request has waited `max_wait`, or when
    /// `max_batch` requests have accumulated, whichever comes first.
    Adaptive {
        /// Bound on the extra client-side waiting of the oldest request.
        max_wait: SimDuration,
        /// Bound on the batch size.
        max_batch: u32,
    },
}

/// One function invocation carrying one or more logical requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Invocation {
    /// When the client fires the invocation.
    pub send_at: SimTime,
    /// Indices (into the run's record table) of the carried requests.
    pub members: Vec<usize>,
}

/// Flat invocation storage: send instants plus one shared member pool.
///
/// The per-[`Invocation`] `members: Vec<usize>` costs one heap allocation
/// per invocation — the single largest per-request allocation in an
/// unbatched run. The plan stores all members in one vector with prefix
/// offsets instead, and the executor recycles the whole structure across
/// runs through its arena, so steady-state planning allocates nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvocationPlan {
    send_at: Vec<SimTime>,
    /// Prefix offsets into `members`: invocation `i` owns
    /// `members[bounds[i]..bounds[i + 1]]`. Always starts with 0.
    bounds: Vec<u32>,
    members: Vec<u32>,
}

impl Default for InvocationPlan {
    fn default() -> Self {
        InvocationPlan {
            send_at: Vec::new(),
            bounds: vec![0],
            members: Vec::new(),
        }
    }
}

impl InvocationPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empties the plan, keeping all capacity.
    pub fn clear(&mut self) {
        self.send_at.clear();
        self.bounds.clear();
        self.bounds.push(0);
        self.members.clear();
    }

    /// Pre-sizes for about `invocations` invocations over `members`
    /// requests.
    pub fn reserve(&mut self, invocations: usize, members: usize) {
        self.send_at.reserve(invocations);
        self.bounds.reserve(invocations);
        self.members.reserve(members);
    }

    /// Number of invocations planned.
    pub fn len(&self) -> usize {
        self.send_at.len()
    }

    /// True when no invocations are planned.
    pub fn is_empty(&self) -> bool {
        self.send_at.is_empty()
    }

    /// When invocation `inv` fires.
    pub fn send_at(&self, inv: usize) -> SimTime {
        self.send_at[inv]
    }

    /// Record indices carried by invocation `inv`.
    pub fn members(&self, inv: usize) -> &[u32] {
        &self.members[self.bounds[inv] as usize..self.bounds[inv + 1] as usize]
    }

    /// Appends one invocation with the given members.
    pub fn push(&mut self, send_at: SimTime, members: impl IntoIterator<Item = u32>) {
        self.send_at.push(send_at);
        self.members.extend(members);
        self.bounds.push(self.members.len() as u32);
    }

    /// `(send_at, members)` pairs in invocation order.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, &[u32])> + '_ {
        (0..self.len()).map(|i| (self.send_at(i), self.members(i)))
    }
}

/// Groups one client's arrivals (`(record index, arrival)` sorted by
/// arrival) into invocations under `policy`, appending to `out` — the
/// executor calls this once per client into one shared plan.
///
/// # Panics
/// Panics if a fixed batch size or adaptive max batch is zero.
pub fn plan_invocations_into(
    arrivals: &[(usize, SimTime)],
    policy: BatchPolicy,
    out: &mut InvocationPlan,
) {
    debug_assert!(arrivals.windows(2).all(|w| w[0].1 <= w[1].1));
    match policy {
        BatchPolicy::None => {
            out.reserve(arrivals.len(), arrivals.len());
            for &(idx, at) in arrivals {
                out.push(at, [idx as u32]);
            }
        }
        BatchPolicy::Fixed(n) => {
            assert!(n > 0, "zero batch size");
            for chunk in arrivals.chunks(n as usize) {
                // The batch fires when its last member arrives (or at
                // workload end for the final partial batch — same
                // instant, since these are the last arrivals).
                out.push(
                    chunk.last().expect("non-empty chunk").1,
                    chunk.iter().map(|&(idx, _)| idx as u32),
                );
            }
        }
        BatchPolicy::Adaptive {
            max_wait,
            max_batch,
        } => {
            assert!(max_batch > 0, "zero max batch");
            let mut i = 0;
            while i < arrivals.len() {
                let window_end = arrivals[i].1 + max_wait;
                let mut j = i + 1;
                while j < arrivals.len()
                    && arrivals[j].1 <= window_end
                    && (j - i) < max_batch as usize
                {
                    j += 1;
                }
                let last_arrival = arrivals[j - 1].1;
                // Fire as soon as the batch is full; otherwise wait out the
                // window in case more requests show up.
                let send_at = if (j - i) == max_batch as usize {
                    last_arrival
                } else {
                    window_end
                };
                out.push(send_at, arrivals[i..j].iter().map(|&(idx, _)| idx as u32));
                i = j;
            }
        }
    }
}

/// Groups one client's arrivals (`(record index, arrival)` sorted by
/// arrival) into invocations under `policy`. Allocating convenience
/// wrapper around [`plan_invocations_into`], kept for tests and external
/// callers.
///
/// # Panics
/// Panics if a fixed batch size or adaptive max batch is zero.
pub fn plan_invocations(arrivals: &[(usize, SimTime)], policy: BatchPolicy) -> Vec<Invocation> {
    let mut plan = InvocationPlan::new();
    plan_invocations_into(arrivals, policy, &mut plan);
    plan.iter()
        .map(|(send_at, members)| Invocation {
            send_at,
            members: members.iter().map(|&m| m as usize).collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn arrivals(times: &[f64]) -> Vec<(usize, SimTime)> {
        times.iter().enumerate().map(|(i, &s)| (i, t(s))).collect()
    }

    #[test]
    fn none_is_one_to_one() {
        let a = arrivals(&[1.0, 2.0, 3.0]);
        let inv = plan_invocations(&a, BatchPolicy::None);
        assert_eq!(inv.len(), 3);
        assert!(inv.iter().all(|i| i.members.len() == 1));
        assert_eq!(inv[1].send_at, t(2.0));
    }

    #[test]
    fn fixed_batches_fire_on_last_member() {
        let a = arrivals(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let inv = plan_invocations(&a, BatchPolicy::Fixed(2));
        assert_eq!(inv.len(), 3);
        assert_eq!(inv[0].members, vec![0, 1]);
        assert_eq!(inv[0].send_at, t(2.0));
        // Final partial batch carries the leftover request.
        assert_eq!(inv[2].members, vec![4]);
        assert_eq!(inv[2].send_at, t(5.0));
    }

    #[test]
    fn fixed_conserves_members() {
        let a = arrivals(&[0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0]);
        for n in 1..=7 {
            let inv = plan_invocations(&a, BatchPolicy::Fixed(n));
            let total: usize = inv.iter().map(|i| i.members.len()).sum();
            assert_eq!(total, 7);
        }
    }

    #[test]
    fn adaptive_full_batch_fires_early() {
        let a = arrivals(&[0.0, 0.1, 0.2, 5.0]);
        let inv = plan_invocations(
            &a,
            BatchPolicy::Adaptive {
                max_wait: SimDuration::from_secs(1),
                max_batch: 3,
            },
        );
        assert_eq!(inv.len(), 2);
        // Full batch fires at its last member's arrival, not the window end.
        assert_eq!(inv[0].members, vec![0, 1, 2]);
        assert_eq!(inv[0].send_at, t(0.2));
    }

    #[test]
    fn adaptive_waits_out_window_when_sparse() {
        let a = arrivals(&[0.0, 10.0]);
        let inv = plan_invocations(
            &a,
            BatchPolicy::Adaptive {
                max_wait: SimDuration::from_secs(2),
                max_batch: 8,
            },
        );
        assert_eq!(inv.len(), 2);
        // A lone request is held until the window closes.
        assert_eq!(inv[0].send_at, t(2.0));
        assert_eq!(inv[1].send_at, t(12.0));
    }

    #[test]
    fn adaptive_bounds_oldest_wait() {
        let times: Vec<f64> = (0..100).map(|i| i as f64 * 0.05).collect();
        let a = arrivals(&times);
        let max_wait = SimDuration::from_millis(500);
        let inv = plan_invocations(
            &a,
            BatchPolicy::Adaptive {
                max_wait,
                max_batch: 64,
            },
        );
        for b in &inv {
            let first_arrival = a[b.members[0]].1;
            assert!(b.send_at.duration_since(first_arrival) <= max_wait);
        }
        let total: usize = inv.iter().map(|i| i.members.len()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn empty_arrivals_yield_nothing() {
        assert!(plan_invocations(&[], BatchPolicy::Fixed(4)).is_empty());
        assert!(plan_invocations(&[], BatchPolicy::None).is_empty());
    }
}
