//! The planner (paper Figure 3): a validated deployment specification.
//!
//! A [`Deployment`] pins down the three dimensions the paper deploys by —
//! model, runtime, configuration — plus the design-space knobs of Section 5
//! (memory, provisioned concurrency, batch size) and the Figure 12
//! micro-benchmark inputs. [`Deployment::validate`] enforces the platform
//! rules the paper calls out (Lambda's 512 MB `/tmp` quota, AI Platform's
//! TF-only support, Cloud Functions' lack of provisioned concurrency).

use serde::{Deserialize, Serialize};
use slsb_model::{ModelKind, RuntimeKind};
use slsb_platform::{
    ManagedMlConfig, Platform, PlatformKind, PolicySet, ServerlessConfig, VmServerConfig,
    LAMBDA_TMP_LIMIT_MB,
};
use slsb_sim::Seed;
use std::fmt;

/// A fully specified deployment of one model on one serving system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Deployment {
    /// Which of the eight systems serves the model.
    pub platform: PlatformKind,
    /// The served model.
    pub model: ModelKind,
    /// The serving runtime.
    pub runtime: RuntimeKind,
    /// Function memory in MB (serverless platforms only; the paper's
    /// default is 2 GB).
    pub memory_mb: f64,
    /// Pre-warmed instances (AWS serverless only; Section 5.4).
    pub provisioned_concurrency: u32,
    /// Client-side batch size (Section 5.5); 1 disables batching.
    pub batch_size: u32,
    /// Dummy MB injected into the container image (Figure 12a).
    pub extra_container_mb: f64,
    /// Dummy MB downloaded beside the model (Figure 12b).
    pub extra_download_mb: f64,
    /// Input samples packed per request; only one is predicted
    /// (Figure 12c).
    pub samples_per_request: u32,
    /// Inference executions per request (Figure 12d).
    pub inference_repeats: u32,
    /// Keep-alive / placement / scaling policy overrides; `None` keeps the
    /// platform defaults (the paper's behavior).
    #[serde(default)]
    pub policy: Option<PolicySet>,
}

impl Deployment {
    /// The paper's default deployment of `model` × `runtime` on `platform`.
    pub fn new(platform: PlatformKind, model: ModelKind, runtime: RuntimeKind) -> Deployment {
        Deployment {
            platform,
            model,
            runtime,
            memory_mb: 2048.0,
            provisioned_concurrency: 0,
            batch_size: 1,
            extra_container_mb: 0.0,
            extra_download_mb: 0.0,
            samples_per_request: 1,
            inference_repeats: 1,
            policy: None,
        }
    }

    /// Fluent setter for [`Deployment::policy`].
    pub fn with_policy(mut self, policy: PolicySet) -> Deployment {
        self.policy = Some(policy);
        self
    }

    /// Fluent setter for [`Deployment::memory_mb`].
    pub fn with_memory_mb(mut self, mb: f64) -> Deployment {
        self.memory_mb = mb;
        self
    }

    /// Fluent setter for [`Deployment::provisioned_concurrency`].
    pub fn with_provisioned_concurrency(mut self, n: u32) -> Deployment {
        self.provisioned_concurrency = n;
        self
    }

    /// Fluent setter for [`Deployment::batch_size`].
    pub fn with_batch_size(mut self, n: u32) -> Deployment {
        self.batch_size = n;
        self
    }

    /// Checks the platform rules; returns the first violation.
    pub fn validate(&self) -> Result<(), PlanError> {
        if self.batch_size == 0 || self.samples_per_request == 0 || self.inference_repeats == 0 {
            return Err(PlanError::ZeroParameter);
        }
        if self.platform.is_serverless() {
            if !(128.0..=10_240.0).contains(&self.memory_mb) {
                return Err(PlanError::MemoryOutOfRange(self.memory_mb));
            }
        } else {
            // Server-side knobs that only exist on FaaS.
            if self.provisioned_concurrency > 0
                || self.extra_container_mb != 0.0
                || self.extra_download_mb != 0.0
            {
                return Err(PlanError::ServerlessOnlyKnob(self.platform));
            }
        }
        if self.provisioned_concurrency > 0 && self.platform != PlatformKind::AwsServerless {
            // The paper studies provisioned concurrency on Lambda; Cloud
            // Functions gen-1 has no equivalent.
            return Err(PlanError::ProvisionedConcurrencyUnsupported(self.platform));
        }
        if self.platform == PlatformKind::GcpManagedMl && self.runtime != RuntimeKind::Tf115 {
            // Section 2.4: AI Platform only supports TensorFlow for deep
            // learning.
            return Err(PlanError::RuntimeUnsupported {
                platform: self.platform,
                runtime: self.runtime,
            });
        }
        if self.platform.is_managed_ml() && self.runtime != RuntimeKind::Tf115 {
            // The paper evaluates ManagedML with TF1.15 only; ORT endpoints
            // are out of scope on both clouds.
            return Err(PlanError::RuntimeUnsupported {
                platform: self.platform,
                runtime: self.runtime,
            });
        }
        Ok(())
    }

    /// True when the model artifact must be baked into the serverless image
    /// (Lambda `/tmp` rule; we mirror it on both clouds, matching the
    /// paper's packaging).
    pub fn model_baked_in_image(&self) -> bool {
        self.platform.is_serverless() && self.model.profile().artifact_mb > LAMBDA_TMP_LIMIT_MB
    }

    /// Builds the simulated platform for this deployment.
    ///
    /// # Errors
    /// Fails when [`Deployment::validate`] fails.
    pub fn build(&self, seed: Seed) -> Result<Platform, PlanError> {
        self.validate()?;
        let m = self.model.profile();
        let r = self.runtime.profile();
        let provider = self.platform.provider();
        let policy = self.policy.unwrap_or_default();
        Ok(match self.platform {
            PlatformKind::AwsServerless | PlatformKind::GcpServerless => {
                let mut cfg = ServerlessConfig::new(provider, m, r);
                cfg.memory_mb = self.memory_mb;
                cfg.provisioned_concurrency = self.provisioned_concurrency;
                cfg.bake_model_in_image = self.model_baked_in_image();
                cfg.extra_container_mb = self.extra_container_mb;
                cfg.extra_download_mb = self.extra_download_mb;
                cfg.policy = policy;
                Platform::serverless(cfg, seed)
            }
            PlatformKind::AwsManagedMl | PlatformKind::GcpManagedMl => {
                let mut cfg = ManagedMlConfig::new(provider, m, r);
                cfg.policy = policy;
                Platform::managedml(cfg, seed)
            }
            PlatformKind::AwsCpu | PlatformKind::GcpCpu => {
                let mut cfg = VmServerConfig::cpu(provider, m, r);
                cfg.policy = policy;
                Platform::vm(cfg, seed)
            }
            PlatformKind::AwsGpu | PlatformKind::GcpGpu => {
                let mut cfg = VmServerConfig::gpu(provider, m, r);
                cfg.policy = policy;
                Platform::vm(cfg, seed)
            }
        })
    }

    /// Short human-readable label, e.g.
    /// `"AWS-Serverless/MobileNet/TF1.15"`.
    pub fn label(&self) -> String {
        format!("{}/{}/{}", self.platform, self.model, self.runtime)
    }
}

/// Why a deployment is invalid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlanError {
    /// batch size / samples / repeats must be ≥ 1.
    ZeroParameter,
    /// Serverless memory outside the allocatable range.
    MemoryOutOfRange(f64),
    /// Provisioned concurrency / container / download knobs on a
    /// non-serverless platform.
    ServerlessOnlyKnob(PlatformKind),
    /// Provisioned concurrency requested where unsupported.
    ProvisionedConcurrencyUnsupported(PlatformKind),
    /// Platform does not support the runtime.
    RuntimeUnsupported {
        /// The offending platform.
        platform: PlatformKind,
        /// The unsupported runtime.
        runtime: RuntimeKind,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::ZeroParameter => {
                write!(f, "batch size, samples, and repeats must be at least 1")
            }
            PlanError::MemoryOutOfRange(mb) => {
                write!(f, "serverless memory {mb} MB outside 128–10240 MB")
            }
            PlanError::ServerlessOnlyKnob(p) => {
                write!(f, "{p} does not accept serverless-only parameters")
            }
            PlanError::ProvisionedConcurrencyUnsupported(p) => {
                write!(f, "{p} has no provisioned concurrency")
            }
            PlanError::RuntimeUnsupported { platform, runtime } => {
                write!(f, "{platform} does not support {runtime}")
            }
        }
    }
}

impl std::error::Error for PlanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_deployment_is_valid_everywhere_with_tf() {
        for p in PlatformKind::ALL {
            for m in ModelKind::ALL {
                Deployment::new(p, m, RuntimeKind::Tf115)
                    .validate()
                    .unwrap();
            }
        }
    }

    #[test]
    fn gcp_managedml_rejects_ort() {
        let d = Deployment::new(
            PlatformKind::GcpManagedMl,
            ModelKind::MobileNet,
            RuntimeKind::Ort14,
        );
        assert!(matches!(
            d.validate(),
            Err(PlanError::RuntimeUnsupported { .. })
        ));
    }

    #[test]
    fn provisioned_concurrency_is_lambda_only() {
        let ok = Deployment::new(
            PlatformKind::AwsServerless,
            ModelKind::MobileNet,
            RuntimeKind::Tf115,
        )
        .with_provisioned_concurrency(8);
        ok.validate().unwrap();
        let bad = Deployment::new(
            PlatformKind::GcpServerless,
            ModelKind::MobileNet,
            RuntimeKind::Tf115,
        )
        .with_provisioned_concurrency(8);
        assert!(matches!(
            bad.validate(),
            Err(PlanError::ProvisionedConcurrencyUnsupported(_))
        ));
    }

    #[test]
    fn memory_bounds_enforced() {
        let d = Deployment::new(
            PlatformKind::AwsServerless,
            ModelKind::MobileNet,
            RuntimeKind::Tf115,
        )
        .with_memory_mb(64.0);
        assert!(matches!(d.validate(), Err(PlanError::MemoryOutOfRange(_))));
    }

    #[test]
    fn serverless_knobs_rejected_on_vm() {
        let mut d = Deployment::new(
            PlatformKind::AwsCpu,
            ModelKind::MobileNet,
            RuntimeKind::Tf115,
        );
        d.extra_download_mb = 100.0;
        assert!(matches!(
            d.validate(),
            Err(PlanError::ServerlessOnlyKnob(_))
        ));
    }

    #[test]
    fn zero_batch_rejected() {
        let d = Deployment::new(
            PlatformKind::AwsServerless,
            ModelKind::MobileNet,
            RuntimeKind::Tf115,
        )
        .with_batch_size(0);
        assert_eq!(d.validate(), Err(PlanError::ZeroParameter));
    }

    #[test]
    fn vgg_is_baked_only_on_serverless() {
        let sls = Deployment::new(
            PlatformKind::AwsServerless,
            ModelKind::Vgg,
            RuntimeKind::Tf115,
        );
        assert!(sls.model_baked_in_image());
        let cpu = Deployment::new(PlatformKind::AwsCpu, ModelKind::Vgg, RuntimeKind::Tf115);
        assert!(!cpu.model_baked_in_image());
        let small = Deployment::new(
            PlatformKind::AwsServerless,
            ModelKind::MobileNet,
            RuntimeKind::Tf115,
        );
        assert!(!small.model_baked_in_image());
    }

    #[test]
    fn build_produces_platform() {
        let d = Deployment::new(
            PlatformKind::AwsServerless,
            ModelKind::MobileNet,
            RuntimeKind::Tf115,
        )
        .with_memory_mb(4096.0);
        let p = d.build(Seed(1)).unwrap();
        match p {
            Platform::Serverless(p) => assert_eq!(p.config().memory_mb, 4096.0),
            _ => panic!("expected serverless"),
        }
    }

    #[test]
    fn build_rejects_invalid() {
        let d = Deployment::new(
            PlatformKind::GcpManagedMl,
            ModelKind::MobileNet,
            RuntimeKind::Ort14,
        );
        assert!(d.build(Seed(1)).is_err());
    }

    #[test]
    fn labels_and_errors_display() {
        let d = Deployment::new(
            PlatformKind::AwsServerless,
            ModelKind::Albert,
            RuntimeKind::Ort14,
        );
        assert_eq!(d.label(), "AWS-Serverless/ALBERT/ORT1.4");
        assert!(!PlanError::ZeroParameter.to_string().is_empty());
        assert!(!PlanError::MemoryOutOfRange(1.0).to_string().is_empty());
    }
}
