//! Parallel run harness: multi-core fan-out of independent simulation jobs
//! with bit-identical, seed-order-stable results.
//!
//! Every simulation in this workspace is a pure function of
//! `(deployment, workload, seed)`, which makes batches embarrassingly
//! parallel. The harness is a std-only work-stealing pool built on
//! [`std::thread::scope`] plus a shared atomic job index: workers claim job
//! ids with `fetch_add`, run them, and the results are merged into a
//! pre-sized slot vector indexed by job id — so the output order (and
//! therefore every downstream aggregate and serialization) never depends on
//! thread scheduling. `jobs = 1` bypasses the pool entirely and runs the
//! exact sequential path.
//!
//! The module also hosts the [`TraceCache`]: the experiment suite replays
//! the same three MMPP presets dozens of times, and regenerating a trace is
//! pure waste once one (seed, preset, scale) realization exists.

use crate::executor::{Executor, RunResult};
use crate::plan::{Deployment, PlanError};
use crate::scenario::WorkloadSpec;
use slsb_sim::Seed;
use slsb_workload::{MmppPreset, WorkloadTrace};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread;

/// Worker-count policy for a parallel batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Jobs(usize);

impl Jobs {
    /// Exactly `n` workers (clamped to at least 1).
    pub fn new(n: usize) -> Jobs {
        Jobs(n.max(1))
    }

    /// One worker per available core (the `--jobs` default).
    pub fn available() -> Jobs {
        Jobs(
            thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// The worker count.
    pub fn get(self) -> usize {
        self.0
    }

    /// Whether this policy runs the inline sequential path.
    pub fn is_sequential(self) -> bool {
        self.0 == 1
    }
}

impl Default for Jobs {
    fn default() -> Self {
        Jobs::available()
    }
}

/// Maps `f` over `items` on up to `jobs` worker threads, returning results
/// in item order.
///
/// Scheduling is work-stealing (a shared atomic index), but each result is
/// written to the slot of its item index, so the returned vector is
/// byte-for-byte identical to the sequential map for any worker count —
/// provided `f` is a pure function of `(index, item)`, which every
/// simulation here is (all randomness derives from per-job seeds).
///
/// # Panics
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn parallel_map<T, R, F>(jobs: Jobs, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = jobs.get().min(n);
    if workers <= 1 {
        // The `--jobs 1` contract: the plain sequential loop, no threads.
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);

    thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= n {
                            break;
                        }
                        local.push((idx, f(idx, &items[idx])));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            for (idx, result) in handle.join().expect("runner worker panicked") {
                slots[idx] = Some(result);
            }
        }
    });

    slots
        .into_iter()
        .map(|slot| slot.expect("work-stealing index covered every slot"))
        .collect()
}

/// Splits one worker budget between an outer fan-out (e.g. `--jobs`
/// replicas) and the intra-run shard workers each task may spawn, so the
/// two never oversubscribe: with `outer` tasks sharing `total` workers,
/// each task's sharded runs get `max(1, total / min(outer, total))`
/// workers, further capped at the `requested` shard budget. Shard results
/// are worker-count independent, so clamping never changes any output —
/// only how many threads exist at once.
pub fn shard_worker_budget(total: usize, outer: usize, requested: usize) -> usize {
    let total = total.max(1);
    let active_outer = outer.clamp(1, total);
    (total / active_outer).max(1).min(requested.max(1))
}

/// One independent simulation: a deployment serving one workload
/// realization under one seed.
#[derive(Debug, Clone, Copy)]
pub struct RunJob {
    /// The configuration to run.
    pub deployment: Deployment,
    /// The workload to generate.
    pub workload: WorkloadSpec,
    /// The executor seed (client jitter, cold starts, …).
    pub seed: Seed,
    /// The seed the trace is generated from. Callers that fan one base
    /// seed out across jobs should derive this with a substream so the
    /// workload stream stays independent of the executor stream.
    pub trace_seed: Seed,
}

impl RunJob {
    /// A job whose trace seed is the standard `"runner-workload"`
    /// substream of `seed`.
    pub fn new(deployment: Deployment, workload: WorkloadSpec, seed: Seed) -> RunJob {
        RunJob {
            deployment,
            workload,
            seed,
            trace_seed: seed.substream("runner-workload"),
        }
    }
}

/// Evaluates a batch of jobs across `jobs` workers. Results come back in
/// job order, each the exact value the sequential loop would produce.
///
/// # Errors
/// Each slot carries its own [`PlanError`]; one invalid deployment does
/// not poison its siblings.
pub fn run_jobs(
    executor: &Executor,
    jobs: Jobs,
    batch: &[RunJob],
) -> Vec<Result<RunResult, PlanError>> {
    parallel_map(jobs, batch, |_, job| {
        let trace = job.workload.generate(job.trace_seed);
        executor.run(&job.deployment, &trace, job.seed)
    })
}

type TraceKey = (u64, MmppPreset, u64);

static TRACE_CACHE: OnceLock<Mutex<HashMap<TraceKey, Arc<WorkloadTrace>>>> = OnceLock::new();

/// Process-wide cache of generated MMPP preset traces, keyed by
/// `(seed, preset, scale)`.
///
/// The experiment driver replays the same three paper presets for almost
/// every figure; one suite run used to regenerate each trace dozens of
/// times. Generation is deterministic, so the first realization is the
/// only one worth computing. Scale participates in the key by exact bit
/// pattern (`f64::to_bits`) — two scales compare equal iff they generate
/// identical traces.
pub struct TraceCache;

impl TraceCache {
    /// Returns the trace for `(seed, preset, scale)`, generating and
    /// caching it on first request. Generation happens under the cache
    /// lock, so concurrent requests for the same key generate once.
    pub fn preset(seed: Seed, preset: MmppPreset, scale: f64) -> Arc<WorkloadTrace> {
        let key = (seed.0, preset, scale.to_bits());
        let mut map = Self::lock();
        Arc::clone(map.entry(key).or_insert_with(|| {
            Arc::new(
                WorkloadSpec::Preset {
                    which: preset,
                    scale,
                }
                .generate(seed),
            )
        }))
    }

    /// Number of cached traces (diagnostics/tests).
    pub fn entries() -> usize {
        Self::lock().len()
    }

    /// Drops all cached traces (tests; frees memory between suites).
    pub fn clear() {
        Self::lock().clear();
    }

    fn lock() -> std::sync::MutexGuard<'static, HashMap<TraceKey, Arc<WorkloadTrace>>> {
        TRACE_CACHE
            .get_or_init(|| Mutex::new(HashMap::new()))
            .lock()
            .expect("trace cache poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slsb_model::{ModelKind, RuntimeKind};
    use slsb_platform::PlatformKind;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..257).collect();
        let seq = parallel_map(Jobs::new(1), &items, |i, &x| (i as u64) * 1000 + x * x);
        let par = parallel_map(Jobs::new(8), &items, |i, &x| (i as u64) * 1000 + x * x);
        assert_eq!(seq, par);
        assert_eq!(seq[3], 3009);
    }

    #[test]
    fn parallel_map_handles_edge_sizes() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(Jobs::new(4), &empty, |_, &x| x).is_empty());
        assert_eq!(parallel_map(Jobs::new(4), &[7u32], |_, &x| x + 1), vec![8]);
        // More workers than items.
        assert_eq!(
            parallel_map(Jobs::new(64), &[1u32, 2], |_, &x| x * 2),
            vec![2, 4]
        );
    }

    #[test]
    fn shard_worker_budget_splits_without_oversubscribing() {
        // (total workers, outer fan-out, requested shards) → per-task share.
        assert_eq!(shard_worker_budget(8, 4, 8), 2);
        assert_eq!(shard_worker_budget(8, 1, 4), 4);
        // Requested caps the share even when workers are plentiful.
        assert_eq!(shard_worker_budget(16, 1, 3), 3);
        // More outer tasks than workers: every task degrades to sequential.
        assert_eq!(shard_worker_budget(4, 8, 16), 1);
        assert_eq!(shard_worker_budget(1, 5, 8), 1);
        // Non-divisible splits round down but never below one.
        assert_eq!(shard_worker_budget(16, 3, 100), 5);
        // Degenerate inputs all clamp to one.
        assert_eq!(shard_worker_budget(0, 0, 0), 1);
    }

    #[test]
    fn jobs_clamps_to_one() {
        assert_eq!(Jobs::new(0).get(), 1);
        assert!(Jobs::new(1).is_sequential());
        assert!(!Jobs::new(2).is_sequential());
        assert!(Jobs::available().get() >= 1);
    }

    #[test]
    fn run_jobs_matches_sequential_executor() {
        let executor = Executor::default();
        let dep = Deployment::new(
            PlatformKind::AwsServerless,
            ModelKind::MobileNet,
            RuntimeKind::Ort14,
        );
        let workload = WorkloadSpec::Preset {
            which: MmppPreset::W40,
            scale: 0.05,
        };
        let batch: Vec<RunJob> = (0..6)
            .map(|i| RunJob::new(dep, workload, Seed(500 + i)))
            .collect();
        let par = run_jobs(&executor, Jobs::new(4), &batch);
        let seq = run_jobs(&executor, Jobs::new(1), &batch);
        assert_eq!(par.len(), 6);
        for (p, s) in par.iter().zip(&seq) {
            let (p, s) = (p.as_ref().unwrap(), s.as_ref().unwrap());
            assert_eq!(p.records, s.records);
            assert_eq!(p.platform.invocations, s.platform.invocations);
        }
    }

    #[test]
    fn run_jobs_isolates_per_job_errors() {
        let executor = Executor::default();
        let good = Deployment::new(
            PlatformKind::AwsServerless,
            ModelKind::MobileNet,
            RuntimeKind::Ort14,
        );
        // GCP ManagedML rejects ORT — an invalid plan.
        let bad = Deployment::new(
            PlatformKind::GcpManagedMl,
            ModelKind::MobileNet,
            RuntimeKind::Ort14,
        );
        let workload = WorkloadSpec::Poisson {
            rate: 5.0,
            duration_s: 5.0,
        };
        let batch = [
            RunJob::new(good, workload, Seed(1)),
            RunJob::new(bad, workload, Seed(1)),
            RunJob::new(good, workload, Seed(2)),
        ];
        let out = run_jobs(&executor, Jobs::new(3), &batch);
        assert!(out[0].is_ok());
        assert!(out[1].is_err());
        assert!(out[2].is_ok());
    }

    #[test]
    fn trace_cache_returns_identical_instance() {
        let a = TraceCache::preset(Seed(9000), MmppPreset::W40, 0.01);
        let b = TraceCache::preset(Seed(9000), MmppPreset::W40, 0.01);
        assert!(Arc::ptr_eq(&a, &b), "second request should hit the cache");
        // A different key generates a different trace.
        let c = TraceCache::preset(Seed(9001), MmppPreset::W40, 0.01);
        assert!(!Arc::ptr_eq(&a, &c));
        // The cached trace equals a fresh generation.
        let fresh = WorkloadSpec::Preset {
            which: MmppPreset::W40,
            scale: 0.01,
        }
        .generate(Seed(9000));
        assert_eq!(*a, fresh);
    }
}
