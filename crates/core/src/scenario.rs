//! Declarative scenarios: a JSON-serializable description of one
//! experiment — workload, deployment, executor settings, seed — that can be
//! saved, shared, and replayed. This is the "easily extended to support new
//! models and new platforms" surface the paper claims for its framework
//! (Section 3): downstream users describe a run instead of writing code.

use crate::analyzer::{analyze, Analysis};
use crate::executor::{Executor, ExecutorConfig, RunResult};
use crate::plan::{Deployment, PlanError};
use serde::{Deserialize, Serialize};
use crate::slo::SloSpec;
use slsb_platform::{FaultPlan, FaultPlanError, PolicySet};
use slsb_sim::{ProfGuard, Seed, SimDuration, SimTime};
use slsb_workload::{
    DiurnalSpec, FlashCrowdSpec, MmppPreset, MmppSpec, PoissonProcess, WorkloadTrace,
};
use std::fmt;

/// A serializable workload description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum WorkloadSpec {
    /// One of the paper's presets, optionally duration-scaled.
    Preset {
        /// Which preset.
        which: MmppPreset,
        /// Duration scale (1.0 = the paper's 900 s).
        scale: f64,
    },
    /// A custom 2-state MMPP.
    Mmpp {
        /// High-state rate (req/s).
        rate_high: f64,
        /// Low-state rate (req/s).
        rate_low: f64,
        /// Mean high-state sojourn, seconds.
        dwell_high_s: f64,
        /// Mean low-state sojourn, seconds.
        dwell_low_s: f64,
        /// Trace duration, seconds.
        duration_s: f64,
    },
    /// A sinusoidal day-night cycle.
    Diurnal {
        /// Mean rate (req/s).
        base_rate: f64,
        /// Peak-to-mean difference (req/s).
        amplitude: f64,
        /// Cycle period, seconds.
        period_s: f64,
        /// Trace duration, seconds.
        duration_s: f64,
    },
    /// A flash crowd on a quiet background.
    FlashCrowd {
        /// Background rate (req/s).
        base_rate: f64,
        /// Spike rate (req/s).
        spike_rate: f64,
        /// Spike onset, seconds.
        spike_start_s: f64,
        /// Spike length, seconds.
        spike_duration_s: f64,
        /// Trace duration, seconds.
        duration_s: f64,
    },
    /// Constant-rate Poisson arrivals.
    Poisson {
        /// Arrival rate (req/s).
        rate: f64,
        /// Trace duration, seconds.
        duration_s: f64,
    },
}

impl WorkloadSpec {
    /// Materializes the trace for a seed.
    pub fn generate(&self, seed: Seed) -> WorkloadTrace {
        let _p = ProfGuard::enter("workload/generate");
        match *self {
            WorkloadSpec::Preset { which, scale } => {
                let spec = which.spec();
                MmppSpec {
                    duration: spec.duration.mul_f64(scale),
                    ..spec
                }
                .generate(seed)
            }
            WorkloadSpec::Mmpp {
                rate_high,
                rate_low,
                dwell_high_s,
                dwell_low_s,
                duration_s,
            } => MmppSpec {
                name: "scenario-mmpp",
                rate_high,
                rate_low,
                mean_high_dwell: SimDuration::from_secs_f64(dwell_high_s),
                mean_low_dwell: SimDuration::from_secs_f64(dwell_low_s),
                duration: SimDuration::from_secs_f64(duration_s),
            }
            .generate(seed),
            WorkloadSpec::Diurnal {
                base_rate,
                amplitude,
                period_s,
                duration_s,
            } => DiurnalSpec {
                name: "scenario-diurnal",
                base_rate,
                amplitude,
                period: SimDuration::from_secs_f64(period_s),
                duration: SimDuration::from_secs_f64(duration_s),
            }
            .generate(seed),
            WorkloadSpec::FlashCrowd {
                base_rate,
                spike_rate,
                spike_start_s,
                spike_duration_s,
                duration_s,
            } => FlashCrowdSpec {
                name: "scenario-flash-crowd",
                base_rate,
                spike_rate,
                spike_start: SimTime::from_secs_f64(spike_start_s),
                spike_duration: SimDuration::from_secs_f64(spike_duration_s),
                duration: SimDuration::from_secs_f64(duration_s),
            }
            .generate(seed),
            WorkloadSpec::Poisson { rate, duration_s } => {
                PoissonProcess::new(rate, SimDuration::from_secs_f64(duration_s)).generate(seed)
            }
        }
    }
}

/// One complete, replayable experiment description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Human-readable name.
    pub name: String,
    /// Experiment seed.
    pub seed: u64,
    /// The workload to generate.
    pub workload: WorkloadSpec,
    /// The deployment to serve it with.
    pub deployment: Deployment,
    /// Client-fleet settings.
    #[serde(default = "ExecutorConfig::default")]
    pub executor: ExecutorConfig,
    /// Fault-injection plan (an absent block injects nothing and is a
    /// byte-identical no-op).
    #[serde(default = "FaultPlan::none")]
    pub faults: FaultPlan,
    /// Service-level objectives to score the run against (an absent block
    /// evaluates nothing; purely observational either way).
    #[serde(default = "SloSpec::default")]
    pub slo: SloSpec,
    /// Scenario-level policy override. When set it wins over
    /// [`Deployment::policy`]; when absent the deployment decides (and an
    /// unset deployment keeps the platform defaults).
    #[serde(default)]
    pub policy: Option<PolicySet>,
}

/// Why a scenario failed to load or run.
#[derive(Debug)]
pub enum ScenarioError {
    /// JSON was malformed or did not match the schema.
    Parse(serde_json::Error),
    /// The deployment violates a platform rule.
    Plan(PlanError),
    /// The fault plan has an out-of-range knob.
    Faults(FaultPlanError),
    /// The SLO block has a nonsensical target.
    Slo(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Parse(e) => write!(f, "scenario parse error: {e}"),
            ScenarioError::Plan(e) => write!(f, "invalid deployment: {e}"),
            ScenarioError::Faults(e) => write!(f, "invalid fault plan: {e}"),
            ScenarioError::Slo(e) => write!(f, "invalid slo: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<PlanError> for ScenarioError {
    fn from(e: PlanError) -> Self {
        ScenarioError::Plan(e)
    }
}

impl Scenario {
    /// The deployment with the scenario-level policy override applied.
    fn effective_deployment(&self) -> Deployment {
        let mut dep = self.deployment;
        if self.policy.is_some() {
            dep.policy = self.policy;
        }
        dep
    }

    /// Parses a scenario from JSON.
    ///
    /// # Errors
    /// Fails on malformed JSON or schema mismatch.
    pub fn from_json(json: &str) -> Result<Scenario, ScenarioError> {
        serde_json::from_str(json).map_err(ScenarioError::Parse)
    }

    /// Serializes the scenario to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("scenario is serializable")
    }

    /// Generates the workload and runs the deployment.
    ///
    /// # Errors
    /// Fails when the deployment is invalid.
    pub fn run(&self) -> Result<(RunResult, Analysis), ScenarioError> {
        let seed = Seed(self.seed);
        self.faults.validate().map_err(ScenarioError::Faults)?;
        self.slo.validate().map_err(ScenarioError::Slo)?;
        let trace = self.workload.generate(seed.substream("scenario-workload"));
        let run = Executor::new(self.executor)
            .with_faults(self.faults.clone())
            .run(&self.effective_deployment(), &trace, seed)?;
        let analysis = analyze(&run);
        Ok((run, analysis))
    }

    /// [`Scenario::run`] with every trace event streamed into `rec`. The
    /// returned result and analysis are identical to an unrecorded run's.
    ///
    /// # Errors
    /// Fails when the deployment is invalid.
    pub fn run_recorded(
        &self,
        rec: &mut dyn slsb_obs::Recorder,
    ) -> Result<(RunResult, Analysis), ScenarioError> {
        let seed = Seed(self.seed);
        self.faults.validate().map_err(ScenarioError::Faults)?;
        self.slo.validate().map_err(ScenarioError::Slo)?;
        let trace = self.workload.generate(seed.substream("scenario-workload"));
        let run = Executor::new(self.executor)
            .with_faults(self.faults.clone())
            .run_recorded(&self.effective_deployment(), &trace, seed, rec)?;
        let analysis = analyze(&run);
        Ok((run, analysis))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slsb_model::{ModelKind, RuntimeKind};
    use slsb_platform::PlatformKind;

    fn sample() -> Scenario {
        Scenario {
            name: "smoke".into(),
            seed: 7,
            workload: WorkloadSpec::Mmpp {
                rate_high: 30.0,
                rate_low: 8.0,
                dwell_high_s: 20.0,
                dwell_low_s: 40.0,
                duration_s: 120.0,
            },
            deployment: Deployment::new(
                PlatformKind::AwsServerless,
                ModelKind::MobileNet,
                RuntimeKind::Ort14,
            ),
            executor: ExecutorConfig::default(),
            faults: FaultPlan::none(),
            slo: SloSpec::default(),
            policy: None,
        }
    }

    #[test]
    fn json_roundtrip() {
        let s = sample();
        let json = s.to_json();
        let parsed = Scenario::from_json(&json).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn scenario_runs_end_to_end() {
        let (run, analysis) = sample().run().unwrap();
        assert!(!run.records.is_empty());
        assert!(analysis.success_ratio > 0.9);
        assert!(analysis.cost_dollars() > 0.0);
    }

    #[test]
    fn every_workload_kind_generates() {
        let seed = Seed(3);
        let specs = [
            WorkloadSpec::Preset {
                which: MmppPreset::W40,
                scale: 0.05,
            },
            WorkloadSpec::Diurnal {
                base_rate: 20.0,
                amplitude: 10.0,
                period_s: 60.0,
                duration_s: 120.0,
            },
            WorkloadSpec::FlashCrowd {
                base_rate: 5.0,
                spike_rate: 80.0,
                spike_start_s: 30.0,
                spike_duration_s: 10.0,
                duration_s: 90.0,
            },
            WorkloadSpec::Poisson {
                rate: 15.0,
                duration_s: 60.0,
            },
        ];
        for spec in specs {
            let tr = spec.generate(seed);
            assert!(!tr.is_empty(), "{spec:?} generated nothing");
        }
    }

    #[test]
    fn malformed_json_is_a_parse_error() {
        let err = Scenario::from_json("{not json").unwrap_err();
        assert!(matches!(err, ScenarioError::Parse(_)));
        assert!(err.to_string().contains("parse"));
    }

    #[test]
    fn invalid_deployment_is_a_plan_error() {
        let mut s = sample();
        s.deployment = Deployment::new(
            PlatformKind::GcpManagedMl,
            ModelKind::MobileNet,
            RuntimeKind::Ort14,
        );
        let err = s.run().unwrap_err();
        assert!(matches!(err, ScenarioError::Plan(_)));
    }

    #[test]
    fn policy_block_overrides_deployment() {
        let mut s = sample();
        s.policy = PolicySet::by_name("fixed");
        assert_eq!(
            s.effective_deployment().policy,
            PolicySet::by_name("fixed")
        );
        // Absent scenario policy defers to the deployment's.
        let mut d = sample();
        d.deployment = d.deployment.with_policy(PolicySet::by_name("least_loaded").unwrap());
        assert_eq!(
            d.effective_deployment().policy,
            PolicySet::by_name("least_loaded")
        );
        // Roundtrip keeps the block.
        let parsed = Scenario::from_json(&s.to_json()).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn malformed_policy_block_is_a_parse_error() {
        let mut json = sample().to_json();
        json = json.replace(
            "\"policy\": null",
            "\"policy\": {\"keep_alive\": {\"kind\": \"no_such_policy\"}}",
        );
        assert!(json.contains("no_such_policy"), "replacement must apply");
        let err = Scenario::from_json(&json).unwrap_err();
        assert!(matches!(err, ScenarioError::Parse(_)));
        assert!(
            err.to_string().contains("no_such_policy"),
            "diagnostic must name the unknown policy: {err}"
        );
    }

    #[test]
    fn executor_field_is_optional_in_json() {
        let json = r#"{
            "name": "minimal",
            "seed": 1,
            "workload": {"kind": "poisson", "rate": 10.0, "duration_s": 30.0},
            "deployment": {
                "platform": "AwsServerless",
                "model": "MobileNet",
                "runtime": "Ort14",
                "memory_mb": 2048.0,
                "provisioned_concurrency": 0,
                "batch_size": 1,
                "extra_container_mb": 0.0,
                "extra_download_mb": 0.0,
                "samples_per_request": 1,
                "inference_repeats": 1
            }
        }"#;
        let s = Scenario::from_json(json).unwrap();
        assert_eq!(s.executor, ExecutorConfig::default());
        let (_, analysis) = s.run().unwrap();
        assert!(analysis.total > 0);
    }
}
