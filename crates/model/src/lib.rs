//! # slsb-model — models, serving runtimes, and calibration
//!
//! Static profiles of everything the paper deploys (Section 3, "Planner"):
//!
//! - [`zoo`] — MobileNet / ALBERT / VGG profiles (artifact size, inference
//!   cost, Amdahl parallel fraction, GPU service time);
//! - [`runtime`] — TensorFlow 1.15 vs OnnxRuntime 1.4 profiles (import
//!   time, load time, predict factor, lazy-init penalty, image size);
//! - [`compute`] — memory→vCPU allocation curves and inference-time scaling;
//! - [`calibration`] — the single home of every constant, each anchored to a
//!   number the paper reports, plus the paper's headline measurements as
//!   [`calibration::anchors`] for calibration tests.
//!
//! ```
//! use slsb_model::{predict_time, CpuAllocation, ModelKind, RuntimeKind};
//!
//! // MobileNet under TF1.15 on a 2 GB Cloud-Functions-style instance:
//! // ~61 ms warm inference, the paper's Section 5.2 anchor.
//! let vcpus = CpuAllocation::GCP_FUNCTIONS.vcpus(2048.0);
//! let t = predict_time(
//!     &ModelKind::MobileNet.profile(),
//!     &RuntimeKind::Tf115.profile(),
//!     vcpus,
//! );
//! assert!((t.as_secs_f64() - 0.061).abs() < 0.01);
//! ```

pub mod calibration;
pub mod compute;
pub mod runtime;
pub mod zoo;

pub use compute::{
    amdahl_speedup, first_predict_time, init_speedup, predict_time, CpuAllocation,
    INIT_PARALLEL_FRACTION,
};
pub use runtime::{RuntimeKind, RuntimeProfile};
pub use zoo::{ModelKind, ModelProfile};
