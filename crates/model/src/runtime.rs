//! Serving runtimes (paper Section 5.2).
//!
//! The paper compares TensorFlow 1.15 — the heavyweight common denominator
//! across all eight systems — against OnnxRuntime 1.4, a lightweight runtime
//! that slashes import and load time and executes inference faster. A
//! [`RuntimeProfile`] captures those axes.

use serde::{Deserialize, Serialize};
use slsb_sim::SimDuration;
use std::fmt;

/// The paper's two serving runtimes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RuntimeKind {
    /// TensorFlow 1.15 — the baseline runtime supported everywhere.
    Tf115,
    /// OnnxRuntime 1.4 — smaller and faster; serverless-only in the paper's
    /// design-space study.
    Ort14,
}

impl RuntimeKind {
    /// Both runtimes, paper order.
    pub const ALL: [RuntimeKind; 2] = [RuntimeKind::Tf115, RuntimeKind::Ort14];

    /// The calibrated profile. See `calibration` for the anchors.
    pub fn profile(self) -> RuntimeProfile {
        crate::calibration::runtime_profile(self)
    }
}

impl fmt::Display for RuntimeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RuntimeKind::Tf115 => "TF1.15",
            RuntimeKind::Ort14 => "ORT1.4",
        };
        f.write_str(s)
    }
}

/// Static description of a serving runtime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeProfile {
    /// Display name.
    pub name: String,
    /// Time to import the runtime's Python dependencies on a cold instance.
    /// The paper finds this sub-stage *dominates* TF cold starts (4–5 s,
    /// Figure 10).
    pub import_time: SimDuration,
    /// Fixed component of loading a model into the runtime.
    pub load_base: SimDuration,
    /// Per-MB component of loading a model into the runtime.
    pub load_per_mb: SimDuration,
    /// Multiplier on a model's reference predict time (TF1.15 = 1.0;
    /// ORT < 1 thanks to optimized kernels).
    pub predict_factor: f64,
    /// Extra latency of the *first* prediction on a freshly loaded model —
    /// lazily initialized runtime components (the paper cites TF saved-model
    /// warm-up guidance for this effect).
    pub lazy_init: SimDuration,
    /// Size of the runtime's share of the container image, in MB.
    pub image_mb: f64,
}

impl RuntimeProfile {
    /// Model load time for an artifact of `artifact_mb`.
    pub fn load_time(&self, artifact_mb: f64) -> SimDuration {
        assert!(
            artifact_mb.is_finite() && artifact_mb >= 0.0,
            "invalid artifact size: {artifact_mb}"
        );
        self.load_base + self.load_per_mb.mul_f64(artifact_mb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::ModelKind;

    #[test]
    fn ort_is_lighter_than_tf_on_every_axis() {
        let tf = RuntimeKind::Tf115.profile();
        let ort = RuntimeKind::Ort14.profile();
        assert!(ort.import_time < tf.import_time);
        assert!(ort.image_mb < tf.image_mb);
        assert!(ort.predict_factor < tf.predict_factor);
        assert!(ort.lazy_init < tf.lazy_init);
        let mb = ModelKind::MobileNet.profile().artifact_mb;
        assert!(ort.load_time(mb) < tf.load_time(mb));
    }

    #[test]
    fn tf_import_dominates_cold_start_per_paper() {
        // Figure 10: import is 4–5 s on both clouds.
        let tf = RuntimeKind::Tf115.profile();
        let import = tf.import_time.as_secs_f64();
        assert!((4.0..=5.0).contains(&import), "import {import}");
    }

    #[test]
    fn load_time_grows_with_artifact() {
        let tf = RuntimeKind::Tf115.profile();
        let small = tf.load_time(16.0);
        let large = tf.load_time(548.0);
        assert!(large > small * 2);
    }

    #[test]
    fn tf_predict_factor_is_unity() {
        assert_eq!(RuntimeKind::Tf115.profile().predict_factor, 1.0);
    }

    #[test]
    fn ort_predict_factor_matches_paper_ratio() {
        // Section 5.2: MobileNet warm predict on GCP is 0.061 s (TF) vs
        // 0.043 s (ORT) → factor ≈ 0.70.
        let f = RuntimeKind::Ort14.profile().predict_factor;
        assert!((f - 0.043 / 0.061).abs() < 0.03, "factor {f}");
    }

    #[test]
    fn zero_artifact_load_is_base() {
        let tf = RuntimeKind::Tf115.profile();
        assert_eq!(tf.load_time(0.0), tf.load_base);
    }

    #[test]
    fn display_names() {
        assert_eq!(RuntimeKind::Tf115.to_string(), "TF1.15");
        assert_eq!(RuntimeKind::Ort14.to_string(), "ORT1.4");
    }
}
