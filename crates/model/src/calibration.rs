//! Calibration tables: every constant the simulators use, each traceable to
//! a measurement the paper reports (or a 2021 public price sheet).
//!
//! This module is deliberately the *single* home of magic numbers so that a
//! reader can audit the simulation against the paper line by line, and so
//! ablation benches can perturb one anchor at a time.
//!
//! Anchors used here (see also [`anchors`]):
//! - Artifact sizes 16 / 51.5 / 548 MB (Section 3; see DESIGN.md on the
//!   paper's transposed "respectively" — VGG is the 548 MB model).
//! - TF import sub-stage 4–5 s dominates cold start (Figure 10).
//! - Warm predict MobileNet on GCP at 2 GB: 0.061 s (TF) vs 0.043 s (ORT)
//!   (Section 5.2).
//! - ORT cold start 2.775 s (AWS) / 2.917 s (GCP) vs TF 9.08 / 11.71 s for
//!   MobileNet at workload-120 (Figures 10 and 14).
//! - TF container 1238 MB on AWS / 920 MB on GCP; ORT container 391 MB on
//!   AWS (Sections 5.1–5.2).
//! - GPU serves VGG in ≈ 0.02 s/request (Section 4.4).

use crate::runtime::{RuntimeKind, RuntimeProfile};
use crate::zoo::{ModelKind, ModelProfile};
use slsb_sim::SimDuration;

/// Calibrated model profiles.
///
/// `reference_predict` is the warm single-sample TF1.15 inference time on
/// **one vCPU** (the GCP Cloud Functions 2 GB tier, which the paper's
/// Section 5.2 numbers anchor). GPU times are Tesla-T4 anchored: the paper
/// reports ≈ 0.02 s/request for VGG; MobileNet/ALBERT scale by their
/// relative FLOP counts.
pub fn model_profile(kind: ModelKind) -> ModelProfile {
    match kind {
        ModelKind::MobileNet => ModelProfile {
            name: "MobileNet".into(),
            artifact_mb: 16.0,
            reference_predict: SimDuration::from_millis(63),
            parallel_fraction: 0.85,
            gpu_predict: SimDuration::from_millis(5),
            image_input: true,
        },
        ModelKind::Albert => ModelProfile {
            name: "ALBERT".into(),
            artifact_mb: 51.5,
            reference_predict: SimDuration::from_millis(420),
            parallel_fraction: 0.88,
            gpu_predict: SimDuration::from_millis(12),
            image_input: false,
        },
        ModelKind::Vgg => ModelProfile {
            name: "VGG".into(),
            artifact_mb: 548.0,
            // VGG16 is ~15 GFLOPs per image; on one vCPU with TF1.15 this is
            // just under a second, consistent with the serverless billing
            // implied by Table 1 (≈ $0.49 for 15 000 requests at 2 GB).
            reference_predict: SimDuration::from_millis(800),
            // Poor multi-core scaling with batch-1 inference in TF1.x is what
            // makes the paper's CPU server collapse on VGG (success ratio 6 %
            // at workload-40, Section 4.3).
            parallel_fraction: 0.50,
            gpu_predict: SimDuration::from_millis(20),
            image_input: true,
        },
    }
}

/// Calibrated runtime profiles.
pub fn runtime_profile(kind: RuntimeKind) -> RuntimeProfile {
    match kind {
        RuntimeKind::Tf115 => RuntimeProfile {
            name: "TF1.15".into(),
            import_time: SimDuration::from_millis(4_900),
            load_base: SimDuration::from_millis(900),
            load_per_mb: SimDuration::from_millis(10),
            predict_factor: 1.0,
            lazy_init: SimDuration::from_millis(1_900),
            image_mb: 900.0,
        },
        RuntimeKind::Ort14 => RuntimeProfile {
            name: "ORT1.4".into(),
            import_time: SimDuration::from_millis(550),
            load_base: SimDuration::from_millis(150),
            load_per_mb: SimDuration::from_millis(2),
            predict_factor: 0.705,
            lazy_init: SimDuration::from_millis(250),
            image_mb: 55.0,
        },
    }
}

/// The paper's headline measurements, re-exported so calibration tests and
/// EXPERIMENTS.md generation can assert against them in one place.
pub mod anchors {
    /// Cold-start end-to-end seconds at workload-120 with TF1.15
    /// (Figure 10): (AWS MobileNet, AWS ALBERT, GCP MobileNet, GCP ALBERT).
    pub const TF_COLD_START_E2E: (f64, f64, f64, f64) = (9.08, 9.49, 11.71, 14.19);

    /// Cold-start end-to-end seconds for MobileNet with ORT1.4
    /// (Figure 14): (AWS, GCP).
    pub const ORT_COLD_START_E2E: (f64, f64) = (2.775, 2.917);

    /// Warm predict seconds for MobileNet on GCP at 2 GB (Section 5.2):
    /// (TF1.15, ORT1.4).
    pub const GCP_MOBILENET_WARM_PREDICT: (f64, f64) = (0.061, 0.043);

    /// Extra download seconds for +300 MB of dummy data beside ALBERT
    /// (Figure 12b): (AWS, GCP).
    pub const DUMMY_300MB_DOWNLOAD: (f64, f64) = (2.39, 10.06);

    /// AWS serverless MobileNet at workload-200: average latency seconds and
    /// cost in dollars (Sections 1 and 4.1).
    pub const AWS_SLS_MOBILENET_W200: (f64, f64) = (0.097, 0.186);

    /// AWS GPU server MobileNet at workload-200: average latency seconds and
    /// cost in dollars (Sections 1 and 4.1).
    pub const AWS_GPU_MOBILENET_W200: (f64, f64) = (7.52, 0.187);

    /// CPU-server success ratios for MobileNet at workloads 40/120/200
    /// (Section 4.3).
    pub const AWS_CPU_MOBILENET_SR: (f64, f64, f64) = (1.00, 0.44, 0.27);

    /// CPU-server success ratios at workload-40 for MobileNet/ALBERT/VGG
    /// (Section 4.3).
    pub const AWS_CPU_W40_SR: (f64, f64, f64) = (1.00, 0.53, 0.06);

    /// AWS ManagedML success ratios: MobileNet workload-40 and workload-120,
    /// ALBERT workload-40, VGG workload-40 (Section 4.2).
    pub const AWS_MML_SR: (f64, f64, f64, f64) = (0.82, 0.36, 0.27, 0.17);

    /// Container image sizes in MB: TF base on AWS, TF base on GCP, ORT
    /// (MobileNet) on AWS (Sections 5.1–5.2).
    pub const CONTAINER_MB: (f64, f64, f64) = (1238.0, 920.0, 391.0);

    /// Table 1, AWS-Serverless TF1.15 costs in dollars, rows MobileNet /
    /// ALBERT / VGG, columns workload-40/120/200.
    pub const TABLE1_AWS_SLS: [[f64; 3]; 3] = [
        [0.050, 0.117, 0.186],
        [0.223, 0.665, 1.326],
        [0.492, 1.134, 1.993],
    ];

    /// Table 1, GCP-Serverless TF1.15 costs in dollars (same layout).
    pub const TABLE1_GCP_SLS: [[f64; 3]; 3] = [
        [0.065, 0.279, 0.537],
        [0.299, 0.887, 1.511],
        [0.507, 1.438, 2.467],
    ];

    /// Table 2, AWS-Serverless ORT1.4 costs: MobileNet and VGG rows.
    pub const TABLE2_AWS_SLS: [[f64; 3]; 2] = [[0.011, 0.037, 0.062], [0.322, 0.931, 1.644]];

    /// Table 2, GCP-Serverless ORT1.4 costs: MobileNet and VGG rows.
    pub const TABLE2_GCP_SLS: [[f64; 3]; 2] = [[0.047, 0.160, 0.272], [0.383, 1.108, 2.455]];
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::{predict_time, CpuAllocation};

    #[test]
    fn warm_predict_anchor_holds() {
        let vcpus = CpuAllocation::GCP_FUNCTIONS.vcpus(2048.0);
        let m = model_profile(ModelKind::MobileNet);
        let tf = predict_time(&m, &runtime_profile(RuntimeKind::Tf115), vcpus);
        let ort = predict_time(&m, &runtime_profile(RuntimeKind::Ort14), vcpus);
        let (a_tf, a_ort) = anchors::GCP_MOBILENET_WARM_PREDICT;
        assert!((tf.as_secs_f64() - a_tf).abs() / a_tf < 0.15);
        assert!((ort.as_secs_f64() - a_ort).abs() / a_ort < 0.15);
    }

    #[test]
    fn vgg_gpu_anchor_holds() {
        let m = model_profile(ModelKind::Vgg);
        assert!((m.gpu_predict.as_secs_f64() - 0.02).abs() < 1e-9);
    }

    #[test]
    fn table1_monotone_in_workload_and_model() {
        // The published table is itself monotone; keep the transcription
        // honest.
        for table in [anchors::TABLE1_AWS_SLS, anchors::TABLE1_GCP_SLS] {
            for row in table {
                assert!(row[0] < row[1] && row[1] < row[2]);
            }
            for ((mn, al), vgg) in table[0].iter().zip(&table[1]).zip(&table[2]) {
                assert!(mn < al && al < vgg);
            }
        }
    }

    #[test]
    fn ort_cheaper_than_tf_in_published_tables() {
        // Table 2 vs Table 1 rows (MobileNet and VGG).
        for w in 0..3 {
            assert!(anchors::TABLE2_AWS_SLS[0][w] < anchors::TABLE1_AWS_SLS[0][w]);
            assert!(anchors::TABLE2_AWS_SLS[1][w] < anchors::TABLE1_AWS_SLS[2][w]);
            assert!(anchors::TABLE2_GCP_SLS[0][w] < anchors::TABLE1_GCP_SLS[0][w]);
            assert!(anchors::TABLE2_GCP_SLS[1][w] < anchors::TABLE1_GCP_SLS[2][w]);
        }
    }
}
