//! Compute scaling: memory→vCPU mapping and inference-time scaling.
//!
//! Serverless platforms allocate CPU power proportionally to the configured
//! memory (AWS documents ~1 vCPU per 1769 MB); the paper's Figure 15 sweeps
//! memory precisely to exploit this. Inference speeds up with vCPUs
//! according to Amdahl's law with a per-model parallel fraction.

use crate::runtime::RuntimeProfile;
use crate::zoo::ModelProfile;
use serde::{Deserialize, Serialize};
use slsb_sim::SimDuration;

/// How a platform converts configured memory into CPU power.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuAllocation {
    /// MB of memory per allocated vCPU (AWS Lambda: 1769; GCP CF gen-1
    /// roughly 2048 at the 2 GB tier).
    pub mb_per_vcpu: f64,
    /// Upper bound on allocatable vCPUs (Lambda caps at 6).
    pub max_vcpus: f64,
}

impl CpuAllocation {
    /// AWS Lambda's documented allocation curve.
    pub const AWS_LAMBDA: CpuAllocation = CpuAllocation {
        mb_per_vcpu: 1769.0,
        max_vcpus: 6.0,
    };

    /// GCP Cloud Functions (gen 1) approximate allocation: the 2 GB tier
    /// gets a 2.4 GHz CPU ≈ 1 vCPU.
    pub const GCP_FUNCTIONS: CpuAllocation = CpuAllocation {
        mb_per_vcpu: 2048.0,
        max_vcpus: 4.0,
    };

    /// vCPUs allocated for `memory_mb` of configured memory.
    ///
    /// # Panics
    /// Panics if `memory_mb` is not strictly positive and finite.
    pub fn vcpus(&self, memory_mb: f64) -> f64 {
        assert!(
            memory_mb.is_finite() && memory_mb > 0.0,
            "invalid memory: {memory_mb}"
        );
        (memory_mb / self.mb_per_vcpu).min(self.max_vcpus)
    }
}

/// Amdahl's-law speedup of a workload with parallel fraction `p` on `c`
/// (possibly fractional) vCPUs, relative to one full vCPU.
///
/// For `c < 1` the whole computation slows proportionally (a fractional
/// share slows serial and parallel parts alike).
pub fn amdahl_speedup(vcpus: f64, parallel_fraction: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&parallel_fraction),
        "parallel fraction {parallel_fraction} outside [0, 1]"
    );
    assert!(vcpus.is_finite() && vcpus > 0.0, "invalid vcpus: {vcpus}");
    if vcpus <= 1.0 {
        vcpus
    } else {
        1.0 / ((1.0 - parallel_fraction) + parallel_fraction / vcpus)
    }
}

/// Parallel fraction of instance-initialization work (dependency import,
/// model load, lazy first-predict setup). Init is mostly single-threaded
/// Python/IO but benefits partially from more CPU — which is why larger
/// serverless memory sizes shorten cold starts (paper Figure 15).
pub const INIT_PARALLEL_FRACTION: f64 = 0.6;

/// Speedup of initialization work on `vcpus` relative to one vCPU.
pub fn init_speedup(vcpus: f64) -> f64 {
    amdahl_speedup(vcpus, INIT_PARALLEL_FRACTION)
}

/// Warm per-sample inference time for `model` under `runtime` on `vcpus`.
pub fn predict_time(model: &ModelProfile, runtime: &RuntimeProfile, vcpus: f64) -> SimDuration {
    let speedup = amdahl_speedup(vcpus, model.parallel_fraction);
    model
        .reference_predict
        .mul_f64(runtime.predict_factor / speedup)
}

/// First-prediction time on a freshly loaded model: the warm time plus the
/// runtime's lazy-initialization penalty (paper Figure 10: cold-start
/// predict ≫ warm predict).
pub fn first_predict_time(
    model: &ModelProfile,
    runtime: &RuntimeProfile,
    vcpus: f64,
) -> SimDuration {
    predict_time(model, runtime, vcpus) + runtime.lazy_init.mul_f64(1.0 / init_speedup(vcpus))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::RuntimeKind;
    use crate::zoo::ModelKind;

    #[test]
    fn lambda_allocation_matches_docs() {
        let a = CpuAllocation::AWS_LAMBDA;
        assert!((a.vcpus(1769.0) - 1.0).abs() < 1e-12);
        assert!((a.vcpus(2048.0) - 1.158).abs() < 0.01);
        // Cap applies.
        assert_eq!(a.vcpus(20_000.0), 6.0);
    }

    #[test]
    fn amdahl_limits() {
        // Fully serial: no speedup beyond 1 vCPU.
        assert!((amdahl_speedup(8.0, 0.0) - 1.0).abs() < 1e-12);
        // Fully parallel: linear.
        assert!((amdahl_speedup(8.0, 1.0) - 8.0).abs() < 1e-12);
        // Sub-vCPU shares slow down linearly.
        assert!((amdahl_speedup(0.5, 0.9) - 0.5).abs() < 1e-12);
        // Monotone in cores.
        assert!(amdahl_speedup(4.0, 0.8) < amdahl_speedup(8.0, 0.8));
    }

    #[test]
    fn predict_time_decreases_with_memory() {
        let m = ModelKind::Vgg.profile();
        let r = RuntimeKind::Tf115.profile();
        let alloc = CpuAllocation::AWS_LAMBDA;
        let at_2gb = predict_time(&m, &r, alloc.vcpus(2048.0));
        let at_8gb = predict_time(&m, &r, alloc.vcpus(8192.0));
        assert!(at_8gb < at_2gb, "more memory must be faster");
    }

    #[test]
    fn mobilenet_warm_predict_matches_paper_at_2gb() {
        // Section 5.2: warm predict at the default 2 GB is ~0.061 s (TF) and
        // ~0.043 s (ORT) on GCP.
        let m = ModelKind::MobileNet.profile();
        let vcpus = CpuAllocation::GCP_FUNCTIONS.vcpus(2048.0);
        let tf = predict_time(&m, &RuntimeKind::Tf115.profile(), vcpus).as_secs_f64();
        let ort = predict_time(&m, &RuntimeKind::Ort14.profile(), vcpus).as_secs_f64();
        assert!((tf - 0.061).abs() < 0.015, "TF predict {tf}");
        assert!((ort - 0.043).abs() < 0.012, "ORT predict {ort}");
    }

    #[test]
    fn init_speedup_scales_with_vcpus() {
        assert!((init_speedup(1.0) - 1.0).abs() < 1e-12);
        assert!(init_speedup(4.0) > init_speedup(2.0));
        assert!(init_speedup(0.5) < 1.0);
    }

    #[test]
    fn first_predict_lazy_penalty_shrinks_with_memory() {
        let m = ModelKind::Vgg.profile();
        let r = RuntimeKind::Tf115.profile();
        let small = first_predict_time(&m, &r, 1.0) - predict_time(&m, &r, 1.0);
        let big = first_predict_time(&m, &r, 4.0) - predict_time(&m, &r, 4.0);
        assert!(big < small, "lazy init must speed up with vCPUs");
    }

    #[test]
    fn first_predict_exceeds_warm() {
        let m = ModelKind::MobileNet.profile();
        let r = RuntimeKind::Tf115.profile();
        assert!(first_predict_time(&m, &r, 1.0) > predict_time(&m, &r, 1.0));
    }

    #[test]
    #[should_panic(expected = "invalid memory")]
    fn zero_memory_panics() {
        CpuAllocation::AWS_LAMBDA.vcpus(0.0);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn bad_parallel_fraction_panics() {
        amdahl_speedup(2.0, 1.5);
    }
}
