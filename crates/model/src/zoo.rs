//! The model zoo: the paper's three models plus a custom-model escape hatch.
//!
//! A [`ModelProfile`] captures everything the simulators need to know about
//! a model: artifact size (drives download/load time and the Lambda
//! `/tmp`-limit rule), reference inference cost, how well inference
//! parallelizes across vCPUs, and its GPU service time.

use serde::{Deserialize, Serialize};
use slsb_sim::SimDuration;
use std::fmt;

/// The paper's evaluated models (Section 3, "Planner").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// MobileNet image classifier — small (16 MB) and fast.
    MobileNet,
    /// ALBERT NLP model — medium artifact (51.5 MB), heavier inference.
    Albert,
    /// VGG image classifier — large artifact (548 MB), heaviest inference.
    Vgg,
}

impl ModelKind {
    /// All three models in the paper's order.
    pub const ALL: [ModelKind; 3] = [ModelKind::MobileNet, ModelKind::Albert, ModelKind::Vgg];

    /// The calibrated profile. See `calibration` for the anchors.
    pub fn profile(self) -> ModelProfile {
        crate::calibration::model_profile(self)
    }
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ModelKind::MobileNet => "MobileNet",
            ModelKind::Albert => "ALBERT",
            ModelKind::Vgg => "VGG",
        };
        f.write_str(s)
    }
}

/// Static description of a servable model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelProfile {
    /// Display name.
    pub name: String,
    /// Serialized artifact size in MB (drives storage download and runtime
    /// load times, and the Lambda 512 MB `/tmp` rule).
    pub artifact_mb: f64,
    /// Warm inference time for one sample on the reference configuration:
    /// **one vCPU, TensorFlow 1.15**. Other runtimes/compute scale this.
    pub reference_predict: SimDuration,
    /// Fraction of inference work that parallelizes across vCPUs
    /// (Amdahl's law).
    pub parallel_fraction: f64,
    /// Warm inference time for one sample on a Tesla-T4-class GPU.
    pub gpu_predict: SimDuration,
    /// Whether the model takes image payloads (vs. text).
    pub image_input: bool,
}

impl ModelProfile {
    /// Validates invariants; call after hand-constructing a custom profile.
    ///
    /// # Errors
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("model name must not be empty".into());
        }
        if !(self.artifact_mb.is_finite() && self.artifact_mb > 0.0) {
            return Err(format!("invalid artifact size: {}", self.artifact_mb));
        }
        if self.reference_predict.is_zero() {
            return Err("reference predict time must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.parallel_fraction) {
            return Err(format!(
                "parallel fraction {} outside [0, 1]",
                self.parallel_fraction
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_artifact_sizes() {
        // Section 3: 16 MB / 51.5 MB / 548 MB (see DESIGN.md on the paper's
        // transposed "respectively" — VGG is the 548 MB model, which is why
        // it cannot be downloaded under Lambda's 512 MB /tmp limit).
        assert_eq!(ModelKind::MobileNet.profile().artifact_mb, 16.0);
        assert_eq!(ModelKind::Albert.profile().artifact_mb, 51.5);
        assert_eq!(ModelKind::Vgg.profile().artifact_mb, 548.0);
    }

    #[test]
    fn inference_cost_ordering() {
        let mn = ModelKind::MobileNet.profile();
        let al = ModelKind::Albert.profile();
        let vgg = ModelKind::Vgg.profile();
        assert!(mn.reference_predict < al.reference_predict);
        assert!(al.reference_predict < vgg.reference_predict);
        assert!(mn.gpu_predict < vgg.gpu_predict);
    }

    #[test]
    fn gpu_is_much_faster_than_reference() {
        for kind in ModelKind::ALL {
            let p = kind.profile();
            assert!(
                p.gpu_predict.as_secs_f64() * 10.0 < p.reference_predict.as_secs_f64(),
                "{kind}: GPU should dominate single-vCPU inference"
            );
        }
    }

    #[test]
    fn profiles_validate() {
        for kind in ModelKind::ALL {
            kind.profile().validate().unwrap();
        }
    }

    #[test]
    fn validate_rejects_bad_profiles() {
        let mut p = ModelKind::MobileNet.profile();
        p.artifact_mb = -1.0;
        assert!(p.validate().is_err());
        let mut p = ModelKind::MobileNet.profile();
        p.parallel_fraction = 1.5;
        assert!(p.validate().is_err());
        let mut p = ModelKind::MobileNet.profile();
        p.name.clear();
        assert!(p.validate().is_err());
    }

    #[test]
    fn input_kinds() {
        assert!(ModelKind::MobileNet.profile().image_input);
        assert!(!ModelKind::Albert.profile().image_input);
        assert!(ModelKind::Vgg.profile().image_input);
    }

    #[test]
    fn display_names() {
        assert_eq!(ModelKind::Albert.to_string(), "ALBERT");
        assert_eq!(ModelKind::Vgg.to_string(), "VGG");
    }
}
