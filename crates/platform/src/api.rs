//! The uniform interface the executor drives every platform through.

use crate::billing::CostBreakdown;
use crate::hybrid::{HybridConfig, HybridPlatform};
use crate::managedml::{ManagedMlConfig, ManagedMlEvent, ManagedMlPlatform};
use crate::request::{ServingRequest, ServingResponse};
use crate::serverless::{ServerlessConfig, ServerlessEvent, ServerlessPlatform};
use crate::vmserver::{VmEvent, VmServer, VmServerConfig};
use slsb_obs::{EventKind, Recorder, TraceEvent};
use slsb_sim::{GaugeSeries, Seed, SimDuration, SimTime};

/// Union of every platform family's internal events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlatformEvent {
    /// Serverless platform event.
    Serverless(ServerlessEvent),
    /// Managed-ML endpoint event.
    ManagedMl(ManagedMlEvent),
    /// VM server event.
    Vm(VmEvent),
    /// VM-side event of a hybrid deployment.
    HybridVm(VmEvent),
    /// Serverless-side event of a hybrid deployment.
    HybridServerless(ServerlessEvent),
}

/// Write-side of the event queue handed to a platform while it handles an
/// arrival or one of its own events. Collects `(delay, event)` pairs; the
/// caller transfers them onto its real queue afterwards.
///
/// The scheduler also carries the run's optional [`Recorder`], which is the
/// platforms' only window to the observability layer: [`PlatformScheduler::emit`]
/// stamps events with the current virtual time. Recording is write-only —
/// nothing a recorder does can flow back into scheduling decisions — so a
/// run's behaviour is identical with recording on, off, or absent.
pub struct PlatformScheduler<'a> {
    now: SimTime,
    out: &'a mut Vec<(SimDuration, PlatformEvent)>,
    rec: Option<&'a mut dyn Recorder>,
}

impl<'a> PlatformScheduler<'a> {
    /// A scheduler at virtual time `now` writing into `out`, not recording.
    pub fn new(now: SimTime, out: &'a mut Vec<(SimDuration, PlatformEvent)>) -> Self {
        PlatformScheduler {
            now,
            out,
            rec: None,
        }
    }

    /// A scheduler that additionally forwards trace events to `rec`.
    pub fn with_recorder(
        now: SimTime,
        out: &'a mut Vec<(SimDuration, PlatformEvent)>,
        rec: Option<&'a mut dyn Recorder>,
    ) -> Self {
        PlatformScheduler { now, out, rec }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `ev` to fire `delay` from now.
    pub fn schedule(&mut self, delay: SimDuration, ev: PlatformEvent) {
        self.out.push((delay, ev));
    }

    /// Records a trace event stamped `now`. The closure only runs when a
    /// recorder is attached and enabled, so instrumentation sites cost one
    /// branch when recording is off.
    pub fn emit(&mut self, f: impl FnOnce() -> EventKind) {
        if let Some(rec) = self.rec.as_deref_mut() {
            if rec.enabled() {
                let ev = TraceEvent {
                    at: self.now,
                    kind: f(),
                };
                rec.record(&ev);
            }
        }
    }

    /// Reborrows the attached recorder, for building a nested scheduler
    /// (the hybrid platform hands one to each of its children).
    pub fn recorder(&mut self) -> Option<&mut dyn Recorder> {
        match self.rec.as_deref_mut() {
            Some(rec) => Some(rec as &mut dyn Recorder),
            None => None,
        }
    }
}

/// End-of-run accounting a platform hands to the analyzer.
#[derive(Debug, Clone)]
pub struct PlatformReport {
    /// Total cost, split into components.
    pub cost: CostBreakdown,
    /// Instance-count gauge over the run (the paper's Figures 7 and 11).
    pub instances: GaugeSeries,
    /// Instances that went through a cold-start pipeline (serverless only).
    pub cold_started: u64,
    /// Billed invocations (serverless only).
    pub invocations: u64,
    /// Seconds instances spent executing handlers/requests.
    pub busy_seconds: f64,
    /// Seconds of instance existence (provisioning and idle included).
    pub instance_seconds: f64,
    /// Discrete faults the platform's [`crate::FaultInjector`] fired
    /// (zero without an active [`crate::FaultPlan`]).
    pub faults: u64,
}

impl PlatformReport {
    /// Fraction of instance lifetime spent doing useful work — the inverse
    /// of the over-provisioning waste the paper's Section 6 first research
    /// challenge targets. `None` when no instance time was recorded.
    pub fn utilization(&self) -> Option<f64> {
        (self.instance_seconds > 0.0).then(|| (self.busy_seconds / self.instance_seconds).min(1.0))
    }

    /// Folds per-shard reports into one fleet report, in slice order.
    ///
    /// Costs and counters sum exactly (money is integer micro-dollars, so
    /// the fold is order-independent); the instance gauges merge through
    /// [`GaugeSeries::merge_summed`] in canonical shard order. Called by the
    /// sharded executor after all shards complete, so the result depends
    /// only on the shard results themselves, never on execution order.
    pub fn merge_shards(parts: &[PlatformReport]) -> PlatformReport {
        let mut cost = CostBreakdown::default();
        let mut cold_started = 0;
        let mut invocations = 0;
        let mut busy_seconds = 0.0;
        let mut instance_seconds = 0.0;
        let mut faults = 0;
        for p in parts {
            cost.compute += p.cost.compute;
            cost.invocations += p.cost.invocations;
            cost.provisioned += p.cost.provisioned;
            cold_started += p.cold_started;
            invocations += p.invocations;
            busy_seconds += p.busy_seconds;
            instance_seconds += p.instance_seconds;
            faults += p.faults;
        }
        PlatformReport {
            cost,
            instances: GaugeSeries::merge_summed(parts.iter().map(|p| &p.instances)),
            cold_started,
            invocations,
            busy_seconds,
            instance_seconds,
            faults,
        }
    }
}

/// Any of the simulated serving systems, behind one dispatching interface.
pub enum Platform {
    /// Lambda / Cloud Functions.
    Serverless(Box<ServerlessPlatform>),
    /// SageMaker / AI Platform.
    ManagedMl(Box<ManagedMlPlatform>),
    /// EC2 / GCE CPU or GPU box.
    Vm(Box<VmServer>),
    /// MArk-style hybrid: rented VM plus serverless spillover.
    Hybrid(Box<HybridPlatform>),
}

impl Platform {
    /// Builds a serverless platform.
    pub fn serverless(cfg: ServerlessConfig, seed: Seed) -> Platform {
        Platform::Serverless(Box::new(ServerlessPlatform::new(cfg, seed)))
    }

    /// The profiler scope label for this platform's submit/handle/drain
    /// work (`"platform/<name>"`, a `'static` string as the profiler
    /// requires).
    pub fn prof_label(&self) -> &'static str {
        match self {
            Platform::Serverless(_) => "platform/serverless",
            Platform::ManagedMl(_) => "platform/managedml",
            Platform::Vm(_) => "platform/vm",
            Platform::Hybrid(_) => "platform/hybrid",
        }
    }

    /// Builds a managed-ML endpoint.
    pub fn managedml(cfg: ManagedMlConfig, seed: Seed) -> Platform {
        Platform::ManagedMl(Box::new(ManagedMlPlatform::new(cfg, seed)))
    }

    /// Builds a VM server.
    pub fn vm(cfg: VmServerConfig, seed: Seed) -> Platform {
        Platform::Vm(Box::new(VmServer::new(cfg, seed)))
    }

    /// Builds a hybrid (VM + serverless spillover) deployment.
    pub fn hybrid(cfg: HybridConfig, seed: Seed) -> Platform {
        Platform::Hybrid(Box::new(HybridPlatform::new(cfg, seed)))
    }

    /// Arms fault injection: installs `plan` on every simulator in this
    /// platform, each drawing from its own substream of `seed`. Installing
    /// an empty plan is a guaranteed no-op (no RNG draws, no behaviour
    /// change), so callers may do this unconditionally.
    pub fn set_faults(&mut self, plan: &crate::FaultPlan, seed: Seed) {
        match self {
            Platform::Serverless(p) => {
                p.set_faults(plan.clone(), seed.substream("faults-serverless"))
            }
            Platform::ManagedMl(p) => {
                p.set_faults(plan.clone(), seed.substream("faults-managedml"))
            }
            Platform::Vm(p) => p.set_faults(plan.clone(), seed.substream("faults-vm")),
            Platform::Hybrid(p) => p.set_faults(plan, seed),
        }
    }

    /// Pre-sizes response buffers, request queues, and instance slabs for a
    /// run expected to carry about `requests` invocations. Purely a
    /// capacity hint: reserving never changes behaviour, only removes
    /// reallocation from the serving hot path.
    pub fn reserve(&mut self, requests: usize) {
        match self {
            Platform::Serverless(p) => p.reserve(requests),
            Platform::ManagedMl(p) => p.reserve(requests),
            Platform::Vm(p) => p.reserve(requests),
            Platform::Hybrid(p) => p.reserve(requests),
        }
    }

    /// One-time startup (pre-warming, billing spans, scaler loops).
    /// `horizon` is the end of the workload; platforms with periodic
    /// internal events stop self-scheduling past it.
    pub fn start(&mut self, sched: &mut PlatformScheduler<'_>, horizon: SimTime) {
        match self {
            Platform::Serverless(p) => p.start(sched),
            Platform::ManagedMl(p) => p.start(sched, horizon),
            Platform::Vm(p) => p.start(sched),
            Platform::Hybrid(p) => p.start(sched),
        }
    }

    /// Delivers an arriving request.
    pub fn submit(&mut self, sched: &mut PlatformScheduler<'_>, req: ServingRequest) {
        match self {
            Platform::Serverless(p) => p.submit(sched, req),
            Platform::ManagedMl(p) => p.submit(sched, req),
            Platform::Vm(p) => p.submit(sched, req),
            Platform::Hybrid(p) => p.submit(sched, req),
        }
    }

    /// Delivers one of the platform's own events.
    ///
    /// # Panics
    /// Panics if the event belongs to a different platform family — that is
    /// a wiring bug in the executor.
    pub fn handle(&mut self, sched: &mut PlatformScheduler<'_>, ev: PlatformEvent) {
        match (self, ev) {
            (Platform::Serverless(p), PlatformEvent::Serverless(e)) => p.handle(sched, e),
            (Platform::ManagedMl(p), PlatformEvent::ManagedMl(e)) => p.handle(sched, e),
            (Platform::Vm(p), PlatformEvent::Vm(e)) => p.handle(sched, e),
            (Platform::Hybrid(p), PlatformEvent::HybridVm(e)) => p.handle_vm(sched, e),
            (Platform::Hybrid(p), PlatformEvent::HybridServerless(e)) => {
                p.handle_serverless(sched, e)
            }
            _ => panic!("platform event routed to the wrong platform"),
        }
    }

    /// Responses completed since the last drain.
    pub fn drain_responses(&mut self) -> Vec<ServingResponse> {
        match self {
            Platform::Serverless(p) => p.drain_responses(),
            Platform::ManagedMl(p) => p.drain_responses(),
            Platform::Vm(p) => p.drain_responses(),
            Platform::Hybrid(p) => p.drain_responses(),
        }
    }

    /// Moves responses completed since the last drain onto the back of
    /// `out`. Unlike [`Platform::drain_responses`] this transfers into a
    /// caller-owned buffer and leaves the platform's internal buffer with
    /// its capacity intact, so the per-event drain in the executor's hot
    /// loop allocates nothing in steady state.
    pub fn drain_responses_into(&mut self, out: &mut Vec<ServingResponse>) {
        match self {
            Platform::Serverless(p) => p.drain_responses_into(out),
            Platform::ManagedMl(p) => p.drain_responses_into(out),
            Platform::Vm(p) => p.drain_responses_into(out),
            Platform::Hybrid(p) => p.drain_responses_into(out),
        }
    }

    /// True when completed responses are waiting to be drained — a
    /// branch-only probe that lets per-event drain loops skip the scope
    /// guards and buffer plumbing on the (common) response-free events.
    pub fn has_responses(&self) -> bool {
        match self {
            Platform::Serverless(p) => p.has_responses(),
            Platform::ManagedMl(p) => p.has_responses(),
            Platform::Vm(p) => p.has_responses(),
            Platform::Hybrid(p) => p.has_responses(),
        }
    }

    /// Closes billing at the end of the run.
    pub fn finalize(&mut self, now: SimTime) {
        match self {
            Platform::Serverless(p) => p.finalize(now),
            Platform::ManagedMl(p) => p.finalize(now),
            Platform::Vm(p) => p.finalize(now),
            Platform::Hybrid(p) => p.finalize(now),
        }
    }

    /// Cost and instance accounting.
    pub fn report(&self) -> PlatformReport {
        match self {
            Platform::Serverless(p) => p.report(),
            Platform::ManagedMl(p) => p.report(),
            Platform::Vm(p) => p.report(),
            Platform::Hybrid(p) => p.report(),
        }
    }
}

/// A minimal single-platform driver used by unit tests (the production
/// executor lives in `slsb-core` and adds clients, network, timeouts, and
/// analysis).
pub mod test_harness {
    use super::*;
    use slsb_sim::{Engine, EventQueue, System};

    enum HarnessEvent {
        Start,
        Arrival(ServingRequest),
        Platform(PlatformEvent),
    }

    struct HarnessSystem {
        platform: Platform,
        started: bool,
        horizon: SimTime,
        responses: Vec<ServingResponse>,
        buffer: Vec<(SimDuration, PlatformEvent)>,
    }

    impl HarnessSystem {
        fn with_platform<R>(
            &mut self,
            queue: &mut EventQueue<HarnessEvent>,
            f: impl FnOnce(&mut Platform, &mut PlatformScheduler<'_>) -> R,
        ) -> R {
            let mut sched = PlatformScheduler::new(queue.now(), &mut self.buffer);
            let r = f(&mut self.platform, &mut sched);
            for (d, e) in self.buffer.drain(..) {
                queue.schedule_after(d, HarnessEvent::Platform(e));
            }
            self.responses.extend(self.platform.drain_responses());
            r
        }
    }

    impl System for HarnessSystem {
        type Ev = HarnessEvent;
        fn handle(&mut self, queue: &mut EventQueue<HarnessEvent>, _at: SimTime, ev: HarnessEvent) {
            if !self.started {
                self.started = true;
                let horizon = self.horizon;
                self.with_platform(queue, |p, s| p.start(s, horizon));
            }
            match ev {
                HarnessEvent::Start => {}
                HarnessEvent::Arrival(req) => {
                    self.with_platform(queue, |p, s| p.submit(s, req));
                }
                HarnessEvent::Platform(e) => {
                    self.with_platform(queue, |p, s| p.handle(s, e));
                }
            }
        }
    }

    /// Drives one platform with hand-placed arrivals.
    pub struct PlatformHarness {
        engine: Engine<HarnessSystem>,
    }

    impl PlatformHarness {
        fn new(platform: Platform) -> Self {
            let mut engine = Engine::new(HarnessSystem {
                platform,
                started: false,
                horizon: SimTime::from_secs_f64(3600.0),
                responses: Vec::new(),
                buffer: Vec::new(),
            });
            // Start the platform at the epoch so billing spans and scaler
            // loops begin at t = 0 regardless of the first arrival's time.
            engine.queue.schedule_at(SimTime::ZERO, HarnessEvent::Start);
            PlatformHarness { engine }
        }

        /// Harness around a serverless platform.
        pub fn serverless(cfg: ServerlessConfig, seed: Seed) -> Self {
            Self::new(Platform::serverless(cfg, seed))
        }

        /// Harness around a managed-ML endpoint.
        pub fn managedml(cfg: ManagedMlConfig, seed: Seed) -> Self {
            Self::new(Platform::managedml(cfg, seed))
        }

        /// Harness around a VM server.
        pub fn vm(cfg: VmServerConfig, seed: Seed) -> Self {
            Self::new(Platform::vm(cfg, seed))
        }

        /// Harness around a hybrid deployment.
        pub fn hybrid(cfg: HybridConfig, seed: Seed) -> Self {
            Self::new(Platform::hybrid(cfg, seed))
        }

        /// Installs a fault plan on the wrapped platform (call before the
        /// first arrival).
        pub fn set_faults(&mut self, plan: &crate::FaultPlan, seed: Seed) {
            self.engine.system.platform.set_faults(plan, seed);
        }

        /// Queues an arrival at `at_secs`.
        pub fn submit_at(&mut self, at_secs: f64, req: ServingRequest) {
            self.engine
                .queue
                .schedule_at(SimTime::from_secs_f64(at_secs), HarnessEvent::Arrival(req));
        }

        /// Runs until the queue drains; returns all responses so far.
        pub fn run(&mut self) -> Vec<ServingResponse> {
            self.engine.run_to_completion();
            self.engine.system.responses.clone()
        }

        /// Runs until `horizon_secs` and advances the clock there; returns
        /// all responses so far.
        pub fn run_until(&mut self, horizon_secs: f64) -> Vec<ServingResponse> {
            let horizon = SimTime::from_secs_f64(horizon_secs);
            self.engine.run_until(horizon);
            self.engine.queue.advance_to(horizon);
            self.engine.system.responses.clone()
        }

        /// Finalizes billing at the current virtual time and reports.
        pub fn finalize_report(&mut self) -> PlatformReport {
            let now = self.engine.now();
            self.engine.system.platform.finalize(now);
            self.engine.system.platform.report()
        }

        /// The wrapped serverless platform.
        ///
        /// # Panics
        /// Panics when the harness wraps a different family.
        pub fn platform_serverless(&self) -> &ServerlessPlatform {
            match &self.engine.system.platform {
                Platform::Serverless(p) => p,
                _ => panic!("not a serverless harness"),
            }
        }

        /// The wrapped managed-ML platform.
        ///
        /// # Panics
        /// Panics when the harness wraps a different family.
        pub fn platform_managedml(&self) -> &ManagedMlPlatform {
            match &self.engine.system.platform {
                Platform::ManagedMl(p) => p,
                _ => panic!("not a managed-ML harness"),
            }
        }

        /// The wrapped hybrid platform.
        ///
        /// # Panics
        /// Panics when the harness wraps a different family.
        pub fn platform_hybrid(&self) -> &HybridPlatform {
            match &self.engine.system.platform {
                Platform::Hybrid(p) => p,
                _ => panic!("not a hybrid harness"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slsb_model::{ModelKind, RuntimeKind};
    use slsb_sim::Seed;

    #[test]
    #[should_panic(expected = "wrong platform")]
    fn cross_family_event_panics() {
        let cfg = VmServerConfig::cpu(
            crate::provider::CloudProvider::Aws,
            ModelKind::MobileNet.profile(),
            RuntimeKind::Tf115.profile(),
        );
        let mut p = Platform::vm(cfg, Seed(1));
        let mut buf = Vec::new();
        let mut sched = PlatformScheduler::new(SimTime::ZERO, &mut buf);
        p.handle(
            &mut sched,
            PlatformEvent::Serverless(ServerlessEvent::InstanceReady(0)),
        );
    }

    #[test]
    fn scheduler_collects_events() {
        let mut buf = Vec::new();
        let mut sched = PlatformScheduler::new(SimTime::from_secs_f64(5.0), &mut buf);
        assert_eq!(sched.now(), SimTime::from_secs_f64(5.0));
        sched.schedule(
            SimDuration::from_secs(1),
            PlatformEvent::Vm(VmEvent::HandlerDone(0)),
        );
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn scheduler_emit_stamps_current_time() {
        use slsb_obs::{Component, MemoryRecorder};

        let mut buf = Vec::new();
        let mut rec = MemoryRecorder::new();
        let now = SimTime::from_secs_f64(2.5);
        {
            let mut sched = PlatformScheduler::with_recorder(now, &mut buf, Some(&mut rec));
            sched.emit(|| EventKind::RequestArrival {
                component: Component::Vm,
                request: 7,
            });
        }
        assert_eq!(rec.events().len(), 1);
        assert_eq!(rec.events()[0].at, now);

        // Without a recorder the closure must not even run.
        let mut sched = PlatformScheduler::new(now, &mut buf);
        sched.emit(|| unreachable!("emit closure ran with recording off"));
    }
}
