//! Self-rented VM serving simulator — EC2 / GCE CPU and GPU servers.
//!
//! A fixed-capacity server: one serving session (the deployed TF-serving
//! process) executes requests one at a time using the whole machine — all
//! vCPUs via intra-op parallelism on the CPU box, the Tesla T4 on the GPU
//! box — in front of a bounded backlog. Under the paper's bursty MMPP load
//! this reproduces the CPU server's collapsing success ratios (Section 4.3)
//! and the GPU server's three-phase latency dynamics (Section 4.4,
//! Figure 9b). Billing is wall-clock instance time at the hourly rate.

use crate::api::{PlatformEvent, PlatformReport, PlatformScheduler};
use crate::billing::{CostBreakdown, InstanceMeter, InstancePricing};
use crate::faults::{FaultInjector, FaultPlan};
use crate::policy::{PlacementPolicy, PolicySet};
use crate::provider::CloudProvider;
use crate::request::{FailureReason, Outcome, ServingRequest, ServingResponse};
use slsb_model::{predict_time, ModelProfile, RuntimeProfile};
use slsb_obs::{Component, EventKind, FaultKind, SpawnCause};
use slsb_sim::{GaugeSeries, Seed, SimDuration, SimRng, SimTime};
use std::collections::VecDeque;

/// The component tag this simulator stamps on trace events.
const COMPONENT: Component = Component::Vm;

/// CPU box or GPU box.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VmKind {
    /// 8-vCPU general-purpose VM (m5.2xlarge / n1-standard-8).
    Cpu,
    /// Same VM plus a Tesla T4 (g4dn.2xlarge / n1-standard-8 + T4).
    Gpu,
}

/// A self-rented serving VM.
#[derive(Debug, Clone, PartialEq)]
pub struct VmServerConfig {
    /// Which cloud rents the box (affects only pricing here).
    pub provider: CloudProvider,
    /// CPU or GPU box.
    pub kind: VmKind,
    /// Price sheet.
    pub pricing: InstancePricing,
    /// vCPUs available to the serving session (8 on every evaluated VM).
    pub vcpus: f64,
    /// Concurrent serving sessions (1: a single TF-serving session that
    /// uses intra-op parallelism).
    pub workers: u32,
    /// Backlog bound; beyond it requests are rejected (the default is high
    /// enough that client staleness, not backlog, is the binding limit).
    pub queue_capacity: usize,
    /// Queued requests older than this are skipped: the client will hang up
    /// before the response could reach it, so the server stops wasting
    /// capacity on them. Set comfortably *below* the client timeout —
    /// otherwise the queue wait pins exactly at the timeout and served
    /// responses arrive just after the client gave up. This is what pins an
    /// overloaded server's success ratio at roughly capacity/arrival-rate,
    /// the paper's Section 4.3 pattern.
    pub stale_after: SimDuration,
    /// Per-request fixed overhead (HTTP stack, (de)serialization).
    pub request_overhead: SimDuration,
    /// The served model.
    pub model: ModelProfile,
    /// The serving runtime.
    pub runtime: RuntimeProfile,
    /// Log-normal σ on sampled service times.
    pub jitter_sigma: f64,
    /// Keep-alive / placement / scaling policies. Only placement applies
    /// here — a rented box has fixed capacity, so there is nothing to
    /// reclaim or scale; the other members are ignored.
    pub policy: PolicySet,
}

impl VmServerConfig {
    /// A default CPU server for a provider.
    pub fn cpu(provider: CloudProvider, model: ModelProfile, runtime: RuntimeProfile) -> Self {
        VmServerConfig {
            provider,
            kind: VmKind::Cpu,
            pricing: match provider {
                CloudProvider::Aws => InstancePricing::EC2_M5_2XLARGE,
                CloudProvider::Gcp => InstancePricing::GCE_N1_STANDARD_8,
            },
            vcpus: 8.0,
            workers: 1,
            queue_capacity: 100_000,
            stale_after: SimDuration::from_secs(45),
            request_overhead: SimDuration::from_millis(20),
            model,
            runtime,
            jitter_sigma: 0.15,
            policy: PolicySet::default(),
        }
    }

    /// A default GPU server for a provider.
    pub fn gpu(provider: CloudProvider, model: ModelProfile, runtime: RuntimeProfile) -> Self {
        VmServerConfig {
            provider,
            kind: VmKind::Gpu,
            pricing: match provider {
                CloudProvider::Aws => InstancePricing::EC2_G4DN_2XLARGE,
                CloudProvider::Gcp => InstancePricing::GCE_N1_STANDARD_8_T4,
            },
            vcpus: 8.0,
            workers: 1,
            queue_capacity: 100_000,
            stale_after: SimDuration::from_secs(45),
            request_overhead: SimDuration::from_millis(3),
            model,
            runtime,
            jitter_sigma: 0.15,
            policy: PolicySet::default(),
        }
    }

    /// Median service time for one request.
    pub fn service_median(&self) -> SimDuration {
        let compute = match self.kind {
            VmKind::Cpu => predict_time(&self.model, &self.runtime, self.vcpus),
            VmKind::Gpu => self.model.gpu_predict,
        };
        self.request_overhead + compute
    }
}

/// Internal events of the VM simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmEvent {
    /// A worker finished a request.
    HandlerDone(u32),
}

/// The simulated self-rented serving VM.
pub struct VmServer {
    cfg: VmServerConfig,
    rng: SimRng,
    busy: Vec<bool>,
    /// Requests served per worker (least-loaded placement key).
    served: Vec<u64>,
    queue: VecDeque<(ServingRequest, SimTime)>,
    meter: InstanceMeter,
    gauge: GaugeSeries,
    responses: Vec<ServingResponse>,
    rejected: u64,
    dropped_stale: u64,
    busy_seconds: f64,
    finalized: bool,
    faults: FaultInjector,
}

impl VmServer {
    /// Builds the server; randomness comes from `seed`'s "vmserver"
    /// substream.
    pub fn new(cfg: VmServerConfig, seed: Seed) -> Self {
        assert!(cfg.workers > 0, "server needs at least one worker");
        let meter = InstanceMeter::new(cfg.pricing);
        let workers = cfg.workers as usize;
        VmServer {
            rng: seed.substream("vmserver").rng(),
            cfg,
            busy: vec![false; workers],
            served: vec![0; workers],
            queue: VecDeque::new(),
            meter,
            gauge: GaugeSeries::new(),
            responses: Vec::new(),
            rejected: 0,
            dropped_stale: 0,
            busy_seconds: 0.0,
            finalized: false,
            faults: FaultInjector::disabled(),
        }
    }

    /// Pre-sizes the response buffer and request queue for a run expected
    /// to carry about `requests` invocations.
    pub fn reserve(&mut self, requests: usize) {
        self.responses.reserve(requests);
        self.queue.reserve(requests.min(4096));
    }

    /// The server configuration.
    pub fn config(&self) -> &VmServerConfig {
        &self.cfg
    }

    /// Installs a fault plan; `seed` should be a dedicated substream so the
    /// injector's draws never perturb the server's own RNG.
    pub fn set_faults(&mut self, plan: FaultPlan, seed: Seed) {
        self.faults = FaultInjector::new(plan, seed);
    }

    /// Discrete faults injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.faults.injected()
    }

    /// Starts billing the rented instance.
    pub fn start(&mut self, sched: &mut PlatformScheduler<'_>) {
        self.meter.open(0, sched.now());
        self.gauge.record(sched.now(), 1);
        sched.emit(|| EventKind::InstanceSpawn {
            component: COMPONENT,
            instance: 0,
            cause: SpawnCause::Provisioned,
        });
        sched.emit(|| EventKind::InstanceWarm {
            component: COMPONENT,
            instance: 0,
        });
    }

    /// Handles an arriving request.
    pub fn submit(&mut self, sched: &mut PlatformScheduler<'_>, req: ServingRequest) {
        sched.emit(|| EventKind::RequestArrival {
            component: COMPONENT,
            request: req.id.0,
        });
        if let Some(kind) = self.faults.admit(sched.now()) {
            sched.emit(|| EventKind::Fault {
                component: Some(COMPONENT),
                kind,
            });
            sched.emit(|| EventKind::RequestRejected {
                component: COMPONENT,
                request: req.id.0,
            });
            self.responses.push(ServingResponse {
                id: req.id,
                outcome: Outcome::Failure(FailureReason::Throttled),
                completed_at: sched.now(),
                cold_start: None,
                predict: SimDuration::ZERO,
                queued: SimDuration::ZERO,
            });
            return;
        }
        if self.queue.len() >= self.cfg.queue_capacity {
            self.rejected += 1;
            sched.emit(|| EventKind::RequestRejected {
                component: COMPONENT,
                request: req.id.0,
            });
            self.responses.push(ServingResponse {
                id: req.id,
                outcome: Outcome::Failure(FailureReason::QueueFull),
                completed_at: sched.now(),
                cold_start: None,
                predict: SimDuration::ZERO,
                queued: SimDuration::ZERO,
            });
            return;
        }
        sched.emit(|| EventKind::RequestQueued {
            component: COMPONENT,
            request: req.id.0,
        });
        self.queue.push_back((req, sched.now()));
        self.dispatch(sched);
    }

    /// Handles one of this platform's internal events.
    pub fn handle(&mut self, sched: &mut PlatformScheduler<'_>, ev: VmEvent) {
        match ev {
            VmEvent::HandlerDone(worker) => {
                self.busy[worker as usize] = false;
                self.dispatch(sched);
            }
        }
    }

    /// The free worker the placement policy routes the next request to.
    fn pick_worker(&self) -> Option<usize> {
        match self.cfg.policy.placement {
            PlacementPolicy::Mru => self.busy.iter().position(|&b| !b),
            PlacementPolicy::LeastLoaded => self
                .busy
                .iter()
                .enumerate()
                .filter(|&(_, &b)| !b)
                .min_by_key(|&(w, _)| (self.served[w], w))
                .map(|(w, _)| w),
        }
    }

    fn dispatch(&mut self, sched: &mut PlatformScheduler<'_>) {
        while !self.queue.is_empty() {
            let Some(worker) = self.pick_worker() else {
                return;
            };
            // Skip requests whose client has already given up.
            let (req, enqueued) = self.queue.pop_front().expect("queue non-empty");
            if sched.now().saturating_duration_since(enqueued) > self.cfg.stale_after {
                self.dropped_stale += 1;
                sched.emit(|| EventKind::RequestDropped {
                    component: COMPONENT,
                    request: req.id.0,
                });
                continue;
            }
            let compute_median = match self.cfg.kind {
                VmKind::Cpu => predict_time(&self.cfg.model, &self.cfg.runtime, self.cfg.vcpus),
                VmKind::Gpu => self.cfg.model.gpu_predict,
            } * u64::from(req.inferences.max(1));
            let predict = self.rng.lognormal(compute_median, self.cfg.jitter_sigma);
            let service = self.cfg.request_overhead + predict;
            self.busy_seconds += service.as_secs_f64();
            self.busy[worker] = true;
            self.served[worker] += 1;
            // A mid-execution crash kills the serving process for this
            // request; systemd-style supervision restarts it within the same
            // service window, so the worker stays busy and then recovers.
            let crashed = self.faults.crash_mid_exec();
            if crashed {
                sched.emit(|| EventKind::Fault {
                    component: Some(COMPONENT),
                    kind: FaultKind::ExecCrash,
                });
            }
            self.responses.push(ServingResponse {
                id: req.id,
                outcome: if crashed {
                    Outcome::Failure(FailureReason::Crashed)
                } else {
                    Outcome::Success
                },
                completed_at: sched.now() + service,
                cold_start: None,
                predict,
                queued: sched.now().duration_since(enqueued),
            });
            let done_at = sched.now() + service;
            sched.emit(|| EventKind::ExecStart {
                component: COMPONENT,
                request: req.id.0,
                instance: worker as u64,
                cold: false,
                done_at,
            });
            sched.schedule(
                service,
                PlatformEvent::Vm(VmEvent::HandlerDone(worker as u32)),
            );
        }
    }

    /// Responses completed since the last drain.
    pub fn drain_responses(&mut self) -> Vec<ServingResponse> {
        std::mem::take(&mut self.responses)
    }

    /// Moves completed responses onto `out`, keeping this platform's buffer
    /// capacity for the next burst.
    pub fn drain_responses_into(&mut self, out: &mut Vec<ServingResponse>) {
        out.append(&mut self.responses);
    }

    /// True when completed responses are waiting to be drained.
    pub fn has_responses(&self) -> bool {
        !self.responses.is_empty()
    }

    /// Closes billing at the end of the run.
    pub fn finalize(&mut self, now: SimTime) {
        assert!(!self.finalized, "finalize called twice");
        self.finalized = true;
        self.meter.finalize(now);
    }

    /// Cost and instance accounting.
    pub fn report(&self) -> PlatformReport {
        PlatformReport {
            cost: self.cost(),
            instances: self.gauge.clone(),
            cold_started: 0,
            invocations: 0,
            busy_seconds: self.busy_seconds,
            instance_seconds: self.meter.billed_seconds() * f64::from(self.cfg.workers),
            faults: self.faults.injected(),
        }
    }

    /// Current cost breakdown.
    pub fn cost(&self) -> CostBreakdown {
        self.meter.breakdown()
    }

    /// Requests rejected for backlog overflow.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Requests skipped because the client had already timed out.
    pub fn dropped_stale(&self) -> u64 {
        self.dropped_stale
    }

    /// Current backlog depth (used by hybrid spillover routing).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::test_harness::PlatformHarness;
    use crate::request::RequestId;
    use slsb_model::{ModelKind, RuntimeKind};

    fn cpu_mobilenet() -> VmServerConfig {
        VmServerConfig::cpu(
            CloudProvider::Aws,
            ModelKind::MobileNet.profile(),
            RuntimeKind::Tf115.profile(),
        )
    }

    fn gpu_vgg() -> VmServerConfig {
        VmServerConfig::gpu(
            CloudProvider::Aws,
            ModelKind::Vgg.profile(),
            RuntimeKind::Tf115.profile(),
        )
    }

    fn request(id: u64, at_secs: f64) -> ServingRequest {
        ServingRequest {
            id: RequestId(id),
            arrival: SimTime::from_secs_f64(at_secs),
            payload_bytes: 120_000,
            inferences: 1,
        }
    }

    #[test]
    fn unloaded_latency_is_service_time() {
        let mut h = PlatformHarness::vm(cpu_mobilenet(), Seed(1));
        h.submit_at(0.0, request(0, 0.0));
        let rs = h.run();
        assert_eq!(rs.len(), 1);
        let lat = rs[0].latency_from(SimTime::ZERO).as_secs_f64();
        let median = cpu_mobilenet().service_median().as_secs_f64();
        assert!((lat - median).abs() < median, "latency {lat} vs {median}");
        assert!(rs[0].queued.is_zero());
    }

    #[test]
    fn queue_builds_under_burst() {
        let mut h = PlatformHarness::vm(cpu_mobilenet(), Seed(2));
        for i in 0..100 {
            h.submit_at(0.0, request(i, 0.0));
        }
        let rs = h.run();
        assert_eq!(rs.len(), 100);
        assert!(rs.iter().all(|r| r.outcome.is_success()));
        let max_q = rs
            .iter()
            .map(|r| r.queued.as_secs_f64())
            .fold(0.0, f64::max);
        assert!(max_q > 1.0, "tail of burst must queue: {max_q}");
    }

    #[test]
    fn backlog_overflow_rejects() {
        let mut cfg = cpu_mobilenet();
        cfg.queue_capacity = 10;
        let mut h = PlatformHarness::vm(cfg, Seed(3));
        for i in 0..50 {
            h.submit_at(0.0, request(i, 0.0));
        }
        let rs = h.run();
        let rejected = rs
            .iter()
            .filter(|r| r.outcome == Outcome::Failure(FailureReason::QueueFull))
            .count();
        // 10 queued + up to `workers` in flight succeed.
        assert!(rejected >= 35, "rejected {rejected}");
    }

    #[test]
    fn gpu_serves_vgg_in_tens_of_milliseconds() {
        // Section 4.4: "about 0.02 seconds per request".
        let mut h = PlatformHarness::vm(gpu_vgg(), Seed(4));
        h.submit_at(0.0, request(0, 0.0));
        let rs = h.run();
        let lat = rs[0].latency_from(SimTime::ZERO).as_secs_f64();
        assert!((0.01..=0.08).contains(&lat), "GPU VGG latency {lat}");
    }

    #[test]
    fn gpu_much_faster_than_cpu_for_vgg() {
        let cpu = VmServerConfig::cpu(
            CloudProvider::Aws,
            ModelKind::Vgg.profile(),
            RuntimeKind::Tf115.profile(),
        );
        assert!(
            gpu_vgg().service_median().as_secs_f64() * 5.0 < cpu.service_median().as_secs_f64()
        );
    }

    #[test]
    fn billing_is_wall_clock_rental() {
        let mut h = PlatformHarness::vm(cpu_mobilenet(), Seed(5));
        h.submit_at(0.0, request(0, 0.0));
        h.run_until(900.0);
        let report = h.finalize_report();
        // 900 s at $0.384/h = $0.096 — the Table 1 AWS-CPU ballpark.
        let d = report.cost.total().as_dollars();
        assert!((d - 900.0 / 3600.0 * 0.384).abs() < 1e-6, "cost {d}");
    }

    #[test]
    fn cpu_capacity_matches_calibration() {
        // Service median for MobileNet on the 8-vCPU box ⇒ capacity in the
        // mid-20s req/s, the anchor that reproduces the paper's success
        // ratios (44 % at workload-120, 27 % at workload-200).
        let cap = 1.0 / cpu_mobilenet().service_median().as_secs_f64();
        assert!((20.0..=35.0).contains(&cap), "capacity {cap}");
    }

    #[test]
    fn inferences_scale_service_time() {
        let mut h = PlatformHarness::vm(cpu_mobilenet(), Seed(6));
        let mut req = request(0, 0.0);
        req.inferences = 8;
        h.submit_at(0.0, req);
        let rs = h.run();
        let lat = rs[0].latency_from(SimTime::ZERO).as_secs_f64();
        let one = cpu_mobilenet().service_median().as_secs_f64();
        assert!(lat > one * 3.0, "batched latency {lat} vs single {one}");
    }
}
