//! Managed-ML serving endpoint simulator — SageMaker / AI Platform style.
//!
//! The paper (Section 4.2) explains every ManagedML result with two
//! mechanisms, both modeled here:
//!
//! * **Slow autoscaling**: a scaler evaluates load periodically and new
//!   instances take *minutes* to come into service (AWS wanted 5 instances
//!   at t = 7 min but had them serving at t = 11 min, Figure 7a; GCP
//!   reached 2 instances by t = 6 min, Figure 7b).
//! * **Bounded request queue**: while instances are saturated, requests
//!   queue; beyond the backlog bound they are rejected, which produces the
//!   low success ratios of Figures 5–6.
//!
//! Billing is instance-time from provisioning start — the paper notes
//! "most of the costs are spent on autoscaling instances rather than on
//! doing the prediction".

use crate::api::{PlatformEvent, PlatformReport, PlatformScheduler};
use crate::billing::{CostBreakdown, InstanceMeter, InstancePricing};
use crate::faults::{FaultInjector, FaultPlan};
use crate::idmap::IdMap;
use crate::policy::{KeepAliveTracker, PlacementPolicy, PolicySet};
use crate::provider::CloudProvider;
use crate::request::{FailureReason, Outcome, ServingRequest, ServingResponse};
use slsb_model::{predict_time, ModelProfile, RuntimeProfile};
use slsb_obs::{Component, EventKind, FaultKind, SpawnCause};
use slsb_sim::{GaugeSeries, Seed, SimDuration, SimRng, SimTime};
use std::collections::VecDeque;

/// Trace-event component tag for this platform.
const COMPONENT: Component = Component::ManagedMl;

/// How the autoscaler computes its desired instance count from the load it
/// observed during the last evaluation window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScalerPolicy {
    /// SageMaker-style target tracking on invocations per instance:
    /// `desired = ceil(rate / per_instance_per_sec)`.
    InvocationsPerInstance {
        /// Target request rate per instance (requests/second).
        per_instance_per_sec: f64,
    },
    /// Utilization-style target tracking:
    /// `desired = ceil(rate · service / target)`.
    Utilization {
        /// Target busy fraction per instance.
        target: f64,
    },
}

/// Provider-specific managed-ML endpoint parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ManagedMlParams {
    /// Which cloud this parameterization models.
    pub provider: CloudProvider,
    /// Per-instance price sheet.
    pub pricing: InstancePricing,
    /// vCPUs per instance (both clouds' evaluated instances have 8).
    pub vcpus: f64,
    /// Delay from the scaler's decision to the instance serving traffic.
    pub provision_delay: SimDuration,
    /// Scaler evaluation period.
    pub eval_period: SimDuration,
    /// Cooldown before scale-in.
    pub scale_in_cooldown: SimDuration,
    /// Autoscaling bounds (min is 1 in the paper's experiments).
    pub min_instances: u32,
    /// Upper bound on instances.
    pub max_instances: u32,
    /// Backlog bound per in-service instance; beyond it requests are
    /// rejected.
    pub queue_capacity_per_instance: usize,
    /// Endpoint-side per-request overhead (routing, (de)serialization).
    pub request_overhead: SimDuration,
    /// How the scaler converts observed load into a desired instance count.
    pub scaler: ScalerPolicy,
    /// Log-normal σ on sampled durations.
    pub jitter_sigma: f64,
}

impl ManagedMlParams {
    /// AWS SageMaker (ml.m4.2xlarge endpoints, Figure 7a anchor: ~4 min
    /// from desired to in-service).
    pub fn aws() -> Self {
        ManagedMlParams {
            provider: CloudProvider::Aws,
            pricing: InstancePricing::SAGEMAKER_M4_2XLARGE,
            vcpus: 8.0,
            provision_delay: SimDuration::from_secs(300),
            eval_period: SimDuration::from_secs(120),
            scale_in_cooldown: SimDuration::from_secs(600),
            min_instances: 1,
            max_instances: 8,
            queue_capacity_per_instance: 150,
            // SageMaker's per-invocation overhead (HTTPS endpoint, auth,
            // (de)serialization) is substantial; ~80 ms reproduces the
            // heavily congested latencies of Figures 5–6.
            request_overhead: SimDuration::from_millis(80),
            // SageMaker's default metric: tracks invocations per instance
            // (~5 req/s per ml.m4.2xlarge) — this is what drives it to ~4-5
            // instances for MobileNet at workload-40 (Figure 7a).
            scaler: ScalerPolicy::InvocationsPerInstance {
                per_instance_per_sec: 5.0,
            },
            jitter_sigma: 0.15,
        }
    }

    /// Google AI Platform (n1-standard-8 nodes, Figure 7b anchor: second
    /// instance in service by t = 6 min).
    pub fn gcp() -> Self {
        ManagedMlParams {
            provider: CloudProvider::Gcp,
            pricing: InstancePricing::AI_PLATFORM_N1_STANDARD_8,
            vcpus: 8.0,
            provision_delay: SimDuration::from_secs(150),
            eval_period: SimDuration::from_secs(60),
            scale_in_cooldown: SimDuration::from_secs(600),
            min_instances: 1,
            max_instances: 4,
            queue_capacity_per_instance: 200,
            request_overhead: SimDuration::from_millis(30),
            // AI Platform tracks node utilization; it reached only 2
            // instances for MobileNet at workload-40 (Figure 7b).
            scaler: ScalerPolicy::Utilization { target: 0.7 },
            jitter_sigma: 0.15,
        }
    }

    /// The parameterization for a provider.
    pub fn for_provider(provider: CloudProvider) -> Self {
        match provider {
            CloudProvider::Aws => Self::aws(),
            CloudProvider::Gcp => Self::gcp(),
        }
    }
}

/// A deployed managed-ML endpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct ManagedMlConfig {
    /// Provider parameters.
    pub params: ManagedMlParams,
    /// The served model.
    pub model: ModelProfile,
    /// The serving runtime (the paper restricts ManagedML to TF1.15; the
    /// planner in `slsb-core` enforces that rule).
    pub runtime: RuntimeProfile,
    /// Keep-alive / placement / scaling policies. The keep-alive window
    /// maps onto the scale-in cooldown here (the endpoint's analogue of
    /// reclaiming idle capacity); scaling policies other than the default
    /// are ignored — the target-tracking scaler *is* this platform.
    pub policy: PolicySet,
}

impl ManagedMlConfig {
    /// A default endpoint.
    pub fn new(provider: CloudProvider, model: ModelProfile, runtime: RuntimeProfile) -> Self {
        ManagedMlConfig {
            params: ManagedMlParams::for_provider(provider),
            model,
            runtime,
            policy: PolicySet::default(),
        }
    }

    /// Median service time per request on one instance (a single serving
    /// session using all vCPUs, plus endpoint overhead).
    pub fn service_median(&self) -> SimDuration {
        self.params.request_overhead + predict_time(&self.model, &self.runtime, self.params.vcpus)
    }
}

/// Internal events of the managed-ML simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ManagedMlEvent {
    /// A provisioned instance came into service.
    InstanceUp(u64),
    /// An instance finished a request.
    HandlerDone(u64),
    /// Periodic autoscaler evaluation.
    ScalerTick,
}

#[derive(Debug, Clone, Copy)]
struct MmlInstance {
    busy: bool,
    /// Requests this instance has served (least-loaded placement key).
    served: u64,
}

/// The simulated managed-ML endpoint.
pub struct ManagedMlPlatform {
    cfg: ManagedMlConfig,
    rng: SimRng,
    /// Keep-alive policy state (inter-arrival histogram when adaptive).
    keep_alive: KeepAliveTracker,
    ready: IdMap<MmlInstance>,
    provisioning: IdMap<SimTime>,
    queue: VecDeque<(ServingRequest, SimTime)>,
    next_id: u64,
    window_arrivals: u64,
    last_scale_out: SimTime,
    meter: InstanceMeter,
    gauge: GaugeSeries,
    responses: Vec<ServingResponse>,
    rejected: u64,
    busy_seconds: f64,
    horizon: Option<SimTime>,
    finalized: bool,
    faults: FaultInjector,
}

impl ManagedMlPlatform {
    /// Builds the endpoint; randomness comes from `seed`'s "managedml"
    /// substream.
    pub fn new(cfg: ManagedMlConfig, seed: Seed) -> Self {
        let meter = InstanceMeter::new(cfg.params.pricing);
        ManagedMlPlatform {
            rng: seed.substream("managedml").rng(),
            keep_alive: KeepAliveTracker::new(cfg.policy.keep_alive),
            cfg,
            ready: IdMap::new(),
            provisioning: IdMap::new(),
            queue: VecDeque::new(),
            next_id: 0,
            window_arrivals: 0,
            last_scale_out: SimTime::ZERO,
            meter,
            gauge: GaugeSeries::new(),
            responses: Vec::new(),
            rejected: 0,
            busy_seconds: 0.0,
            horizon: None,
            finalized: false,
            faults: FaultInjector::disabled(),
        }
    }

    /// Pre-sizes the response buffer, request queue, and instance slabs
    /// for a run expected to carry about `requests` invocations.
    pub fn reserve(&mut self, requests: usize) {
        self.responses.reserve(requests);
        let concurrent = requests.min(4096);
        self.queue.reserve(concurrent);
        self.ready.reserve(concurrent.min(256));
        self.provisioning.reserve(concurrent.min(256));
    }

    /// The endpoint configuration.
    pub fn config(&self) -> &ManagedMlConfig {
        &self.cfg
    }

    /// Installs a fault plan; `seed` should be a dedicated substream so the
    /// injector's draws never perturb the platform's own RNG.
    pub fn set_faults(&mut self, plan: FaultPlan, seed: Seed) {
        self.faults = FaultInjector::new(plan, seed);
    }

    /// Discrete faults injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.faults.injected()
    }

    /// Starts the minimum fleet and the scaler loop. `horizon` bounds the
    /// self-perpetuating scaler ticks so a run terminates.
    pub fn start(&mut self, sched: &mut PlatformScheduler<'_>, horizon: SimTime) {
        self.horizon = Some(horizon);
        for _ in 0..self.cfg.params.min_instances.max(1) {
            let id = self.alloc_id();
            self.meter.open(id, sched.now());
            self.ready.insert(id, MmlInstance { busy: false, served: 0 });
            self.gauge.record_delta(sched.now(), 1);
            sched.emit(|| EventKind::InstanceSpawn {
                component: COMPONENT,
                instance: id,
                cause: SpawnCause::Provisioned,
            });
            sched.emit(|| EventKind::InstanceWarm {
                component: COMPONENT,
                instance: id,
            });
        }
        if sched.now() + self.cfg.params.eval_period <= horizon {
            sched.schedule(
                self.cfg.params.eval_period,
                PlatformEvent::ManagedMl(ManagedMlEvent::ScalerTick),
            );
        }
    }

    fn alloc_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Handles an arriving request.
    pub fn submit(&mut self, sched: &mut PlatformScheduler<'_>, req: ServingRequest) {
        sched.emit(|| EventKind::RequestArrival {
            component: COMPONENT,
            request: req.id.0,
        });
        self.keep_alive.observe_arrival(sched.now());
        self.window_arrivals += 1;
        if let Some(kind) = self.faults.admit(sched.now()) {
            sched.emit(|| EventKind::Fault {
                component: Some(COMPONENT),
                kind,
            });
            sched.emit(|| EventKind::RequestRejected {
                component: COMPONENT,
                request: req.id.0,
            });
            self.responses.push(ServingResponse {
                id: req.id,
                outcome: Outcome::Failure(FailureReason::Throttled),
                completed_at: sched.now(),
                cold_start: None,
                predict: SimDuration::ZERO,
                queued: SimDuration::ZERO,
            });
            return;
        }
        let capacity = self.cfg.params.queue_capacity_per_instance * self.ready.len().max(1);
        if self.queue.len() >= capacity {
            self.rejected += 1;
            sched.emit(|| EventKind::RequestRejected {
                component: COMPONENT,
                request: req.id.0,
            });
            self.responses.push(ServingResponse {
                id: req.id,
                outcome: Outcome::Failure(FailureReason::QueueFull),
                completed_at: sched.now(),
                cold_start: None,
                predict: SimDuration::ZERO,
                queued: SimDuration::ZERO,
            });
            return;
        }
        sched.emit(|| EventKind::RequestQueued {
            component: COMPONENT,
            request: req.id.0,
        });
        self.queue.push_back((req, sched.now()));
        self.dispatch(sched);
    }

    /// Handles one of this platform's internal events.
    pub fn handle(&mut self, sched: &mut PlatformScheduler<'_>, ev: ManagedMlEvent) {
        match ev {
            ManagedMlEvent::InstanceUp(id) => {
                if let Some(_ready_at) = self.provisioning.remove(id) {
                    self.ready.insert(id, MmlInstance { busy: false, served: 0 });
                    self.gauge.record_delta(sched.now(), 1);
                    sched.emit(|| EventKind::InstanceWarm {
                        component: COMPONENT,
                        instance: id,
                    });
                    self.dispatch(sched);
                }
            }
            ManagedMlEvent::HandlerDone(id) => {
                if let Some(inst) = self.ready.get_mut(id) {
                    inst.busy = false;
                }
                self.dispatch(sched);
            }
            ManagedMlEvent::ScalerTick => self.scaler_tick(sched),
        }
    }

    /// The free instance the placement policy routes the next request to.
    fn pick_free(&self) -> Option<u64> {
        match self.cfg.policy.placement {
            PlacementPolicy::Mru => self.ready.iter().find(|(_, i)| !i.busy).map(|(id, _)| id),
            PlacementPolicy::LeastLoaded => self
                .ready
                .iter()
                .filter(|(_, i)| !i.busy)
                .min_by_key(|&(id, i)| (i.served, id))
                .map(|(id, _)| id),
        }
    }

    fn dispatch(&mut self, sched: &mut PlatformScheduler<'_>) {
        while !self.queue.is_empty() {
            let Some(id) = self.pick_free() else {
                return;
            };
            let (req, enqueued) = self.queue.pop_front().expect("queue non-empty");
            let predict = self.rng.lognormal(
                predict_time(&self.cfg.model, &self.cfg.runtime, self.cfg.params.vcpus)
                    * u64::from(req.inferences.max(1)),
                self.cfg.params.jitter_sigma,
            );
            let service = self.cfg.params.request_overhead + predict;
            self.busy_seconds += service.as_secs_f64();
            let inst = self.ready.get_mut(id).expect("instance exists");
            inst.busy = true;
            inst.served += 1;
            let done_at = sched.now() + service;
            // A mid-execution crash on a managed endpoint fails the request
            // but not the instance: the provider's health check restarts the
            // serving process transparently, so the worker is busy for the
            // full service time and then returns to the pool.
            let crashed = self.faults.crash_mid_exec();
            if crashed {
                sched.emit(|| EventKind::Fault {
                    component: Some(COMPONENT),
                    kind: FaultKind::ExecCrash,
                });
            }
            sched.emit(|| EventKind::ExecStart {
                component: COMPONENT,
                request: req.id.0,
                instance: id,
                cold: false,
                done_at,
            });
            self.responses.push(ServingResponse {
                id: req.id,
                outcome: if crashed {
                    Outcome::Failure(FailureReason::Crashed)
                } else {
                    Outcome::Success
                },
                completed_at: done_at,
                cold_start: None,
                predict,
                queued: sched.now().duration_since(enqueued),
            });
            sched.schedule(
                service,
                PlatformEvent::ManagedMl(ManagedMlEvent::HandlerDone(id)),
            );
        }
    }

    fn scaler_tick(&mut self, sched: &mut PlatformScheduler<'_>) {
        let p = self.cfg.params.clone();
        let rate = self.window_arrivals as f64 / p.eval_period.as_secs_f64();
        self.window_arrivals = 0;

        let service = self.cfg.service_median().as_secs_f64();
        let raw_desired = match p.scaler {
            ScalerPolicy::InvocationsPerInstance {
                per_instance_per_sec,
            } => (rate / per_instance_per_sec).ceil() as u32,
            ScalerPolicy::Utilization { target } => (rate * service / target).ceil() as u32,
        };
        let mut desired = raw_desired.clamp(p.min_instances, p.max_instances);
        // Queue pressure forces at least one more instance even when the
        // rate estimate lags the burst.
        let in_flight = (self.ready.len() + self.provisioning.len()) as u32;
        if self.queue.len() > p.queue_capacity_per_instance / 2 {
            desired = desired.max((in_flight + 1).min(p.max_instances));
        }

        if desired > in_flight {
            for _ in 0..(desired - in_flight) {
                let id = self.alloc_id();
                // Billing starts when provisioning starts — the effect the
                // paper blames for ManagedML's cost.
                self.meter.open(id, sched.now());
                let base = self.rng.lognormal(p.provision_delay, p.jitter_sigma);
                // Provisioning pulls the model image from object storage, so
                // storage degradation stretches the scale-out path.
                let (extra, stalled) = self.faults.storage_penalty(base);
                if stalled {
                    sched.emit(|| EventKind::Fault {
                        component: Some(COMPONENT),
                        kind: FaultKind::StorageStall,
                    });
                }
                let delay = base + extra;
                self.provisioning.insert(id, sched.now() + delay);
                sched.emit(|| EventKind::InstanceSpawn {
                    component: COMPONENT,
                    instance: id,
                    cause: SpawnCause::Demand,
                });
                sched.schedule(
                    delay,
                    PlatformEvent::ManagedMl(ManagedMlEvent::InstanceUp(id)),
                );
            }
            self.last_scale_out = sched.now();
        } else if desired < self.ready.len() as u32
            // The keep-alive policy maps onto the scale-in cooldown: how
            // long recently-needed capacity lingers before retirement.
            && sched.now().saturating_duration_since(self.last_scale_out)
                >= self.keep_alive.window(p.scale_in_cooldown)
            && self.ready.len() as u32 > p.min_instances
        {
            // Retire one idle instance per tick.
            let idle = self.ready.iter().find(|(_, i)| !i.busy).map(|(id, _)| id);
            if let Some(id) = idle {
                self.ready.remove(id);
                self.meter.close(id, sched.now());
                self.gauge.record_delta(sched.now(), -1);
                sched.emit(|| EventKind::InstanceReclaim {
                    component: COMPONENT,
                    instance: id,
                });
            }
        }

        if let Some(h) = self.horizon {
            if sched.now() + p.eval_period <= h {
                sched.schedule(
                    p.eval_period,
                    PlatformEvent::ManagedMl(ManagedMlEvent::ScalerTick),
                );
            }
        }
    }

    /// Responses completed since the last drain.
    pub fn drain_responses(&mut self) -> Vec<ServingResponse> {
        std::mem::take(&mut self.responses)
    }

    /// Moves completed responses onto `out`, keeping this platform's buffer
    /// capacity for the next burst.
    pub fn drain_responses_into(&mut self, out: &mut Vec<ServingResponse>) {
        out.append(&mut self.responses);
    }

    /// True when completed responses are waiting to be drained.
    pub fn has_responses(&self) -> bool {
        !self.responses.is_empty()
    }

    /// Closes billing at the end of the run.
    pub fn finalize(&mut self, now: SimTime) {
        assert!(!self.finalized, "finalize called twice");
        self.finalized = true;
        self.meter.finalize(now);
    }

    /// Cost and instance accounting.
    pub fn report(&self) -> PlatformReport {
        PlatformReport {
            cost: self.cost(),
            instances: self.gauge.clone(),
            cold_started: 0,
            invocations: 0,
            busy_seconds: self.busy_seconds,
            // Instance-seconds are what the meter bills (provisioning
            // included — the paper's cost complaint in one number).
            instance_seconds: self.meter.billed_seconds(),
            faults: self.faults.injected(),
        }
    }

    /// Current cost breakdown.
    pub fn cost(&self) -> CostBreakdown {
        self.meter.breakdown()
    }

    /// Requests rejected for backlog overflow.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// In-service instance count.
    pub fn ready_instances(&self) -> usize {
        self.ready.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::test_harness::PlatformHarness;
    use crate::request::RequestId;
    use slsb_model::{ModelKind, RuntimeKind};

    fn mobilenet_aws() -> ManagedMlConfig {
        ManagedMlConfig::new(
            CloudProvider::Aws,
            ModelKind::MobileNet.profile(),
            RuntimeKind::Tf115.profile(),
        )
    }

    fn request(id: u64, at_secs: f64) -> ServingRequest {
        ServingRequest {
            id: RequestId(id),
            arrival: SimTime::from_secs_f64(at_secs),
            payload_bytes: 120_000,
            inferences: 1,
        }
    }

    #[test]
    fn single_request_served_quickly() {
        let mut h = PlatformHarness::managedml(mobilenet_aws(), Seed(1));
        h.submit_at(1.0, request(0, 1.0));
        let rs = h.run_until(900.0);
        assert_eq!(rs.len(), 1);
        assert!(rs[0].outcome.is_success());
        let lat = rs[0]
            .latency_from(SimTime::from_secs_f64(1.0))
            .as_secs_f64();
        assert!(lat < 0.2, "unloaded latency {lat}");
    }

    #[test]
    fn sustained_overload_rejects_requests() {
        let mut h = PlatformHarness::managedml(mobilenet_aws(), Seed(2));
        // 100 req/s for 120 s: one instance (capacity ~25/s) cannot keep up
        // and the scaler's new instances take 4 minutes.
        for id in 0..12_000u64 {
            let t = id as f64 * 0.01;
            h.submit_at(t, request(id, t));
        }
        let rs = h.run_until(600.0);
        let ok = rs.iter().filter(|r| r.outcome.is_success()).count();
        let rejected = rs
            .iter()
            .filter(|r| r.outcome == Outcome::Failure(FailureReason::QueueFull))
            .count();
        assert_eq!(ok + rejected, 12_000);
        assert!(rejected > 3_000, "rejected {rejected}");
    }

    #[test]
    fn autoscaler_adds_instances_after_provision_delay() {
        let mut h = PlatformHarness::managedml(mobilenet_aws(), Seed(3));
        // 60 req/s sustained for 10 minutes.
        for id in 0..36_000u64 {
            let t = id as f64 / 60.0;
            h.submit_at(t, request(id, t));
        }
        h.run_until(900.0);
        let report = h.finalize_report();
        assert!(
            report.instances.peak() >= 2,
            "scaler never scaled out: peak {}",
            report.instances.peak()
        );
        // No instance can be in service before eval_period + provision
        // delay (~5 min on AWS).
        let first_scale_out = report
            .instances
            .points()
            .iter()
            .find(|&&(_, v)| v >= 2)
            .map(|&(t, _)| t.as_secs_f64())
            .expect("scaled out");
        // Earliest possible: one eval period plus a (jittered) provision
        // delay.
        assert!(
            first_scale_out > 180.0,
            "instance in service too early: {first_scale_out}"
        );
    }

    #[test]
    fn gcp_scales_faster_than_aws() {
        assert!(ManagedMlParams::gcp().provision_delay < ManagedMlParams::aws().provision_delay);
    }

    #[test]
    fn billing_counts_provisioning_time() {
        let mut h = PlatformHarness::managedml(mobilenet_aws(), Seed(4));
        for id in 0..30_000u64 {
            let t = id as f64 / 50.0;
            h.submit_at(t, request(id, t));
        }
        h.run_until(900.0);
        let report = h.finalize_report();
        // With ≥ 2 instances for part of a 15-minute run at $0.538/h the
        // cost must exceed the single-instance floor.
        let floor = 900.0 / 3600.0 * 0.538;
        assert!(
            report.cost.total().as_dollars() > floor * 1.1,
            "cost {} vs floor {floor}",
            report.cost.total()
        );
    }

    #[test]
    fn queue_wait_is_reported() {
        let mut h = PlatformHarness::managedml(mobilenet_aws(), Seed(5));
        for i in 0..50 {
            h.submit_at(1.0, request(i, 1.0));
        }
        let rs = h.run_until(300.0);
        let max_queued = rs
            .iter()
            .map(|r| r.queued.as_secs_f64())
            .fold(0.0, f64::max);
        assert!(max_queued > 0.5, "back of burst must queue: {max_queued}");
    }

    #[test]
    fn scale_in_retires_idle_instances() {
        let mut h = PlatformHarness::managedml(mobilenet_aws(), Seed(6));
        // Heavy for 5 minutes, then silence for 20.
        for id in 0..18_000u64 {
            let t = id as f64 / 60.0;
            h.submit_at(t, request(id, t));
        }
        h.run_until(1500.0);
        let report = h.finalize_report();
        assert!(report.instances.peak() >= 2);
        assert!(
            report.instances.current() < report.instances.peak(),
            "no scale-in happened"
        );
    }
}
