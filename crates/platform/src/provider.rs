//! Cloud providers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The two public clouds the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CloudProvider {
    /// Amazon Web Services (Lambda, SageMaker, EC2).
    Aws,
    /// Google Cloud Platform (Cloud Functions, AI Platform, GCE).
    Gcp,
}

impl CloudProvider {
    /// Both providers, paper order.
    pub const ALL: [CloudProvider; 2] = [CloudProvider::Aws, CloudProvider::Gcp];
}

impl fmt::Display for CloudProvider {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CloudProvider::Aws => "AWS",
            CloudProvider::Gcp => "GCP",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(CloudProvider::Aws.to_string(), "AWS");
        assert_eq!(CloudProvider::Gcp.to_string(), "GCP");
    }
}
