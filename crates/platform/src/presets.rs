//! The paper's eight evaluated systems as one-call presets.

use crate::api::Platform;
use crate::managedml::ManagedMlConfig;
use crate::provider::CloudProvider;
use crate::serverless::ServerlessConfig;
use crate::vmserver::VmServerConfig;
use serde::{Deserialize, Serialize};
use slsb_model::{ModelKind, RuntimeKind};
use slsb_sim::Seed;
use std::fmt;

/// The eight systems of the paper's evaluation (Section 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlatformKind {
    /// AWS Lambda.
    AwsServerless,
    /// Google Cloud Functions.
    GcpServerless,
    /// AWS SageMaker.
    AwsManagedMl,
    /// Google AI Platform.
    GcpManagedMl,
    /// EC2 m5.2xlarge CPU server.
    AwsCpu,
    /// GCE n1-standard-8 CPU server.
    GcpCpu,
    /// EC2 g4dn.2xlarge GPU server.
    AwsGpu,
    /// GCE n1-standard-8 + Tesla T4 GPU server.
    GcpGpu,
}

/// Lambda's temporary-directory quota: artifacts larger than this cannot be
/// downloaded at cold-start time and must be baked into the image
/// (Section 3, "Planner").
pub const LAMBDA_TMP_LIMIT_MB: f64 = 512.0;

impl PlatformKind {
    /// All eight systems, paper order.
    pub const ALL: [PlatformKind; 8] = [
        PlatformKind::AwsServerless,
        PlatformKind::GcpServerless,
        PlatformKind::AwsManagedMl,
        PlatformKind::GcpManagedMl,
        PlatformKind::AwsCpu,
        PlatformKind::GcpCpu,
        PlatformKind::AwsGpu,
        PlatformKind::GcpGpu,
    ];

    /// The hosting cloud.
    pub fn provider(self) -> CloudProvider {
        match self {
            PlatformKind::AwsServerless
            | PlatformKind::AwsManagedMl
            | PlatformKind::AwsCpu
            | PlatformKind::AwsGpu => CloudProvider::Aws,
            PlatformKind::GcpServerless
            | PlatformKind::GcpManagedMl
            | PlatformKind::GcpCpu
            | PlatformKind::GcpGpu => CloudProvider::Gcp,
        }
    }

    /// True for Lambda / Cloud Functions.
    pub fn is_serverless(self) -> bool {
        matches!(
            self,
            PlatformKind::AwsServerless | PlatformKind::GcpServerless
        )
    }

    /// True for SageMaker / AI Platform.
    pub fn is_managed_ml(self) -> bool {
        matches!(
            self,
            PlatformKind::AwsManagedMl | PlatformKind::GcpManagedMl
        )
    }

    /// True for GPU boxes.
    pub fn is_gpu(self) -> bool {
        matches!(self, PlatformKind::AwsGpu | PlatformKind::GcpGpu)
    }

    /// The paper's label, e.g. `"AWS-Serverless"`.
    pub fn label(self) -> &'static str {
        match self {
            PlatformKind::AwsServerless => "AWS-Serverless",
            PlatformKind::GcpServerless => "GCP-Serverless",
            PlatformKind::AwsManagedMl => "AWS-ManagedML",
            PlatformKind::GcpManagedMl => "GCP-ManagedML",
            PlatformKind::AwsCpu => "AWS-CPU",
            PlatformKind::GcpCpu => "GCP-CPU",
            PlatformKind::AwsGpu => "AWS-GPU",
            PlatformKind::GcpGpu => "GCP-GPU",
        }
    }

    /// Builds the default-configured simulated system for `model` ×
    /// `runtime`, applying the paper's packaging rules (VGG exceeds the
    /// serverless `/tmp` quota and is baked into the image).
    pub fn build(self, model: ModelKind, runtime: RuntimeKind, seed: Seed) -> Platform {
        let m = model.profile();
        let r = runtime.profile();
        match self {
            PlatformKind::AwsServerless | PlatformKind::GcpServerless => {
                let mut cfg = ServerlessConfig::new(self.provider(), m, r);
                if cfg.model.artifact_mb > LAMBDA_TMP_LIMIT_MB {
                    cfg.bake_model_in_image = true;
                }
                Platform::serverless(cfg, seed)
            }
            PlatformKind::AwsManagedMl | PlatformKind::GcpManagedMl => {
                Platform::managedml(ManagedMlConfig::new(self.provider(), m, r), seed)
            }
            PlatformKind::AwsCpu | PlatformKind::GcpCpu => {
                Platform::vm(VmServerConfig::cpu(self.provider(), m, r), seed)
            }
            PlatformKind::AwsGpu | PlatformKind::GcpGpu => {
                Platform::vm(VmServerConfig::gpu(self.provider(), m, r), seed)
            }
        }
    }
}

impl fmt::Display for PlatformKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn providers_and_labels() {
        assert_eq!(PlatformKind::AwsServerless.provider(), CloudProvider::Aws);
        assert_eq!(PlatformKind::GcpGpu.provider(), CloudProvider::Gcp);
        assert_eq!(PlatformKind::AwsManagedMl.label(), "AWS-ManagedML");
        assert_eq!(PlatformKind::GcpServerless.to_string(), "GCP-Serverless");
    }

    #[test]
    fn predicates() {
        assert!(PlatformKind::AwsServerless.is_serverless());
        assert!(!PlatformKind::AwsCpu.is_serverless());
        assert!(PlatformKind::GcpManagedMl.is_managed_ml());
        assert!(PlatformKind::AwsGpu.is_gpu());
        assert!(!PlatformKind::GcpCpu.is_gpu());
    }

    #[test]
    fn vgg_is_baked_on_serverless() {
        let p = PlatformKind::AwsServerless.build(ModelKind::Vgg, RuntimeKind::Tf115, Seed(1));
        match p {
            Platform::Serverless(p) => assert!(p.config().bake_model_in_image),
            _ => panic!("expected serverless"),
        }
        let p = PlatformKind::AwsServerless.build(ModelKind::Albert, RuntimeKind::Tf115, Seed(1));
        match p {
            Platform::Serverless(p) => assert!(!p.config().bake_model_in_image),
            _ => panic!("expected serverless"),
        }
    }

    #[test]
    fn all_eight_build() {
        for kind in PlatformKind::ALL {
            let _ = kind.build(ModelKind::MobileNet, RuntimeKind::Tf115, Seed(1));
        }
    }
}
