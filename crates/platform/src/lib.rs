//! # slsb-platform — calibrated simulators of cloud model-serving systems
//!
//! Every system the paper measures, rebuilt as a discrete-event simulator
//! (the substitution DESIGN.md documents):
//!
//! - [`serverless`] — Lambda / Cloud Functions: per-request instances,
//!   cold-start pipeline, keep-alive, over-provisioning, provisioned
//!   concurrency, GB-second billing;
//! - [`managedml`] — SageMaker / AI Platform: bounded endpoint queue,
//!   minutes-scale target-tracking autoscaler, instance-hour billing;
//! - [`vmserver`] — self-rented CPU/GPU boxes: fixed capacity, bounded
//!   backlog, wall-clock rental billing;
//! - [`storage`] / [`network`] — S3/GCS downloads and client↔endpoint
//!   transfer, calibrated from the paper's Figure 12;
//! - [`billing`] — price sheets and meters (Table 1's cost model);
//! - [`hybrid`] — MArk-style VM + serverless-spillover composition (the
//!   paper's related-work direction, built as an extension);
//! - [`faults`] — seed-deterministic fault injection ([`FaultPlan`] /
//!   [`FaultInjector`]): crashes, storage stalls, throttling, outages;
//! - [`presets`] — the eight evaluated systems behind [`PlatformKind`];
//! - [`api`] — the uniform [`Platform`] interface the executor drives.
//!
//! ```
//! use slsb_model::{ModelKind, RuntimeKind};
//! use slsb_platform::api::test_harness::PlatformHarness;
//! use slsb_platform::{CloudProvider, RequestId, ServerlessConfig, ServingRequest};
//! use slsb_sim::{Seed, SimTime};
//!
//! // One request against a fresh Lambda-style function: it cold-starts
//! // through boot → import → download → load → first predict.
//! let cfg = ServerlessConfig::new(
//!     CloudProvider::Aws,
//!     ModelKind::MobileNet.profile(),
//!     RuntimeKind::Tf115.profile(),
//! );
//! let mut harness = PlatformHarness::serverless(cfg, Seed(1));
//! harness.submit_at(
//!     0.0,
//!     ServingRequest {
//!         id: RequestId(0),
//!         arrival: SimTime::ZERO,
//!         payload_bytes: 120_000,
//!         inferences: 1,
//!     },
//! );
//! let responses = harness.run();
//! assert!(responses[0].outcome.is_success());
//! assert!(responses[0].cold_start.is_some());
//! ```

pub mod api;
pub mod billing;
pub mod faults;
pub mod hybrid;
pub mod idmap;
pub mod managedml;
pub mod network;
pub mod policy;
pub mod presets;
pub mod provider;
pub mod request;
pub mod serverless;
pub mod storage;
pub mod vmserver;

pub use api::{Platform, PlatformEvent, PlatformReport, PlatformScheduler};
pub use billing::{CostBreakdown, InstancePricing, Money, ServerlessPricing};
pub use faults::{FaultInjector, FaultPlan, FaultPlanError, OutageWindow, ThrottleSpec};
pub use hybrid::{HybridConfig, HybridPlatform, SpilloverPolicy};
pub use idmap::IdMap;
pub use managedml::{ManagedMlConfig, ManagedMlParams, ManagedMlPlatform};
pub use network::NetworkProfile;
pub use policy::{KeepAlivePolicy, KeepAliveTracker, PlacementPolicy, PolicySet, ScalingPolicy};
pub use presets::{PlatformKind, LAMBDA_TMP_LIMIT_MB};
pub use provider::CloudProvider;
pub use request::{
    ColdStartBreakdown, FailureReason, Outcome, RequestId, ServingRequest, ServingResponse,
};
pub use serverless::{ServerlessConfig, ServerlessParams, ServerlessPlatform};
pub use storage::StorageProfile;
pub use vmserver::{VmKind, VmServer, VmServerConfig};
