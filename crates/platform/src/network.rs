//! Client↔endpoint network model.
//!
//! The paper's Figure 12c shows payload size has only a minor effect on
//! end-to-end latency — transfer is a small additive term. We model a
//! round-trip latency plus bandwidth-limited payload transfer.

use serde::{Deserialize, Serialize};
use slsb_sim::SimDuration;

/// A simple latency + bandwidth network path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkProfile {
    /// One-way base latency.
    pub one_way_latency: SimDuration,
    /// Effective throughput in MB/s for payload transfer.
    pub bandwidth_mb_per_sec: f64,
}

impl NetworkProfile {
    /// The default client→cloud path used in the experiments: ~10 ms each
    /// way, 50 MB/s effective throughput.
    pub const DEFAULT: NetworkProfile = NetworkProfile {
        one_way_latency: SimDuration::from_millis(10),
        bandwidth_mb_per_sec: 50.0,
    };

    /// Time to push `bytes` one way (latency + transfer).
    ///
    /// # Panics
    /// Panics if the configured bandwidth is not strictly positive.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        assert!(
            self.bandwidth_mb_per_sec > 0.0,
            "non-positive network bandwidth"
        );
        let transfer_secs = bytes as f64 / (self.bandwidth_mb_per_sec * 1e6);
        self.one_way_latency + SimDuration::from_secs_f64(transfer_secs)
    }

    /// Time for a small (headers-only) response on the return path.
    pub fn response_time(&self) -> SimDuration {
        // Prediction responses are tiny (a label or a logit vector).
        self.transfer_time(2_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_scales_with_payload() {
        let n = NetworkProfile::DEFAULT;
        let small = n.transfer_time(1_000);
        let big = n.transfer_time(10_000_000);
        assert!(big > small);
        // 10 MB at 50 MB/s = 0.2 s + 10 ms latency.
        assert!((big.as_secs_f64() - 0.21).abs() < 1e-6);
    }

    #[test]
    fn zero_payload_costs_latency_only() {
        let n = NetworkProfile::DEFAULT;
        assert_eq!(n.transfer_time(0), n.one_way_latency);
    }

    #[test]
    fn input_size_effect_is_minor_as_in_fig12c() {
        // Packing 10× more samples into a request adds well under a second:
        // the paper's takeaway that input size barely moves E2E latency.
        let n = NetworkProfile::DEFAULT;
        let one = n.transfer_time(120_000);
        let ten = n.transfer_time(1_200_000);
        assert!((ten - one).as_secs_f64() < 0.05);
    }
}
