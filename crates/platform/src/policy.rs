//! Pluggable platform policies: keep-alive, placement, and scaling.
//!
//! Every platform used to hard-code these decisions. This module extracts
//! them into a [`PolicySet`] carried by each platform config, with the
//! pre-refactor behaviour preserved exactly by the default members
//! (pinned byte-for-byte by `tests/policy_golden.rs`):
//!
//! * [`KeepAlivePolicy`] decides how long an idle warm instance survives.
//!   The default defers to the platform's calibrated window (Lambda 600 s,
//!   Cloud Functions 900 s; ManagedML maps it onto the scale-in cooldown).
//!   [`KeepAlivePolicy::Fixed`] pins an explicit window, and
//!   [`KeepAlivePolicy::HybridHistogram`] is the "Serverless in the Wild"
//!   policy: a per-deployment histogram of request inter-arrival times
//!   whose tail percentile sets the window adaptively. The histogram
//!   observes arrivals only — it never draws from the RNG, so swapping
//!   keep-alive policies cannot perturb any other sampled quantity.
//! * [`PlacementPolicy`] picks which warm instance / free worker serves a
//!   request. The default keeps each platform's locality-preserving order
//!   (serverless routes to the most-recently-used warm instance, VM and
//!   ManagedML to the first free worker); `LeastLoaded` spreads work to
//!   the instance that has served the fewest requests.
//! * [`ScalingPolicy`] gates speculative capacity. The default keeps the
//!   provider's over-provisioning behaviour; `NoOverprovision` spawns only
//!   for observed demand.
//!
//! [`PolicySet::by_name`] exposes the zoo to the CLI (`slsb run
//! --policy`), and scenario JSON accepts the same shape as a `"policy"`
//! block.

use serde::{Deserialize, Serialize};
use slsb_sim::{SimDuration, SimTime};

/// Windows beyond this are "never reclaim" for any practical run.
const MAX_WINDOW_S: f64 = 1e9;

/// The complete policy selection for one platform instance.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PolicySet {
    /// Idle-instance reclamation.
    #[serde(default)]
    pub keep_alive: KeepAlivePolicy,
    /// Warm-instance / worker selection.
    #[serde(default)]
    pub placement: PlacementPolicy,
    /// Speculative capacity.
    #[serde(default)]
    pub scaling: ScalingPolicy,
}

impl PolicySet {
    /// Every named policy accepted by [`PolicySet::by_name`], in the order
    /// documentation and `verify.sh` sweep them.
    pub const ZOO: [&'static str; 5] = [
        "default",
        "fixed",
        "hybrid_histogram",
        "least_loaded",
        "no_overprovision",
    ];

    /// Resolves a CLI policy name to a [`PolicySet`].
    ///
    /// `default` (alias `mru`) is the paper's behaviour; `fixed` pins a
    /// 600 s keep-alive on every provider; `hybrid_histogram` enables the
    /// adaptive keep-alive; `least_loaded` switches placement;
    /// `no_overprovision` disables speculative spawns.
    pub fn by_name(name: &str) -> Option<PolicySet> {
        Some(match name {
            "default" | "mru" => PolicySet::default(),
            "fixed" => PolicySet {
                keep_alive: KeepAlivePolicy::Fixed { idle_s: 600.0 },
                ..PolicySet::default()
            },
            "hybrid_histogram" => PolicySet {
                keep_alive: KeepAlivePolicy::hybrid_histogram(),
                ..PolicySet::default()
            },
            "least_loaded" => PolicySet {
                placement: PlacementPolicy::LeastLoaded,
                ..PolicySet::default()
            },
            "no_overprovision" => PolicySet {
                scaling: ScalingPolicy::NoOverprovision,
                ..PolicySet::default()
            },
            _ => None?,
        })
    }
}

/// How long an idle warm instance survives before reclamation.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum KeepAlivePolicy {
    /// The platform's calibrated window (the paper's behaviour).
    #[default]
    PlatformDefault,
    /// A fixed idle window in seconds. Values at or above 10^9 seconds
    /// mean "never reclaim".
    Fixed {
        /// Idle window, seconds.
        idle_s: f64,
    },
    /// "Serverless in the Wild"-style adaptive keep-alive: track a
    /// histogram of request inter-arrival times per deployment and keep
    /// instances warm for a tail percentile of it (times a safety
    /// margin), floored at the platform default so the histogram only
    /// ever extends keep-alive to cover an app's idle tail. Until
    /// `warmup` gaps are observed the platform default applies.
    HybridHistogram {
        /// Histogram bucket width, seconds.
        #[serde(default = "KeepAlivePolicy::default_bucket_s")]
        bucket_s: f64,
        /// Histogram range cap, seconds (gaps beyond it land in the last
        /// bucket).
        #[serde(default = "KeepAlivePolicy::default_max_s")]
        max_s: f64,
        /// Percentile of the inter-arrival distribution to cover.
        #[serde(default = "KeepAlivePolicy::default_percentile")]
        percentile: f64,
        /// Safety margin multiplied onto the chosen percentile edge.
        #[serde(default = "KeepAlivePolicy::default_margin")]
        margin: f64,
        /// Observed gaps required before the histogram takes over.
        #[serde(default = "KeepAlivePolicy::default_warmup")]
        warmup: u32,
    },
}

impl KeepAlivePolicy {
    fn default_bucket_s() -> f64 {
        10.0
    }
    fn default_max_s() -> f64 {
        3_600.0
    }
    fn default_percentile() -> f64 {
        99.0
    }
    fn default_margin() -> f64 {
        1.2
    }
    fn default_warmup() -> u32 {
        3
    }

    /// The hybrid-histogram policy with its default knobs.
    pub fn hybrid_histogram() -> KeepAlivePolicy {
        KeepAlivePolicy::HybridHistogram {
            bucket_s: Self::default_bucket_s(),
            max_s: Self::default_max_s(),
            percentile: Self::default_percentile(),
            margin: Self::default_margin(),
            warmup: Self::default_warmup(),
        }
    }
}

/// Which warm instance / free worker serves an arriving request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum PlacementPolicy {
    /// The platform's locality-preserving order: serverless picks the
    /// most-recently-used warm instance, VM and ManagedML the first free
    /// worker. This is the pre-refactor behaviour.
    #[default]
    Mru,
    /// Pick the eligible instance that has served the fewest requests
    /// (ties broken by lowest instance id, so the choice is
    /// deterministic).
    LeastLoaded,
}

/// Whether speculative capacity is spawned beyond observed demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ScalingPolicy {
    /// The provider's over-provisioning behaviour (spawn factors, the
    /// paper's Figure 11 mechanism).
    #[default]
    PlatformDefault,
    /// Spawn only for observed demand; never speculatively. Serverless
    /// only — ManagedML's scaler and the fixed-capacity VM ignore it.
    NoOverprovision,
}

/// Converts a fixed window in seconds to a schedulable duration, clamping
/// into the representable range.
pub(crate) fn fixed_window(idle_s: f64) -> SimDuration {
    SimDuration::from_secs_f64(idle_s.clamp(0.0, MAX_WINDOW_S))
}

/// Mutable keep-alive state owned by a platform: the inter-arrival
/// histogram for [`KeepAlivePolicy::HybridHistogram`], nothing for the
/// other members (no allocation, no work on the hot path).
#[derive(Debug, Clone)]
pub struct KeepAliveTracker {
    policy: KeepAlivePolicy,
    last_arrival: Option<SimTime>,
    buckets: Vec<u64>,
    total: u64,
}

impl KeepAliveTracker {
    /// Builds the tracker for a policy.
    pub fn new(policy: KeepAlivePolicy) -> KeepAliveTracker {
        let buckets = match policy {
            KeepAlivePolicy::HybridHistogram {
                bucket_s, max_s, ..
            } => {
                let width = bucket_s.max(0.001);
                vec![0u64; ((max_s / width).ceil() as usize).max(1) + 1]
            }
            _ => Vec::new(),
        };
        KeepAliveTracker {
            policy,
            last_arrival: None,
            buckets,
            total: 0,
        }
    }

    /// Records one request arrival. Only the hybrid-histogram policy keeps
    /// state; for every other policy this returns immediately.
    pub fn observe_arrival(&mut self, now: SimTime) {
        let KeepAlivePolicy::HybridHistogram { bucket_s, .. } = self.policy else {
            return;
        };
        if let Some(prev) = self.last_arrival {
            let gap = now.saturating_duration_since(prev).as_secs_f64();
            let idx = ((gap / bucket_s.max(0.001)) as usize).min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
            self.total += 1;
        }
        self.last_arrival = Some(now);
    }

    /// The idle window to apply right now, given the platform's calibrated
    /// default.
    pub fn window(&self, platform_default: SimDuration) -> SimDuration {
        match self.policy {
            KeepAlivePolicy::PlatformDefault => platform_default,
            KeepAlivePolicy::Fixed { idle_s } => fixed_window(idle_s),
            KeepAlivePolicy::HybridHistogram {
                bucket_s,
                percentile,
                margin,
                warmup,
                ..
            } => {
                if self.total < u64::from(warmup) {
                    return platform_default;
                }
                let target = ((percentile / 100.0) * self.total as f64).ceil().max(1.0) as u64;
                let mut cum = 0u64;
                for (i, &count) in self.buckets.iter().enumerate() {
                    cum += count;
                    if cum >= target {
                        let edge = (i as f64 + 1.0) * bucket_s.max(0.001);
                        // Floor at the provider window: under bursty
                        // arrivals the percentile edge sits inside the
                        // burst, and reclaiming faster than the provider
                        // would re-colds every inter-burst gap. The
                        // histogram only ever *extends* keep-alive to
                        // cover an app's observed idle tail.
                        return fixed_window(edge * margin.max(1.0)).max(platform_default);
                    }
                }
                platform_default
            }
        }
    }

    /// Observed inter-arrival gaps so far (0 unless hybrid-histogram).
    pub fn observations(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_set_is_all_platform_defaults() {
        let p = PolicySet::default();
        assert_eq!(p.keep_alive, KeepAlivePolicy::PlatformDefault);
        assert_eq!(p.placement, PlacementPolicy::Mru);
        assert_eq!(p.scaling, ScalingPolicy::PlatformDefault);
    }

    #[test]
    fn every_zoo_name_resolves_and_unknown_does_not() {
        for name in PolicySet::ZOO {
            assert!(PolicySet::by_name(name).is_some(), "zoo name {name}");
        }
        assert!(PolicySet::by_name("nope").is_none());
    }

    #[test]
    fn policy_set_json_roundtrip_and_empty_block_is_default() {
        let p = PolicySet::by_name("hybrid_histogram").unwrap();
        let json = serde_json::to_string(&p).unwrap();
        let back: PolicySet = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
        let empty: PolicySet = serde_json::from_str("{}").unwrap();
        assert_eq!(empty, PolicySet::default());
        let partial: PolicySet =
            serde_json::from_str(r#"{"placement":"least_loaded"}"#).unwrap();
        assert_eq!(partial.placement, PlacementPolicy::LeastLoaded);
        assert_eq!(partial.keep_alive, KeepAlivePolicy::PlatformDefault);
    }

    #[test]
    fn histogram_knobs_have_serde_defaults() {
        let p: KeepAlivePolicy =
            serde_json::from_str(r#"{"kind":"hybrid_histogram"}"#).unwrap();
        assert_eq!(p, KeepAlivePolicy::hybrid_histogram());
    }

    #[test]
    fn default_tracker_passes_platform_window_through() {
        let t = KeepAliveTracker::new(KeepAlivePolicy::PlatformDefault);
        let d = SimDuration::from_secs(600);
        assert_eq!(t.window(d), d);
    }

    #[test]
    fn fixed_tracker_pins_window() {
        let t = KeepAliveTracker::new(KeepAlivePolicy::Fixed { idle_s: 42.0 });
        assert_eq!(
            t.window(SimDuration::from_secs(600)),
            SimDuration::from_secs(42)
        );
    }

    #[test]
    fn histogram_adapts_to_observed_gaps() {
        let mut t = KeepAliveTracker::new(KeepAlivePolicy::hybrid_histogram());
        let default = SimDuration::from_secs(600);
        // Before warmup the platform default applies.
        t.observe_arrival(SimTime::from_secs_f64(0.0));
        t.observe_arrival(SimTime::from_secs_f64(100.0));
        assert_eq!(t.window(default), default);
        // Steady 100 s gaps: the percentile edge covers them with margin,
        // but the window never drops below the platform default.
        for i in 2..30u64 {
            t.observe_arrival(SimTime::from_secs_f64(i as f64 * 100.0));
        }
        assert_eq!(t.window(default), default);
        // With a short provider window the histogram edge governs.
        let tight = SimDuration::from_secs(10);
        let w = t.window(tight).as_secs_f64();
        assert!(w >= 100.0, "window {w} must cover the observed gap");
        assert!(w <= 200.0, "window {w} must stay near the observed gap");
        // A sparse tail pushes the percentile out beyond the default.
        let mut sparse = KeepAliveTracker::new(KeepAlivePolicy::hybrid_histogram());
        for i in 0..20u64 {
            sparse.observe_arrival(SimTime::from_secs_f64(i as f64 * 1_500.0));
        }
        let ws = sparse.window(default).as_secs_f64();
        assert!(ws > 1_500.0, "sparse window {ws} must exceed the gap");
    }

    #[test]
    fn huge_fixed_window_is_clamped_not_overflowed() {
        let t = KeepAliveTracker::new(KeepAlivePolicy::Fixed { idle_s: 1e18 });
        let w = t.window(SimDuration::from_secs(1));
        assert!(w.as_secs_f64() >= 1e8, "clamped window still enormous");
    }
}
